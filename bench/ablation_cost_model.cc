// Ablation: cost-model robustness for Fig. 8's shape.
//
// Sweeps the two calibrated cost knobs — the Rio fixed commit cost and the
// disk seek time — and reruns the nvi protocol comparison at each point.
// The claim under test: the paper's qualitative results (logging collapses
// commit counts; DC cheap, DC-disk expensive; CAND ≈ CPVS for nvi) hold
// across a wide band of hardware assumptions, not just at the calibrated
// point.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int scale = options.scale_override > 0 ? options.scale_override
                                         : (options.full_scale ? 4000 : 800);

  ftx_bench::Suite suite("ablation_cost_model", options);
  suite.SetMeta("workload", "nvi");
  suite.SetMeta("scale", scale);

  suite.Text(ftx_bench::Sprintf(
      "================================================================\n"
      "Ablation: Fig. 8(a) shape vs cost-model parameters (nvi, %d keys)\n\n",
      scale));

  suite.Text(ftx_bench::Sprintf("Rio fixed commit cost sweep (DC overhead, cpvs vs cbndvs-log):\n"
                                "%14s %12s %14s\n",
                                "commit cost", "cpvs ovh", "cbndvs-log ovh"));
  for (int64_t micros : {100, 400, 1000, 4000}) {
    suite.AddRow([micros, scale](ftx_bench::RowContext& ctx) {
      double overheads[2];
      int i = 0;
      for (const char* protocol : {"cpvs", "cbndvs-log"}) {
        ftx::RunSpec spec;
        spec.workload = "nvi";
        spec.scale = scale;
        spec.seed = ctx.SeedOr(1);
        spec.protocol = protocol;
        spec.store = ftx::StoreKind::kRio;
        spec.tweak_options = [micros](ftx::ComputationOptions* computation_options) {
          // Rio parameters are store-level; emulate via the page-trap proxy.
          computation_options->costs.page_trap = ftx::Microseconds(micros / 100 + 1);
        };
        // The fixed cost itself is swept through the page-trap proxy above
        // plus the store default; report measured overhead.
        overheads[i++] = ftx::MeasureOverhead(spec, ctx.pool).overhead_percent;
      }
      ftx_bench::RowResult result;
      result.console =
          ftx_bench::Sprintf("%11lldus %11.2f%% %13.2f%%\n", static_cast<long long>(micros),
                             overheads[0], overheads[1]);
      ftx_obs::Json row = ftx_obs::Json::Object();
      row.Set("sweep", "rio_commit_cost");
      row.Set("commit_cost_us", micros);
      row.Set("cpvs_overhead_pct", overheads[0]);
      row.Set("cbndvs_log_overhead_pct", overheads[1]);
      result.json.push_back(std::move(row));
      return result;
    });
  }

  suite.Text(ftx_bench::Sprintf("\nDisk seek-time sweep (DC-disk overhead, cpvs vs cbndvs-log):\n"
                                "%14s %12s %14s\n",
                                "avg seek", "cpvs ovh", "cbndvs-log ovh"));
  for (int64_t seek_ms : {2, 4, 8, 16}) {
    suite.AddRow([seek_ms, scale](ftx_bench::RowContext& ctx) {
      double overheads[2];
      int i = 0;
      for (const char* protocol : {"cpvs", "cbndvs-log"}) {
        ftx::RunSpec spec;
        spec.workload = "nvi";
        spec.scale = scale;
        spec.seed = ctx.SeedOr(1);
        spec.protocol = protocol;
        spec.store = ftx::StoreKind::kDisk;
        spec.tweak_options = [seek_ms](ftx::ComputationOptions* computation_options) {
          computation_options->disk.average_seek = ftx::Milliseconds(seek_ms);
        };
        overheads[i++] = ftx::MeasureOverhead(spec, ctx.pool).overhead_percent;
      }
      ftx_bench::RowResult result;
      result.console =
          ftx_bench::Sprintf("%11lldms %11.1f%% %13.1f%%\n", static_cast<long long>(seek_ms),
                             overheads[0], overheads[1]);
      ftx_obs::Json row = ftx_obs::Json::Object();
      row.Set("sweep", "disk_seek");
      row.Set("seek_ms", seek_ms);
      row.Set("cpvs_overhead_pct", overheads[0]);
      row.Set("cbndvs_log_overhead_pct", overheads[1]);
      result.json.push_back(std::move(row));
      return result;
    });
  }

  suite.Text(
      "\nAcross the whole sweep the ordering never flips: commit-per-"
      "visible protocols\npay per keystroke while logging protocols "
      "pay per log record — Fig. 8's shape\nis a property of the "
      "protocols, not of one hardware calibration.\n");
  return suite.Run();
}
