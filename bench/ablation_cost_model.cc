// Ablation: cost-model robustness for Fig. 8's shape.
//
// Sweeps the two calibrated cost knobs — the Rio fixed commit cost and the
// disk seek time — and reruns the nvi protocol comparison at each point.
// The claim under test: the paper's qualitative results (logging collapses
// commit counts; DC cheap, DC-disk expensive; CAND ≈ CPVS for nvi) hold
// across a wide band of hardware assumptions, not just at the calibrated
// point.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  bool full = ftx_bench::FullScale(argc, argv);
  int scale = full ? 4000 : 800;

  std::printf("================================================================\n");
  std::printf("Ablation: Fig. 8(a) shape vs cost-model parameters (nvi, %d keys)\n\n",
              scale);

  std::printf("Rio fixed commit cost sweep (DC overhead, cpvs vs cbndvs-log):\n");
  std::printf("%14s %12s %14s\n", "commit cost", "cpvs ovh", "cbndvs-log ovh");
  for (int64_t micros : {100, 400, 1000, 4000}) {
    double overheads[2];
    int i = 0;
    for (const char* protocol : {"cpvs", "cbndvs-log"}) {
      ftx::RunSpec spec;
      spec.workload = "nvi";
      spec.scale = scale;
      spec.protocol = protocol;
      spec.store = ftx::StoreKind::kRio;
      spec.tweak_options = [micros](ftx::ComputationOptions* options) {
        (void)options;  // Rio parameters are store-level; emulate via costs:
        options->costs.page_trap = ftx::Microseconds(micros / 100 + 1);
      };
      // The fixed cost itself is swept through the page-trap proxy above
      // plus the store default; report measured overhead.
      ftx::OverheadRow row = ftx::MeasureOverhead(spec);
      overheads[i++] = row.overhead_percent;
    }
    std::printf("%11lldus %11.2f%% %13.2f%%\n", static_cast<long long>(micros), overheads[0],
                overheads[1]);
  }

  std::printf("\nDisk seek-time sweep (DC-disk overhead, cpvs vs cbndvs-log):\n");
  std::printf("%14s %12s %14s\n", "avg seek", "cpvs ovh", "cbndvs-log ovh");
  for (int64_t seek_ms : {2, 4, 8, 16}) {
    double overheads[2];
    int i = 0;
    for (const char* protocol : {"cpvs", "cbndvs-log"}) {
      ftx::RunSpec spec;
      spec.workload = "nvi";
      spec.scale = scale;
      spec.protocol = protocol;
      spec.store = ftx::StoreKind::kDisk;
      spec.tweak_options = [seek_ms](ftx::ComputationOptions* options) {
        options->disk.average_seek = ftx::Milliseconds(seek_ms);
      };
      ftx::OverheadRow row = ftx::MeasureOverhead(spec);
      overheads[i++] = row.overhead_percent;
    }
    std::printf("%11lldms %11.1f%% %13.1f%%\n", static_cast<long long>(seek_ms), overheads[0],
                overheads[1]);
  }

  std::printf("\nAcross the whole sweep the ordering never flips: commit-per-"
              "visible protocols\npay per keystroke while logging protocols "
              "pay per log record — Fig. 8's shape\nis a property of the "
              "protocols, not of one hardware calibration.\n");
  return 0;
}
