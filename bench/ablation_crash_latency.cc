// Ablation: crash-early consistency checks (§2.6).
//
// The paper recommends that applications "try to crash as soon as possible
// after their bugs get triggered" — frequent consistency checks shorten
// dangerous paths and lower the probability of committing on one. This
// bench sweeps the injector's slow-detection probability (the calibrated
// quantity; see DESIGN.md §5) for one fault class and shows how Table 1's
// violation fraction responds.

#include "bench/bench_util.h"
#include "src/apps/workloads.h"
#include "src/core/computation.h"
#include "src/core/fault_study.h"
#include "src/faults/injector.h"
#include "src/statemachine/invariants.h"

namespace {

ftx::FaultRunResult RunOneTrial(double slow_probability, uint64_t seed) {
  ftx_apps::WorkloadSetup setup =
      ftx_apps::MakeWorkload("postgres", 600, seed, /*interactive=*/false);
  ftx_fault::FaultSpec spec;
  spec.type = ftx_fault::FaultType::kHeapBitFlip;
  spec.activation_step = 150 + static_cast<int64_t>(seed % 250);
  spec.slow_detection_probability = slow_probability;
  spec.continue_probability = 0.6;
  spec.seed = seed * 31 + 7;
  auto faulty = std::make_unique<ftx_fault::FaultyApp>(std::move(setup.apps[0]), spec);
  ftx_fault::FaultyApp* faulty_raw = faulty.get();

  ftx::ComputationOptions options;
  options.seed = seed;
  options.protocol = "cpvs";
  options.max_recovery_attempts = 2;
  std::vector<std::unique_ptr<ftx_dc::App>> apps;
  apps.push_back(std::move(faulty));
  ftx::Computation computation(options, std::move(apps));
  computation.SetInputScript(0, setup.scripts[0]);
  computation.Run();

  ftx::FaultRunResult result;
  result.crashed = faulty_raw->outcome().crashed;
  if (result.crashed) {
    auto lose_work = ftx_sm::CheckLoseWorkOperational(computation.trace(), 0);
    result.violated_lose_work = lose_work.applicable && lose_work.violated;
  }
  return result;
}

double ViolationFraction(ftx::TrialPool* pool, double slow_probability, int target_crashes,
                         uint64_t seed_base) {
  std::vector<ftx::FaultRunResult> crashes = ftx::RunCrashingTrials(
      pool, target_crashes, seed_base, 40 * target_crashes,
      [slow_probability](uint64_t seed) { return RunOneTrial(slow_probability, seed); });
  int violations = 0;
  for (const ftx::FaultRunResult& result : crashes) {
    if (result.violated_lose_work) {
      ++violations;
    }
  }
  return crashes.empty() ? 0.0 : static_cast<double>(violations) / crashes.size();
}

}  // namespace

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int crashes =
      options.scale_override > 0 ? options.scale_override : (options.full_scale ? 50 : 25);

  ftx_bench::Suite suite("ablation_crash_latency", options);
  suite.SetMeta("crashes_per_point", crashes);
  suite.SetMeta("workload", "postgres");
  suite.SetMeta("protocol", "cpvs");

  suite.Text(ftx_bench::Sprintf(
      "================================================================\n"
      "Ablation: crash latency vs Lose-work violations (postgres, heap\n"
      "bit flips, CPVS, %d crashes per point)\n\n"
      "%22s %22s\n",
      crashes, "P(slow detection)", "Lose-work violations"));

  for (double p : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    suite.AddRow([p, crashes](ftx_bench::RowContext& ctx) {
      uint64_t seed_base = ctx.SeedOr(40000 + static_cast<uint64_t>(p * 1000));
      double fraction = ViolationFraction(ctx.pool, p, crashes, seed_base);
      ftx_bench::RowResult result;
      result.console = ftx_bench::Sprintf("%22.2f %21.0f%%\n", p, 100 * fraction);
      ftx_obs::Json row = ftx_obs::Json::Object();
      row.Set("slow_detection_probability", p);
      row.Set("violation_fraction", fraction);
      result.json.push_back(std::move(row));
      return result;
    });
  }

  suite.Text(
      "\nCrashing before the next commit (P(slow)=0) makes generic "
      "recovery always\npossible for this fault class; every added "
      "step of detection latency is\nanother commit window on the "
      "dangerous path — the quantitative form of the\npaper's "
      "crash-early advice.\n");
  return suite.Run();
}
