// Ablation: crash-early consistency checks (§2.6).
//
// The paper recommends that applications "try to crash as soon as possible
// after their bugs get triggered" — frequent consistency checks shorten
// dangerous paths and lower the probability of committing on one. This
// bench sweeps the injector's slow-detection probability (the calibrated
// quantity; see DESIGN.md §5) for one fault class and shows how Table 1's
// violation fraction responds.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/workloads.h"
#include "src/core/computation.h"
#include "src/faults/injector.h"
#include "src/statemachine/invariants.h"

namespace {

double ViolationFraction(double slow_probability, int target_crashes, uint64_t seed_base) {
  int crashes = 0;
  int violations = 0;
  uint64_t seed = seed_base;
  while (crashes < target_crashes && seed < seed_base + 40ull * target_crashes) {
    ftx_apps::WorkloadSetup setup =
        ftx_apps::MakeWorkload("postgres", 600, seed, /*interactive=*/false);
    ftx_fault::FaultSpec spec;
    spec.type = ftx_fault::FaultType::kHeapBitFlip;
    spec.activation_step = 150 + static_cast<int64_t>(seed % 250);
    spec.slow_detection_probability = slow_probability;
    spec.continue_probability = 0.6;
    spec.seed = seed * 31 + 7;
    auto faulty = std::make_unique<ftx_fault::FaultyApp>(std::move(setup.apps[0]), spec);
    ftx_fault::FaultyApp* faulty_raw = faulty.get();

    ftx::ComputationOptions options;
    options.seed = seed;
    options.protocol = "cpvs";
    options.max_recovery_attempts = 2;
    std::vector<std::unique_ptr<ftx_dc::App>> apps;
    apps.push_back(std::move(faulty));
    ftx::Computation computation(options, std::move(apps));
    computation.SetInputScript(0, setup.scripts[0]);
    computation.Run();
    ++seed;

    if (!faulty_raw->outcome().crashed) {
      continue;
    }
    ++crashes;
    auto lose_work = ftx_sm::CheckLoseWorkOperational(computation.trace(), 0);
    if (lose_work.applicable && lose_work.violated) {
      ++violations;
    }
  }
  return crashes == 0 ? 0.0 : static_cast<double>(violations) / crashes;
}

}  // namespace

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int crashes =
      options.scale_override > 0 ? options.scale_override : (options.full_scale ? 50 : 25);

  ftx_obs::ResultsFile results("ablation_crash_latency");
  results.SetFullScale(options.full_scale);
  results.SetMeta("crashes_per_point", crashes);
  results.SetMeta("workload", "postgres");
  results.SetMeta("protocol", "cpvs");

  std::printf("================================================================\n");
  std::printf("Ablation: crash latency vs Lose-work violations (postgres, heap\n");
  std::printf("bit flips, CPVS, %d crashes per point)\n\n", crashes);
  std::printf("%22s %22s\n", "P(slow detection)", "Lose-work violations");
  for (double p : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    double fraction = ViolationFraction(p, crashes, 40000 + static_cast<uint64_t>(p * 1000));
    std::printf("%22.2f %21.0f%%\n", p, 100 * fraction);
    ftx_obs::Json row = ftx_obs::Json::Object();
    row.Set("slow_detection_probability", p);
    row.Set("violation_fraction", fraction);
    results.AddRow(std::move(row));
  }
  std::printf("\nCrashing before the next commit (P(slow)=0) makes generic "
              "recovery always\npossible for this fault class; every added "
              "step of detection latency is\nanother commit window on the "
              "dangerous path — the quantitative form of the\npaper's "
              "crash-early advice.\n");
  return ftx_bench::FinishBench(results, options);
}
