// Ablation: Table 1 as a function of protocol choice.
//
// The paper runs its fault study under CPVS, "the best protocol possible
// for not violating Lose-work" among its commit-based protocols. This bench
// repeats the study under protocols from across the space: commit-heavy
// protocols put more commits inside dangerous windows; logging protocols
// commit so rarely that most propagation failures become survivable — the
// Fig. 4 propagation-survival trend, measured on the actual fault pipeline.

#include "bench/bench_util.h"
#include "src/core/fault_study.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int crashes =
      options.scale_override > 0 ? options.scale_override : (options.full_scale ? 50 : 25);

  ftx_bench::Suite suite("ablation_protocol_faults", options);
  suite.SetMeta("workload", "postgres");
  suite.SetMeta("crashes_per_type", crashes);

  suite.Text(ftx_bench::Sprintf(
      "================================================================\n"
      "Ablation: Lose-work violations by protocol (postgres, all fault\n"
      "types pooled, %d crashes per type per protocol)\n\n"
      "%-14s %22s\n",
      crashes, "protocol", "violation fraction"));

  for (const char* protocol : {"cand", "cpvs", "cbndvs", "cand-log", "cbndvs-log",
                               "optimistic-log", "hypervisor"}) {
    suite.AddRow([protocol, crashes](ftx_bench::RowContext& ctx) {
      uint64_t seed_base = ctx.SeedOr(80000);
      int total_crashes = 0;
      int violations = 0;
      for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
        std::vector<ftx::FaultRunResult> crashing = ftx::RunCrashingTrials(
            ctx.pool, crashes, seed_base + static_cast<uint64_t>(type) * 509, 40 * crashes,
            [protocol, type](uint64_t seed) {
              return ftx::RunApplicationFault("postgres", type, seed, protocol);
            });
        for (const ftx::FaultRunResult& result : crashing) {
          ++total_crashes;
          if (result.violated_lose_work) {
            ++violations;
          }
        }
      }
      double fraction =
          total_crashes > 0 ? static_cast<double>(violations) / total_crashes : 0.0;
      ftx_bench::RowResult result;
      result.console = ftx_bench::Sprintf("%-14s %21.0f%%\n", protocol, 100.0 * fraction);
      ftx_obs::Json row = ftx_obs::Json::Object();
      row.Set("protocol", protocol);
      row.Set("crashes", total_crashes);
      row.Set("violations", violations);
      row.Set("violation_fraction", fraction);
      result.json.push_back(std::move(row));
      return result;
    });
  }

  suite.Text(
      "\nEvery protocol above upholds Save-work; they differ only in how "
      "many commits\nland on dangerous paths. Hypervisor never commits "
      "after startup, so it never\nviolates Lose-work — the paper's "
      "observation that the farther from the\nhorizontal axis (and the "
      "more logging), the better the chances against\npropagation "
      "failures.\n");
  return suite.Run();
}
