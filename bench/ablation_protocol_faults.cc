// Ablation: Table 1 as a function of protocol choice.
//
// The paper runs its fault study under CPVS, "the best protocol possible
// for not violating Lose-work" among its commit-based protocols. This bench
// repeats the study under protocols from across the space: commit-heavy
// protocols put more commits inside dangerous windows; logging protocols
// commit so rarely that most propagation failures become survivable — the
// Fig. 4 propagation-survival trend, measured on the actual fault pipeline.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/fault_study.h"

int main(int argc, char** argv) {
  bool full = ftx_bench::FullScale(argc, argv);
  int crashes = full ? 50 : 25;

  std::printf("================================================================\n");
  std::printf("Ablation: Lose-work violations by protocol (postgres, all fault\n");
  std::printf("types pooled, %d crashes per type per protocol)\n\n", crashes);
  std::printf("%-14s %22s\n", "protocol", "violation fraction");

  for (const char* protocol : {"cand", "cpvs", "cbndvs", "cand-log", "cbndvs-log",
                               "optimistic-log", "hypervisor"}) {
    int total_crashes = 0;
    int violations = 0;
    for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
      uint64_t seed = 80000 + static_cast<uint64_t>(type) * 509;
      int type_crashes = 0;
      while (type_crashes < crashes && seed < 80000 + static_cast<uint64_t>(type) * 509 +
                                                  40ull * static_cast<uint64_t>(crashes)) {
        ftx::FaultRunResult result = ftx::RunApplicationFault("postgres", type, seed, protocol);
        ++seed;
        if (!result.crashed) {
          continue;
        }
        ++type_crashes;
        ++total_crashes;
        if (result.violated_lose_work) {
          ++violations;
        }
      }
    }
    std::printf("%-14s %21.0f%%\n", protocol,
                total_crashes > 0 ? 100.0 * violations / total_crashes : 0.0);
  }

  std::printf("\nEvery protocol above upholds Save-work; they differ only in how "
              "many commits\nland on dangerous paths. Hypervisor never commits "
              "after startup, so it never\nviolates Lose-work — the paper's "
              "observation that the farther from the\nhorizontal axis (and the "
              "more logging), the better the chances against\npropagation "
              "failures.\n");
  return 0;
}
