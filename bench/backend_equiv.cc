// Backend equivalence: the ftx::env seam acceptance driver.
//
// The same seeded event scripts run on both execution substrates — the
// discrete-event simulator through the env::sim adapters, and real
// std::threads through env::threads (channel transport, file-backed stable
// media, kill-flag crash injection) — and every row byte-compares the two
// canonical decision logs: protocol consultations, commits, coordinated 2PC
// rounds, and post-crash rollbacks, in global script order. The simulator is
// the oracle; the threads backend must reproduce its decision sequence
// exactly, with zero transport or durability mismatches on either side.
//
// Crash-free rows additionally cross-check the commit count against the
// pure-protocol ScriptReplay harness, tying the seam's executor back to the
// Save-work property tests' oracle. Crashing rows exercise the torn-commit
// window for real: a mid-commit kill drops unsynced bytes, recovery reads
// back the durable record count and re-delivers retained messages.
//
// --backend sim|threads runs a single substrate (no comparison) and reports
// its decision log stats; the default runs both. Exits nonzero if any row's
// logs differ or any run saw a transport/durability mismatch.

#include <atomic>
#include <string>
#include <vector>

#include "bench/suite.h"
#include "src/common/rng.h"
#include "src/env/script_runner.h"
#include "src/protocol/script_replay.h"
#include "src/statemachine/random_model.h"

namespace {

struct WorkloadProfile {
  const char* name;
  ftx_sm::RandomTraceOptions options;  // num_processes/events set at runtime
};

// Two communication shapes from opposite corners of the Fig. 8 suite:
// treadmarks-like (message-heavy DSM traffic, logged receives) and nvi-like
// (interactive, ND-heavy, almost no messages).
WorkloadProfile MakeProfile(const char* name) {
  WorkloadProfile profile;
  profile.name = name;
  if (std::string(name) == "treadmarks") {
    profile.options.nd_probability = 0.2;
    profile.options.fixed_nd_probability = 0.05;
    profile.options.send_probability = 0.35;
    profile.options.visible_probability = 0.1;
    profile.options.logged_fraction = 0.5;
  } else {  // nvi
    profile.options.nd_probability = 0.45;
    profile.options.fixed_nd_probability = 0.15;
    profile.options.send_probability = 0.08;
    profile.options.visible_probability = 0.2;
    profile.options.logged_fraction = 0.0;
  }
  return profile;
}

// First line index at which the two canonical logs disagree (-1 if equal,
// including length).
int64_t FirstMismatch(const ftx::env::DecisionLog& a, const ftx::env::DecisionLog& b) {
  size_t common = std::min(a.lines.size(), b.lines.size());
  for (size_t i = 0; i < common; ++i) {
    if (a.lines[i] != b.lines[i]) {
      return static_cast<int64_t>(i);
    }
  }
  if (a.lines.size() != b.lines.size()) {
    return static_cast<int64_t>(common);
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  const int events_per_process =
      options.scale_override > 0 ? options.scale_override : (options.full_scale ? 80 : 20);
  const int num_processes = 3;
  const std::string mode = options.backend.empty() ? "both" : options.backend;

  ftx_bench::Suite suite("backend_equiv", options);
  suite.SetMeta("mode", mode);
  suite.SetMeta("processes", num_processes);
  suite.SetMeta("events_per_process", events_per_process);

  suite.Text(ftx_bench::Sprintf(
      "================================================================\n"
      "Backend equivalence: env::sim oracle vs env::threads\n"
      "(%d processes, %d events/process, mode %s)\n\n"
      "%-12s %-10s %8s %6s %8s %9s %7s %11s %6s\n",
      num_processes, events_per_process, mode.c_str(), "workload", "protocol", "crashes",
      "batch", "commits", "rollbacks", "syncs", "decisions", "equal"));

  std::atomic<bool> all_ok{true};
  int row_number = 0;
  for (const char* workload : {"treadmarks", "nvi"}) {
    // cand (commit-after-ND) commits away from output events, so its batched
    // rows accumulate genuine multi-record windows between forced syncs —
    // the other two mostly commit right before a send/visible and produce
    // singleton windows.
    for (const char* protocol : {"cpvs", "cbndvs", "cand"}) {
      for (int crashes : {0, 3}) {
        // batch > 1 exercises the group-commit window path on both
        // substrates: staged unsynced records, forced syncs before
        // send/visible events, and crash-drop of the open window.
        for (int64_t batch : {INT64_C(1), INT64_C(8)}) {
        const int this_row = row_number++;
        suite.AddRow([&all_ok, workload, protocol, crashes, batch, events_per_process,
                      num_processes, mode, this_row](ftx_bench::RowContext& ctx) {
          WorkloadProfile profile = MakeProfile(workload);
          profile.options.num_processes = num_processes;
          profile.options.events_per_process = events_per_process;

          const uint64_t seed =
              ctx.SeedOr(41000) + static_cast<uint64_t>(this_row) * 7919;
          ftx::Rng rng(seed);
          std::vector<ftx_sm::ScriptedEvent> script =
              ftx_sm::MakeRandomScript(&rng, profile.options);
          if (crashes > 0) {
            script = ftx::env::InjectCrashes(std::move(script), crashes, seed ^ 0xc4a5,
                                             num_processes);
          }

          ftx::env::ScriptRunOptions run;
          run.num_processes = num_processes;
          run.protocol = protocol;
          run.sim_seed = seed;
          run.batch_records = batch;

          ftx::env::DecisionLog sim_log;
          ftx::env::DecisionLog threads_log;
          if (mode != "threads") {
            sim_log = ftx::env::RunScriptOnSim(script, run);
          }
          if (mode != "sim") {
            threads_log = ftx::env::RunScriptOnThreads(script, run);
          }
          const ftx::env::DecisionLog& primary = mode == "threads" ? threads_log : sim_log;

          bool equal = true;
          int64_t mismatch_index = -1;
          if (mode == "both") {
            mismatch_index = FirstMismatch(sim_log, threads_log);
            equal = mismatch_index < 0;
          }

          // Crash-free scripts must commit exactly as often as the
          // pure-protocol replay oracle says the protocol commits.
          bool replay_match = true;
          int64_t replay_commits = -1;
          if (crashes == 0) {
            ftx_proto::ScriptReplayResult replay =
                ftx_proto::ReplayScript(script, num_processes, protocol);
            replay_commits = replay.total_commits;
            replay_match = primary.commits == replay.total_commits;
          }

          const bool clean = primary.clean() &&
                             (mode != "both" || (sim_log.clean() && threads_log.clean()));
          const bool ok = equal && clean && replay_match;
          if (!ok) {
            all_ok.store(false);
          }

          ftx_bench::RowResult result;
          result.console = ftx_bench::Sprintf(
              "%-12s %-10s %8d %6lld %8lld %9lld %7lld %11zu %6s\n", workload, protocol, crashes,
              static_cast<long long>(batch), static_cast<long long>(primary.commits),
              static_cast<long long>(primary.rollbacks),
              static_cast<long long>(primary.window_syncs), primary.lines.size(),
              mode != "both" ? "n/a" : (equal ? "yes" : "NO"));

          ftx_obs::Json row = ftx_obs::Json::Object();
          row.Set("workload", workload);
          row.Set("protocol", protocol);
          row.Set("backend", mode);
          row.Set("processes", num_processes);
          row.Set("events", static_cast<int64_t>(script.size()));
          row.Set("crashes", crashes);
          row.Set("batch", batch);
          row.Set("commits", primary.commits);
          row.Set("window_syncs", primary.window_syncs);
          row.Set("rollbacks", primary.rollbacks);
          row.Set("coordinated_rounds", primary.coordinated_rounds);
          row.Set("logged_events", primary.logged_events);
          row.Set("decisions", static_cast<int64_t>(primary.lines.size()));
          row.Set("decision_crc", static_cast<int64_t>(primary.Crc()));
          row.Set("transport_mismatches",
                  sim_log.transport_mismatches + threads_log.transport_mismatches);
          row.Set("durable_mismatches",
                  sim_log.durable_mismatches + threads_log.durable_mismatches);
          row.Set("equal", equal);
          row.Set("mismatch_index", mismatch_index);
          row.Set("replay_commits", replay_commits);
          row.Set("ok", ok);
          result.json.push_back(std::move(row));
          result.values.push_back(ok ? 1.0 : 0.0);
          return result;
        });
        }
      }
    }
  }

  suite.Summarize([mode](const std::vector<ftx_bench::RowResult>& rows) {
    int failed = 0;
    for (const ftx_bench::RowResult& row : rows) {
      if (!row.values.empty() && row.values[0] == 0.0) {
        ++failed;
      }
    }
    if (failed > 0) {
      return ftx_bench::Sprintf("\n%d of %zu rows FAILED equivalence.\n", failed, rows.size());
    }
    return ftx_bench::Sprintf(
        "\nAll %zu rows clean%s: the threads backend reproduces the simulator's\n"
        "commit/rollback decision sequence byte-for-byte, crash injection included.\n",
        rows.size(), mode == "both" ? " and byte-equal" : "");
  });

  int rc = suite.Run();
  return rc != 0 ? rc : (all_ok.load() ? 0 : 1);
}
