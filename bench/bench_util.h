// Shared helpers for the paper-reproduction bench binaries.

#ifndef FTX_BENCH_BENCH_UTIL_H_
#define FTX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/apps/workloads.h"
#include "src/core/experiment.h"
#include "src/obs/results.h"

namespace ftx_bench {

// Common bench command line:
//   --full         paper-scale run (default is a fast small-scale run)
//   --scale N      explicit workload scale / trial count, overriding both
//   --json PATH    write machine-readable results (ftx.bench-results JSON)
//   --trace PATH   write a Chrome trace_event JSON of the recoverable run
//                  (benches that run several configurations keep the last
//                  traced run's file)
struct BenchOptions {
  bool full_scale = false;
  int scale_override = 0;
  std::string json_path;
  std::string trace_path;
};

inline BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool takes_value = arg == "--scale" || arg == "--json" || arg == "--trace";
    if (takes_value && i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      std::exit(2);
    }
    if (arg == "--full") {
      options.full_scale = true;
    } else if (arg == "--scale") {
      options.scale_override = std::atoi(argv[++i]);
    } else if (arg == "--json") {
      options.json_path = argv[++i];
    } else if (arg == "--trace") {
      options.trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: %s [--full] [--scale N] [--json PATH] [--trace PATH]\n",
                   arg.c_str(), argv[0]);
      std::exit(2);
    }
  }
  return options;
}

inline int ResolveScale(const std::string& workload, const BenchOptions& options) {
  return options.scale_override > 0 ? options.scale_override
                                    : ftx_apps::DefaultScale(workload, options.full_scale);
}

// Writes the results file when --json was given. Returns the process exit
// code so mains can `return FinishBench(results, options);`.
inline int FinishBench(const ftx_obs::ResultsFile& results, const BenchOptions& options) {
  if (options.json_path.empty()) {
    return 0;
  }
  ftx::Status status = results.WriteTo(options.json_path);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", options.json_path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu result rows to %s\n", results.num_rows(), options.json_path.c_str());
  return 0;
}

// Runs one Fig. 8 cell: workload × protocol × {rio, dc-disk}.
struct Fig8Cell {
  int64_t checkpoints = 0;
  double ckps_per_sec = 0.0;
  double rio_overhead_pct = 0.0;
  double disk_overhead_pct = 0.0;
  double rio_fps = 0.0;
  double disk_fps = 0.0;
  // Registry snapshots of the two recoverable runs.
  ftx_obs::MetricsSnapshot rio_metrics;
  ftx_obs::MetricsSnapshot disk_metrics;
};

inline Fig8Cell RunFig8Cell(const std::string& workload, const std::string& protocol, int scale,
                            uint64_t seed, const std::string& trace_path = "") {
  ftx::RunSpec spec;
  spec.workload = workload;
  spec.protocol = protocol;
  spec.scale = scale;
  spec.seed = seed;

  spec.store = ftx::StoreKind::kRio;
  spec.trace_path = trace_path;  // the recoverable run writes it (runs last)
  ftx::OverheadRow rio = ftx::MeasureOverhead(spec);
  spec.store = ftx::StoreKind::kDisk;
  spec.trace_path.clear();
  ftx::OverheadRow disk = ftx::MeasureOverhead(spec);

  Fig8Cell cell;
  cell.checkpoints = rio.checkpoints;
  cell.ckps_per_sec = rio.checkpoints_per_second;
  cell.rio_overhead_pct = rio.overhead_percent;
  cell.disk_overhead_pct = disk.overhead_percent;
  cell.rio_fps = rio.recoverable_fps;
  cell.disk_fps = disk.recoverable_fps;
  cell.rio_metrics = std::move(rio.recoverable_metrics);
  cell.disk_metrics = std::move(disk.recoverable_metrics);
  return cell;
}

// The Fig. 8 results row shared by all four workload benches.
inline ftx_obs::Json Fig8RowJson(const std::string& workload, const std::string& protocol,
                                 int scale, const Fig8Cell& cell) {
  ftx_obs::Json row = ftx_obs::Json::Object();
  row.Set("workload", workload);
  row.Set("protocol", protocol);
  row.Set("scale", scale);
  row.Set("checkpoints", cell.checkpoints);
  row.Set("checkpoints_per_second", cell.ckps_per_sec);
  row.Set("rio_overhead_pct", cell.rio_overhead_pct);
  row.Set("disk_overhead_pct", cell.disk_overhead_pct);
  row.Set("rio_fps", cell.rio_fps);
  row.Set("disk_fps", cell.disk_fps);
  return row;
}

inline void PrintFig8Header(const char* figure, const char* workload, int scale, bool fps_mode) {
  std::printf("================================================================\n");
  std::printf("%s: %s (scale=%d)\n", figure, workload, scale);
  std::printf("Fig. 8 reproduction: commit counts and overhead per protocol.\n");
  if (fps_mode) {
    std::printf("%-12s %10s %14s %14s\n", "protocol", "ckpts/s", "DC fps", "DC-disk fps");
  } else {
    std::printf("%-12s %10s %14s %14s\n", "protocol", "ckpts", "DC overhead", "DC-disk ovh");
  }
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace ftx_bench

#endif  // FTX_BENCH_BENCH_UTIL_H_
