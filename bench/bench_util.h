// Shared helpers for the paper-reproduction bench binaries, on top of the
// declarative suite in bench/suite.h (options, pool, rendering, JSON).

#ifndef FTX_BENCH_BENCH_UTIL_H_
#define FTX_BENCH_BENCH_UTIL_H_

#include <string>
#include <utility>

#include "bench/suite.h"
#include "src/apps/workloads.h"
#include "src/core/experiment.h"

namespace ftx_bench {

inline int ResolveScale(const std::string& workload, const BenchOptions& options) {
  return options.scale_override > 0 ? options.scale_override
                                    : ftx_apps::DefaultScale(workload, options.full_scale);
}

// Runs one Fig. 8 cell: workload × protocol × {rio, dc-disk}. The four
// underlying simulations (two baselines, two recoverable runs) fan out
// across `pool`; only the rio recoverable run writes `trace_path` and
// `timeseries_path`.
struct Fig8Cell {
  int64_t checkpoints = 0;
  double ckps_per_sec = 0.0;
  double rio_overhead_pct = 0.0;
  double disk_overhead_pct = 0.0;
  double rio_fps = 0.0;
  double disk_fps = 0.0;
  // Registry snapshots of the two recoverable runs.
  ftx_obs::MetricsSnapshot rio_metrics;
  ftx_obs::MetricsSnapshot disk_metrics;
  // --audit: the causal-audit reports of the two recoverable runs.
  bool audited = false;
  ftx_obs::Json rio_audit;
  ftx_obs::Json disk_audit;
};

inline Fig8Cell RunFig8Cell(const std::string& workload, const std::string& protocol, int scale,
                            uint64_t seed, ftx::TrialPool* pool,
                            const std::string& trace_path = "", bool audit = false,
                            int64_t batch = 0, const std::string& timeseries_path = "") {
  ftx::RunSpec spec;
  spec.workload = workload;
  spec.protocol = protocol;
  spec.scale = scale;
  spec.seed = seed;
  spec.audit = audit;
  if (batch > 1) {
    // --batch: recoverable runs stage commits through the group-commit
    // pipeline (whole windows persist under one sync pair on DC-disk).
    spec.tweak_options = [batch](ftx::ComputationOptions* o) {
      o->group_commit.enabled = true;
      o->group_commit.max_records = batch;
    };
  }

  spec.store = ftx::StoreKind::kRio;
  spec.trace_path = trace_path;  // only the recoverable rio run writes it
  spec.timeseries_path = timeseries_path;  // ditto for the telemetry JSONL
  ftx::OverheadRow rio = ftx::MeasureOverhead(spec, pool);
  spec.store = ftx::StoreKind::kDisk;
  spec.trace_path.clear();
  spec.timeseries_path.clear();
  ftx::OverheadRow disk = ftx::MeasureOverhead(spec, pool);

  Fig8Cell cell;
  cell.checkpoints = rio.checkpoints;
  cell.ckps_per_sec = rio.checkpoints_per_second;
  cell.rio_overhead_pct = rio.overhead_percent;
  cell.disk_overhead_pct = disk.overhead_percent;
  cell.rio_fps = rio.recoverable_fps;
  cell.disk_fps = disk.recoverable_fps;
  cell.rio_metrics = std::move(rio.recoverable_metrics);
  cell.disk_metrics = std::move(disk.recoverable_metrics);
  cell.audited = rio.audited && disk.audited;
  cell.rio_audit = std::move(rio.audit_report);
  cell.disk_audit = std::move(disk.audit_report);
  return cell;
}

// The Fig. 8 results row shared by all four workload benches, carrying the
// rio recoverable run's registry snapshot under "metrics".
inline ftx_obs::Json Fig8RowJson(const std::string& workload, const std::string& protocol,
                                 int scale, const Fig8Cell& cell, int64_t batch = 0) {
  ftx_obs::Json row = ftx_obs::Json::Object();
  row.Set("workload", workload);
  row.Set("protocol", protocol);
  row.Set("scale", scale);
  if (batch > 1) {
    // Only batched rows carry the field: unbatched goldens stay byte-stable.
    row.Set("batch", batch);
  }
  row.Set("checkpoints", cell.checkpoints);
  row.Set("checkpoints_per_second", cell.ckps_per_sec);
  row.Set("rio_overhead_pct", cell.rio_overhead_pct);
  row.Set("disk_overhead_pct", cell.disk_overhead_pct);
  row.Set("rio_fps", cell.rio_fps);
  row.Set("disk_fps", cell.disk_fps);
  row.Set("metrics", cell.rio_metrics.ToJson());
  if (cell.audited) {
    // Causal-audit reports of the two recoverable runs (the gate:
    // audit.violations == 0; scripts/check_bench_json.py enforces it).
    row.Set("audit", cell.rio_audit);
    row.Set("audit_disk", cell.disk_audit);
  }
  return row;
}

inline std::string Fig8Header(const char* figure, const char* workload, int scale,
                              bool fps_mode) {
  std::string text;
  text += "================================================================\n";
  text += Sprintf("%s: %s (scale=%d)\n", figure, workload, scale);
  text += "Fig. 8 reproduction: commit counts and overhead per protocol.\n";
  if (fps_mode) {
    text += Sprintf("%-12s %10s %14s %14s\n", "protocol", "ckpts/s", "DC fps", "DC-disk fps");
  } else {
    text += Sprintf("%-12s %10s %14s %14s\n", "protocol", "ckpts", "DC overhead", "DC-disk ovh");
  }
  text += "----------------------------------------------------------------\n";
  return text;
}

// One Fig. 8 protocol row for the suite: runs the cell and renders the
// standard console line and JSON row. `seed` is the bench's built-in seed
// (--seed still overrides through the context).
inline void AddFig8Row(Suite& suite, const std::string& workload, const std::string& protocol,
                       int scale, uint64_t seed, bool fps_mode) {
  suite.AddRow([workload, protocol, scale, seed, fps_mode](RowContext& ctx) {
    const int64_t batch = ctx.options->batch;
    Fig8Cell cell = RunFig8Cell(workload, protocol, scale, ctx.SeedOr(seed), ctx.pool,
                                ctx.trace_path, ctx.options->audit, batch, ctx.timeseries_path);
    RowResult result;
    if (fps_mode) {
      result.console = Sprintf("%-12s %10.0f %11.1f fps %11.1f fps\n", protocol.c_str(),
                               cell.ckps_per_sec, cell.rio_fps, cell.disk_fps);
    } else {
      result.console = Sprintf("%-12s %10lld %13.1f%% %13.1f%%\n", protocol.c_str(),
                               static_cast<long long>(cell.checkpoints), cell.rio_overhead_pct,
                               cell.disk_overhead_pct);
    }
    result.json.push_back(Fig8RowJson(workload, protocol, scale, cell, batch));
    return result;
  });
}

}  // namespace ftx_bench

#endif  // FTX_BENCH_BENCH_UTIL_H_
