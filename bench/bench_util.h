// Shared helpers for the paper-reproduction bench binaries.

#ifndef FTX_BENCH_BENCH_UTIL_H_
#define FTX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/apps/workloads.h"
#include "src/core/experiment.h"

namespace ftx_bench {

// Parses "--full" (paper-scale runs) from argv.
inline bool FullScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") {
      return true;
    }
  }
  return false;
}

// Runs one Fig. 8 cell: workload × protocol × {rio, dc-disk}.
struct Fig8Cell {
  int64_t checkpoints = 0;
  double ckps_per_sec = 0.0;
  double rio_overhead_pct = 0.0;
  double disk_overhead_pct = 0.0;
  double rio_fps = 0.0;
  double disk_fps = 0.0;
};

inline Fig8Cell RunFig8Cell(const std::string& workload, const std::string& protocol, int scale,
                            uint64_t seed) {
  ftx::RunSpec spec;
  spec.workload = workload;
  spec.protocol = protocol;
  spec.scale = scale;
  spec.seed = seed;

  spec.store = ftx::StoreKind::kRio;
  ftx::OverheadRow rio = ftx::MeasureOverhead(spec);
  spec.store = ftx::StoreKind::kDisk;
  ftx::OverheadRow disk = ftx::MeasureOverhead(spec);

  Fig8Cell cell;
  cell.checkpoints = rio.checkpoints;
  cell.ckps_per_sec = rio.checkpoints_per_second;
  cell.rio_overhead_pct = rio.overhead_percent;
  cell.disk_overhead_pct = disk.overhead_percent;
  cell.rio_fps = rio.recoverable_fps;
  cell.disk_fps = disk.recoverable_fps;
  return cell;
}

inline void PrintFig8Header(const char* figure, const char* workload, int scale, bool fps_mode) {
  std::printf("================================================================\n");
  std::printf("%s: %s (scale=%d)\n", figure, workload, scale);
  std::printf("Fig. 8 reproduction: commit counts and overhead per protocol.\n");
  if (fps_mode) {
    std::printf("%-12s %10s %14s %14s\n", "protocol", "ckpts/s", "DC fps", "DC-disk fps");
  } else {
    std::printf("%-12s %10s %14s %14s\n", "protocol", "ckpts", "DC overhead", "DC-disk ovh");
  }
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace ftx_bench

#endif  // FTX_BENCH_BENCH_UTIL_H_
