// Figures 3 and 4: the protocol space.
//
// Plots every protocol's position on the two axes (effort to
// identify/convert non-determinism vs effort to commit only visible
// events), prints the Fig. 4 design-variable trends derived from each
// position, and then validates the space empirically: the same reference
// workload is run under every implemented protocol and the measured commit
// frequency must fall with radial distance from the origin — the paper's
// headline observation about the space.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/protocol/protocol_space.h"
#include "src/protocol/script_replay.h"
#include "src/statemachine/optimal_commits.h"
#include "src/statemachine/random_model.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);

  ftx_obs::ResultsFile results("fig3_protocol_space");
  results.SetFullScale(options.full_scale);

  std::printf("%s\n", ftx_proto::RenderProtocolSpaceAscii().c_str());

  std::printf("Fig. 4 design variables by position:\n");
  std::printf("%-26s %6s %6s %12s %10s %10s\n", "protocol", "x", "y", "commit-freq",
              "recov-cost", "prop-surv");
  std::printf("--------------------------------------------------------------------------\n");
  for (const auto& entry : ftx_proto::ProtocolSpaceEntries()) {
    auto vars = ftx_proto::DeriveDesignVariables(entry.point);
    std::printf("%-26s %6.2f %6.2f %12.2f %10.2f %10.2f%s\n", entry.name.c_str(),
                entry.point.nd_effort, entry.point.visible_effort,
                vars.relative_commit_frequency, vars.recovery_constraint,
                vars.propagation_survival, entry.implemented ? "" : "   (literature)");
    ftx_obs::Json json_row = ftx_obs::Json::Object();
    json_row.Set("section", "design_variables");
    json_row.Set("protocol", entry.name);
    json_row.Set("nd_effort", entry.point.nd_effort);
    json_row.Set("visible_effort", entry.point.visible_effort);
    json_row.Set("commit_frequency", vars.relative_commit_frequency);
    json_row.Set("recovery_constraint", vars.recovery_constraint);
    json_row.Set("propagation_survival", vars.propagation_survival);
    json_row.Set("implemented", entry.implemented);
    results.AddRow(std::move(json_row));
  }

  // Empirical check on the reference workload (magic: has every event
  // class). The 2PC/coordinated points degrade to local commits on a
  // single-process workload, which is itself instructive.
  std::printf("\nMeasured commits on the magic workload (radial distance should "
              "reduce commits):\n");
  std::printf("%-18s %8s %10s\n", "protocol", "radius", "ckpts");
  struct Row {
    std::string name;
    double radius;
    int64_t checkpoints;
  };
  std::vector<Row> rows;
  for (const auto& entry : ftx_proto::ProtocolSpaceEntries()) {
    if (!entry.implemented) {
      continue;
    }
    ftx::RunSpec spec;
    spec.workload = "magic";
    spec.scale = 60;
    spec.seed = 7;
    spec.protocol = entry.name;
    ftx::RunOutput out = ftx::RunExperiment(spec);
    double radius = std::sqrt(entry.point.nd_effort * entry.point.nd_effort +
                              entry.point.visible_effort * entry.point.visible_effort);
    rows.push_back({entry.name, radius, out.checkpoints});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.radius < b.radius;
  });
  for (const Row& row : rows) {
    std::printf("%-18s %8.2f %10lld\n", row.name.c_str(), row.radius,
                static_cast<long long>(row.checkpoints));
    ftx_obs::Json json_row = ftx_obs::Json::Object();
    json_row.Set("section", "measured_commits");
    json_row.Set("workload", "magic");
    json_row.Set("protocol", row.name);
    json_row.Set("radius", row.radius);
    json_row.Set("checkpoints", row.checkpoints);
    results.AddRow(std::move(json_row));
  }

  // Fig. 4's third trend, measured: recovery time (the run-time expansion a
  // mid-run failure causes) grows with distance along the non-determinism
  // axis, because further-out protocols roll back further and replay more.
  std::printf("\nMeasured failure expansion (postgres, one stop failure at "
              "t=120ms):\n");
  std::printf("%-18s %8s %16s\n", "protocol", "x", "replay cost");
  for (const char* name : {"cpvs", "cbndvs", "cand", "sbl", "cand-log", "targon32",
                           "optimistic-log", "hypervisor"}) {
    ftx::RunSpec spec;
    spec.workload = "postgres";
    spec.scale = 400;
    spec.seed = 9;
    spec.protocol = name;

    ftx::RunOutput clean = ftx::RunExperiment(spec);
    auto computation = ftx::BuildComputation(spec);
    computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(120),
                                     ftx::Milliseconds(1));
    auto failed = computation->Run();
    ftx::Duration expansion = (failed.end_time - ftx::TimePoint()) - clean.elapsed;
    double x = 0;
    for (const auto& entry : ftx_proto::ProtocolSpaceEntries()) {
      if (entry.name == name) {
        x = entry.point.nd_effort;
      }
    }
    std::printf("%-18s %8.2f %16s\n", name, x, expansion.ToString().c_str());
    ftx_obs::Json json_row = ftx_obs::Json::Object();
    json_row.Set("section", "failure_expansion");
    json_row.Set("workload", "postgres");
    json_row.Set("protocol", name);
    json_row.Set("nd_effort", x);
    json_row.Set("expansion_ns", expansion.nanos());
    results.AddRow(std::move(json_row));
  }
  std::printf("\nHypervisor never commits: one failure replays the entire "
              "history. CPVS\nreplays at most one event. Fig. 4's "
              "recovery-time axis, measured.\n");

  // The floor of the protocol space: with hindsight, how few commits would
  // Save-work have needed? Averaged over random 3-process computations.
  std::printf("\nOnline protocols vs the offline (hindsight) floor, averaged "
              "over 20 random\n3-process computations of 120 events:\n");
  std::printf("%-18s %14s\n", "protocol", "avg commits");
  const int kTrials = 20;
  std::vector<std::vector<ftx_sm::ScriptedEvent>> scripts;
  double floor_sum = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    ftx::Rng rng(1000 + static_cast<uint64_t>(trial));
    ftx_sm::RandomTraceOptions options;
    options.num_processes = 3;
    options.events_per_process = 40;
    scripts.push_back(ftx_sm::MakeRandomScript(&rng, options));
    ftx_sm::Trace raw(options.num_processes);
    for (const auto& ev : scripts.back()) {
      raw.Append(ev.process, ev.kind, ev.message_id, ev.logged);
    }
    floor_sum += static_cast<double>(ftx_sm::ComputeOfflineCommits(raw).total_commits);
  }
  for (const char* name : {"commit-all", "cand", "cpvs", "cbndvs", "cand-log", "cbndvs-log",
                           "cpv-2pc", "cbndv-2pc", "coordinated-ckpt"}) {
    double sum = 0;
    for (const auto& script : scripts) {
      sum += static_cast<double>(ftx_proto::ReplayScript(script, 3, name).total_commits);
    }
    std::printf("%-18s %14.1f\n", name, sum / kTrials);
    ftx_obs::Json json_row = ftx_obs::Json::Object();
    json_row.Set("section", "offline_floor");
    json_row.Set("protocol", name);
    json_row.Set("avg_commits", sum / kTrials);
    results.AddRow(std::move(json_row));
  }
  {
    ftx_obs::Json json_row = ftx_obs::Json::Object();
    json_row.Set("section", "offline_floor");
    json_row.Set("protocol", "offline-floor");
    json_row.Set("avg_commits", floor_sum / kTrials);
    results.AddRow(std::move(json_row));
  }
  std::printf("%-18s %14.1f   <- floor for commit-ONLY strategies\n", "offline floor",
              floor_sum / kTrials);
  std::printf("\nThe -log protocols dip below the commit floor because logging is "
              "an escape\nhatch the floor does not use: rendering ND events "
              "deterministic removes the\nSave-work obligation instead of paying "
              "it — the x axis of the space in one row.\n");
  return ftx_bench::FinishBench(results, options);
}
