// Figures 3 and 4: the protocol space.
//
// Plots every protocol's position on the two axes (effort to
// identify/convert non-determinism vs effort to commit only visible
// events), prints the Fig. 4 design-variable trends derived from each
// position, and then validates the space empirically: the same reference
// workload is run under every implemented protocol and the measured commit
// frequency must fall with radial distance from the origin — the paper's
// headline observation about the space.

#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/protocol/protocol_space.h"
#include "src/protocol/script_replay.h"
#include "src/statemachine/optimal_commits.h"
#include "src/statemachine/random_model.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);

  ftx_bench::Suite suite("fig3_protocol_space", options);

  suite.Text(ftx_bench::Sprintf("%s\n", ftx_proto::RenderProtocolSpaceAscii().c_str()));

  suite.Text(ftx_bench::Sprintf(
      "Fig. 4 design variables by position:\n"
      "%-26s %6s %6s %12s %10s %10s\n"
      "--------------------------------------------------------------------------\n",
      "protocol", "x", "y", "commit-freq", "recov-cost", "prop-surv"));
  for (const auto& entry : ftx_proto::ProtocolSpaceEntries()) {
    suite.AddRow([entry](ftx_bench::RowContext&) {
      auto vars = ftx_proto::DeriveDesignVariables(entry.point);
      ftx_bench::RowResult result;
      result.console = ftx_bench::Sprintf(
          "%-26s %6.2f %6.2f %12.2f %10.2f %10.2f%s\n", entry.name.c_str(),
          entry.point.nd_effort, entry.point.visible_effort, vars.relative_commit_frequency,
          vars.recovery_constraint, vars.propagation_survival,
          entry.implemented ? "" : "   (literature)");
      ftx_obs::Json json_row = ftx_obs::Json::Object();
      json_row.Set("section", "design_variables");
      json_row.Set("protocol", entry.name);
      json_row.Set("nd_effort", entry.point.nd_effort);
      json_row.Set("visible_effort", entry.point.visible_effort);
      json_row.Set("commit_frequency", vars.relative_commit_frequency);
      json_row.Set("recovery_constraint", vars.recovery_constraint);
      json_row.Set("propagation_survival", vars.propagation_survival);
      json_row.Set("implemented", entry.implemented);
      result.json.push_back(std::move(json_row));
      return result;
    });
  }

  // Empirical check on the reference workload (magic: has every event
  // class). The 2PC/coordinated points degrade to local commits on a
  // single-process workload, which is itself instructive. Radius is a
  // static property of each entry, so the rows are declared (and therefore
  // rendered) in radial order.
  suite.Text(ftx_bench::Sprintf(
      "\nMeasured commits on the magic workload (radial distance should "
      "reduce commits):\n"
      "%-18s %8s %10s\n",
      "protocol", "radius", "ckpts"));
  std::vector<ftx_proto::ProtocolSpaceEntry> implemented;
  for (const auto& entry : ftx_proto::ProtocolSpaceEntries()) {
    if (entry.implemented) {
      implemented.push_back(entry);
    }
  }
  auto radius_of = [](const ftx_proto::ProtocolSpaceEntry& entry) {
    return std::sqrt(entry.point.nd_effort * entry.point.nd_effort +
                     entry.point.visible_effort * entry.point.visible_effort);
  };
  std::sort(implemented.begin(), implemented.end(),
            [&radius_of](const auto& a, const auto& b) { return radius_of(a) < radius_of(b); });
  for (const auto& entry : implemented) {
    double radius = radius_of(entry);
    suite.AddRow([entry, radius](ftx_bench::RowContext& ctx) {
      ftx::RunSpec spec;
      spec.workload = "magic";
      spec.scale = 60;
      spec.seed = ctx.SeedOr(7);
      spec.protocol = entry.name;
      ftx::RunOutput out = ftx::RunExperiment(spec);
      ftx_bench::RowResult result;
      result.console = ftx_bench::Sprintf("%-18s %8.2f %10lld\n", entry.name.c_str(), radius,
                                          static_cast<long long>(out.checkpoints));
      ftx_obs::Json json_row = ftx_obs::Json::Object();
      json_row.Set("section", "measured_commits");
      json_row.Set("workload", "magic");
      json_row.Set("protocol", entry.name);
      json_row.Set("radius", radius);
      json_row.Set("checkpoints", out.checkpoints);
      result.json.push_back(std::move(json_row));
      return result;
    });
  }

  // Fig. 4's third trend, measured: recovery time (the run-time expansion a
  // mid-run failure causes) grows with distance along the non-determinism
  // axis, because further-out protocols roll back further and replay more.
  suite.Text(ftx_bench::Sprintf(
      "\nMeasured failure expansion (postgres, one stop failure at "
      "t=120ms):\n"
      "%-18s %8s %16s\n",
      "protocol", "x", "replay cost"));
  for (const char* name : {"cpvs", "cbndvs", "cand", "sbl", "cand-log", "targon32",
                           "optimistic-log", "hypervisor"}) {
    suite.AddRow([name](ftx_bench::RowContext& ctx) {
      ftx::RunSpec spec;
      spec.workload = "postgres";
      spec.scale = 400;
      spec.seed = ctx.SeedOr(9);
      spec.protocol = name;

      ftx::RunOutput clean = ftx::RunExperiment(spec);
      auto computation = ftx::BuildComputation(spec);
      computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(120),
                                       ftx::Milliseconds(1));
      auto failed = computation->Run();
      ftx::Duration expansion = (failed.end_time - ftx::TimePoint()) - clean.elapsed;
      double x = 0;
      for (const auto& entry : ftx_proto::ProtocolSpaceEntries()) {
        if (entry.name == name) {
          x = entry.point.nd_effort;
        }
      }
      ftx_bench::RowResult result;
      result.console =
          ftx_bench::Sprintf("%-18s %8.2f %16s\n", name, x, expansion.ToString().c_str());
      ftx_obs::Json json_row = ftx_obs::Json::Object();
      json_row.Set("section", "failure_expansion");
      json_row.Set("workload", "postgres");
      json_row.Set("protocol", name);
      json_row.Set("nd_effort", x);
      json_row.Set("expansion_ns", expansion.nanos());
      result.json.push_back(std::move(json_row));
      return result;
    });
  }
  suite.Text(
      "\nHypervisor never commits: one failure replays the entire "
      "history. CPVS\nreplays at most one event. Fig. 4's "
      "recovery-time axis, measured.\n");

  // The floor of the protocol space: with hindsight, how few commits would
  // Save-work have needed? Averaged over random 3-process computations.
  // The shared scripts are built once here and read (never written) by the
  // replay rows below.
  suite.Text(ftx_bench::Sprintf(
      "\nOnline protocols vs the offline (hindsight) floor, averaged "
      "over 20 random\n3-process computations of 120 events:\n"
      "%-18s %14s\n",
      "protocol", "avg commits"));
  const int kTrials = 20;
  static std::vector<std::vector<ftx_sm::ScriptedEvent>> scripts;
  double floor_sum = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    ftx::Rng rng(1000 + static_cast<uint64_t>(trial));
    ftx_sm::RandomTraceOptions trace_options;
    trace_options.num_processes = 3;
    trace_options.events_per_process = 40;
    scripts.push_back(ftx_sm::MakeRandomScript(&rng, trace_options));
    ftx_sm::Trace raw(trace_options.num_processes);
    for (const auto& ev : scripts.back()) {
      raw.Append(ev.process, ev.kind, ev.message_id, ev.logged);
    }
    floor_sum += static_cast<double>(ftx_sm::ComputeOfflineCommits(raw).total_commits);
  }
  for (const char* name : {"commit-all", "cand", "cpvs", "cbndvs", "cand-log", "cbndvs-log",
                           "cpv-2pc", "cbndv-2pc", "coordinated-ckpt"}) {
    suite.AddRow([name](ftx_bench::RowContext&) {
      double sum = 0;
      for (const auto& script : scripts) {
        sum += static_cast<double>(ftx_proto::ReplayScript(script, 3, name).total_commits);
      }
      ftx_bench::RowResult result;
      result.console = ftx_bench::Sprintf("%-18s %14.1f\n", name, sum / kTrials);
      ftx_obs::Json json_row = ftx_obs::Json::Object();
      json_row.Set("section", "offline_floor");
      json_row.Set("protocol", name);
      json_row.Set("avg_commits", sum / kTrials);
      result.json.push_back(std::move(json_row));
      return result;
    });
  }
  suite.AddRow([floor_sum](ftx_bench::RowContext&) {
    ftx_bench::RowResult result;
    result.console = ftx_bench::Sprintf("%-18s %14.1f   <- floor for commit-ONLY strategies\n",
                                        "offline floor", floor_sum / kTrials);
    ftx_obs::Json json_row = ftx_obs::Json::Object();
    json_row.Set("section", "offline_floor");
    json_row.Set("protocol", "offline-floor");
    json_row.Set("avg_commits", floor_sum / kTrials);
    result.json.push_back(std::move(json_row));
    return result;
  });
  suite.Text(
      "\nThe -log protocols dip below the commit floor because logging is "
      "an escape\nhatch the floor does not use: rendering ND events "
      "deterministic removes the\nSave-work obligation instead of paying "
      "it — the x axis of the space in one row.\n");
  return suite.Run();
}
