// Figure 7 (plus Figures 5 and 6): dangerous-path statistics.
//
// Runs the single-process coloring algorithm over ensembles of random state
// machines and reports how much of each machine becomes dangerous as the
// crash density, fixed-ND fraction, and branching vary. The paper's §2.6
// recommendations fall out of the numbers: more transient non-determinism
// and earlier crashes both shrink dangerous paths.

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/statemachine/dangerous_paths.h"
#include "src/statemachine/random_model.h"

namespace {

struct TrialCount {
  int64_t colored = 0;
  int64_t total = 0;
};

double DangerousFraction(ftx::TrialPool* pool, const ftx_sm::RandomGraphOptions& options,
                         int trials, uint64_t seed_base) {
  std::vector<TrialCount> counts =
      ftx::RunSharded(*pool, trials, seed_base, [&options](int64_t, uint64_t seed) {
        ftx::Rng rng(seed);
        ftx_sm::StateMachineGraph graph = ftx_sm::MakeRandomGraph(&rng, options);
        ftx_sm::DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
        return TrialCount{result.num_colored, graph.num_edges()};
      });
  int64_t colored = 0;
  int64_t total = 0;
  for (const TrialCount& count : counts) {
    colored += count.colored;
    total += count.total;
  }
  return total == 0 ? 0.0 : static_cast<double>(colored) / static_cast<double>(total);
}

void AddSweepRow(ftx_bench::Suite& suite, const ftx_sm::RandomGraphOptions& graph_options,
                 int trials, uint64_t seed_base, const char* sweep, const char* field,
                 double value) {
  suite.AddRow(
      [graph_options, trials, seed_base, sweep, field, value](ftx_bench::RowContext& ctx) {
        double fraction =
            DangerousFraction(ctx.pool, graph_options, trials, ctx.SeedOr(seed_base));
        ftx_bench::RowResult result;
        result.console = ftx_bench::Sprintf("%12.2f %21.1f%%\n", value, 100 * fraction);
        ftx_obs::Json row = ftx_obs::Json::Object();
        row.Set("sweep", sweep);
        row.Set(field, value);
        row.Set("dangerous_fraction", fraction);
        result.json.push_back(std::move(row));
        return result;
      });
}

}  // namespace

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  const int trials =
      options.scale_override > 0 ? options.scale_override : (options.full_scale ? 400 : 100);

  ftx_bench::Suite suite("fig7_dangerous_paths", options);
  suite.SetMeta("trials_per_cell", trials);
  suite.SetMeta("num_states", 64);

  suite.Text(ftx_bench::Sprintf(
      "================================================================\n"
      "Fig. 7: dangerous-path coverage on random state machines\n"
      "(%d machines of 64 states per cell)\n\n",
      trials));

  ftx_sm::RandomGraphOptions base;
  base.num_states = 64;

  suite.Text(ftx_bench::Sprintf("Crash density sweep (branch=0.3, fixed-ND fraction=0.3):\n"
                                "%12s %22s\n",
                                "P(crash)", "dangerous fraction"));
  for (double crash : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    ftx_sm::RandomGraphOptions graph_options = base;
    graph_options.crash_probability = crash;
    AddSweepRow(suite, graph_options, trials, 1000, "crash_density", "crash_probability", crash);
  }

  suite.Text(ftx_bench::Sprintf("\nFixed-ND fraction sweep (crash=0.1): fixed non-determinism "
                                "cannot protect,\nso dangerous paths grow with it:\n"
                                "%12s %22s\n",
                                "P(fixed)", "dangerous fraction"));
  for (double fixed : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    ftx_sm::RandomGraphOptions graph_options = base;
    graph_options.fixed_nd_fraction = fixed;
    AddSweepRow(suite, graph_options, trials, 2000, "fixed_nd_fraction", "fixed_nd_fraction",
                fixed);
  }

  suite.Text(ftx_bench::Sprintf("\nBranching sweep (crash=0.1): more transient choice points "
                                "mean more escape\nhatches, so dangerous paths shrink:\n"
                                "%12s %22s\n",
                                "P(branch)", "dangerous fraction"));
  for (double branch : {0.05, 0.15, 0.3, 0.5, 0.8}) {
    ftx_sm::RandomGraphOptions graph_options = base;
    graph_options.branch_probability = branch;
    graph_options.fixed_nd_fraction = 0.0;
    AddSweepRow(suite, graph_options, trials, 3000, "branching", "branch_probability", branch);
  }

  suite.Text(
      "\nSection 2.6 in numbers: applications that crash sooner (higher "
      "crash density\ncloser to the fault) and keep more transient "
      "non-determinism leave fewer\nstates where a commit violates "
      "Lose-work.\n");
  return suite.Run();
}
