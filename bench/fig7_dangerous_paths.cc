// Figure 7 (plus Figures 5 and 6): dangerous-path statistics.
//
// Runs the single-process coloring algorithm over ensembles of random state
// machines and reports how much of each machine becomes dangerous as the
// crash density, fixed-ND fraction, and branching vary. The paper's §2.6
// recommendations fall out of the numbers: more transient non-determinism
// and earlier crashes both shrink dangerous paths.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/statemachine/dangerous_paths.h"
#include "src/statemachine/random_model.h"

namespace {

double DangerousFraction(const ftx_sm::RandomGraphOptions& options, int trials,
                         uint64_t seed_base) {
  int64_t colored = 0;
  int64_t total = 0;
  for (int trial = 0; trial < trials; ++trial) {
    ftx::Rng rng(seed_base + static_cast<uint64_t>(trial));
    ftx_sm::StateMachineGraph graph = ftx_sm::MakeRandomGraph(&rng, options);
    ftx_sm::DangerousPathsResult result = ftx_sm::ColorDangerousPaths(graph);
    colored += result.num_colored;
    total += graph.num_edges();
  }
  return total == 0 ? 0.0 : static_cast<double>(colored) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  const int trials =
      options.scale_override > 0 ? options.scale_override : (options.full_scale ? 400 : 100);

  ftx_obs::ResultsFile results("fig7_dangerous_paths");
  results.SetFullScale(options.full_scale);
  results.SetMeta("trials_per_cell", trials);
  results.SetMeta("num_states", 64);

  std::printf("================================================================\n");
  std::printf("Fig. 7: dangerous-path coverage on random state machines\n");
  std::printf("(%d machines of 64 states per cell)\n\n", trials);

  ftx_sm::RandomGraphOptions base;
  base.num_states = 64;

  std::printf("Crash density sweep (branch=0.3, fixed-ND fraction=0.3):\n");
  std::printf("%12s %22s\n", "P(crash)", "dangerous fraction");
  for (double crash : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    ftx_sm::RandomGraphOptions graph_options = base;
    graph_options.crash_probability = crash;
    double fraction = DangerousFraction(graph_options, trials, 1000);
    std::printf("%12.2f %21.1f%%\n", crash, 100 * fraction);
    ftx_obs::Json row = ftx_obs::Json::Object();
    row.Set("sweep", "crash_density");
    row.Set("crash_probability", crash);
    row.Set("dangerous_fraction", fraction);
    results.AddRow(std::move(row));
  }

  std::printf("\nFixed-ND fraction sweep (crash=0.1): fixed non-determinism "
              "cannot protect,\nso dangerous paths grow with it:\n");
  std::printf("%12s %22s\n", "P(fixed)", "dangerous fraction");
  for (double fixed : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    ftx_sm::RandomGraphOptions graph_options = base;
    graph_options.fixed_nd_fraction = fixed;
    double fraction = DangerousFraction(graph_options, trials, 2000);
    std::printf("%12.2f %21.1f%%\n", fixed, 100 * fraction);
    ftx_obs::Json row = ftx_obs::Json::Object();
    row.Set("sweep", "fixed_nd_fraction");
    row.Set("fixed_nd_fraction", fixed);
    row.Set("dangerous_fraction", fraction);
    results.AddRow(std::move(row));
  }

  std::printf("\nBranching sweep (crash=0.1): more transient choice points "
              "mean more escape\nhatches, so dangerous paths shrink:\n");
  std::printf("%12s %22s\n", "P(branch)", "dangerous fraction");
  for (double branch : {0.05, 0.15, 0.3, 0.5, 0.8}) {
    ftx_sm::RandomGraphOptions graph_options = base;
    graph_options.branch_probability = branch;
    graph_options.fixed_nd_fraction = 0.0;
    double fraction = DangerousFraction(graph_options, trials, 3000);
    std::printf("%12.2f %21.1f%%\n", branch, 100 * fraction);
    ftx_obs::Json row = ftx_obs::Json::Object();
    row.Set("sweep", "branching");
    row.Set("branch_probability", branch);
    row.Set("dangerous_fraction", fraction);
    results.AddRow(std::move(row));
  }

  std::printf("\nSection 2.6 in numbers: applications that crash sooner (higher "
              "crash density\ncloser to the fault) and keep more transient "
              "non-determinism leave fewer\nstates where a commit violates "
              "Lose-work.\n");
  return ftx_bench::FinishBench(results, options);
}
