// Fig. 8(b): magic under five Save-work protocols.
//
// Paper reference points (~190 commands at 1 s intervals):
//   cand        903 ckpts   DC 2%   DC-disk 89%
//   cand-log    432 ckpts   DC 2%   DC-disk 71%
//   cpvs        190 ckpts   DC 2%   DC-disk 28%
//   cbndvs      185 ckpts   DC 2%   DC-disk 27%
//   cbndvs-log  185 ckpts   DC 2%   DC-disk 31%
// Expected shape: CAND commits several times per command (magic's ND
// events outnumber its visibles); logging halves CAND but cannot help
// CBNDVS (unloggable timeofday/select keep it armed); DC-disk overheads
// are dominated by the large per-command dirty footprint.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  bool full = ftx_bench::FullScale(argc, argv);
  int scale = ftx_apps::DefaultScale("magic", full);

  ftx_bench::PrintFig8Header("Fig 8(b)", "magic", scale, /*fps_mode=*/false);
  for (const char* protocol : {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log"}) {
    ftx_bench::Fig8Cell cell = ftx_bench::RunFig8Cell("magic", protocol, scale, /*seed=*/22);
    std::printf("%-12s %10lld %13.1f%% %13.1f%%\n", protocol,
                static_cast<long long>(cell.checkpoints), cell.rio_overhead_pct,
                cell.disk_overhead_pct);
  }
  return 0;
}
