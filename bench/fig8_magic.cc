// Fig. 8(b): magic under five Save-work protocols.
//
// Paper reference points (~190 commands at 1 s intervals):
//   cand        903 ckpts   DC 2%   DC-disk 89%
//   cand-log    432 ckpts   DC 2%   DC-disk 71%
//   cpvs        190 ckpts   DC 2%   DC-disk 28%
//   cbndvs      185 ckpts   DC 2%   DC-disk 27%
//   cbndvs-log  185 ckpts   DC 2%   DC-disk 31%
// Expected shape: CAND commits several times per command (magic's ND
// events outnumber its visibles); logging halves CAND but cannot help
// CBNDVS (unloggable timeofday/select keep it armed); DC-disk overheads
// are dominated by the large per-command dirty footprint.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int scale = ftx_bench::ResolveScale("magic", options);

  ftx_obs::ResultsFile results("fig8_magic");
  results.SetFullScale(options.full_scale);
  results.SetMeta("workload", "magic");
  results.SetMeta("scale", scale);
  results.SetMeta("seed", 22);

  ftx_bench::PrintFig8Header("Fig 8(b)", "magic", scale, /*fps_mode=*/false);
  for (const char* protocol : {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log"}) {
    ftx_bench::Fig8Cell cell =
        ftx_bench::RunFig8Cell("magic", protocol, scale, /*seed=*/22, options.trace_path);
    std::printf("%-12s %10lld %13.1f%% %13.1f%%\n", protocol,
                static_cast<long long>(cell.checkpoints), cell.rio_overhead_pct,
                cell.disk_overhead_pct);
    results.AddRow(ftx_bench::Fig8RowJson("magic", protocol, scale, cell));
    results.AttachMetricsToLastRow(cell.rio_metrics);
  }
  return ftx_bench::FinishBench(results, options);
}
