// Fig. 8(b): magic under five Save-work protocols.
//
// Paper reference points (~190 commands at 1 s intervals):
//   cand        903 ckpts   DC 2%   DC-disk 89%
//   cand-log    432 ckpts   DC 2%   DC-disk 71%
//   cpvs        190 ckpts   DC 2%   DC-disk 28%
//   cbndvs      185 ckpts   DC 2%   DC-disk 27%
//   cbndvs-log  185 ckpts   DC 2%   DC-disk 31%
// Expected shape: CAND commits several times per command (magic's ND
// events outnumber its visibles); logging halves CAND but cannot help
// CBNDVS (unloggable timeofday/select keep it armed); DC-disk overheads
// are dominated by the large per-command dirty footprint.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int scale = ftx_bench::ResolveScale("magic", options);

  ftx_bench::Suite suite("fig8_magic", options);
  suite.SetMeta("workload", "magic");
  suite.SetMeta("scale", scale);
  suite.SetMeta("seed", 22);

  suite.Text(ftx_bench::Fig8Header("Fig 8(b)", "magic", scale, /*fps_mode=*/false));
  for (const char* protocol : {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log"}) {
    ftx_bench::AddFig8Row(suite, "magic", protocol, scale, /*seed=*/22, /*fps_mode=*/false);
  }
  return suite.Run();
}
