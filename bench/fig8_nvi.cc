// Fig. 8(a): nvi under five Save-work protocols.
//
// Paper reference points (7,900-keystroke interactive run, 100 ms/key):
//   cand       7958 ckpts   DC 1%   DC-disk 43%
//   cand-log      5 ckpts   DC 0%   DC-disk 13%
//   cpvs       7939 ckpts   DC 1%   DC-disk 44%
//   cbndvs     7552 ckpts   DC 1%   DC-disk 42%
//   cbndvs-log    3 ckpts   DC 0%   DC-disk 12%
// Expected shape: CAND ≈ CPVS ≈ CBNDVS ≈ one commit per keystroke; logging
// collapses commits to single digits; Rio overhead ~1%, disk ~40%+ without
// logging and ~12% with.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int scale = ftx_bench::ResolveScale("nvi", options);

  ftx_obs::ResultsFile results("fig8_nvi");
  results.SetFullScale(options.full_scale);
  results.SetMeta("workload", "nvi");
  results.SetMeta("scale", scale);
  results.SetMeta("seed", 11);

  ftx_bench::PrintFig8Header("Fig 8(a)", "nvi", scale, /*fps_mode=*/false);
  for (const char* protocol : {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log"}) {
    ftx_bench::Fig8Cell cell =
        ftx_bench::RunFig8Cell("nvi", protocol, scale, /*seed=*/11, options.trace_path);
    std::printf("%-12s %10lld %13.1f%% %13.1f%%\n", protocol,
                static_cast<long long>(cell.checkpoints), cell.rio_overhead_pct,
                cell.disk_overhead_pct);
    results.AddRow(ftx_bench::Fig8RowJson("nvi", protocol, scale, cell));
    results.AttachMetricsToLastRow(cell.rio_metrics);
  }
  return ftx_bench::FinishBench(results, options);
}
