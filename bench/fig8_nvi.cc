// Fig. 8(a): nvi under five Save-work protocols.
//
// Paper reference points (7,900-keystroke interactive run, 100 ms/key):
//   cand       7958 ckpts   DC 1%   DC-disk 43%
//   cand-log      5 ckpts   DC 0%   DC-disk 13%
//   cpvs       7939 ckpts   DC 1%   DC-disk 44%
//   cbndvs     7552 ckpts   DC 1%   DC-disk 42%
//   cbndvs-log    3 ckpts   DC 0%   DC-disk 12%
// Expected shape: CAND ≈ CPVS ≈ CBNDVS ≈ one commit per keystroke; logging
// collapses commits to single digits; Rio overhead ~1%, disk ~40%+ without
// logging and ~12% with.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int scale = ftx_bench::ResolveScale("nvi", options);

  ftx_bench::Suite suite("fig8_nvi", options);
  suite.SetMeta("workload", "nvi");
  suite.SetMeta("scale", scale);
  suite.SetMeta("seed", 11);

  suite.Text(ftx_bench::Fig8Header("Fig 8(a)", "nvi", scale, /*fps_mode=*/false));
  for (const char* protocol : {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log"}) {
    ftx_bench::AddFig8Row(suite, "nvi", protocol, scale, /*seed=*/11, /*fps_mode=*/false);
  }
  return suite.Run();
}
