// Fig. 8(d): TreadMarks Barnes-Hut under all seven Save-work protocols.
//
// Paper reference points (4-process Barnes-Hut):
//   cand       57825 ckpts   DC 199%   DC-disk 11499%
//   cand-log   37704 ckpts   DC 126%   DC-disk  7700%
//   cpvs       12202 ckpts   DC 129%   DC-disk  7346%
//   cbndvs      8071 ckpts   DC 101%   DC-disk  5743%
//   cbndvs-log  6241 ckpts   DC  73%   DC-disk  4973%
//   cpv-2pc       15 ckpts   DC  12%   DC-disk   319%
//   cbndv-2pc     10 ckpts   DC  12%   DC-disk   252%
// Expected shape: commit counts ordered CAND > CAND-LOG > CPVS > CBNDVS >
// CBNDVS-LOG >> 2PC (visible events are rare, so coordinated commits win
// by orders of magnitude); DC-disk is unusable except under 2PC.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int scale = ftx_bench::ResolveScale("treadmarks", options);

  ftx_bench::Suite suite("fig8_treadmarks", options);
  suite.SetMeta("workload", "treadmarks");
  suite.SetMeta("scale", scale);
  suite.SetMeta("seed", 44);

  suite.Text(ftx_bench::Fig8Header("Fig 8(d)", "treadmarks barnes-hut", scale,
                                   /*fps_mode=*/false));
  for (const char* protocol :
       {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log", "cpv-2pc", "cbndv-2pc"}) {
    ftx_bench::AddFig8Row(suite, "treadmarks", protocol, scale, /*seed=*/44, /*fps_mode=*/false);
  }
  return suite.Run();
}
