// Fig. 8(c): xpilot under all seven Save-work protocols.
//
// Paper reference points (4 processes, full speed = 15 fps; reported as the
// max checkpoint rate among processes and the sustained frame rate):
//   cand       455 ckpt/s   DC 15 fps   DC-disk  0 fps
//   cand-log   417 ckpt/s   DC 15 fps   DC-disk  0 fps
//   cpvs        45 ckpt/s   DC 15 fps   DC-disk  8 fps
//   cbndvs      44 ckpt/s   DC 15 fps   DC-disk  9 fps
//   cbndvs-log  43 ckpt/s   DC 15 fps   DC-disk  9 fps
//   cpv-2pc     56 ckpt/s   DC 15 fps   DC-disk  6 fps
//   cbndv-2pc   50 ckpt/s   DC 15 fps   DC-disk  7 fps
// Expected shape: 2PC *increases* commit frequency vs CPVS (the paper's
// noted exception — every client render commits everyone); Discount
// Checking sustains full speed everywhere; DC-disk degrades, to unplayable
// for the CAND variants.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int scale = ftx_bench::ResolveScale("xpilot", options);

  ftx_obs::ResultsFile results("fig8_xpilot");
  results.SetFullScale(options.full_scale);
  results.SetMeta("workload", "xpilot");
  results.SetMeta("scale", scale);
  results.SetMeta("seed", 33);

  ftx_bench::PrintFig8Header("Fig 8(c)", "xpilot", scale, /*fps_mode=*/true);
  for (const char* protocol :
       {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log", "cpv-2pc", "cbndv-2pc"}) {
    ftx_bench::Fig8Cell cell =
        ftx_bench::RunFig8Cell("xpilot", protocol, scale, /*seed=*/33, options.trace_path);
    std::printf("%-12s %10.0f %11.1f fps %11.1f fps\n", protocol, cell.ckps_per_sec, cell.rio_fps,
                cell.disk_fps);
    results.AddRow(ftx_bench::Fig8RowJson("xpilot", protocol, scale, cell));
    results.AttachMetricsToLastRow(cell.rio_metrics);
  }
  return ftx_bench::FinishBench(results, options);
}
