// Fig. 8(c): xpilot under all seven Save-work protocols.
//
// Paper reference points (4 processes, full speed = 15 fps; reported as the
// max checkpoint rate among processes and the sustained frame rate):
//   cand       455 ckpt/s   DC 15 fps   DC-disk  0 fps
//   cand-log   417 ckpt/s   DC 15 fps   DC-disk  0 fps
//   cpvs        45 ckpt/s   DC 15 fps   DC-disk  8 fps
//   cbndvs      44 ckpt/s   DC 15 fps   DC-disk  9 fps
//   cbndvs-log  43 ckpt/s   DC 15 fps   DC-disk  9 fps
//   cpv-2pc     56 ckpt/s   DC 15 fps   DC-disk  6 fps
//   cbndv-2pc   50 ckpt/s   DC 15 fps   DC-disk  7 fps
// Expected shape: 2PC *increases* commit frequency vs CPVS (the paper's
// noted exception — every client render commits everyone); Discount
// Checking sustains full speed everywhere; DC-disk degrades, to unplayable
// for the CAND variants.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int scale = ftx_bench::ResolveScale("xpilot", options);

  ftx_bench::Suite suite("fig8_xpilot", options);
  suite.SetMeta("workload", "xpilot");
  suite.SetMeta("scale", scale);
  suite.SetMeta("seed", 33);

  suite.Text(ftx_bench::Fig8Header("Fig 8(c)", "xpilot", scale, /*fps_mode=*/true));
  for (const char* protocol :
       {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log", "cpv-2pc", "cbndv-2pc"}) {
    ftx_bench::AddFig8Row(suite, "xpilot", protocol, scale, /*seed=*/33, /*fps_mode=*/true);
  }
  return suite.Run();
}
