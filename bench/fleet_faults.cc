// Fleet efficiency curve: useful work vs. fault rate at fleet scale.
//
// N client processes drive M servers (src/apps/fleet.h) under the
// coordinated 2PC protocols while stop failures land on uniformly random
// processes at uniformly random times. The Dwork/Halpern/Waarts efficiency
// of each run is
//
//     necessary work / executed work  =  2·N·K / Σ executed_ops
//
// where the necessary work is one server apply plus one client
// ack-processing per request and the executed counters are host-side (every
// re-execution after a rollback re-counts). A fault-free run scores exactly
// 1.0; rising crash rates roll back and re-execute more of the fleet, so
// the curve decays — and because each row's crash set is a prefix of the
// next row's, the decay is monotone per protocol (the checker gates this).
//
// Exactly-once application is asserted separately: the "violations" column
// counts lost or duplicated requests against the committed server ledgers
// (sum of applies, ledger value total, per-client ack counts), plus any
// process the run could not finish or recover. It must be zero under every
// measured protocol at every fault rate.
//
// Scale: the default run is a small smoke fleet; --full runs the ROADMAP
// fleet-scale configuration (10,000 clients + 16 servers). The partitioned
// event engine (--shards) and the trial pool (--jobs) never change a byte
// of the output — CTest pins both.

#include <algorithm>
#include <utility>
#include <vector>

#include "bench/suite.h"
#include "src/apps/fleet.h"
#include "src/common/rng.h"
#include "src/core/computation.h"

namespace {

struct FleetRunOutcome {
  int64_t executed = 0;    // host-side: applies + ack-processings, re-runs included
  int64_t commits = 0;
  int64_t rollbacks = 0;
  int64_t recoveries = 0;
  int violations = 0;
  double sim_ms = 0.0;     // simulated completion time
  ftx::TimePoint end_time;
  // Critical-path report of crash-injected runs (JSON null otherwise).
  // Computed unconditionally for the max-crash run of every row — not
  // gated on any flag — so the emitted rows are byte-identical whether or
  // not --timeseries/--trace was given (the neutrality compare relies on
  // this).
  ftx_obs::Json critical_path;
};

struct CrashPlan {
  int pid = 0;
  ftx::TimePoint at;
};

FleetRunOutcome RunFleet(const ftx_apps::FleetConfig& config, const std::string& protocol,
                         uint64_t seed, int shards, bool audit, bool critical_path,
                         const std::string& timeseries_path,
                         const std::vector<CrashPlan>& crashes) {
  ftx::ComputationOptions copt;
  copt.seed = seed;
  copt.protocol = protocol;
  copt.store = ftx::StoreKind::kRio;
  copt.shards = shards;
  copt.lean_trace = true;  // fleet scale: skip dense clock snapshots (audit overrides)
  copt.audit = audit;
  copt.critical_path = critical_path;
  copt.timeseries_path = timeseries_path;
  // Fleet runs last tens of simulated ms; a 250 µs cadence resolves the
  // efficiency dip and recovery window the report plots.
  copt.timeseries_options.cadence_ns = 250'000;
  copt.recovery_delay = ftx::Microseconds(200);
  ftx::Computation computation(copt, ftx_apps::MakeFleetApps(config));

  if (ftx_obs::TimeSeriesDb* tsdb = computation.timeseries()) {
    // Fleet lanes on top of the computation's core columns: host-side
    // executed work, committed-ledger progress, and the running
    // Dwork-Halpern-Waarts efficiency. All simulated (or
    // simulated-determined) quantities, so the export stays byte-identical
    // across --jobs/--shards; the final efficiency sample equals the row's
    // end-of-run efficiency (the checker cross-validates the two).
    tsdb->SetMeta("workload", "fleet");
    std::vector<ftx_apps::FleetServer*> servers;
    std::vector<ftx_apps::FleetClient*> clients;
    for (int pid = 0; pid < config.num_processes(); ++pid) {
      ftx_dc::App& app = computation.app(pid);
      if (auto* server = dynamic_cast<ftx_apps::FleetServer*>(&app)) {
        servers.push_back(server);
      } else if (auto* client = dynamic_cast<ftx_apps::FleetClient*>(&app)) {
        clients.push_back(client);
      }
    }
    auto executed_now = [servers, clients]() {
      int64_t total = 0;
      for (const auto* server : servers) {
        total += server->executed_ops();
      }
      for (const auto* client : clients) {
        total += client->executed_ops();
      }
      return total;
    };
    auto comp = &computation;
    auto applied_now = [comp, num_servers = config.num_servers]() {
      int64_t applied = 0;
      for (int s = 0; s < num_servers; ++s) {
        applied += ftx_apps::FleetServer::AppliedCount(comp->runtime(s));
      }
      return applied;
    };
    auto acked_now = [comp, config]() {
      int64_t acked = 0;
      for (int c = 0; c < config.num_clients; ++c) {
        acked += ftx_apps::FleetClient::AckedCount(comp->runtime(config.num_servers + c));
      }
      return acked;
    };
    tsdb->AddCounter("fleet.executed", executed_now);
    // Ledger gauges, not counters: rollbacks legitimately retreat them.
    tsdb->AddGauge("fleet.applied",
                   [applied_now]() { return static_cast<double>(applied_now()); });
    tsdb->AddGauge("fleet.acked", [acked_now]() { return static_cast<double>(acked_now()); });
    tsdb->AddGauge("fleet.efficiency", [executed_now, applied_now, acked_now]() {
      // Running efficiency: committed useful work over executed work. At
      // completion applied + acked == 2·N·K == the report's necessary ops,
      // so the closing sample equals the end-of-run efficiency exactly.
      const int64_t executed = executed_now();
      if (executed <= 0) {
        return 1.0;  // no work attempted yet, none wasted
      }
      return static_cast<double>(applied_now() + acked_now()) / static_cast<double>(executed);
    });
  }

  for (const CrashPlan& crash : crashes) {
    computation.ScheduleStopFailure(crash.pid, crash.at, ftx::Microseconds(200));
  }
  ftx::ComputationResult result = computation.Run();

  FleetRunOutcome out;
  if (computation.critical_path() != nullptr) {
    out.critical_path = computation.critical_path()->ToJson();
  }
  out.commits = result.total_commits;
  out.rollbacks = result.total_rollbacks;
  out.end_time = result.end_time;
  out.sim_ms = static_cast<double>(result.end_time.nanos()) / 1e6;
  for (int pid = 0; pid < config.num_processes(); ++pid) {
    ftx_dc::App& app = computation.app(pid);
    if (auto* server = dynamic_cast<ftx_apps::FleetServer*>(&app)) {
      out.executed += server->executed_ops();
    } else if (auto* client = dynamic_cast<ftx_apps::FleetClient*>(&app)) {
      out.executed += client->executed_ops();
    }
    out.recoveries += computation.recovery_attempts(pid);
    if (computation.recovery_abandoned(pid)) {
      ++out.violations;
    }
  }

  // Exactly-once ledger checks against the final committed segments.
  if (!result.all_done) {
    ++out.violations;
  }
  const int64_t total_requests =
      static_cast<int64_t>(config.num_clients) * config.requests_per_client;
  int64_t applied = 0;
  int64_t value_sum = 0;
  for (int s = 0; s < config.num_servers; ++s) {
    applied += ftx_apps::FleetServer::AppliedCount(computation.runtime(s));
    value_sum += ftx_apps::FleetServer::ValueSum(computation.runtime(s));
  }
  if (applied != total_requests) {
    ++out.violations;  // a request was lost or applied twice
  }
  if (value_sum != ftx_apps::FleetExpectedValueSum(config)) {
    ++out.violations;  // ledger total drifted (wrong or reordered apply)
  }
  for (int c = 0; c < config.num_clients; ++c) {
    if (ftx_apps::FleetClient::AckedCount(computation.runtime(config.num_servers + c)) !=
        config.requests_per_client) {
      ++out.violations;
      break;  // one flag per run is enough; counting 10k clients is noise
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);

  ftx_apps::FleetConfig config;
  if (options.full_scale) {
    config.num_servers = 16;
    config.num_clients = 10000;  // the ROADMAP fleet-scale target
    config.requests_per_client = 3;
    config.report_every = 256;
  } else {
    config.num_servers = 4;
    config.num_clients = 48;
    config.requests_per_client = 4;
    config.report_every = 16;
  }
  if (options.scale_override > 0) {
    config.num_clients = options.scale_override;
    if (options.scale_override >= 256 && !options.full_scale) {
      // Mid-size fleets get the full server tier: --scale 1000 reproduces
      // the 16-server acceptance configuration without the 10k-client cost
      // (and without tripping the checker's full-scale client floor).
      config.num_servers = 16;
      config.report_every = 256;
    }
  }
  const int num_processes = config.num_processes();
  const int shards = std::clamp(options.shards > 0 ? options.shards : 8, 1, num_processes);

  // Crash counts per row: 0, then ~0.5%, ~1%, ~2% of the fleet. Each row's
  // crash set is a prefix of the next one's, so added faults only ever add
  // rolled-back work — the efficiency curve is monotone by construction.
  const std::vector<int> crash_counts = {
      0, std::max(1, num_processes / 200), std::max(2, num_processes / 100),
      std::max(4, num_processes / 50)};

  ftx_bench::Suite suite("fleet_faults", options);
  suite.SetMeta("workload", "fleet");
  suite.SetMeta("servers", config.num_servers);
  suite.SetMeta("clients", config.num_clients);
  suite.SetMeta("requests_per_client", config.requests_per_client);

  suite.Text(ftx_bench::Sprintf(
      "================================================================\n"
      "Fleet efficiency vs. fault rate (%d clients + %d servers,\n"
      "%d requests/client; necessary work = %lld ops)\n\n"
      "%-11s %9s %12s %12s %11s %11s\n",
      config.num_clients, config.num_servers, config.requests_per_client,
      static_cast<long long>(2LL * config.num_clients * config.requests_per_client), "protocol",
      "crashes", "efficiency", "executed", "rollbacks", "violations"));

  for (const char* protocol : {"cpv-2pc", "cbndv-2pc"}) {
    suite.AddRow([protocol, config, shards, crash_counts](ftx_bench::RowContext& ctx) {
      const uint64_t seed = ctx.SeedOr(90000 + static_cast<uint64_t>(ctx.row_index));
      const int64_t necessary =
          2LL * config.num_clients * config.requests_per_client;

      // Calibration: the fault-free run is the first curve point and fixes
      // the time window the crash plan draws from.
      const FleetRunOutcome baseline = RunFleet(config, protocol, seed, shards,
                                                ctx.options->audit, /*critical_path=*/false,
                                                /*timeseries_path=*/{}, {});

      // One master crash list per protocol; row r injects its first
      // crash_counts[r] entries. Times are uniform over the middle 80% of
      // the fault-free run, pids uniform over the whole fleet.
      ftx::Rng rng(ftx::DeriveTrialSeed(seed, 0xf1ee7));
      std::vector<CrashPlan> master(static_cast<size_t>(crash_counts.back()));
      const int64_t window_lo = baseline.end_time.nanos() / 10;
      const int64_t window_hi = std::max(window_lo + 1, baseline.end_time.nanos() * 9 / 10);
      for (CrashPlan& crash : master) {
        crash.pid = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(config.num_processes())));
        crash.at = ftx::TimePoint() + ftx::Nanoseconds(rng.NextInRange(window_lo, window_hi));
      }

      // The crashing points are independent given the shared plan: shard
      // them over the pool (byte-identical for every --jobs). The max-crash
      // run — the curve's most degraded point — additionally extracts the
      // causal critical path (always, flag-independent) and, when this row
      // owns --timeseries, writes the telemetry JSONL.
      const int64_t last = static_cast<int64_t>(crash_counts.size()) - 2;
      std::vector<FleetRunOutcome> outcomes =
          ftx::RunSharded(*ctx.pool, static_cast<int64_t>(crash_counts.size()) - 1, seed,
                          [&](int64_t i, uint64_t) {
                            const std::vector<CrashPlan> prefix(
                                master.begin(), master.begin() + crash_counts[static_cast<size_t>(i) + 1]);
                            return RunFleet(config, protocol, seed, shards,
                                            ctx.options->audit, /*critical_path=*/i == last,
                                            i == last ? ctx.timeseries_path : std::string(),
                                            prefix);
                          });
      outcomes.insert(outcomes.begin(), baseline);

      ftx_bench::RowResult result;
      for (size_t i = 0; i < outcomes.size(); ++i) {
        const FleetRunOutcome& out = outcomes[i];
        const double efficiency =
            out.executed > 0 ? static_cast<double>(necessary) / static_cast<double>(out.executed)
                             : 0.0;
        result.console += ftx_bench::Sprintf(
            "%-11s %9d %12.4f %12lld %11lld %11d\n", protocol, crash_counts[i], efficiency,
            static_cast<long long>(out.executed), static_cast<long long>(out.rollbacks),
            out.violations);
        ftx_obs::Json row = ftx_obs::Json::Object();
        row.Set("protocol", protocol);
        row.Set("crashes", crash_counts[i]);
        row.Set("clients", config.num_clients);
        row.Set("servers", config.num_servers);
        row.Set("requests_per_client", config.requests_per_client);
        row.Set("necessary_ops", necessary);
        row.Set("executed_ops", out.executed);
        row.Set("efficiency", efficiency);
        row.Set("violations", out.violations);
        row.Set("commits", out.commits);
        row.Set("rollbacks", out.rollbacks);
        row.Set("recoveries", out.recoveries);
        row.Set("sim_ms", out.sim_ms);
        if (!out.critical_path.is_null()) {
          row.Set("critical_path", out.critical_path);
          // Console attribution: which process and which recovery phase
          // bound the fleet's end-to-end recovery at this fault rate.
          const ftx_obs::Json* found = out.critical_path.Find("found");
          const ftx_obs::Json* binding = out.critical_path.Find("binding");
          const ftx_obs::Json* span = out.critical_path.Find("span_ns");
          if (found != nullptr && found->boolean() && binding != nullptr && span != nullptr) {
            result.console += ftx_bench::Sprintf(
                "%-11s   critical path: %.3f ms crash-to-commit, bound by p%lld %s "
                "(%.3f ms)\n",
                protocol, span->number() / 1e6,
                static_cast<long long>(binding->Find("pid")->integer()),
                binding->Find("phase")->str().c_str(), binding->Find("ns")->number() / 1e6);
          }
        }
        result.json.push_back(std::move(row));
        result.values.push_back(efficiency);
      }
      return result;
    });
  }

  suite.Text(
      "\nEfficiency is necessary/executed work (Dwork-Halpern-Waarts): 1.0 "
      "fault-free,\ndecaying as crashes roll back and re-execute more of the "
      "fleet. Violations\ncount exactly-once failures against the committed "
      "ledgers and must be zero.\n");
  return suite.Run();
}
