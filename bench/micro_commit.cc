// Micro-benchmarks (google-benchmark) of the commit-path primitives behind
// the Fig. 8 numbers: Vista write barriers and undo logging, commit/abort,
// heap churn, the dangerous-paths coloring algorithm, the Save-work
// checker, and simulated-cost lookups for both stable stores.
//
// These measure REAL host CPU time of the library's mechanisms (unlike the
// fig8/table binaries, which report simulated time from the cost models).

#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/statemachine/dangerous_paths.h"
#include "src/statemachine/invariants.h"
#include "src/statemachine/random_model.h"
#include "src/storage/commit_pipeline.h"
#include "src/storage/redo_log.h"
#include "src/storage/stable_store.h"
#include "src/vista/heap.h"
#include "src/vista/segment.h"

namespace {

void BM_SegmentWriteBarrier(benchmark::State& state) {
  ftx_vista::Segment segment(4 << 20);
  int64_t offset = 0;
  for (auto _ : state) {
    segment.WriteValue<uint64_t>(offset, 0x12345678);
    offset = (offset + 64) % static_cast<int64_t>(segment.size() - 8);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentWriteBarrier);

void BM_SegmentWriteBarrierSparse(benchmark::State& state) {
  // Worst case for the cached-range fast path: every store lands on a fresh
  // page with a changed value, so each one pays first-touch bookkeeping and
  // a before-image materialization. Pages are recycled via periodic commits
  // to keep the dirty set bounded.
  ftx_vista::Segment segment(4 << 20);
  const int64_t pages = static_cast<int64_t>(segment.size() / segment.page_size());
  int64_t page = 0;
  uint64_t value = 1;
  for (auto _ : state) {
    segment.WriteValue<uint64_t>(page * 4096, value++);
    if (++page == pages) {
      page = 0;
      segment.Commit();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentWriteBarrierSparse);

void BM_SegmentCommit(benchmark::State& state) {
  const int64_t pages = state.range(0);
  ftx_vista::Segment segment(16 << 20);
  for (auto _ : state) {
    for (int64_t p = 0; p < pages; ++p) {
      segment.WriteValue<uint64_t>(p * 4096, static_cast<uint64_t>(p));
    }
    segment.Commit();
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_SegmentCommit)->Arg(1)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SegmentCommitMutating(benchmark::State& state) {
  // Every epoch stores a value the page does not already hold, so each dirty
  // page pays the full copy-on-write cost: before-image copy into a pooled
  // undo slot plus the store. Measures the materialization + arena path that
  // BM_SegmentCommit's repeated values skip after the first epoch.
  const int64_t pages = state.range(0);
  ftx_vista::Segment segment(16 << 20);
  uint64_t epoch = 0;
  for (auto _ : state) {
    ++epoch;
    for (int64_t p = 0; p < pages; ++p) {
      segment.WriteValue<uint64_t>(p * 4096, epoch);
    }
    segment.Commit();
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_SegmentCommitMutating)->Arg(1)->Arg(64)->Arg(1024);

void BM_RedoRecordAppend(benchmark::State& state) {
  // DC-disk commit serialization: walk the dirty set with the zero-copy
  // visitor and append each page image into a redo record.
  const int64_t pages = state.range(0);
  ftx_vista::Segment segment(16 << 20);
  for (int64_t p = 0; p < pages; ++p) {
    segment.WriteValue<uint64_t>(p * 4096, static_cast<uint64_t>(p) + 1);
  }
  for (auto _ : state) {
    ftx_store::RedoRecord record;
    record.ReservePages(segment.persisted_dirty_page_count(), segment.page_size());
    segment.ForEachPersistedDirtyPage(
        [&record](int64_t offset, const uint8_t* image, size_t size) {
          record.AppendPage(offset, image, size);
        });
    benchmark::DoNotOptimize(record.PayloadBytes());
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_RedoRecordAppend)->Arg(16)->Arg(256);

void BM_RedoRecordAppendUnreserved(benchmark::State& state) {
  // Same walk without the caller's ReservePages hint: relies on
  // AppendPage's own one-reservation-per-run growth. Keeping this near the
  // reserved row pins the reserve-ahead fix — before it, this variant paid
  // several reallocations per record.
  const int64_t pages = state.range(0);
  ftx_vista::Segment segment(16 << 20);
  for (int64_t p = 0; p < pages; ++p) {
    segment.WriteValue<uint64_t>(p * 4096, static_cast<uint64_t>(p) + 1);
  }
  for (auto _ : state) {
    ftx_store::RedoRecord record;
    segment.ForEachPersistedDirtyPage(
        [&record](int64_t offset, const uint8_t* image, size_t size) {
          record.AppendPage(offset, image, size);
        });
    benchmark::DoNotOptimize(record.PayloadBytes());
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_RedoRecordAppendUnreserved)->Arg(256);

void BM_Crc32(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buffer(bytes);
  ftx::Rng rng(7);
  for (auto& b : buffer) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftx::Crc32(buffer.data(), buffer.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(64 << 10)->Arg(1 << 20);

void BM_Crc32Portable(benchmark::State& state) {
  // The slice-by-8 reference path, bypassing dispatch: the denominator of
  // the hardware-CRC speedup gate in bench_hotpath.sh.
  const size_t bytes = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> buffer(bytes);
  ftx::Rng rng(7);
  for (auto& b : buffer) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftx::Crc32PortableExtend(0, buffer.data(), buffer.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Crc32Portable)->Arg(4096)->Arg(64 << 10)->Arg(1 << 20);

void BM_SegmentAbort(benchmark::State& state) {
  const int64_t pages = state.range(0);
  ftx_vista::Segment segment(16 << 20);
  for (auto _ : state) {
    for (int64_t p = 0; p < pages; ++p) {
      segment.WriteValue<uint64_t>(p * 4096, static_cast<uint64_t>(p));
    }
    segment.Abort();
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_SegmentAbort)->Arg(16)->Arg(256);

void BM_GroupCommit(benchmark::State& state) {
  // Simulated DC-disk commit throughput under group commit: windows of N
  // 4-page records stage through the CommitPipeline and each flush charges
  // WindowPersistCost — one seek+rotation pair per *window* instead of per
  // record. sim_commits_per_sec is the model-time throughput; the ratio of
  // the batch-8 and batch-1 rows is the grouped-commit gate in
  // scripts/bench_hotpath.sh (>= 2x at batch 8 on the DiskModel).
  const int64_t batch = state.range(0);
  ftx_store::DiskModel disk_model;
  ftx_store::DiskStore store(&disk_model);
  ftx_store::RedoLog log;
  ftx_store::BatchPolicy policy;
  policy.enabled = true;
  policy.max_records = batch;
  ftx_store::CommitPipeline pipeline(&log, policy);

  std::vector<uint8_t> page(4096, 0xa5);
  double sim_ns = 0.0;
  int64_t commits = 0;
  int64_t window_records = 0;
  int64_t window_bytes = 0;
  for (auto _ : state) {
    ftx_store::RedoRecord record;
    record.ReservePages(4, page.size());
    for (int64_t p = 0; p < 4; ++p) {
      record.AppendPage(p * 4096, page.data(), page.size());
    }
    window_bytes += record.PayloadBytes() + 64;
    ++window_records;
    ++commits;
    if (pipeline.Stage(std::move(record))) {
      pipeline.Flush();
      sim_ns += static_cast<double>(store.WindowPersistCost(window_records, window_bytes).nanos());
      // Retire the flushed prefix so the in-memory record chain (and the
      // host-time cost of tracking it) stays bounded over the bench run.
      log.TruncateThrough(log.next_sequence() - 1);
      window_records = 0;
      window_bytes = 0;
    }
  }
  if (!pipeline.empty()) {
    pipeline.Flush();
    sim_ns += static_cast<double>(store.WindowPersistCost(window_records, window_bytes).nanos());
  }
  state.SetItemsProcessed(commits);
  state.counters["sim_commits_per_sec"] =
      benchmark::Counter(sim_ns > 0 ? static_cast<double>(commits) / (sim_ns * 1e-9) : 0.0);
}
BENCHMARK(BM_GroupCommit)->Arg(1)->Arg(8);

void BM_HeapAllocFree(benchmark::State& state) {
  ftx_vista::Segment segment(8 << 20);
  ftx_vista::SegmentHeap heap(&segment, 0, 4 << 20);
  heap.Format();
  for (auto _ : state) {
    auto block = heap.Alloc(256);
    benchmark::DoNotOptimize(block);
    if (block.ok()) {
      (void)heap.Free(*block);
    }
  }
}
BENCHMARK(BM_HeapAllocFree);

void BM_HeapGuardCheck(benchmark::State& state) {
  ftx_vista::Segment segment(8 << 20);
  ftx_vista::SegmentHeap heap(&segment, 0, 4 << 20);
  heap.Format();
  for (int i = 0; i < 200; ++i) {
    (void)heap.Alloc(512);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap.CheckGuards().ok());
  }
}
BENCHMARK(BM_HeapGuardCheck);

void BM_DangerousPathsColoring(benchmark::State& state) {
  ftx::Rng rng(42);
  ftx_sm::RandomGraphOptions options;
  options.num_states = static_cast<int32_t>(state.range(0));
  options.crash_probability = 0.1;
  ftx_sm::StateMachineGraph graph = ftx_sm::MakeRandomGraph(&rng, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftx_sm::ColorDangerousPaths(graph).num_colored);
  }
  state.SetItemsProcessed(state.iterations() * graph.num_edges());
}
BENCHMARK(BM_DangerousPathsColoring)->Arg(64)->Arg(512)->Arg(4096);

void BM_SaveWorkChecker(benchmark::State& state) {
  ftx::Rng rng(42);
  ftx_sm::RandomTraceOptions options;
  options.num_processes = 3;
  options.events_per_process = static_cast<int>(state.range(0));
  ftx_sm::Trace trace = ftx_sm::MakeRandomComputation(&rng, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftx_sm::CheckSaveWork(trace).violations.size());
  }
  state.SetItemsProcessed(state.iterations() * trace.TotalEvents());
}
BENCHMARK(BM_SaveWorkChecker)->Arg(50)->Arg(200);

void BM_RioPersistCostModel(benchmark::State& state) {
  ftx_store::RioStore rio;
  int64_t bytes = 16 * 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rio.PersistCost(bytes).nanos());
  }
}
BENCHMARK(BM_RioPersistCostModel);

void BM_DiskPersistCostModel(benchmark::State& state) {
  ftx_store::DiskModel disk_model;
  ftx_store::DiskStore disk(&disk_model);
  int64_t bytes = 16 * 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.PersistCost(bytes).nanos());
  }
}
BENCHMARK(BM_DiskPersistCostModel);

}  // namespace

BENCHMARK_MAIN();
