// Recovery MTTR: per-phase host-time attribution of the recovery path.
//
// Every other bench measures *simulated* time; this one asks where the
// reproduction itself spends its cycles recovering, phase by phase (log
// scan, CRC validate, page install, reprotect, ND replay, kernel replay,
// application rebuild), using the ftx::prof scoped profiler. Three sweeps:
//
//   protocol         all seven measured protocols on treadmarks (DC-disk),
//                    one mid-run stop failure each — how the Save-work
//                    protocol shapes the recovery profile;
//   log_size         nvi/cpvs with the crash at 25% / 50% / 80% of the run —
//                    the redo chain grows with the crash point, so log scan,
//                    CRC validation and page installs scale with it;
//   commit_interval  nvi under eager CAND vs lazy CAND-LOG — rare commits
//                    shrink the redo chain but shift recovery work into ND
//                    replay during re-execution.
//
// Simulated quantities in each row (MTTR histogram stats, replay counts,
// consistency verdicts, scope counts) are deterministic; the host phase_*_ns
// fields are wall-clock and vary run to run, so this bench has no golden
// snapshot — scripts/bench_history.py keeps a host-keyed ledger instead.
// --repeat N reruns the recoverable half and reports min/median host times.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/obs/prof/prof.h"
#include "src/recovery/consistency.h"

namespace {

struct SweepPoint {
  const char* section;
  const char* workload;
  const char* protocol;
  double crash_fraction;  // of the failure-free run's elapsed simulated time
  uint64_t seed;
};

// Recovery phases reported per row: profiler scope -> JSON field stem.
constexpr struct {
  const char* scope;
  const char* field;
} kPhases[] = {
    {"recover.log_scan", "log_scan"},
    {"recover.crc_validate", "crc_validate"},
    {"recover.page_install", "page_install"},
    {"recover.reprotect", "reprotect"},
    {"recover.nd_replay", "nd_replay"},
    {"recover.kernel_replay", "kernel_replay"},
    {"recover.app_rebuild", "app_rebuild"},
};

double PhasePct(int64_t phase_ns, int64_t total_ns) {
  return total_ns > 0 ? 100.0 * static_cast<double>(phase_ns) / static_cast<double>(total_ns)
                      : 0.0;
}

ftx_bench::RowResult RunPoint(ftx_bench::RowContext& ctx, const SweepPoint& pt, int scale) {
  const int repeat = ctx.options->repeat;

  ftx::RunSpec spec;
  spec.workload = pt.workload;
  spec.protocol = pt.protocol;
  spec.scale = scale;
  spec.seed = ctx.SeedOr(pt.seed);
  spec.store = ftx::StoreKind::kDisk;
  spec.audit = ctx.options->audit;

  // Failure-free baseline: the consistency reference, and the run length
  // the crash point is placed against.
  ftx::RunSpec reference_spec = spec;
  reference_spec.mode = ftx_dc::RuntimeMode::kBaseline;
  reference_spec.audit = false;
  ftx::RunOutput reference = ftx::RunExperiment(reference_spec);
  const ftx::Duration crash_at = ftx::Nanoseconds(
      static_cast<int64_t>(static_cast<double>(reference.elapsed.nanos()) * pt.crash_fraction));
  FTX_CHECK_GT(crash_at.nanos(), 0);

  // Recoverable run(s) with one stop failure at the crash point, each under
  // its own profiler. The simulation is seeded, so every repeat replays the
  // same recovery — only the host-side wall times differ.
  std::map<std::string, std::vector<double>> wall_samples;
  ftx_prof::Profile profile;  // repeat 0's merge (counts are identical)
  ftx::RunOutput recovered;
  ftx_rec::ConsistencyResult consistency;
  bool completed = false;
  // --timeseries: only repeat 0 samples and writes the JSONL; the later
  // repeats run telemetry-off, so the FTX_CHECK_EQs below double as a
  // neutrality assertion (sampling must not move simulated quantities).
  spec.timeseries_path = ctx.timeseries_path;
  for (int rep = 0; rep < repeat; ++rep) {
    if (rep == 1) {
      spec.timeseries_path.clear();
    }
    std::unique_ptr<ftx::Computation> computation = ftx::BuildComputation(spec);
    computation->ScheduleStopFailure(0, ftx::TimePoint() + crash_at, ftx::Milliseconds(50));
    ftx_prof::Profiler profiler;
    ftx::ComputationResult result;
    {
      ftx_prof::Activation prof_on(&profiler);
      result = computation->Run();
    }
    ftx::RunOutput out = ftx::Collect(*computation, result);
    ftx_prof::Profile merged = profiler.Merge();
    wall_samples["recover"].push_back(static_cast<double>(merged.LeafTotalNs("recover")));
    for (const auto& phase : kPhases) {
      wall_samples[phase.scope].push_back(static_cast<double>(merged.LeafTotalNs(phase.scope)));
    }
    if (rep == 0) {
      profile = std::move(merged);
      consistency = ftx_rec::CheckConsistentRecovery(reference.outputs, out.outputs,
                                                     computation->num_processes(),
                                                     /*require_complete=*/true);
      completed = result.all_done;
      recovered = std::move(out);
    } else {
      // The repeats exist only to stabilize host times; the simulation must
      // not notice them.
      FTX_CHECK_EQ(out.result.total_rollbacks, recovered.result.total_rollbacks);
      FTX_CHECK_EQ(out.checkpoints, recovered.checkpoints);
    }
  }

  const int64_t replays = recovered.result.total_rollbacks;
  const bool ok = consistency.consistent && completed;
  const int64_t recover_wall_ns = static_cast<int64_t>(ftx_bench::MinOf(wall_samples["recover"]));

  ftx_obs::Json row = ftx_obs::Json::Object();
  row.Set("section", pt.section);
  row.Set("workload", pt.workload);
  row.Set("protocol", pt.protocol);
  row.Set("store", "disk");
  row.Set("scale", scale);
  row.Set("crash_fraction", pt.crash_fraction);
  row.Set("repeats", repeat);
  row.Set("ok", ok);
  row.Set("violations", ok ? 0 : 1);
  row.Set("duplicates_tolerated", consistency.duplicates_tolerated);
  row.Set("replays", replays);
  row.Set("redo_records", profile.LeafCount("recover.crc_validate"));
  // Simulated MTTR distribution (deterministic; the figure's quantity).
  const ftx_obs::MetricValue* mttr = recovered.metrics.Find("dc.recovery_ns");
  FTX_CHECK(mttr != nullptr);
  row.Set("mttr_count", mttr->count);
  row.Set("mttr_sim_ns_mean",
          mttr->count > 0 ? static_cast<double>(mttr->sum) / static_cast<double>(mttr->count)
                          : 0.0);
  row.Set("mttr_sim_ns_p50", mttr->p50);
  row.Set("mttr_sim_ns_p90", mttr->p90);
  row.Set("mttr_sim_ns_p99", mttr->p99);
  // Host-time recovery breakdown (nondeterministic; min over --repeat, with
  // the median alongside; counts are deterministic).
  row.Set("recover_wall_ns", recover_wall_ns);
  row.Set("recover_wall_ns_median",
          static_cast<int64_t>(ftx_bench::MedianOf(wall_samples["recover"])));
  for (const auto& phase : kPhases) {
    const std::string stem = std::string("phase_") + phase.field;
    row.Set(stem + "_ns", static_cast<int64_t>(ftx_bench::MinOf(wall_samples[phase.scope])));
    row.Set(stem + "_ns_median",
            static_cast<int64_t>(ftx_bench::MedianOf(wall_samples[phase.scope])));
    row.Set(stem + "_count", profile.LeafCount(phase.scope));
  }
  if (recovered.audited) {
    row.Set("audit", recovered.audit_report);
  }

  ftx_bench::RowResult result;
  result.console = ftx_bench::Sprintf(
      "%-16s %-11s %-11s %4lld %6lld %9.2f ms  "
      "scan %3.0f%% crc %3.0f%% inst %3.0f%% reprot %3.0f%% nd %3.0f%%\n",
      pt.section, pt.workload, pt.protocol, static_cast<long long>(replays),
      static_cast<long long>(profile.LeafCount("recover.crc_validate")), mttr->p50 / 1e6,
      PhasePct(static_cast<int64_t>(ftx_bench::MinOf(wall_samples["recover.log_scan"])),
               recover_wall_ns),
      PhasePct(static_cast<int64_t>(ftx_bench::MinOf(wall_samples["recover.crc_validate"])),
               recover_wall_ns),
      PhasePct(static_cast<int64_t>(ftx_bench::MinOf(wall_samples["recover.page_install"])),
               recover_wall_ns),
      PhasePct(static_cast<int64_t>(ftx_bench::MinOf(wall_samples["recover.reprotect"])),
               recover_wall_ns),
      PhasePct(static_cast<int64_t>(ftx_bench::MinOf(wall_samples["recover.nd_replay"])),
               recover_wall_ns));
  result.values.push_back(ok ? 0.0 : 1.0);
  result.values.push_back(static_cast<double>(replays));
  result.json.push_back(std::move(row));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);

  std::vector<SweepPoint> points;
  int i = 0;
  for (const char* protocol :
       {"cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log", "cpv-2pc", "cbndv-2pc"}) {
    points.push_back({"protocol", "treadmarks", protocol, 0.5, 6100 + static_cast<uint64_t>(i++)});
  }
  for (double fraction : {0.25, 0.5, 0.8}) {
    points.push_back(
        {"log_size", "nvi", "cpvs", fraction, 6200 + static_cast<uint64_t>(fraction * 100)});
  }
  points.push_back({"commit_interval", "nvi", "cand", 0.5, 6301});
  points.push_back({"commit_interval", "nvi", "cand-log", 0.5, 6302});

  ftx_bench::Suite suite("recovery_profile", options);
  suite.SetMeta("host", ftx_prof::HostMetaJson());
  suite.SetMeta("repeat", options.repeat);
  suite.SetMeta("store", "disk");
  suite.SetMeta("sections", ftx_obs::Json::Array()
                                .Push("protocol")
                                .Push("log_size")
                                .Push("commit_interval"));

  suite.Text(ftx_bench::Sprintf(
      "================================================================\n"
      "Recovery MTTR: per-phase host-time attribution (ftx::prof)\n"
      "%-16s %-11s %-11s %4s %6s %12s  %s\n"
      "----------------------------------------------------------------\n",
      "sweep", "workload", "protocol", "rpl", "recs", "sim MTTR p50", "host recovery split"));

  for (const SweepPoint& pt : points) {
    const int scale = ftx_bench::ResolveScale(pt.workload, options);
    suite.AddRow([pt, scale](ftx_bench::RowContext& ctx) { return RunPoint(ctx, pt, scale); });
  }

  suite.Summarize([](const std::vector<ftx_bench::RowResult>& rows) {
    double violations = 0;
    double replays = 0;
    for (const ftx_bench::RowResult& row : rows) {
      violations += row.values[0];
      replays += row.values[1];
    }
    return ftx_bench::Sprintf(
        "----------------------------------------------------------------\n"
        "%zu sweep points, %.0f recoveries replayed, %.0f consistency "
        "violations\n",
        rows.size(), replays, violations);
  });
  return suite.Run();
}
