// Section 4.1's composition: how often failure transparency is impossible.
//
// Combines the measured Table 1 violation fractions with the published
// Bohrbug/Heisenbug ratios ([7]: only 5-15% of shipping-application bugs
// depend on transient non-determinism; the rest are deterministic and
// inherently violate Lose-work because their dangerous path reaches the
// always-committed initial state), reproducing the paper's conclusion that
// Lose-work is upheld in at most ~10% of application crashes — and its more
// hopeful OS-fault counterpart from Table 2.

#include <string>

#include "bench/bench_util.h"
#include "src/core/fault_study.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int crashes =
      options.scale_override > 0 ? options.scale_override : (options.full_scale ? 50 : 30);

  ftx_bench::Suite suite("section4_composition", options);
  suite.SetMeta("crashes_per_type", crashes);

  suite.Text(ftx_bench::Sprintf(
      "================================================================\n"
      "Section 4.1: composing the fault studies (%d crashes/type)\n\n",
      crashes));

  for (const char* app : {"nvi", "postgres"}) {
    suite.AddRow([app, crashes](ftx_bench::RowContext& ctx) {
      uint64_t seed_base = ctx.SeedOr(9000);
      double sum = 0;
      for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
        ftx::FaultStudySpec spec;
        spec.app = app;
        spec.type = type;
        spec.kind = ftx::FaultStudyKind::kApplication;
        spec.target_crashes = crashes;
        spec.seed_base = seed_base + static_cast<uint64_t>(type) * 131;
        spec.pool = ctx.pool;
        sum += ftx::RunFaultStudy(spec).violation_fraction;
      }
      double heisenbug_violation = sum / ftx_fault::kNumFaultTypes;

      ftx_bench::RowResult result;
      result.console += ftx_bench::Sprintf("%s:\n", app);
      result.console += ftx_bench::Sprintf(
          "  measured Lose-work violation rate for Heisenbugs: %.0f%%\n",
          100 * heisenbug_violation);
      for (double heisenbug_fraction : {0.05, 0.15}) {
        // Bohrbugs (1 - heisenbug_fraction of crashes) always violate; of
        // the Heisenbugs, the measured fraction violates.
        double upheld = heisenbug_fraction * (1.0 - heisenbug_violation);
        result.console += ftx_bench::Sprintf(
            "  with %2.0f%% Heisenbugs [7]: Lose-work upheld in %4.1f%% of "
            "crashes -> transparency impossible for %4.1f%%\n",
            100 * heisenbug_fraction, 100 * upheld, 100 * (1 - upheld));
        ftx_obs::Json row = ftx_obs::Json::Object();
        row.Set("section", "application");
        row.Set("workload", app);
        row.Set("heisenbug_fraction", heisenbug_fraction);
        row.Set("heisenbug_violation_fraction", heisenbug_violation);
        row.Set("losework_upheld_fraction", upheld);
        result.json.push_back(std::move(row));
      }
      result.console += "\n";
      return result;
    });
  }

  suite.Text(
      "Paper's conclusion: Lose-work holds in at most 65% of 15% ~= "
      "10% of application\ncrashes; transparency is impossible for "
      "the remaining ~90%.\n\n");

  // The OS-fault side (Table 2): much better news.
  suite.Text("Operating-system faults (Table 2 aggregate):\n");
  for (const char* app : {"nvi", "postgres"}) {
    suite.AddRow([app, crashes](ftx_bench::RowContext& ctx) {
      uint64_t seed_base = ctx.SeedOr(9500);
      double sum = 0;
      for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
        ftx::FaultStudySpec spec;
        spec.app = app;
        spec.type = type;
        spec.kind = ftx::FaultStudyKind::kOs;
        spec.target_crashes = crashes;
        spec.seed_base = seed_base + static_cast<uint64_t>(type) * 131;
        spec.pool = ctx.pool;
        sum += ftx::RunFaultStudy(spec).failed_recovery_fraction;
      }
      double failed = sum / ftx_fault::kNumFaultTypes;

      ftx_bench::RowResult result;
      result.console = ftx_bench::Sprintf(
          "  %s: recovery failed after %.0f%% of OS crashes (paper: %s)\n", app, 100 * failed,
          app == std::string("nvi") ? "15%" : "3%");
      ftx_obs::Json row = ftx_obs::Json::Object();
      row.Set("section", "os");
      row.Set("workload", app);
      row.Set("failed_recovery_fraction", failed);
      result.json.push_back(std::move(row));
      return result;
    });
  }
  suite.Text(
      "\nGeneric recovery is likely to work for OS failures; application "
      "failures\nrequire help from the application (Section 6).\n");
  return suite.Run();
}
