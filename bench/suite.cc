#include "bench/suite.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/obs/prof/prof.h"

namespace ftx_bench {
namespace {

// The option table ParseBenchOptions and its usage text are generated from.
struct FlagSpec {
  const char* name;
  const char* value_name;  // nullptr: boolean switch
  const char* doc;
  void (*apply)(BenchOptions* options, const char* value);
};

constexpr FlagSpec kBenchFlags[] = {
    {"--full", nullptr, "paper-scale run (default is a fast small-scale run)",
     [](BenchOptions* options, const char*) { options->full_scale = true; }},
    {"--scale", "N", "explicit workload scale / trial count, overriding --full",
     [](BenchOptions* options, const char* value) { options->scale_override = std::atoi(value); }},
    {"--jobs", "N", "worker threads for independent trials (default: all hardware threads)",
     [](BenchOptions* options, const char* value) { options->jobs = std::atoi(value); }},
    {"--seed", "S", "base seed overriding the bench's built-in one",
     [](BenchOptions* options, const char* value) {
       options->seed = std::strtoull(value, nullptr, 10);
     }},
    {"--json", "PATH", "write machine-readable results (ftx.bench-results JSON)",
     [](BenchOptions* options, const char* value) { options->json_path = value; }},
    {"--trace", "PATH", "write a Chrome trace_event JSON of the traced run",
     [](BenchOptions* options, const char* value) { options->trace_path = value; }},
    {"--timeseries", "PATH", "write the traced run's sim-time telemetry (ftx.timeseries JSONL)",
     [](BenchOptions* options, const char* value) { options->timeseries_path = value; }},
    {"--audit", nullptr, "enable the live causal audit on every recoverable run",
     [](BenchOptions* options, const char*) { options->audit = true; }},
    {"--repeat", "N", "host-time repetitions for wall-clock rows (min/median reported)",
     [](BenchOptions* options, const char* value) {
       options->repeat = std::max(1, std::atoi(value));
     }},
    {"--prof", "PATH", "write a collapsed-stack host-time profile (FlameGraph format)",
     [](BenchOptions* options, const char* value) { options->prof_path = value; }},
    {"--backend", "NAME", "ftx::env execution backend: sim|threads (default: bench's choice)",
     [](BenchOptions* options, const char* value) {
       if (std::strcmp(value, "sim") != 0 && std::strcmp(value, "threads") != 0) {
         std::fprintf(stderr, "invalid --backend: %s (want sim or threads)\n", value);
         std::exit(2);
       }
       options->backend = value;
     }},
    {"--batch", "N", "group-commit window size for DC-disk runs (records per sync; 0 = off)",
     [](BenchOptions* options, const char* value) {
       options->batch = std::strtoll(value, nullptr, 10);
     }},
    {"--shards", "N", "partitioned event-engine shards (byte-identical results; 0 = default)",
     [](BenchOptions* options, const char* value) { options->shards = std::atoi(value); }},
    {"--log-level", "LEVEL", "error|warning|info|debug (default warning)",
     [](BenchOptions* options, const char* value) {
       ftx::LogLevel level;
       if (!ftx::ParseLogLevel(value, &level)) {
         std::fprintf(stderr, "invalid --log-level: %s\n", value);
         std::exit(2);
       }
       options->log_level = value;
       ftx::SetLogLevel(level);
     }},
};

void PrintUsage(const char* argv0) { std::fputs(BenchUsageText(argv0).c_str(), stderr); }

const FlagSpec* FindFlag(const char* name) {
  for (const FlagSpec& flag : kBenchFlags) {
    if (std::strcmp(flag.name, name) == 0) {
      return &flag;
    }
  }
  return nullptr;
}

}  // namespace

std::string BenchUsageText(const char* argv0) {
  std::string text = Sprintf("usage: %s [flags]\n", argv0);
  for (const FlagSpec& flag : kBenchFlags) {
    char left[32];
    std::snprintf(left, sizeof left, "%s %s", flag.name,
                  flag.value_name == nullptr ? "" : flag.value_name);
    text += Sprintf("  %-16s %s\n", left, flag.doc);
  }
  return text;
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const FlagSpec* flag = FindFlag(argv[i]);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage(argv[0]);
      std::exit(2);
    }
    const char* value = nullptr;
    if (flag->value_name != nullptr) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag->name);
        PrintUsage(argv[0]);
        std::exit(2);
      }
      value = argv[++i];
    }
    flag->apply(&options, value);
  }
  return options;
}

std::string Sprintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string text;
  if (needed > 0) {
    text.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(text.data(), text.size(), format, args_copy);
    text.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return text;
}

double MinOf(const std::vector<double>& samples) {
  FTX_CHECK(!samples.empty());
  return *std::min_element(samples.begin(), samples.end());
}

double MedianOf(std::vector<double> samples) {
  FTX_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2] : (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

uint64_t RowContext::SeedOr(uint64_t bench_default) const {
  if (options == nullptr || options->seed == 0) {
    return bench_default;
  }
  return ftx::DeriveTrialSeed(options->seed, static_cast<uint64_t>(row_index));
}

Suite::Suite(const std::string& bench_name, const BenchOptions& options)
    : options_(options), pool_(options.jobs), results_(bench_name) {
  results_.SetFullScale(options.full_scale);
}

void Suite::SetMeta(const std::string& key, ftx_obs::Json value) {
  results_.SetMeta(key, std::move(value));
}

void Suite::Text(std::string text) {
  Item item;
  item.kind = Item::Kind::kText;
  item.text = std::move(text);
  items_.push_back(std::move(item));
}

void Suite::AddRow(std::function<RowResult(RowContext&)> fn) {
  Item item;
  item.kind = Item::Kind::kRow;
  item.row_fn = std::move(fn);
  item.row_index = num_rows_++;
  items_.push_back(std::move(item));
}

void Suite::Summarize(std::function<std::string(const std::vector<RowResult>&)> fn) {
  Item item;
  item.kind = Item::Kind::kSummarize;
  item.summarize_fn = std::move(fn);
  items_.push_back(std::move(item));
}

int Suite::Run() {
  // Compute every row on the pool. Rows may finish in any order; nothing
  // here depends on it — results land in a declaration-indexed vector.
  std::vector<const Item*> rows(static_cast<size_t>(num_rows_));
  for (const Item& item : items_) {
    if (item.kind == Item::Kind::kRow) {
      rows[static_cast<size_t>(item.row_index)] = &item;
    }
  }
  std::vector<RowResult> row_results(static_cast<size_t>(num_rows_));
  // With --prof, the whole computation runs under one profiler; ParallelFor
  // propagates the activation to every worker, so scopes from concurrent
  // rows merge into a single profile. Simulated results are untouched — the
  // profiler only ever reads the host clock.
  ftx_prof::Profiler profiler;
  {
    ftx_prof::Activation prof_on(options_.prof_path.empty() ? nullptr : &profiler);
    pool_.ParallelFor(num_rows_, [&](int64_t i) {
      RowContext ctx;
      ctx.pool = &pool_;
      ctx.options = &options_;
      ctx.row_index = static_cast<int>(i);
      if (i == num_rows_ - 1) {
        ctx.trace_path = options_.trace_path;  // "last traced run wins"
        ctx.timeseries_path = options_.timeseries_path;  // same single-file rule
      }
      row_results[static_cast<size_t>(i)] = rows[static_cast<size_t>(i)]->row_fn(ctx);
    });
  }

  // Render strictly in declaration order: identical output for any --jobs.
  for (const Item& item : items_) {
    switch (item.kind) {
      case Item::Kind::kText:
        std::fputs(item.text.c_str(), stdout);
        break;
      case Item::Kind::kRow: {
        RowResult& result = row_results[static_cast<size_t>(item.row_index)];
        std::fputs(result.console.c_str(), stdout);
        for (ftx_obs::Json& row : result.json) {
          results_.AddRow(std::move(row));
        }
        break;
      }
      case Item::Kind::kSummarize:
        std::fputs(item.summarize_fn(row_results).c_str(), stdout);
        break;
    }
  }

  if (!options_.prof_path.empty()) {
    ftx_prof::Profile profile = profiler.Merge();
    ftx::Status status =
        ftx_obs::WriteFileContents(options_.prof_path, profile.ToCollapsed(/*weight_ns=*/true));
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", options_.prof_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu profile stacks to %s\n", profile.entries.size(),
                options_.prof_path.c_str());
  }

  if (options_.json_path.empty()) {
    return 0;
  }
  ftx::Status status = results_.WriteTo(options_.json_path);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", options_.json_path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu result rows to %s\n", results_.num_rows(), options_.json_path.c_str());
  return 0;
}

}  // namespace ftx_bench
