// Declarative bench suite: the one way the paper-reproduction binaries
// describe themselves.
//
// A bench main declares its output — header text, measurement rows, and
// summaries — instead of interleaving computation with printf and
// hand-assembled JSON. The suite then:
//
//  * computes every row on a shared ftx::TrialPool (--jobs), rows
//    concurrently and each row free to shard further through ctx.pool;
//  * renders console text and appends ftx.bench-results JSON rows strictly
//    in declaration order, so stdout and the --json file are byte-identical
//    for every --jobs value;
//  * hands the --trace path to exactly one row (the last declared), keeping
//    the documented "the last traced run's file is kept" behaviour without a
//    file race between concurrent rows.
//
// Rows must not print or touch shared mutable state: they return their
// console text and JSON rows in a RowResult, plus any numbers a later
// Summarize item folds over (averages, totals).

#ifndef FTX_BENCH_SUITE_H_
#define FTX_BENCH_SUITE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/parallel.h"
#include "src/obs/json.h"
#include "src/obs/results.h"

namespace ftx_bench {

// Common bench command line (see kBenchFlags in suite.cc for the table the
// parser and usage text are generated from):
//   --full         paper-scale run (default is a fast small-scale run)
//   --scale N      explicit workload scale / trial count, overriding both
//   --jobs N       worker threads for independent trials
//                  (default: all hardware threads; 1 = fully serial)
//   --seed S       base seed overriding the bench's built-in one; per-row
//                  seeds derive from it via ftx::DeriveTrialSeed
//   --json PATH    write machine-readable results (ftx.bench-results JSON)
//   --trace PATH   write a Chrome trace_event JSON of the traced run
//   --timeseries PATH  write the traced run's simulated-time telemetry as
//                  ftx.timeseries JSONL (src/obs/tsdb/; same last-row rule
//                  as --trace)
//   --audit        enable the live causal audit (src/obs/causal/) on every
//                  recoverable run; rows report it under "audit"
//   --repeat N     host-time repetitions for wall-clock rows; rows report
//                  min/median over the samples (simulated rows ignore it)
//   --prof PATH    write a collapsed-stack host-time profile of the run
//                  (ftx::prof; FlameGraph / speedscope compatible)
//   --backend B    execution backend for benches that support the ftx::env
//                  seam: sim | threads (default: the bench's own choice —
//                  backend_equiv runs both and byte-compares)
//   --batch N      group-commit window size for DC-disk runs (records per
//                  sync window; 0 or 1 = the one-sync-pair-per-commit path)
//   --shards N     partitioned event-engine shard count for benches that
//                  build fleet-scale computations (results byte-identical
//                  for every value; 0 = the bench's own choice)
//   --log-level L  error|warning|info|debug (default warning)
// Unknown flags, missing values, and bad --log-level names print the usage
// table and exit 2.
struct BenchOptions {
  bool full_scale = false;
  int scale_override = 0;
  int jobs = 0;       // 0 = hardware concurrency
  uint64_t seed = 0;  // 0 = use the bench's built-in seeds
  std::string json_path;
  std::string trace_path;
  std::string timeseries_path;
  bool audit = false;
  int repeat = 1;          // wall-clock repetitions (clamped to >= 1)
  std::string prof_path;   // collapsed-stack profile output; empty = prof off
  std::string backend;    // "sim" | "threads"; empty = the bench's default
  int64_t batch = 0;      // group-commit window size; <= 1 = batching off
  int shards = 0;         // event-engine shards; 0 = the bench's own choice
  std::string log_level;  // as given; applied via ftx::SetLogLevel at parse
};

BenchOptions ParseBenchOptions(int argc, char** argv);

// The generated usage table (tests pin that every kBenchFlags entry renders).
std::string BenchUsageText(const char* argv0);

// printf into a std::string (rows build their console text with this).
std::string Sprintf(const char* format, ...) __attribute__((format(printf, 1, 2)));

// Aggregation for --repeat wall-clock samples. Min is the canonical "best
// case, least noise" statistic; median is robust to a slow outlier run.
// Both FTX_CHECK on an empty vector.
double MinOf(const std::vector<double>& samples);
double MedianOf(std::vector<double> samples);

// What one row hands back to the suite.
struct RowResult {
  // Printed verbatim at the row's declaration position (include newlines).
  std::string console;
  // Appended to the results file in declaration order.
  std::vector<ftx_obs::Json> json;
  // Numbers for Summarize items (e.g. per-app fractions to average).
  std::vector<double> values;
};

// What the suite hands each row.
struct RowContext {
  ftx::TrialPool* pool = nullptr;  // shared pool; shard further through it
  const BenchOptions* options = nullptr;
  int row_index = 0;       // declaration index among rows
  std::string trace_path;  // non-empty only for the row that traces
  std::string timeseries_path;  // non-empty only for the row that samples

  // The bench's built-in seed, unless --seed was given — then a per-row
  // seed derived from it (so rows never share an overridden seed).
  uint64_t SeedOr(uint64_t bench_default) const;
};

class Suite {
 public:
  // `bench_name` names the results file ("fig8_nvi", ...). The pool is
  // created from options.jobs and shared by every row.
  Suite(const std::string& bench_name, const BenchOptions& options);

  const BenchOptions& options() const { return options_; }
  ftx::TrialPool& pool() { return pool_; }

  // Bench-level context for the results file ("scale", "seed", ...).
  void SetMeta(const std::string& key, ftx_obs::Json value);

  // Console text printed verbatim at this position (include newlines).
  void Text(std::string text);

  // One measurement row; `fn` runs on the pool and must confine its state.
  void AddRow(std::function<RowResult(RowContext&)> fn);

  // Runs after every row has finished; receives all RowResults in
  // declaration order and returns console text for this position.
  void Summarize(std::function<std::string(const std::vector<RowResult>&)> fn);

  // Computes all rows on the pool, renders everything in declaration
  // order, and writes the --json file if requested. Returns the process
  // exit code, so mains end with `return suite.Run();`.
  int Run();

 private:
  struct Item {
    enum class Kind { kText, kRow, kSummarize };
    Kind kind = Kind::kText;
    std::string text;
    std::function<RowResult(RowContext&)> row_fn;
    std::function<std::string(const std::vector<RowResult>&)> summarize_fn;
    int row_index = 0;  // kRow: index into the computed results
  };

  BenchOptions options_;
  ftx::TrialPool pool_;
  ftx_obs::ResultsFile results_;
  std::vector<Item> items_;
  int num_rows_ = 0;
};

}  // namespace ftx_bench

#endif  // FTX_BENCH_SUITE_H_
