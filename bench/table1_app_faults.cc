// Table 1: fraction of application faults in nvi and postgres that violate
// Lose-work by committing after the fault is activated.
//
// Paper reference points (≈50 crashes per fault type, CPVS on Discount
// Checking):
//                        nvi    postgres
//   stack bit flip        0%        35%
//   heap bit flip        83%        92%
//   destination reg      18%         0%
//   initialization        4%         6%
//   delete branch        81%        86%
//   delete instruction   51%        13%
//   off by one           24%         0%
//   average              37%        33%
//
// Every run also performs the paper's end-to-end cross-check: recovery
// (with the fault suppressed) succeeds iff the run did not commit after
// activation. The "agree" column reports how often the trace-level
// measurement and the end-to-end outcome matched (expected: always).

#include <string>

#include "bench/bench_util.h"
#include "src/core/fault_study.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int crashes = options.scale_override > 0 ? options.scale_override : 50;

  ftx_bench::Suite suite("table1_app_faults", options);
  suite.SetMeta("crashes_per_type", crashes);

  suite.Text(ftx_bench::Sprintf(
      "================================================================\n"
      "Table 1: application faults violating Lose-work (%d crashes/type)\n"
      "%-20s %12s %12s\n"
      "----------------------------------------------------------------\n",
      crashes, "fault type", "nvi", "postgres"));

  for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
    suite.AddRow([type, crashes](ftx_bench::RowContext& ctx) {
      ftx_bench::RowResult result;
      double fractions[2];
      int i = 0;
      for (const char* app : {"nvi", "postgres"}) {
        ftx::FaultStudySpec spec;
        spec.app = app;
        spec.type = type;
        spec.kind = ftx::FaultStudyKind::kApplication;
        spec.target_crashes = crashes;
        spec.seed_base = ctx.SeedOr(1000 + static_cast<uint64_t>(type) * 977);
        spec.pool = ctx.pool;
        spec.audit = ctx.options->audit;
        ftx::FaultStudyRow row = ftx::RunFaultStudy(spec);
        fractions[i++] = row.violation_fraction;
        result.values.push_back(row.violation_fraction);
        ftx_obs::Json json_row = ftx_obs::Json::Object();
        json_row.Set("workload", app);
        json_row.Set("fault_type", std::string(ftx_fault::FaultTypeName(type)));
        json_row.Set("crashes", row.crashes);
        json_row.Set("violations", row.violations);
        json_row.Set("violation_fraction", row.violation_fraction);
        if (row.audited) {
          ftx_obs::Json audit = ftx_obs::Json::Object();
          audit.Set("schema_version", ftx_causal::kCausalAuditSchemaVersion);
          audit.Set("violations", row.audit_violations);
          audit.Set("incidents_total", row.audit_incidents);
          ftx_obs::Json dumps = ftx_obs::Json::Array();
          for (const std::string& dump : row.audit_incident_dumps) {
            dumps.Push(dump);
          }
          audit.Set("incident_dumps", std::move(dumps));
          json_row.Set("audit", std::move(audit));
        }
        result.json.push_back(std::move(json_row));
      }
      result.console = ftx_bench::Sprintf(
          "%-20s %11.0f%% %11.0f%%\n", std::string(ftx_fault::FaultTypeName(type)).c_str(),
          100 * fractions[0], 100 * fractions[1]);
      return result;
    });
  }

  suite.Summarize([](const std::vector<ftx_bench::RowResult>& rows) {
    double sums[2] = {0, 0};
    for (const ftx_bench::RowResult& row : rows) {
      sums[0] += row.values[0];
      sums[1] += row.values[1];
    }
    return ftx_bench::Sprintf("%-20s %11.0f%% %11.0f%%\n", "average",
                              100 * sums[0] / ftx_fault::kNumFaultTypes,
                              100 * sums[1] / ftx_fault::kNumFaultTypes);
  });
  return suite.Run();
}
