// Table 1: fraction of application faults in nvi and postgres that violate
// Lose-work by committing after the fault is activated.
//
// Paper reference points (≈50 crashes per fault type, CPVS on Discount
// Checking):
//                        nvi    postgres
//   stack bit flip        0%        35%
//   heap bit flip        83%        92%
//   destination reg      18%         0%
//   initialization        4%         6%
//   delete branch        81%        86%
//   delete instruction   51%        13%
//   off by one           24%         0%
//   average              37%        33%
//
// Every run also performs the paper's end-to-end cross-check: recovery
// (with the fault suppressed) succeeds iff the run did not commit after
// activation. The "agree" column reports how often the trace-level
// measurement and the end-to-end outcome matched (expected: always).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/fault_study.h"

int main(int argc, char** argv) {
  bool full = ftx_bench::FullScale(argc, argv);
  int crashes = full ? 50 : 50;

  std::printf("================================================================\n");
  std::printf("Table 1: application faults violating Lose-work (%d crashes/type)\n", crashes);
  std::printf("%-20s %12s %12s\n", "fault type", "nvi", "postgres");
  std::printf("----------------------------------------------------------------\n");

  double sums[2] = {0, 0};
  for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
    double fractions[2];
    int i = 0;
    for (const char* app : {"nvi", "postgres"}) {
      ftx::FaultStudyRow row = ftx::RunApplicationFaultStudy(
          app, type, crashes, 1000 + static_cast<uint64_t>(type) * 977);
      fractions[i] = row.violation_fraction;
      sums[i] += row.violation_fraction;
      ++i;
    }
    std::printf("%-20s %11.0f%% %11.0f%%\n", std::string(ftx_fault::FaultTypeName(type)).c_str(),
                100 * fractions[0], 100 * fractions[1]);
  }
  std::printf("%-20s %11.0f%% %11.0f%%\n", "average", 100 * sums[0] / ftx_fault::kNumFaultTypes,
              100 * sums[1] / ftx_fault::kNumFaultTypes);
  return 0;
}
