// Table 2: percent of operating-system faults after which nvi and postgres
// failed to recover.
//
// Paper reference points (≈50 crashes per fault type):
//                        nvi    postgres
//   stack bit flip       12%        10%
//   heap bit flip         8%         6%
//   destination reg      10%         0%
//   initialization       16%         0%
//   delete branch        26%         4%
//   delete instruction   12%         4%
//   off by one           22%         0%
//   average              15%         3%
//
// The averages imply that ~41% of system failures manifest as propagation
// failures for nvi and ~10% for postgres (nvi syscalls ~10x as often); the
// rest are stop failures, from which recovery always succeeds.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/fault_study.h"

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);
  int crashes = options.scale_override > 0 ? options.scale_override : 50;

  ftx_obs::ResultsFile results("table2_os_faults");
  results.SetFullScale(options.full_scale);
  results.SetMeta("crashes_per_type", crashes);

  std::printf("================================================================\n");
  std::printf("Table 2: OS faults with failed recovery (%d crashes/type)\n", crashes);
  std::printf("%-20s %12s %12s\n", "fault type", "nvi", "postgres");
  std::printf("----------------------------------------------------------------\n");

  double sums[2] = {0, 0};
  for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
    double fractions[2];
    int i = 0;
    for (const char* app : {"nvi", "postgres"}) {
      ftx::FaultStudyRow row = ftx::RunOsFaultStudy(app, type, crashes,
                                                    5000 + static_cast<uint64_t>(type) * 977);
      fractions[i] = row.failed_recovery_fraction;
      sums[i] += row.failed_recovery_fraction;
      ++i;
      ftx_obs::Json json_row = ftx_obs::Json::Object();
      json_row.Set("workload", app);
      json_row.Set("fault_type", std::string(ftx_fault::FaultTypeName(type)));
      json_row.Set("crashes", row.crashes);
      json_row.Set("failed_recoveries", row.failed_recoveries);
      json_row.Set("failed_recovery_fraction", row.failed_recovery_fraction);
      results.AddRow(std::move(json_row));
    }
    std::printf("%-20s %11.0f%% %11.0f%%\n", std::string(ftx_fault::FaultTypeName(type)).c_str(),
                100 * fractions[0], 100 * fractions[1]);
  }
  std::printf("%-20s %11.0f%% %11.0f%%\n", "average", 100 * sums[0] / ftx_fault::kNumFaultTypes,
              100 * sums[1] / ftx_fault::kNumFaultTypes);
  return ftx_bench::FinishBench(results, options);
}
