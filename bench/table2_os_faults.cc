// Table 2: percent of operating-system faults after which nvi and postgres
// failed to recover.
//
// Paper reference points (≈50 crashes per fault type):
//                        nvi    postgres
//   stack bit flip       12%        10%
//   heap bit flip         8%         6%
//   destination reg      10%         0%
//   initialization       16%         0%
//   delete branch        26%         4%
//   delete instruction   12%         4%
//   off by one           22%         0%
//   average              15%         3%
//
// The averages imply that ~41% of system failures manifest as propagation
// failures for nvi and ~10% for postgres (nvi syscalls ~10x as often); the
// rest are stop failures, from which recovery always succeeds.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/fault_study.h"

int main(int argc, char** argv) {
  bool full = ftx_bench::FullScale(argc, argv);
  int crashes = full ? 50 : 50;

  std::printf("================================================================\n");
  std::printf("Table 2: OS faults with failed recovery (%d crashes/type)\n", crashes);
  std::printf("%-20s %12s %12s\n", "fault type", "nvi", "postgres");
  std::printf("----------------------------------------------------------------\n");

  double sums[2] = {0, 0};
  for (ftx_fault::FaultType type : ftx_fault::AllFaultTypes()) {
    double fractions[2];
    int i = 0;
    for (const char* app : {"nvi", "postgres"}) {
      ftx::FaultStudyRow row = ftx::RunOsFaultStudy(app, type, crashes,
                                                    5000 + static_cast<uint64_t>(type) * 977);
      fractions[i] = row.failed_recovery_fraction;
      sums[i] += row.failed_recovery_fraction;
      ++i;
    }
    std::printf("%-20s %11.0f%% %11.0f%%\n", std::string(ftx_fault::FaultTypeName(type)).c_str(),
                100 * fractions[0], 100 * fractions[1]);
  }
  std::printf("%-20s %11.0f%% %11.0f%%\n", "average", 100 * sums[0] / ftx_fault::kNumFaultTypes,
              100 * sums[1] / ftx_fault::kNumFaultTypes);
  return 0;
}
