// Crash-state torture of the DC-disk commit path (see docs/TORTURE.md).
//
// Default (smoke) mode explores nvi and magic at reduced depth — a bounded
// number of commit windows — so the run fits in CTest. --full explores
// every commit window of all four Fig. 8 workloads: every prefix of the
// sector-level write trace, plus torn-final-sector and reorder-within-
// barrier variants, each decoded like a rebooted machine and replayed
// through recovery against the consistency oracle.
//
// The process exits nonzero if any explored crash state violates the
// Save-work invariant, so CI can gate on the binary directly as well as on
// the "violations" field of the --json report.

#include <atomic>

#include "bench/suite.h"
#include "src/torture/torture.h"

namespace {

struct WorkloadDepth {
  const char* workload;
  int smoke_scale;          // workload scale in smoke mode
  int smoke_windows;        // commit-window cap in smoke mode (0 = all)
  int full_scale;           // workload scale under --full (0 = default)
};

// Full mode explores every window ("0"), at scales that keep the quadratic
// decode sweep (states x committed bytes) within a few minutes total.
constexpr WorkloadDepth kDepths[] = {
    {"nvi", 40, 10, 150},
    {"magic", 12, 10, 60},
    {"xpilot", 0, 0, 60},
    {"treadmarks", 0, 0, 12},
};

}  // namespace

int main(int argc, char** argv) {
  ftx_bench::BenchOptions options = ftx_bench::ParseBenchOptions(argc, argv);

  ftx_bench::Suite suite("torture_commit", options);
  suite.SetMeta("mode", options.full_scale ? "full" : "smoke");
  suite.SetMeta("seed", 29);
  suite.SetMeta("batch", options.batch > 1 ? options.batch : 1);

  suite.Text(
      "================================================================\n"
      "Crash-state torture: DC-disk commit/recovery write path\n"
      "Save-work invariant over every enumerated crash state\n"
      "workload         states   survivors(c/i/n)  replays  violations\n"
      "----------------------------------------------------------------\n");

  std::atomic<long long> total_violations{0};
  for (const WorkloadDepth& depth : kDepths) {
    const bool full = options.full_scale;
    if (!full && depth.smoke_scale == 0) {
      continue;  // smoke mode tortures nvi + magic only
    }
    suite.AddRow([&total_violations, depth, full](ftx_bench::RowContext& ctx) {
      ftx_torture::TortureSpec spec;
      spec.workload = depth.workload;
      spec.seed = ctx.SeedOr(29);
      if (ctx.options->scale_override > 0) {
        spec.scale = ctx.options->scale_override;
        spec.max_commit_windows = 0;
      } else if (full) {
        spec.scale = depth.full_scale;
        spec.max_commit_windows = 0;
      } else {
        spec.scale = depth.smoke_scale;
        spec.max_commit_windows = depth.smoke_windows;
      }

      spec.audit = ctx.options->audit;
      // --batch N > 1: torture the group-commit pipeline instead of the
      // one-sync-pair-per-commit path (batched window shapes end to end).
      // CPVS commits right before every visible/send event, which the
      // pipeline also flushes on, so its windows stay singletons; CAND
      // commits after each ND event and accumulates genuine multi-record
      // windows between output flushes — the shapes worth torturing.
      spec.batch_records = ctx.options->batch > 1 ? ctx.options->batch : 1;
      if (spec.batch_records > 1) {
        spec.protocol = "cand";
      }

      ftx_torture::TortureReport report = ftx_torture::ExploreCommitPath(spec, ctx.pool);
      total_violations.fetch_add(report.violations + report.audit_violations,
                                 std::memory_order_relaxed);

      ftx_bench::RowResult result;
      result.console = ftx_bench::Sprintf(
          "%-12s %10lld   %6lld/%lld/%lld %8lld %11lld%s\n", report.workload.c_str(),
          static_cast<long long>(report.crash_states),
          static_cast<long long>(report.survivor_committed),
          static_cast<long long>(report.survivor_inflight),
          static_cast<long long>(report.survivor_none), static_cast<long long>(report.replays),
          static_cast<long long>(report.violations), report.ok() ? "" : "  <-- VIOLATION");
      result.json.push_back(report.ToJsonRow());
      return result;
    });
  }

  suite.Summarize([](const std::vector<ftx_bench::RowResult>&) {
    return std::string(
        "----------------------------------------------------------------\n"
        "survivors(c/i/n): last-committed / in-flight-slot-landed / none\n");
  });

  int exit_code = suite.Run();
  if (total_violations.load(std::memory_order_relaxed) != 0) {
    return 1;
  }
  return exit_code;
}
