file(REMOVE_RECURSE
  "CMakeFiles/ablation_crash_latency.dir/ablation_crash_latency.cc.o"
  "CMakeFiles/ablation_crash_latency.dir/ablation_crash_latency.cc.o.d"
  "ablation_crash_latency"
  "ablation_crash_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crash_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
