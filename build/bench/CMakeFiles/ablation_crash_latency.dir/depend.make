# Empty dependencies file for ablation_crash_latency.
# This may be replaced when dependencies are built.
