file(REMOVE_RECURSE
  "CMakeFiles/ablation_protocol_faults.dir/ablation_protocol_faults.cc.o"
  "CMakeFiles/ablation_protocol_faults.dir/ablation_protocol_faults.cc.o.d"
  "ablation_protocol_faults"
  "ablation_protocol_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_protocol_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
