# Empty compiler generated dependencies file for ablation_protocol_faults.
# This may be replaced when dependencies are built.
