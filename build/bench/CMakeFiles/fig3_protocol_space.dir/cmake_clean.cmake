file(REMOVE_RECURSE
  "CMakeFiles/fig3_protocol_space.dir/fig3_protocol_space.cc.o"
  "CMakeFiles/fig3_protocol_space.dir/fig3_protocol_space.cc.o.d"
  "fig3_protocol_space"
  "fig3_protocol_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_protocol_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
