# Empty compiler generated dependencies file for fig3_protocol_space.
# This may be replaced when dependencies are built.
