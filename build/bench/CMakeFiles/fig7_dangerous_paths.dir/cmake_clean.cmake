file(REMOVE_RECURSE
  "CMakeFiles/fig7_dangerous_paths.dir/fig7_dangerous_paths.cc.o"
  "CMakeFiles/fig7_dangerous_paths.dir/fig7_dangerous_paths.cc.o.d"
  "fig7_dangerous_paths"
  "fig7_dangerous_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dangerous_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
