# Empty compiler generated dependencies file for fig7_dangerous_paths.
# This may be replaced when dependencies are built.
