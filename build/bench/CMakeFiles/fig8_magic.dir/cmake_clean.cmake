file(REMOVE_RECURSE
  "CMakeFiles/fig8_magic.dir/fig8_magic.cc.o"
  "CMakeFiles/fig8_magic.dir/fig8_magic.cc.o.d"
  "fig8_magic"
  "fig8_magic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_magic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
