# Empty compiler generated dependencies file for fig8_magic.
# This may be replaced when dependencies are built.
