file(REMOVE_RECURSE
  "CMakeFiles/fig8_nvi.dir/fig8_nvi.cc.o"
  "CMakeFiles/fig8_nvi.dir/fig8_nvi.cc.o.d"
  "fig8_nvi"
  "fig8_nvi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_nvi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
