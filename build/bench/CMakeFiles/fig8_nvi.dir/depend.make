# Empty dependencies file for fig8_nvi.
# This may be replaced when dependencies are built.
