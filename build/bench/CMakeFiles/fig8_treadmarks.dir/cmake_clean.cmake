file(REMOVE_RECURSE
  "CMakeFiles/fig8_treadmarks.dir/fig8_treadmarks.cc.o"
  "CMakeFiles/fig8_treadmarks.dir/fig8_treadmarks.cc.o.d"
  "fig8_treadmarks"
  "fig8_treadmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_treadmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
