# Empty compiler generated dependencies file for fig8_treadmarks.
# This may be replaced when dependencies are built.
