file(REMOVE_RECURSE
  "CMakeFiles/fig8_xpilot.dir/fig8_xpilot.cc.o"
  "CMakeFiles/fig8_xpilot.dir/fig8_xpilot.cc.o.d"
  "fig8_xpilot"
  "fig8_xpilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_xpilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
