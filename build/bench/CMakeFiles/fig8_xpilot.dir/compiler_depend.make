# Empty compiler generated dependencies file for fig8_xpilot.
# This may be replaced when dependencies are built.
