file(REMOVE_RECURSE
  "CMakeFiles/micro_commit.dir/micro_commit.cc.o"
  "CMakeFiles/micro_commit.dir/micro_commit.cc.o.d"
  "micro_commit"
  "micro_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
