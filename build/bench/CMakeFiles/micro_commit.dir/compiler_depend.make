# Empty compiler generated dependencies file for micro_commit.
# This may be replaced when dependencies are built.
