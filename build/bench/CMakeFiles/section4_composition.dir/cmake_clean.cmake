file(REMOVE_RECURSE
  "CMakeFiles/section4_composition.dir/section4_composition.cc.o"
  "CMakeFiles/section4_composition.dir/section4_composition.cc.o.d"
  "section4_composition"
  "section4_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section4_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
