# Empty compiler generated dependencies file for section4_composition.
# This may be replaced when dependencies are built.
