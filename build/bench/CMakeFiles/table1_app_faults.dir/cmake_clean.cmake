file(REMOVE_RECURSE
  "CMakeFiles/table1_app_faults.dir/table1_app_faults.cc.o"
  "CMakeFiles/table1_app_faults.dir/table1_app_faults.cc.o.d"
  "table1_app_faults"
  "table1_app_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_app_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
