# Empty dependencies file for table1_app_faults.
# This may be replaced when dependencies are built.
