file(REMOVE_RECURSE
  "CMakeFiles/table2_os_faults.dir/table2_os_faults.cc.o"
  "CMakeFiles/table2_os_faults.dir/table2_os_faults.cc.o.d"
  "table2_os_faults"
  "table2_os_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_os_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
