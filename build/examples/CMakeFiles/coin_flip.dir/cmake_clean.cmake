file(REMOVE_RECURSE
  "CMakeFiles/coin_flip.dir/coin_flip.cpp.o"
  "CMakeFiles/coin_flip.dir/coin_flip.cpp.o.d"
  "coin_flip"
  "coin_flip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coin_flip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
