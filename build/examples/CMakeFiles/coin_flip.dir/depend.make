# Empty dependencies file for coin_flip.
# This may be replaced when dependencies are built.
