
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dangerous_paths.cpp" "examples/CMakeFiles/dangerous_paths.dir/dangerous_paths.cpp.o" "gcc" "examples/CMakeFiles/dangerous_paths.dir/dangerous_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ftx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ftx_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/ftx_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/ftx_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vista/CMakeFiles/ftx_vista.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ftx_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/ftx_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/ftx_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/ftx_statemachine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
