file(REMOVE_RECURSE
  "CMakeFiles/dangerous_paths.dir/dangerous_paths.cpp.o"
  "CMakeFiles/dangerous_paths.dir/dangerous_paths.cpp.o.d"
  "dangerous_paths"
  "dangerous_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dangerous_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
