# Empty dependencies file for dangerous_paths.
# This may be replaced when dependencies are built.
