# Empty dependencies file for distributed_game.
# This may be replaced when dependencies are built.
