file(REMOVE_RECURSE
  "CMakeFiles/domino_effect.dir/domino_effect.cpp.o"
  "CMakeFiles/domino_effect.dir/domino_effect.cpp.o.d"
  "domino_effect"
  "domino_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
