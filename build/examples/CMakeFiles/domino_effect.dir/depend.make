# Empty dependencies file for domino_effect.
# This may be replaced when dependencies are built.
