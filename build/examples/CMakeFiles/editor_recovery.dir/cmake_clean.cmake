file(REMOVE_RECURSE
  "CMakeFiles/editor_recovery.dir/editor_recovery.cpp.o"
  "CMakeFiles/editor_recovery.dir/editor_recovery.cpp.o.d"
  "editor_recovery"
  "editor_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/editor_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
