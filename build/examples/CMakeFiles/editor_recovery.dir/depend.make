# Empty dependencies file for editor_recovery.
# This may be replaced when dependencies are built.
