file(REMOVE_RECURSE
  "CMakeFiles/ftx_run.dir/ftx_run.cpp.o"
  "CMakeFiles/ftx_run.dir/ftx_run.cpp.o.d"
  "ftx_run"
  "ftx_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
