# Empty compiler generated dependencies file for ftx_run.
# This may be replaced when dependencies are built.
