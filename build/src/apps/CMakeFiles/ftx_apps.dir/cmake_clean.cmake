file(REMOVE_RECURSE
  "CMakeFiles/ftx_apps.dir/magic.cc.o"
  "CMakeFiles/ftx_apps.dir/magic.cc.o.d"
  "CMakeFiles/ftx_apps.dir/nvi.cc.o"
  "CMakeFiles/ftx_apps.dir/nvi.cc.o.d"
  "CMakeFiles/ftx_apps.dir/postgres.cc.o"
  "CMakeFiles/ftx_apps.dir/postgres.cc.o.d"
  "CMakeFiles/ftx_apps.dir/treadmarks.cc.o"
  "CMakeFiles/ftx_apps.dir/treadmarks.cc.o.d"
  "CMakeFiles/ftx_apps.dir/workloads.cc.o"
  "CMakeFiles/ftx_apps.dir/workloads.cc.o.d"
  "CMakeFiles/ftx_apps.dir/xpilot.cc.o"
  "CMakeFiles/ftx_apps.dir/xpilot.cc.o.d"
  "libftx_apps.a"
  "libftx_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
