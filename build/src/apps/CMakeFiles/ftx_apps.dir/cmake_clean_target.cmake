file(REMOVE_RECURSE
  "libftx_apps.a"
)
