# Empty dependencies file for ftx_apps.
# This may be replaced when dependencies are built.
