file(REMOVE_RECURSE
  "CMakeFiles/ftx_checkpoint.dir/app.cc.o"
  "CMakeFiles/ftx_checkpoint.dir/app.cc.o.d"
  "CMakeFiles/ftx_checkpoint.dir/runtime.cc.o"
  "CMakeFiles/ftx_checkpoint.dir/runtime.cc.o.d"
  "libftx_checkpoint.a"
  "libftx_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
