file(REMOVE_RECURSE
  "libftx_checkpoint.a"
)
