# Empty dependencies file for ftx_checkpoint.
# This may be replaced when dependencies are built.
