file(REMOVE_RECURSE
  "CMakeFiles/ftx_common.dir/bytes.cc.o"
  "CMakeFiles/ftx_common.dir/bytes.cc.o.d"
  "CMakeFiles/ftx_common.dir/check.cc.o"
  "CMakeFiles/ftx_common.dir/check.cc.o.d"
  "CMakeFiles/ftx_common.dir/crc32.cc.o"
  "CMakeFiles/ftx_common.dir/crc32.cc.o.d"
  "CMakeFiles/ftx_common.dir/log.cc.o"
  "CMakeFiles/ftx_common.dir/log.cc.o.d"
  "CMakeFiles/ftx_common.dir/rng.cc.o"
  "CMakeFiles/ftx_common.dir/rng.cc.o.d"
  "CMakeFiles/ftx_common.dir/sim_time.cc.o"
  "CMakeFiles/ftx_common.dir/sim_time.cc.o.d"
  "CMakeFiles/ftx_common.dir/status.cc.o"
  "CMakeFiles/ftx_common.dir/status.cc.o.d"
  "libftx_common.a"
  "libftx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
