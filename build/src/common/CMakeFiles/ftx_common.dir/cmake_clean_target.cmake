file(REMOVE_RECURSE
  "libftx_common.a"
)
