# Empty compiler generated dependencies file for ftx_common.
# This may be replaced when dependencies are built.
