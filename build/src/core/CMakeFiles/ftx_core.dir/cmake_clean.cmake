file(REMOVE_RECURSE
  "CMakeFiles/ftx_core.dir/computation.cc.o"
  "CMakeFiles/ftx_core.dir/computation.cc.o.d"
  "CMakeFiles/ftx_core.dir/experiment.cc.o"
  "CMakeFiles/ftx_core.dir/experiment.cc.o.d"
  "CMakeFiles/ftx_core.dir/fault_study.cc.o"
  "CMakeFiles/ftx_core.dir/fault_study.cc.o.d"
  "libftx_core.a"
  "libftx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
