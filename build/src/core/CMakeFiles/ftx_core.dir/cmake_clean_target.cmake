file(REMOVE_RECURSE
  "libftx_core.a"
)
