# Empty compiler generated dependencies file for ftx_core.
# This may be replaced when dependencies are built.
