file(REMOVE_RECURSE
  "CMakeFiles/ftx_faults.dir/calibration.cc.o"
  "CMakeFiles/ftx_faults.dir/calibration.cc.o.d"
  "CMakeFiles/ftx_faults.dir/fault_types.cc.o"
  "CMakeFiles/ftx_faults.dir/fault_types.cc.o.d"
  "CMakeFiles/ftx_faults.dir/injector.cc.o"
  "CMakeFiles/ftx_faults.dir/injector.cc.o.d"
  "CMakeFiles/ftx_faults.dir/os_faults.cc.o"
  "CMakeFiles/ftx_faults.dir/os_faults.cc.o.d"
  "libftx_faults.a"
  "libftx_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
