file(REMOVE_RECURSE
  "libftx_faults.a"
)
