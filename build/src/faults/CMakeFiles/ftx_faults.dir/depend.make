# Empty dependencies file for ftx_faults.
# This may be replaced when dependencies are built.
