
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/protocol.cc" "src/protocol/CMakeFiles/ftx_protocol.dir/protocol.cc.o" "gcc" "src/protocol/CMakeFiles/ftx_protocol.dir/protocol.cc.o.d"
  "/root/repo/src/protocol/protocol2.cc" "src/protocol/CMakeFiles/ftx_protocol.dir/protocol2.cc.o" "gcc" "src/protocol/CMakeFiles/ftx_protocol.dir/protocol2.cc.o.d"
  "/root/repo/src/protocol/protocol_space.cc" "src/protocol/CMakeFiles/ftx_protocol.dir/protocol_space.cc.o" "gcc" "src/protocol/CMakeFiles/ftx_protocol.dir/protocol_space.cc.o.d"
  "/root/repo/src/protocol/script_replay.cc" "src/protocol/CMakeFiles/ftx_protocol.dir/script_replay.cc.o" "gcc" "src/protocol/CMakeFiles/ftx_protocol.dir/script_replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/ftx_statemachine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
