file(REMOVE_RECURSE
  "CMakeFiles/ftx_protocol.dir/protocol.cc.o"
  "CMakeFiles/ftx_protocol.dir/protocol.cc.o.d"
  "CMakeFiles/ftx_protocol.dir/protocol2.cc.o"
  "CMakeFiles/ftx_protocol.dir/protocol2.cc.o.d"
  "CMakeFiles/ftx_protocol.dir/protocol_space.cc.o"
  "CMakeFiles/ftx_protocol.dir/protocol_space.cc.o.d"
  "CMakeFiles/ftx_protocol.dir/script_replay.cc.o"
  "CMakeFiles/ftx_protocol.dir/script_replay.cc.o.d"
  "libftx_protocol.a"
  "libftx_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
