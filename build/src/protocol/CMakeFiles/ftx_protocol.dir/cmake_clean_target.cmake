file(REMOVE_RECURSE
  "libftx_protocol.a"
)
