# Empty dependencies file for ftx_protocol.
# This may be replaced when dependencies are built.
