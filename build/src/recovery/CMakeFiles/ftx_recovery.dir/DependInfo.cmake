
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/consistency.cc" "src/recovery/CMakeFiles/ftx_recovery.dir/consistency.cc.o" "gcc" "src/recovery/CMakeFiles/ftx_recovery.dir/consistency.cc.o.d"
  "/root/repo/src/recovery/orphan.cc" "src/recovery/CMakeFiles/ftx_recovery.dir/orphan.cc.o" "gcc" "src/recovery/CMakeFiles/ftx_recovery.dir/orphan.cc.o.d"
  "/root/repo/src/recovery/output_recorder.cc" "src/recovery/CMakeFiles/ftx_recovery.dir/output_recorder.cc.o" "gcc" "src/recovery/CMakeFiles/ftx_recovery.dir/output_recorder.cc.o.d"
  "/root/repo/src/recovery/rollback_set.cc" "src/recovery/CMakeFiles/ftx_recovery.dir/rollback_set.cc.o" "gcc" "src/recovery/CMakeFiles/ftx_recovery.dir/rollback_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/statemachine/CMakeFiles/ftx_statemachine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
