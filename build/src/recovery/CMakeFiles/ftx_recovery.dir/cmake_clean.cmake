file(REMOVE_RECURSE
  "CMakeFiles/ftx_recovery.dir/consistency.cc.o"
  "CMakeFiles/ftx_recovery.dir/consistency.cc.o.d"
  "CMakeFiles/ftx_recovery.dir/orphan.cc.o"
  "CMakeFiles/ftx_recovery.dir/orphan.cc.o.d"
  "CMakeFiles/ftx_recovery.dir/output_recorder.cc.o"
  "CMakeFiles/ftx_recovery.dir/output_recorder.cc.o.d"
  "CMakeFiles/ftx_recovery.dir/rollback_set.cc.o"
  "CMakeFiles/ftx_recovery.dir/rollback_set.cc.o.d"
  "libftx_recovery.a"
  "libftx_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
