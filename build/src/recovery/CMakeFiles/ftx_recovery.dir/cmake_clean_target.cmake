file(REMOVE_RECURSE
  "libftx_recovery.a"
)
