# Empty dependencies file for ftx_recovery.
# This may be replaced when dependencies are built.
