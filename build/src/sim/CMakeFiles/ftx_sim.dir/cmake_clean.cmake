file(REMOVE_RECURSE
  "CMakeFiles/ftx_sim.dir/kernel.cc.o"
  "CMakeFiles/ftx_sim.dir/kernel.cc.o.d"
  "CMakeFiles/ftx_sim.dir/network.cc.o"
  "CMakeFiles/ftx_sim.dir/network.cc.o.d"
  "CMakeFiles/ftx_sim.dir/simulator.cc.o"
  "CMakeFiles/ftx_sim.dir/simulator.cc.o.d"
  "libftx_sim.a"
  "libftx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
