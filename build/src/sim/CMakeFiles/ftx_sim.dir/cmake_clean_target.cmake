file(REMOVE_RECURSE
  "libftx_sim.a"
)
