# Empty dependencies file for ftx_sim.
# This may be replaced when dependencies are built.
