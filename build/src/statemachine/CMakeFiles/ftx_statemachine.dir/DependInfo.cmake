
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/statemachine/dangerous_paths.cc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/dangerous_paths.cc.o" "gcc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/dangerous_paths.cc.o.d"
  "/root/repo/src/statemachine/event.cc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/event.cc.o" "gcc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/event.cc.o.d"
  "/root/repo/src/statemachine/graph.cc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/graph.cc.o" "gcc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/graph.cc.o.d"
  "/root/repo/src/statemachine/invariants.cc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/invariants.cc.o" "gcc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/invariants.cc.o.d"
  "/root/repo/src/statemachine/optimal_commits.cc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/optimal_commits.cc.o" "gcc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/optimal_commits.cc.o.d"
  "/root/repo/src/statemachine/random_model.cc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/random_model.cc.o" "gcc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/random_model.cc.o.d"
  "/root/repo/src/statemachine/trace.cc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/trace.cc.o" "gcc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/trace.cc.o.d"
  "/root/repo/src/statemachine/trace_format.cc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/trace_format.cc.o" "gcc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/trace_format.cc.o.d"
  "/root/repo/src/statemachine/vector_clock.cc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/vector_clock.cc.o" "gcc" "src/statemachine/CMakeFiles/ftx_statemachine.dir/vector_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
