file(REMOVE_RECURSE
  "CMakeFiles/ftx_statemachine.dir/dangerous_paths.cc.o"
  "CMakeFiles/ftx_statemachine.dir/dangerous_paths.cc.o.d"
  "CMakeFiles/ftx_statemachine.dir/event.cc.o"
  "CMakeFiles/ftx_statemachine.dir/event.cc.o.d"
  "CMakeFiles/ftx_statemachine.dir/graph.cc.o"
  "CMakeFiles/ftx_statemachine.dir/graph.cc.o.d"
  "CMakeFiles/ftx_statemachine.dir/invariants.cc.o"
  "CMakeFiles/ftx_statemachine.dir/invariants.cc.o.d"
  "CMakeFiles/ftx_statemachine.dir/optimal_commits.cc.o"
  "CMakeFiles/ftx_statemachine.dir/optimal_commits.cc.o.d"
  "CMakeFiles/ftx_statemachine.dir/random_model.cc.o"
  "CMakeFiles/ftx_statemachine.dir/random_model.cc.o.d"
  "CMakeFiles/ftx_statemachine.dir/trace.cc.o"
  "CMakeFiles/ftx_statemachine.dir/trace.cc.o.d"
  "CMakeFiles/ftx_statemachine.dir/trace_format.cc.o"
  "CMakeFiles/ftx_statemachine.dir/trace_format.cc.o.d"
  "CMakeFiles/ftx_statemachine.dir/vector_clock.cc.o"
  "CMakeFiles/ftx_statemachine.dir/vector_clock.cc.o.d"
  "libftx_statemachine.a"
  "libftx_statemachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_statemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
