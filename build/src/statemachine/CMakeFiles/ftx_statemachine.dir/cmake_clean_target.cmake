file(REMOVE_RECURSE
  "libftx_statemachine.a"
)
