# Empty compiler generated dependencies file for ftx_statemachine.
# This may be replaced when dependencies are built.
