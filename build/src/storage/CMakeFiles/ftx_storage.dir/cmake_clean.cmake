file(REMOVE_RECURSE
  "CMakeFiles/ftx_storage.dir/disk_model.cc.o"
  "CMakeFiles/ftx_storage.dir/disk_model.cc.o.d"
  "CMakeFiles/ftx_storage.dir/redo_log.cc.o"
  "CMakeFiles/ftx_storage.dir/redo_log.cc.o.d"
  "CMakeFiles/ftx_storage.dir/undo_log.cc.o"
  "CMakeFiles/ftx_storage.dir/undo_log.cc.o.d"
  "libftx_storage.a"
  "libftx_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
