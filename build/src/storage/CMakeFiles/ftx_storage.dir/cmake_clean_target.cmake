file(REMOVE_RECURSE
  "libftx_storage.a"
)
