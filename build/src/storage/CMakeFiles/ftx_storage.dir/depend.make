# Empty dependencies file for ftx_storage.
# This may be replaced when dependencies are built.
