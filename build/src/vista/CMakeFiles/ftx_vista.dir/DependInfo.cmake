
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vista/heap.cc" "src/vista/CMakeFiles/ftx_vista.dir/heap.cc.o" "gcc" "src/vista/CMakeFiles/ftx_vista.dir/heap.cc.o.d"
  "/root/repo/src/vista/segment.cc" "src/vista/CMakeFiles/ftx_vista.dir/segment.cc.o" "gcc" "src/vista/CMakeFiles/ftx_vista.dir/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ftx_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
