file(REMOVE_RECURSE
  "CMakeFiles/ftx_vista.dir/heap.cc.o"
  "CMakeFiles/ftx_vista.dir/heap.cc.o.d"
  "CMakeFiles/ftx_vista.dir/segment.cc.o"
  "CMakeFiles/ftx_vista.dir/segment.cc.o.d"
  "libftx_vista.a"
  "libftx_vista.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftx_vista.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
