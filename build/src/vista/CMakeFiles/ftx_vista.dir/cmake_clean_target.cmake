file(REMOVE_RECURSE
  "libftx_vista.a"
)
