# Empty compiler generated dependencies file for ftx_vista.
# This may be replaced when dependencies are built.
