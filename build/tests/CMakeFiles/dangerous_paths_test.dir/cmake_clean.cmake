file(REMOVE_RECURSE
  "CMakeFiles/dangerous_paths_test.dir/dangerous_paths_test.cc.o"
  "CMakeFiles/dangerous_paths_test.dir/dangerous_paths_test.cc.o.d"
  "dangerous_paths_test"
  "dangerous_paths_test.pdb"
  "dangerous_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dangerous_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
