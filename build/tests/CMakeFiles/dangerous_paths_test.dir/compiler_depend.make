# Empty compiler generated dependencies file for dangerous_paths_test.
# This may be replaced when dependencies are built.
