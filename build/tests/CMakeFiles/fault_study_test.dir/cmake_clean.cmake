file(REMOVE_RECURSE
  "CMakeFiles/fault_study_test.dir/fault_study_test.cc.o"
  "CMakeFiles/fault_study_test.dir/fault_study_test.cc.o.d"
  "fault_study_test"
  "fault_study_test.pdb"
  "fault_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
