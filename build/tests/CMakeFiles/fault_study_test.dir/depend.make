# Empty dependencies file for fault_study_test.
# This may be replaced when dependencies are built.
