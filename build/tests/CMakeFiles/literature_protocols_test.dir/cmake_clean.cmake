file(REMOVE_RECURSE
  "CMakeFiles/literature_protocols_test.dir/literature_protocols_test.cc.o"
  "CMakeFiles/literature_protocols_test.dir/literature_protocols_test.cc.o.d"
  "literature_protocols_test"
  "literature_protocols_test.pdb"
  "literature_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literature_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
