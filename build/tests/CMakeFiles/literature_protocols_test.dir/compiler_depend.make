# Empty compiler generated dependencies file for literature_protocols_test.
# This may be replaced when dependencies are built.
