file(REMOVE_RECURSE
  "CMakeFiles/optimal_commits_test.dir/optimal_commits_test.cc.o"
  "CMakeFiles/optimal_commits_test.dir/optimal_commits_test.cc.o.d"
  "optimal_commits_test"
  "optimal_commits_test.pdb"
  "optimal_commits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_commits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
