file(REMOVE_RECURSE
  "CMakeFiles/partial_commit_test.dir/partial_commit_test.cc.o"
  "CMakeFiles/partial_commit_test.dir/partial_commit_test.cc.o.d"
  "partial_commit_test"
  "partial_commit_test.pdb"
  "partial_commit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_commit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
