# Empty compiler generated dependencies file for partial_commit_test.
# This may be replaced when dependencies are built.
