file(REMOVE_RECURSE
  "CMakeFiles/rio_necessity_test.dir/rio_necessity_test.cc.o"
  "CMakeFiles/rio_necessity_test.dir/rio_necessity_test.cc.o.d"
  "rio_necessity_test"
  "rio_necessity_test.pdb"
  "rio_necessity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_necessity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
