file(REMOVE_RECURSE
  "CMakeFiles/rollback_set_test.dir/rollback_set_test.cc.o"
  "CMakeFiles/rollback_set_test.dir/rollback_set_test.cc.o.d"
  "rollback_set_test"
  "rollback_set_test.pdb"
  "rollback_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
