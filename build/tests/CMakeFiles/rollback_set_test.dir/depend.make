# Empty dependencies file for rollback_set_test.
# This may be replaced when dependencies are built.
