file(REMOVE_RECURSE
  "CMakeFiles/vista_test.dir/vista_test.cc.o"
  "CMakeFiles/vista_test.dir/vista_test.cc.o.d"
  "vista_test"
  "vista_test.pdb"
  "vista_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
