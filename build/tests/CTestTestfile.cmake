# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/statemachine_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/dangerous_paths_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/vista_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fault_study_test[1]_include.cmake")
include("/root/repo/build/tests/literature_protocols_test[1]_include.cmake")
include("/root/repo/build/tests/rollback_set_test[1]_include.cmake")
include("/root/repo/build/tests/partial_commit_test[1]_include.cmake")
include("/root/repo/build/tests/crosscheck_test[1]_include.cmake")
include("/root/repo/build/tests/rio_necessity_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/optimal_commits_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
