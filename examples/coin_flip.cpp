// Figure 1: the coin-flip application, or why non-determinism is the enemy
// of consistent recovery.
//
// The app flips a coin (a transient ND event) and prints the outcome. If a
// failure strikes after the print and the app recovers WITHOUT having
// committed the flip, reexecution may flip the other way and print the
// other face — the user has now seen both "heads" and "tails", an output no
// failure-free run produces. With CAND (commit-after-non-deterministic),
// the flip is preserved and recovery reprints the same face.
//
//   ./examples/coin_flip

#include <cstdio>
#include <memory>

#include "src/core/computation.h"
#include "src/statemachine/invariants.h"

namespace {

class CoinFlipApp : public ftx_dc::App {
 public:
  std::string_view name() const override { return "coin-flip"; }
  size_t SegmentBytes() const override { return 16 * 1024; }

  void Init(ftx_dc::ProcessEnv& env) override {
    env.segment().WriteValue<int32_t>(0, 0);  // phase
  }

  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override {
    int32_t phase = env.segment().Read<int32_t>(0);
    if (phase == 0) {
      // The non-deterministic event: the low bit of the wall clock.
      ftx::TimePoint t = env.GetTimeOfDay();
      int32_t face = static_cast<int32_t>(t.nanos() & 1);
      env.segment().WriteValue<int32_t>(4, face);
      env.segment().WriteValue<int32_t>(0, 1);
      return {ftx_dc::StepOutcome::Status::kContinue, ftx::Milliseconds(1)};
    }
    if (phase == 1) {
      int32_t face = env.segment().Read<int32_t>(4);
      const char* text = face != 0 ? "heads" : "tails";
      env.segment().WriteValue<int32_t>(0, 2);
      env.Print(ftx::Bytes(text, text + 5));  // the visible event
      return {ftx_dc::StepOutcome::Status::kContinue, ftx::Milliseconds(1)};
    }
    return {ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
  }
};

// Runs the app under `protocol`, killing it right after the visible event.
// Returns every face the user saw.
std::vector<std::string> Play(const std::string& protocol, uint64_t seed) {
  ftx::ComputationOptions options;
  options.seed = seed;
  options.protocol = protocol;
  std::vector<std::unique_ptr<ftx_dc::App>> apps;
  apps.push_back(std::make_unique<CoinFlipApp>());
  ftx::Computation computation(options, std::move(apps));
  computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Microseconds(1500));
  computation.Run();

  std::vector<std::string> faces;
  for (const auto& event : computation.recorder().events()) {
    faces.emplace_back(event.payload.begin(), event.payload.end());
  }
  return faces;
}

}  // namespace

int main() {
  std::printf("Figure 1: the coin flip and the Save-work invariant\n");
  std::printf("===================================================\n\n");

  // "no-commit" behaviour: cbndvs never sees a visible before the failure's
  // rollback point forces the flip to rerun... we emulate an inadequate
  // protocol by using cbndvs with the commit suppressed via commit-all on
  // the second run for contrast. Simplest honest contrast: cpvs (commits
  // before the visible, covering the flip) vs a run where the failure hits
  // after the visible but the flip was never committed. The latter needs a
  // protocol that does not commit: we use the trace to show what WOULD
  // happen, by replaying until one seed shows the inconsistency.
  std::printf("With CAND (flip committed before anything visible):\n");
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<std::string> faces = Play("cand", seed);
    std::printf("  seed %llu: user saw:", static_cast<unsigned long long>(seed));
    for (const auto& face : faces) {
      std::printf(" %s", face.c_str());
    }
    std::printf("\n");
  }
  std::printf("Duplicates of the SAME face are tolerated; mixed faces never "
              "appear.\n\n");

  // Demonstrate the theory side: a trace with an uncovered flip violates
  // Save-work, and the checker says exactly that.
  std::printf("The Save-work checker on the uncommitted coin flip:\n");
  ftx_sm::Trace trace(1);
  trace.Append(0, ftx_sm::EventKind::kTransientNd, -1, false, "flip");
  trace.Append(0, ftx_sm::EventKind::kVisible, -1, false, "print-face");
  ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(trace);
  for (const auto& violation : report.violations) {
    std::printf("  VIOLATION: %s\n", violation.ToString(trace).c_str());
  }
  std::printf("\nA failure between the flip and a commit lets recovery output "
              "the other face —\nexactly the inconsistency of Figure 1.\n");
  return 0;
}
