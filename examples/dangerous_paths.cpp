// Figures 5-7: dangerous paths, or why generic recovery from propagation
// failures is so often impossible.
//
// Builds the paper's example state machines, runs the single-process
// coloring algorithm, and prints which events are dangerous to commit at.
// Then demonstrates the multi-process variant: the same receive event is a
// protective escape hatch or a fixed liability depending on whether the
// sender committed before sending.
//
//   ./examples/dangerous_paths

#include <cstdio>

#include "src/statemachine/dangerous_paths.h"

namespace {

void Show(const char* title, const ftx_sm::StateMachineGraph& graph,
          const ftx_sm::DangerousPathsResult& result) {
  std::printf("%s\n", title);
  for (const auto& edge : graph.edges()) {
    std::printf("  s%d --%s%s%s--> s%d   %s\n", edge.from,
                std::string(ftx_sm::EventKindName(edge.kind)).c_str(),
                edge.label.empty() ? "" : ":", edge.label.c_str(), edge.to,
                result.IsColored(edge.id) ? "DANGEROUS (no commit here)" : "safe");
  }
  std::printf("  -> %d of %d events are on dangerous paths\n\n", result.num_colored,
              graph.num_edges());
}

}  // namespace

int main() {
  using ftx_sm::EventKind;

  std::printf("Dangerous paths (Lose-work Theorem, Section 2.5)\n");
  std::printf("================================================\n\n");

  // Figure 6A: deterministic chain into a crash — committing anywhere dooms
  // recovery.
  {
    ftx_sm::StateMachineGraph graph;
    graph.EnsureStates(4);
    graph.AddEdge(0, 1, EventKind::kInternal, "init");
    graph.AddEdge(1, 2, EventKind::kInternal, "overwrite-ptr");
    graph.AddEdge(2, 3, EventKind::kCrash, "deref-null");
    Show("Figure 6A: deterministic path to a crash", graph, ftx_sm::ColorDangerousPaths(graph));
  }

  // Figure 6B: a transient ND event with a crash-free result protects its
  // past: commit before it and recovery may take the safe branch.
  {
    ftx_sm::StateMachineGraph graph;
    graph.EnsureStates(6);
    graph.AddEdge(0, 1, EventKind::kInternal, "work");
    graph.AddEdge(1, 2, EventKind::kTransientNd, "sched-A");
    graph.AddEdge(1, 3, EventKind::kTransientNd, "sched-B");
    graph.AddEdge(2, 4, EventKind::kCrash, "bug-fires");
    graph.AddEdge(3, 5, EventKind::kInternal, "completes");
    Show("Figure 6B: transient non-determinism as an escape hatch", graph,
         ftx_sm::ColorDangerousPaths(graph));
  }

  // Figure 6C: the same shape with FIXED non-determinism (user input, disk
  // fullness): the recovery system cannot rely on a different result, so
  // the path stays dangerous.
  {
    ftx_sm::StateMachineGraph graph;
    graph.EnsureStates(6);
    graph.AddEdge(0, 1, EventKind::kInternal, "work");
    graph.AddEdge(1, 2, EventKind::kFixedNd, "user-types-A");
    graph.AddEdge(1, 3, EventKind::kFixedNd, "user-types-B");
    graph.AddEdge(2, 4, EventKind::kCrash, "bug-fires");
    graph.AddEdge(3, 5, EventKind::kInternal, "completes");
    Show("Figure 6C: fixed non-determinism does not protect", graph,
         ftx_sm::ColorDangerousPaths(graph));
  }

  // Figure 7 flavor: a longer machine mixing all the cases.
  {
    ftx_sm::StateMachineGraph graph;
    graph.EnsureStates(9);
    graph.AddEdge(0, 1, EventKind::kTransientNd, "timing-A");
    graph.AddEdge(0, 2, EventKind::kTransientNd, "timing-B");
    graph.AddEdge(1, 3, EventKind::kInternal, "parse");
    graph.AddEdge(3, 4, EventKind::kFixedNd, "input-x");
    graph.AddEdge(3, 5, EventKind::kFixedNd, "input-y");
    graph.AddEdge(4, 6, EventKind::kCrash, "boundary-bug");
    graph.AddEdge(5, 7, EventKind::kInternal, "render");
    graph.AddEdge(2, 8, EventKind::kInternal, "idle");
    Show("Figure 7: mixed machine with its dangerous paths shaded", graph,
         ftx_sm::ColorDangerousPaths(graph));
  }

  // Multi-process: the receive's classification depends on the sender's
  // commit position (the snapshot step of the multi-process algorithm).
  std::printf("Multi-process classification (Section 2.5):\n");
  {
    ftx_sm::StateMachineGraph graph;
    graph.EnsureStates(6);
    auto entry = graph.AddEdge(0, 1, EventKind::kInternal, "work");
    auto recv_doom = graph.AddEdge(1, 2, EventKind::kReceive, "recv-m");
    graph.AddEdge(1, 3, EventKind::kReceive, "recv-m'");
    graph.AddEdge(2, 4, EventKind::kCrash, "bug");
    graph.AddEdge(3, 5, EventKind::kInternal, "fine");

    // Case 1: sender has uncommitted transient ND -> the message could be
    // regenerated differently -> receive is TRANSIENT -> entry is safe.
    {
      ftx_sm::Trace trace(2);
      trace.Append(1, EventKind::kTransientNd);
      trace.Append(1, EventKind::kSend, 10);
      trace.Append(0, EventKind::kReceive, 10);
      auto result = ftx_sm::MultiProcessDangerousPaths(graph, trace, 0,
                                                       {{recv_doom, 10}});
      std::printf("  sender ND uncommitted: receive is transient, entry edge %s\n",
                  result.IsColored(entry) ? "DANGEROUS" : "safe");
    }
    // Case 2: sender committed its ND before sending -> the message is
    // pinned -> receive is FIXED -> entry becomes dangerous.
    {
      ftx_sm::Trace trace(2);
      trace.Append(1, EventKind::kTransientNd);
      trace.Append(1, EventKind::kCommit);
      trace.Append(1, EventKind::kSend, 10);
      trace.Append(0, EventKind::kReceive, 10);
      auto result = ftx_sm::MultiProcessDangerousPaths(graph, trace, 0,
                                                       {{recv_doom, 10}});
      std::printf("  sender ND committed:   receive is fixed,     entry edge %s\n",
                  result.IsColored(entry) ? "DANGEROUS" : "safe");
    }
  }

  std::printf("\nThe Lose-work Theorem: generic recovery from a propagation "
              "failure is possible\niff no commit event lies on a dangerous "
              "path.\n");
  return 0;
}
