// Distributed real-time recovery: the xpilot workload (Fig. 8c).
//
// Runs one game server and three clients at 15 frames per second, compares
// sustained frame rate across protocols and stores, then kills the server
// mid-game and shows play continuing after recovery.
//
//   ./examples/distributed_game

#include <cstdio>

#include "src/apps/xpilot.h"
#include "src/core/experiment.h"

int main() {
  std::printf("xpilot: 1 server + 3 clients at 15 fps (Fig. 8c workload)\n");
  std::printf("=========================================================\n\n");

  std::printf("%-12s %-9s %12s %12s\n", "protocol", "store", "ckpts/s", "fps");
  std::printf("---------------------------------------------------\n");
  for (const char* protocol : {"cbndvs", "cand", "cpv-2pc"}) {
    for (ftx::StoreKind store : {ftx::StoreKind::kRio, ftx::StoreKind::kDisk}) {
      ftx::RunSpec spec;
      spec.workload = "xpilot";
      spec.scale = 150;  // ten seconds of play
      spec.protocol = protocol;
      spec.store = store;
      ftx::OverheadRow row = ftx::MeasureOverhead(spec);
      std::printf("%-12s %-9s %12.0f %11.1f\n", protocol,
                  store == ftx::StoreKind::kRio ? "rio" : "dc-disk", row.checkpoints_per_second,
                  row.recoverable_fps);
    }
  }
  std::printf("\nDiscount Checking (rio) sustains full speed everywhere; the "
              "synchronous disk\nlog cannot keep up with CAND's commit rate — "
              "the game becomes unplayable.\n\n");

  // Kill the server mid-game; the game must resume and finish.
  std::printf("Killing the server at t=4s during a 10s game...\n");
  ftx::RunSpec spec;
  spec.workload = "xpilot";
  spec.scale = 150;
  spec.protocol = "cbndvs";
  auto computation = ftx::BuildComputation(spec);
  computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(4.0));
  ftx::ComputationResult result = computation->Run();

  std::printf("  game %s; server rolled back %lld time(s)\n",
              result.all_done ? "finished" : "DID NOT FINISH",
              static_cast<long long>(result.per_process[0].rollbacks));
  for (int c = 1; c <= 3; ++c) {
    std::printf("  client %d rendered %lld frames\n", c,
                static_cast<long long>(
                    ftx_apps::XpilotClient::FramesRendered(computation->runtime(c))));
  }
  std::printf("\nPlayers see a brief stall, then play resumes: failure "
              "transparency for a\ndistributed, real-time application.\n");
  return result.all_done ? 0 : 1;
}
