// The domino effect (§5), and why Save-work protocols do not suffer it.
//
// Builds a pipeline of processes whose messages carry fresh non-determinism
// downstream. With commits placed naively (or not at all), one failure
// orphans its received messages and the rollback cascades all the way to
// every process's initial state. Under CPVS — commit prior to visible or
// send — the identical computation contains every failure to the process
// that failed.
//
//   ./examples/domino_effect

#include <cstdio>

#include "src/recovery/rollback_set.h"

namespace {

using ftx_sm::EventKind;
using ftx_sm::Trace;

void Report(const char* title, const Trace& trace, const ftx_rec::RollbackPlan& plan,
            int failed) {
  std::printf("%s\n", title);
  for (int p = 0; p < trace.num_processes(); ++p) {
    int64_t total = trace.NumEvents(p);
    int64_t surviving = plan.survive_through[static_cast<size_t>(p)] + 1;
    std::printf("  p%d: keeps %lld of %lld events%s%s\n", p,
                static_cast<long long>(surviving), static_cast<long long>(total),
                p == failed ? "   (the failed process)" : "",
                p != failed && surviving < total ? "   <- CASCADED" : "");
  }
  std::printf("  cascade rounds: %d; processes dragged down: %d; domino to start: %s\n\n",
              plan.cascade_rounds, plan.processes_rolled_back,
              plan.dominoed_to_start ? "YES" : "no");
}

// A 4-stage pipeline: each stage flips a coin (transient ND), folds it into
// a message, and forwards downstream. `commit_before_send` is the CPVS
// discipline.
Trace BuildPipeline(bool commit_before_send) {
  Trace trace(4);
  int64_t message = 0;
  for (int round = 0; round < 3; ++round) {
    for (int stage = 0; stage < 4; ++stage) {
      if (stage > 0) {
        trace.Append(stage, EventKind::kReceive, message++);
      }
      trace.Append(stage, EventKind::kTransientNd, -1, false, "coin-flip");
      if (stage < 3) {
        if (commit_before_send) {
          trace.Append(stage, EventKind::kCommit);
        }
        // message id consumed by the receive above on the next stage
        trace.Append(stage, EventKind::kSend, message);
      }
    }
  }
  return trace;
}

}  // namespace

int main() {
  std::printf("The domino effect (Section 5)\n");
  std::printf("=============================\n\n");

  // Scenario 1: no commits at all. The source stage fails; its coin flips
  // are lost, its sends cannot be regenerated identically, and the rollback
  // cascades through every downstream stage.
  {
    Trace trace = BuildPipeline(/*commit_before_send=*/false);
    auto plan = ftx_rec::ComputeRollbackSet(trace, /*failed=*/0,
                                            /*failed_survive_through=*/-1);
    Report("No commits anywhere; stage 0 fails:", trace, plan, 0);
  }

  // Scenario 2: same computation under CPVS. The failed process rolls back
  // to its last pre-send commit; every aborted send is deterministically
  // regenerated from there, so nobody else moves.
  {
    Trace trace = BuildPipeline(/*commit_before_send=*/true);
    auto last_commit = trace.LastCommitAtOrBefore(1, trace.NumEvents(1) - 1);
    auto plan = ftx_rec::ComputeRollbackSet(trace, /*failed=*/1, last_commit->index);
    Report("CPVS (commit prior to visible or send); stage 1 fails:", trace, plan, 1);
  }

  // Scenario 3: message logging contains it too — receives replay from the
  // log even when the sends that produced them are gone.
  {
    Trace trace(4);
    int64_t message = 0;
    for (int stage = 0; stage < 4; ++stage) {
      if (stage > 0) {
        trace.Append(stage, EventKind::kReceive, message++, /*logged=*/true);
      }
      trace.Append(stage, EventKind::kTransientNd);
      if (stage < 3) {
        trace.Append(stage, EventKind::kSend, message);
      }
    }
    auto plan = ftx_rec::ComputeRollbackSet(trace, /*failed=*/0,
                                            /*failed_survive_through=*/-1);
    Report("Message logging (receives replayable); stage 0 fails:", trace, plan, 0);
  }

  std::printf("This is the contrast the paper draws with plain communication-"
              "induced\ncheckpointing: Save-work protocols exploit knowledge of "
              "non-determinism, so\nonly failed processes ever roll back.\n");
  return 0;
}
