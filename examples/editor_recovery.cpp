// Interactive-editor recovery: the nvi workload survives stop failures.
//
// Types a few hundred keystrokes into the gap-buffer editor, kills the
// process twice mid-edit, recovers it, and verifies (a) the final buffer is
// byte-identical to a failure-free run and (b) the echo stream the user saw
// is consistent. Also contrasts commit counts across protocols — Fig. 8(a)
// in miniature.
//
//   ./examples/editor_recovery

#include <cstdio>

#include "src/apps/nvi.h"
#include "src/core/experiment.h"
#include "src/recovery/consistency.h"

int main() {
  std::printf("nvi under failures (Fig. 8a workload)\n");
  std::printf("=====================================\n\n");

  const int keystrokes = 400;
  ftx::RunSpec spec;
  spec.workload = "nvi";
  spec.scale = keystrokes;
  spec.seed = 2024;

  // Failure-free reference (unrecoverable baseline build).
  ftx::RunSpec baseline_spec = spec;
  baseline_spec.mode = ftx_dc::RuntimeMode::kBaseline;
  auto baseline = ftx::BuildComputation(baseline_spec);
  baseline->Run();
  std::string reference_text = ftx_apps::Nvi::BufferContents(baseline->runtime(0));
  std::printf("failure-free run: %zu visible events, final buffer %zu bytes\n",
              baseline->recorder().size(), reference_text.size());

  // Recoverable run with two stop failures mid-edit.
  for (const char* protocol : {"cpvs", "cbndvs-log"}) {
    spec.protocol = protocol;
    auto computation = ftx::BuildComputation(spec);
    computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(8.0));
    computation->ScheduleStopFailure(0, ftx::TimePoint() + ftx::Seconds(25.0));
    ftx::ComputationResult result = computation->Run();

    std::string recovered_text = ftx_apps::Nvi::BufferContents(computation->runtime(0));
    ftx_rec::ConsistencyResult consistency =
        ftx_rec::CheckConsistentRecovery(baseline->recorder(), computation->recorder(), 1);

    std::printf("\nprotocol %-11s: %s, %lld commits, %lld rollbacks\n", protocol,
                result.all_done ? "completed" : "DID NOT COMPLETE",
                static_cast<long long>(result.total_commits),
                static_cast<long long>(result.total_rollbacks));
    std::printf("  buffer identical to reference: %s\n",
                recovered_text == reference_text ? "yes" : "NO");
    std::printf("  echo stream consistent:        %s (%d duplicates tolerated)\n",
                consistency.consistent ? "yes" : "NO", consistency.duplicates_tolerated);
    if (!consistency.consistent) {
      std::printf("  %s\n", consistency.diagnostic.c_str());
      return 1;
    }
  }

  std::printf("\nCPVS commits on every keystroke echo; CBNDVS-LOG logs the "
              "keystrokes instead and\nalmost never commits — both uphold "
              "Save-work, at very different commit budgets.\n");
  return 0;
}
