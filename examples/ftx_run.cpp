// ftx_run: command-line driver for the failure-transparency library.
//
// Run any workload under any protocol and store, optionally injecting stop
// failures, and get a full report: commits, overhead vs. the unrecoverable
// baseline, rollbacks, recovery time, Save-work verification, and output
// consistency against a failure-free reference.
//
//   ftx_run [--workload nvi|magic|xpilot|treadmarks|postgres]
//           [--protocol <name>] [--store rio|disk|volatile]
//           [--scale N] [--seed N]
//           [--fail-at-ms T]... [--fail-pid P]
//           [--check-save-work] [--list-protocols]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/apps/workloads.h"
#include "src/core/computation.h"
#include "src/core/experiment.h"
#include "src/protocol/protocol_space.h"
#include "src/recovery/consistency.h"
#include "src/statemachine/invariants.h"
#include "src/statemachine/trace_format.h"

namespace {

struct Args {
  std::string workload = "nvi";
  std::string protocol = "cpvs";
  std::string store = "rio";
  int scale = 0;
  uint64_t seed = 1;
  std::vector<int64_t> fail_at_ms;
  int fail_pid = 0;
  bool check_save_work = false;
  bool list_protocols = false;
  bool summarize_trace = false;
  int64_t dump_trace = 0;  // first N non-internal events per process
  std::string trace_path;    // Chrome trace_event JSON of the recoverable run
  std::string metrics_path;  // metrics-registry snapshot as JSON
};

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--workload") {
      args->workload = next();
    } else if (flag == "--protocol") {
      args->protocol = next();
    } else if (flag == "--store") {
      args->store = next();
    } else if (flag == "--scale") {
      args->scale = std::atoi(next());
    } else if (flag == "--seed") {
      args->seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--fail-at-ms") {
      args->fail_at_ms.push_back(std::atoll(next()));
    } else if (flag == "--fail-pid") {
      args->fail_pid = std::atoi(next());
    } else if (flag == "--check-save-work") {
      args->check_save_work = true;
    } else if (flag == "--list-protocols") {
      args->list_protocols = true;
    } else if (flag == "--summarize-trace") {
      args->summarize_trace = true;
    } else if (flag == "--dump-trace") {
      args->dump_trace = std::atoll(next());
    } else if (flag == "--trace") {
      args->trace_path = next();
    } else if (flag == "--metrics") {
      args->metrics_path = next();
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void Usage() {
  std::printf(
      "usage: ftx_run [--workload nvi|magic|xpilot|treadmarks|postgres]\n"
      "               [--protocol <name>] [--store rio|disk|volatile]\n"
      "               [--scale N] [--seed N]\n"
      "               [--fail-at-ms T]... [--fail-pid P]\n"
      "               [--check-save-work] [--list-protocols]\n"
      "               [--summarize-trace] [--dump-trace N]\n"
      "               [--trace FILE.json] [--metrics FILE.json]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) {
    Usage();
    return 2;
  }

  if (args.list_protocols) {
    std::printf("%-18s %6s %6s  %s\n", "protocol", "x", "y", "description");
    for (const auto& entry : ftx_proto::ProtocolSpaceEntries()) {
      std::printf("%-18s %6.2f %6.2f  %s%s\n", entry.name.c_str(), entry.point.nd_effort,
                  entry.point.visible_effort, entry.notes.c_str(),
                  entry.implemented ? "" : "  [not implemented]");
    }
    return 0;
  }

  ftx::RunSpec spec;
  spec.workload = args.workload;
  spec.protocol = args.protocol;
  spec.scale = args.scale;
  spec.seed = args.seed;
  spec.store = args.store == "disk"       ? ftx::StoreKind::kDisk
               : args.store == "volatile" ? ftx::StoreKind::kVolatileMemory
                                          : ftx::StoreKind::kRio;

  // Baseline (unrecoverable) run: reference output + reference time.
  ftx::RunSpec baseline_spec = spec;
  baseline_spec.mode = ftx_dc::RuntimeMode::kBaseline;
  ftx::RunOutput baseline = ftx::RunExperiment(baseline_spec);

  // The recoverable run with the requested failures.
  spec.trace_path = args.trace_path;
  auto computation = ftx::BuildComputation(spec);
  for (int64_t at_ms : args.fail_at_ms) {
    computation->ScheduleStopFailure(args.fail_pid, ftx::TimePoint() + ftx::Milliseconds(at_ms));
  }
  ftx::ComputationResult result = computation->Run();
  ftx::RunOutput run = ftx::Collect(*computation, result);

  std::printf("workload   : %s (scale %d, seed %llu, %d process%s)\n", args.workload.c_str(),
              spec.scale > 0 ? spec.scale : ftx_apps::DefaultScale(args.workload, false),
              static_cast<unsigned long long>(args.seed), computation->num_processes(),
              computation->num_processes() == 1 ? "" : "es");
  std::printf("protocol   : %s on %s\n", args.protocol.c_str(), args.store.c_str());
  std::printf("completed  : %s\n", result.all_done ? "yes" : "NO");
  std::printf("sim time   : %s (baseline %s, overhead %+.2f%%)\n",
              run.elapsed.ToString().c_str(), baseline.elapsed.ToString().c_str(),
              baseline.elapsed.nanos() > 0
                  ? 100.0 * static_cast<double>((run.elapsed - baseline.elapsed).nanos()) /
                        static_cast<double>(baseline.elapsed.nanos())
                  : 0.0);
  std::printf("commits    : %lld total", static_cast<long long>(run.checkpoints));
  if (run.elapsed.seconds() > 0) {
    std::printf(" (%.1f/s peak process)",
                static_cast<double>(run.max_process_commits) / run.elapsed.seconds());
  }
  std::printf("\n");
  int64_t logged = 0;
  ftx::Duration recovery_time;
  for (const auto& stats : result.per_process) {
    logged += stats.logged_events;
    recovery_time += stats.recovery_time;
  }
  std::printf("logged ND  : %lld events\n", static_cast<long long>(logged));
  std::printf("rollbacks  : %lld (recovery latency %s)\n",
              static_cast<long long>(result.total_rollbacks), recovery_time.ToString().c_str());
  if (run.min_client_fps > 0) {
    std::printf("frame rate : %.1f fps (slowest client)\n", run.min_client_fps);
  }

  if (!args.fail_at_ms.empty() && args.workload != "xpilot") {
    ftx_rec::ConsistencyResult consistency = ftx_rec::CheckConsistentRecovery(
        baseline.outputs, run.outputs, computation->num_processes());
    std::printf("consistency: %s (%d duplicates tolerated)\n",
                consistency.consistent ? "CONSISTENT" : "INCONSISTENT",
                consistency.duplicates_tolerated);
    if (!consistency.consistent) {
      std::printf("             %s\n", consistency.diagnostic.c_str());
    }
  }

  if (args.check_save_work) {
    ftx_sm::SaveWorkReport report = ftx_sm::CheckSaveWork(computation->trace());
    std::printf("save-work  : %s", report.ok() ? "UPHELD" : "VIOLATED");
    if (!report.ok()) {
      std::printf(" (%zu violations; first: %s)", report.violations.size(),
                  report.violations[0].ToString(computation->trace()).c_str());
    }
    std::printf("\n");
  }
  if (args.summarize_trace) {
    std::printf("\ntrace summary:\n%s", ftx_sm::SummarizeTrace(computation->trace()).c_str());
  }
  if (!args.metrics_path.empty()) {
    std::FILE* f = std::fopen(args.metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n", args.metrics_path.c_str());
    } else {
      std::string json = computation->metrics().ToJsonString();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("metrics    : wrote %zu entries to %s\n",
                  computation->metrics().Snapshot().entries.size(), args.metrics_path.c_str());
    }
  }
  if (args.dump_trace > 0) {
    ftx_sm::TraceFormatOptions format;
    format.include_internal = false;
    format.max_events = args.dump_trace;
    std::printf("\ntrace (first %lld non-internal events):\n%s",
                static_cast<long long>(args.dump_trace),
                ftx_sm::FormatTrace(computation->trace(), format).c_str());
  }
  return result.all_done ? 0 : 1;
}
