// Quickstart: failure transparency in ~60 lines.
//
// Write an application against the ProcessEnv API, run it under a Save-work
// protocol on Discount Checking, kill it mid-run, and watch it recover with
// its visible output consistent — the user never learns a failure happened.
//
//   ./examples/quickstart

#include <cstdio>
#include <memory>

#include "src/core/computation.h"
#include "src/recovery/consistency.h"

namespace {

// A tiny application: reads numbers from its input script, keeps a running
// sum in its persistent segment, and prints each partial sum (the visible
// events the user watches).
class SummingApp : public ftx_dc::App {
 public:
  std::string_view name() const override { return "summing-app"; }
  size_t SegmentBytes() const override { return 64 * 1024; }

  void Init(ftx_dc::ProcessEnv& env) override {
    env.segment().WriteValue<int64_t>(0, 0);  // the running sum
  }

  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override {
    std::optional<ftx::Bytes> token = env.ReadUserInput();  // fixed ND event
    if (!token.has_value()) {
      return {ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
    }
    int64_t sum = env.segment().Read<int64_t>(0) + (*token)[0];
    env.segment().WriteValue<int64_t>(0, sum);  // all state lives in the segment

    ftx::Bytes line;
    ftx::AppendValue(&line, sum);
    env.Print(std::move(line));  // visible event
    return {ftx_dc::StepOutcome::Status::kContinue, ftx::Milliseconds(10)};
  }
};

std::vector<ftx::Bytes> Numbers(int n) {
  std::vector<ftx::Bytes> script;
  for (int i = 1; i <= n; ++i) {
    script.push_back(ftx::Bytes{static_cast<uint8_t>(i)});
  }
  return script;
}

ftx_rec::OutputRecorder RunOnce(bool inject_failure) {
  ftx::ComputationOptions options;
  options.protocol = "cpvs";  // commit prior to visible or send: upholds Save-work
  options.store = ftx::StoreKind::kRio;
  std::vector<std::unique_ptr<ftx_dc::App>> apps;
  apps.push_back(std::make_unique<SummingApp>());
  ftx::Computation computation(options, std::move(apps));
  computation.SetInputScript(0, Numbers(20));
  if (inject_failure) {
    // Stop failure mid-run: the process dies and is recovered from its last
    // commit (rollback + reexecution).
    computation.ScheduleStopFailure(0, ftx::TimePoint() + ftx::Milliseconds(95));
  }
  ftx::ComputationResult result = computation.Run();
  std::printf("  run %s: %s, %lld commits, %lld rollbacks\n",
              inject_failure ? "with failure" : "failure-free",
              result.all_done ? "completed" : "DID NOT COMPLETE",
              static_cast<long long>(result.total_commits),
              static_cast<long long>(result.total_rollbacks));
  return computation.recorder();
}

}  // namespace

int main() {
  std::printf("Failure transparency quickstart\n");
  std::printf("===============================\n");

  ftx_rec::OutputRecorder reference = RunOnce(/*inject_failure=*/false);
  ftx_rec::OutputRecorder recovered = RunOnce(/*inject_failure=*/true);

  ftx_rec::ConsistencyResult check =
      ftx_rec::CheckConsistentRecovery(reference, recovered, /*num_processes=*/1);
  std::printf("\nConsistent recovery: %s", check.consistent ? "YES" : "NO");
  if (check.duplicates_tolerated > 0) {
    std::printf(" (%d duplicated visible events, tolerated by the paper's "
                "equivalence definition)",
                check.duplicates_tolerated);
  }
  std::printf("\n");
  if (!check.consistent) {
    std::printf("  %s\n", check.diagnostic.c_str());
    return 1;
  }
  std::printf("The user cannot tell the second run crashed: that is failure "
              "transparency.\n");
  return 0;
}
