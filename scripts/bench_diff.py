#!/usr/bin/env python3
"""Diff wall-clock bench results against a reference (file or ledger).

Compares the host-time fields (every numeric row field ending in "_ns") of
a current ftx.bench-results file against either a committed reference file
or the most recent same-host entry of a bench_history.py ledger. Rows are
matched on their identity fields (all string/bool members, e.g.
section/workload/protocol); deterministic fields (counts, replays,
violations) must match exactly, wall-clock fields are compared as ratios.

Advisory by default: regressions are printed but the exit code stays 0, so
a CTest entry can surface drift without making perf a hard gate on shared
machines. --strict turns regressions (and identity/count mismatches) into
exit 1.

Different hosts produce incomparable nanoseconds: when the two files carry
different host fingerprints the wall-clock comparison is skipped with a
notice (count mismatches still report).

Usage:
  bench_diff.py CURRENT.json REFERENCE.json [--threshold 1.5] [--strict]
  bench_diff.py CURRENT.json --ledger PATH [--threshold 1.5] [--strict]
"""

import argparse
import json
import sys


def load_results(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "ftx.bench-results":
        raise ValueError(f"{path}: not an ftx.bench-results file")
    return doc


def fingerprint(doc):
    host = doc.get("meta", {}).get("host") or doc.get("host")
    if not isinstance(host, dict):
        return None
    return (host.get("cpu_model"), host.get("num_cpus"),
            host.get("ftx_native"), host.get("sanitizer"))


IDENTITY_NUMERIC_FIELDS = {"scale", "crash_fraction", "iterations"}


def row_key(row):
    """Identity of a row: its string/bool members plus the sweep-position
    numerics — two runs at different scales are different measurements, not
    a regression."""
    return tuple(sorted((k, v) for k, v in row.items()
                 if isinstance(v, (str, bool))
                 or k in IDENTITY_NUMERIC_FIELDS))


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def is_wall_field(name):
    return name.endswith("_ns") or name.endswith("_ns_median")


def wall_fields(row):
    return {k: v for k, v in row.items() if is_wall_field(k) and is_number(v)}


def count_fields(row):
    """Deterministic numeric fields: everything numeric that is not host ns."""
    return {k: v for k, v in row.items()
            if is_number(v) and not is_wall_field(k)
            and not k.startswith("mttr_sim_ns_") and k != "repeats"}


def latest_ledger_entry(path, bench, host):
    """Most recent ledger entry for this bench, preferring the same host."""
    best = best_same_host = None
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if entry.get("bench") != bench:
                continue
            best = entry
            entry_host = entry.get("host", {})
            entry_fp = (entry_host.get("cpu_model"), entry_host.get("num_cpus"),
                        entry_host.get("ftx_native"), entry_host.get("sanitizer"))
            if host is not None and entry_fp == host:
                best_same_host = entry
    return best_same_host or best


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("reference", nargs="?")
    parser.add_argument("--ledger", help="compare against the latest "
                        "same-host entry of this bench_history.py ledger")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="wall-clock ratio above which a row regresses "
                        "(default 1.5)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions/mismatches")
    args = parser.parse_args(argv[1:])

    current = load_results(args.current)
    current_host = fingerprint(current)
    if args.ledger:
        entry = latest_ledger_entry(args.ledger, current.get("bench"),
                                    current_host)
        if entry is None:
            print(f"{args.ledger}: no entry for bench "
                  f"{current.get('bench')!r}; nothing to diff")
            return 0
        reference_rows = entry.get("rows", [])
        reference_host = tuple(entry.get("host", {}).get(k) for k in
                               ("cpu_model", "num_cpus", "ftx_native",
                                "sanitizer"))
        reference_name = f"{args.ledger} @ {entry.get('recorded_at')}"
    elif args.reference:
        reference = load_results(args.reference)
        reference_rows = reference.get("rows", [])
        reference_host = fingerprint(reference)
        reference_name = args.reference
    else:
        parser.error("need REFERENCE.json or --ledger PATH")

    same_host = (current_host is not None and reference_host is not None
                 and current_host == tuple(reference_host))
    if not same_host:
        print(f"note: host fingerprints differ ({current_host} vs "
              f"{reference_host}) — wall-clock ratios skipped")

    reference_by_key = {row_key(r): r for r in reference_rows}
    regressions = mismatches = compared = 0
    for row in current.get("rows", []):
        key = row_key(row)
        ref = reference_by_key.get(key)
        label = " ".join(str(v) for _, v in key
                         if isinstance(v, str)) or "<row>"
        if ref is None:
            print(f"  new row (no reference): {label}")
            continue
        for field, value in sorted(count_fields(row).items()):
            if field in ref and is_number(ref[field]) and ref[field] != value:
                mismatches += 1
                print(f"  COUNT MISMATCH {label}: {field} "
                      f"{ref[field]} -> {value}")
        if not same_host:
            continue
        for field, value in sorted(wall_fields(row).items()):
            ref_value = ref.get(field)
            if not is_number(ref_value) or ref_value <= 0 or value <= 0:
                continue
            compared += 1
            ratio = value / ref_value
            if ratio >= args.threshold:
                regressions += 1
                print(f"  REGRESSION {label}: {field} "
                      f"{ref_value} -> {value}  ({ratio:.2f}x)")
            elif ratio <= 1.0 / args.threshold:
                print(f"  improvement {label}: {field} "
                      f"{ref_value} -> {value}  ({ratio:.2f}x)")

    print(f"{args.current} vs {reference_name}: {compared} wall-clock fields "
          f"compared, {regressions} regressions, {mismatches} count "
          f"mismatches (threshold {args.threshold:.2f}x"
          f"{', strict' if args.strict else ', advisory'})")
    if args.strict and (regressions or mismatches):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
