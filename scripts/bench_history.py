#!/usr/bin/env python3
"""Host-keyed performance-history ledger for wall-clock bench results.

Simulated benches are pinned by golden byte-compares (bench/golden/); the
wall-clock benches (BENCH_recovery.json, BENCH_hotpath.json) cannot be — a
different machine legitimately produces different nanoseconds. This script
keeps their trajectory reviewable anyway: it appends one JSON line per run
to a ledger file, keyed by the host fingerprint the bench recorded in its
meta block (scripts are expected to compare entries only within one host;
see bench_diff.py).

Usage:
  bench_history.py append FILE.json [--ledger PATH] [--note TEXT]
  bench_history.py list [--ledger PATH] [--bench NAME]

The default ledger is bench/history/<bench>.jsonl next to this repository.
Each entry carries the record time, the host fingerprint, the git revision
when available, and every scalar numeric row field (nested metrics/audit
objects are dropped — the ledger tracks the headline numbers, the full file
is the artifact).
"""

import argparse
import datetime
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def host_fingerprint(meta):
    """A short, stable identity for 'numbers from this machine'."""
    host = meta.get("host")
    if not isinstance(host, dict):
        return {"cpu_model": "unknown", "num_cpus": 0}
    return {
        "cpu_model": host.get("cpu_model", "unknown"),
        "num_cpus": host.get("num_cpus", 0),
        "ftx_native": host.get("ftx_native", False),
        "sanitizer": host.get("sanitizer", "none"),
    }


def git_revision():
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=REPO_ROOT, capture_output=True, text=True,
                             timeout=10)
        return out.stdout.strip() if out.returncode == 0 else None
    except OSError:
        return None


def scalar_rows(rows):
    """Rows with only scalar members (identity strings + headline numbers)."""
    kept = []
    for row in rows:
        kept.append({k: v for k, v in row.items()
                     if isinstance(v, (str, int, float, bool))})
    return kept


def default_ledger(bench):
    return os.path.join(REPO_ROOT, "bench", "history", f"{bench}.jsonl")


def cmd_append(args):
    with open(args.file, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "ftx.bench-results":
        print(f"{args.file}: not an ftx.bench-results file", file=sys.stderr)
        return 1
    bench = doc.get("bench", "unknown")
    entry = {
        "bench": bench,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "git": git_revision(),
        "full_scale": doc.get("full_scale", False),
        "host": host_fingerprint(doc.get("meta", {})),
        "rows": scalar_rows(doc.get("rows", [])),
    }
    if args.note:
        entry["note"] = args.note
    ledger = args.ledger or default_ledger(bench)
    os.makedirs(os.path.dirname(ledger), exist_ok=True)
    with open(ledger, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended {bench} ({len(entry['rows'])} rows, "
          f"host {entry['host']['cpu_model']!r}) to {ledger}")
    return 0


def cmd_list(args):
    ledger = args.ledger or (default_ledger(args.bench) if args.bench else None)
    if ledger is None:
        print("list needs --ledger PATH or --bench NAME", file=sys.stderr)
        return 2
    if not os.path.exists(ledger):
        print(f"{ledger}: no ledger yet")
        return 0
    with open(ledger, encoding="utf-8") as f:
        for line_number, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"{ledger}:{line_number}: bad entry: {e}",
                      file=sys.stderr)
                continue
            host = entry.get("host", {})
            print(f"{entry.get('recorded_at')}  {entry.get('bench')}  "
                  f"git={entry.get('git')}  rows={len(entry.get('rows', []))}  "
                  f"host={host.get('cpu_model')!r} x{host.get('num_cpus')}"
                  + (f"  note={entry['note']!r}" if entry.get("note") else ""))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_append = sub.add_parser("append", help="record one bench JSON file")
    p_append.add_argument("file")
    p_append.add_argument("--ledger")
    p_append.add_argument("--note")
    p_append.set_defaults(fn=cmd_append)
    p_list = sub.add_parser("list", help="show ledger entries")
    p_list.add_argument("--ledger")
    p_list.add_argument("--bench")
    p_list.set_defaults(fn=cmd_list)
    args = parser.parse_args(argv[1:])
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
