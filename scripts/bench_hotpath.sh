#!/usr/bin/env bash
# Runs the commit-path micro-benchmarks (bench/micro_commit) and emits
# BENCH_hotpath.json in the ftx.bench-results schema, including speedups
# against the recorded pre-overhaul baseline (std::set dirty tracking,
# per-page heap-allocated before-images, byte-at-a-time CRC).
#
# Usage: scripts/bench_hotpath.sh [OUT.json]
#   BUILD_DIR=build        build tree containing bench/micro_commit
#   BENCH_MIN_TIME=0.1     google-benchmark --benchmark_min_time (seconds,
#                          plain double; this benchmark build rejects the
#                          "0.1s" suffix form)
#
# The acceptance gates checked into meta.acceptance mirror the overhaul's
# targets: BM_SegmentWriteBarrier >= 3x and BM_SegmentCommit/1024 >= 2x over
# the baseline. BASELINE_CPU_NS values are absolute nanoseconds measured on
# the original development host, so speedups (and the gates) are only
# meaningful on comparable hardware — treat cross-machine numbers as a
# trajectory, not a comparison. On a full-scale run (BENCH_MIN_TIME >= 0.5)
# a failed gate exits nonzero; quick smoke runs (like the ctest fixture at
# 0.01) report PASS/FAIL but always exit 0, since timings at tiny min_time
# are too noisy to gate on. Validate the output with
# scripts/check_bench_json.py.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_hotpath.json}
MIN_TIME=${BENCH_MIN_TIME:-0.1}
BIN="$BUILD_DIR/bench/micro_commit"

if [ ! -x "$BIN" ]; then
  echo "bench_hotpath: $BIN not found; build the 'micro_commit' target first" >&2
  exit 1
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

"$BIN" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
  --benchmark_filter='BM_Segment|BM_RedoRecordAppend|BM_Crc32|BM_GroupCommit' >"$RAW"

python3 - "$RAW" "$OUT" "$MIN_TIME" "$BUILD_DIR" <<'PYEOF'
import json
import os
import sys

raw_path, out_path, min_time, build_dir = (sys.argv[1], sys.argv[2],
                                           sys.argv[3], sys.argv[4])


def host_meta():
    """Real host metadata (the benchmark-library context reports its
    compiled-in defaults — num_cpus=1, mhz_per_cpu=2100 — which made the
    recorded trajectories uninterpretable across machines). Mirrors
    ftx_prof::HostMetaJson so bench_diff.py can fingerprint both formats."""
    cpu_model = "unknown"
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    ftx_native = False
    sanitizer = "none"
    try:
        with open(os.path.join(build_dir, "CMakeCache.txt"),
                  encoding="utf-8") as f:
            for line in f:
                if line.startswith("FTX_NATIVE:"):
                    ftx_native = line.rstrip().split("=", 1)[1] in ("ON", "1",
                                                                   "TRUE")
                elif line.startswith("FTX_SANITIZE:"):
                    value = line.rstrip().split("=", 1)[1]
                    if value and value != "OFF":
                        sanitizer = value
    except OSError:
        pass
    return {
        "cpu_model": cpu_model,
        "num_cpus": os.cpu_count() or 0,
        "ftx_native": ftx_native,
        "sanitizer": sanitizer,
    }

# Pre-overhaul cpu-time baseline (ns) measured on the original development
# host with the std::set / per-page-allocation implementation, for speedup
# reporting. Host-specific absolute values: speedups computed against them
# are not comparable across machines.
BASELINE_CPU_NS = {
    "BM_SegmentWriteBarrier": 24.7,
    "BM_SegmentCommit/1": 109.4,
    "BM_SegmentCommit/16": 3542.3,
    "BM_SegmentCommit/64": 14316.6,
    "BM_SegmentCommit/256": 91204.4,
    "BM_SegmentCommit/1024": 472382.4,
    "BM_SegmentAbort/16": 5113.3,
    "BM_SegmentAbort/256": 112272.4,
}

ACCEPTANCE = [
    ("BM_SegmentWriteBarrier", 3.0),
    ("BM_SegmentCommit/1024", 2.0),
]

# PR 3 abort-path cpu-time baseline (ns) on the same host: the undo log as
# shipped by the first optimization pass, before the pooled page-slot /
# extent-based rewrite. The allocation-free abort must beat it >= 3x.
PR3_CPU_NS = {
    "BM_SegmentAbort/16": 3064.3,
    "BM_SegmentAbort/256": 96765.6,
}

PR3_ACCEPTANCE = [
    ("BM_SegmentAbort/16", 3.0),
    ("BM_SegmentAbort/256", 3.0),
]

# Same-run ratio gates: numerator row / denominator row on the named
# counter. Host-independent (both sides run on this machine, this build).
RATIO_ACCEPTANCE = [
    # Hardware (PCLMUL-folded) CRC32 vs the slice-by-8 portable path.
    ("crc32_hw_vs_portable", "BM_Crc32/1048576", "BM_Crc32Portable/1048576",
     "bytes_per_second", 4.0),
    # Group commit at window=8 vs one-sync-pair-per-commit, in DiskModel
    # simulated commits/sec (the paper's two-synchronous-I/O cost model).
    ("group_commit_batch8", "BM_GroupCommit/8", "BM_GroupCommit/1",
     "sim_commits_per_sec", 2.0),
]

TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

with open(raw_path, encoding="utf-8") as f:
    doc = json.load(f)

rows = []
speedups = {}
for b in doc.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    scale = TO_NS[b.get("time_unit", "ns")]
    row = {
        "benchmark": b["name"],
        "real_time_ns": b["real_time"] * scale,
        "cpu_time_ns": b["cpu_time"] * scale,
        "iterations": b["iterations"],
    }
    for extra in ("items_per_second", "bytes_per_second",
                  "sim_commits_per_sec"):
        if extra in b:
            row[extra] = b[extra]
    baseline = BASELINE_CPU_NS.get(b["name"])
    if baseline is not None:
        row["baseline_cpu_time_ns"] = baseline
        row["speedup"] = baseline / row["cpu_time_ns"]
        speedups[b["name"]] = row["speedup"]
    pr3 = PR3_CPU_NS.get(b["name"])
    if pr3 is not None:
        row["pr3_cpu_time_ns"] = pr3
        row["pr3_speedup"] = pr3 / row["cpu_time_ns"]
    rows.append(row)

if not rows:
    sys.exit("bench_hotpath: no benchmark rows in google-benchmark output")

context = doc.get("context", {})
by_name = {row["benchmark"]: row for row in rows}
acceptance = {}
gates = []  # (label, got, required) for the console report / failed list

for name, required in ACCEPTANCE:
    got = speedups.get(name)
    key = name.replace("BM_", "").replace("/", "_")
    acceptance[key + "_speedup"] = got if got is not None else -1.0
    acceptance[key + "_required"] = required
    acceptance[key + "_pass"] = got is not None and got >= required
    gates.append((name, got, required))

for name, required in PR3_ACCEPTANCE:
    row = by_name.get(name)
    got = row.get("pr3_speedup") if row else None
    key = name.replace("BM_", "").replace("/", "_") + "_vs_pr3"
    acceptance[key + "_speedup"] = got if got is not None else -1.0
    acceptance[key + "_required"] = required
    acceptance[key + "_pass"] = got is not None and got >= required
    gates.append((name + " (vs PR3)", got, required))

for key, num_name, den_name, counter, required in RATIO_ACCEPTANCE:
    num = by_name.get(num_name, {}).get(counter)
    den = by_name.get(den_name, {}).get(counter)
    got = (num / den) if num and den else None
    acceptance[key + "_ratio"] = got if got is not None else -1.0
    acceptance[key + "_required"] = required
    acceptance[key + "_pass"] = got is not None and got >= required
    gates.append((key, got, required))

out = {
    "schema": "ftx.bench-results",
    "schema_version": 1,
    "bench": "micro_commit_hotpath",
    "full_scale": float(min_time) >= 0.5,
    "meta": {
        "benchmark_min_time": float(min_time),
        "host": host_meta(),
        "num_cpus": context.get("num_cpus", 0),
        "mhz_per_cpu": context.get("mhz_per_cpu", 0),
        "library_build_type": context.get("library_build_type", ""),
        "baseline": "pre-overhaul micro_commit (std::set dirty tracking, "
                    "per-page allocation, byte-at-a-time CRC)",
        "acceptance": acceptance,
    },
    "rows": rows,
}

with open(out_path, "w", encoding="utf-8") as f:
    json.dump(out, f, indent=1)
    f.write("\n")

failed = []
for label, got, required in gates:
    ok = got is not None and got >= required
    if not ok:
        failed.append(label)
    shown = f"{got:.2f}x" if got is not None else "missing"
    print(f"bench_hotpath: {label}: {shown} (required {required:.1f}x) "
          f"{'PASS' if ok else 'FAIL'}")
print(f"bench_hotpath: wrote {out_path} ({len(rows)} rows)")
if failed and out["full_scale"]:
    sys.exit(f"bench_hotpath: acceptance gate(s) failed at full scale: "
             f"{', '.join(failed)}")
if failed:
    print("bench_hotpath: gates advisory at this min_time "
          "(full_scale requires BENCH_MIN_TIME >= 0.5)")
PYEOF
