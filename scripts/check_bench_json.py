#!/usr/bin/env python3
"""Validate ftx bench-results JSON files (the --json output of bench/*).

Checks the schema envelope described in docs/OBSERVABILITY.md:

  * top level: schema == "ftx.bench-results", schema_version == 1,
    "bench" (string), "full_scale" (bool), "meta" (object), "rows"
    (non-empty array of flat objects);
  * row values are strings, numbers, or bools, except an optional nested
    "metrics" object whose values are numbers (counters/gauges) or
    histogram objects with count/sum/min/max/bounds/buckets;
  * bench-specific required row fields for the benches we know about
    (e.g. fig8 rows must carry workload/protocol/checkpoints).

Usage: check_bench_json.py FILE.json [FILE.json ...]
Exits 0 if every file validates, 1 otherwise.
"""

import json
import sys

SCHEMA_NAME = "ftx.bench-results"
SCHEMA_VERSION = 1

# Required row fields per bench name prefix. Rows may carry more.
REQUIRED_ROW_FIELDS = {
    "fig8_": ["workload", "protocol", "scale", "checkpoints",
              "rio_overhead_pct", "disk_overhead_pct"],
    "table1_app_faults": ["workload", "fault_type", "crashes", "violations",
                          "violation_fraction"],
    "table2_os_faults": ["workload", "fault_type", "crashes",
                         "failed_recoveries", "failed_recovery_fraction"],
    "fig7_dangerous_paths": ["sweep", "dangerous_fraction"],
    "fig3_protocol_space": ["section", "protocol"],
    "section4_composition": ["section", "workload"],
    "ablation_crash_latency": ["slow_detection_probability",
                               "violation_fraction"],
    "ablation_cost_model": ["sweep"],
    "ablation_protocol_faults": ["protocol", "crashes", "violation_fraction"],
    "micro_commit_hotpath": ["benchmark", "real_time_ns", "cpu_time_ns",
                             "iterations"],
    "torture_commit": ["workload", "protocol", "scale", "commits",
                       "crash_states", "prefix_states", "torn_states",
                       "reorder_states", "survivor_committed",
                       "survivor_inflight", "survivor_none", "replays",
                       "replays_consistent", "violations", "ok"],
}

HISTOGRAM_FIELDS = {"count", "sum", "min", "max", "bounds", "buckets"}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def check_metrics(path, row_index, metrics):
    ok = True
    if not isinstance(metrics, dict):
        return fail(path, f"rows[{row_index}].metrics is not an object")
    for name, value in metrics.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            continue
        if isinstance(value, dict):
            missing = HISTOGRAM_FIELDS - value.keys()
            if missing:
                ok = fail(path, f"rows[{row_index}].metrics[{name!r}] is an "
                                f"object but not a histogram (missing "
                                f"{sorted(missing)})")
                continue
            if len(value["buckets"]) != len(value["bounds"]) + 1:
                ok = fail(path, f"rows[{row_index}].metrics[{name!r}]: "
                                f"buckets must have len(bounds)+1 entries")
            if sum(value["buckets"]) != value["count"]:
                ok = fail(path, f"rows[{row_index}].metrics[{name!r}]: "
                                f"bucket counts do not sum to count")
            continue
        ok = fail(path, f"rows[{row_index}].metrics[{name!r}] has "
                        f"unexpected type {type(value).__name__}")
    return ok


def required_fields_for(bench):
    for prefix, fields in REQUIRED_ROW_FIELDS.items():
        if bench == prefix or (prefix.endswith("_") and bench.startswith(prefix)):
            return fields
    return []


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    ok = True
    if doc.get("schema") != SCHEMA_NAME:
        ok = fail(path, f"schema is {doc.get('schema')!r}, "
                        f"expected {SCHEMA_NAME!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        ok = fail(path, f"schema_version is {doc.get('schema_version')!r}, "
                        f"expected {SCHEMA_VERSION}")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        ok = fail(path, "missing or empty 'bench'")
        bench = ""
    if not isinstance(doc.get("full_scale"), bool):
        ok = fail(path, "'full_scale' must be a bool")
    if not isinstance(doc.get("meta"), dict):
        ok = fail(path, "'meta' must be an object")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "'rows' must be a non-empty array")

    required = required_fields_for(bench)
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            ok = fail(path, f"rows[{i}] is not an object")
            continue
        for field in required:
            if field not in row:
                ok = fail(path, f"rows[{i}] missing required field "
                                f"{field!r} for bench {bench!r}")
        for key, value in row.items():
            if key == "metrics":
                ok = check_metrics(path, i, value) and ok
            elif not isinstance(value, (str, int, float, bool)):
                ok = fail(path, f"rows[{i}][{key!r}] has unexpected type "
                                f"{type(value).__name__}")
        # Torture reports gate hard: an explored crash state that violates
        # the Save-work invariant fails validation, not just the binary.
        if bench == "torture_commit":
            if row.get("violations") != 0 or row.get("ok") is not True:
                ok = fail(path, f"rows[{i}]: crash-state invariant violated "
                                f"(violations={row.get('violations')!r}, "
                                f"diagnostics="
                                f"{row.get('violation_diagnostics')!r})")
            if row.get("replays") != row.get("replays_consistent"):
                ok = fail(path, f"rows[{i}]: {row.get('replays')} replays but "
                                f"only {row.get('replays_consistent')} "
                                f"consistent")
    if ok:
        print(f"{path}: ok ({bench}, {len(rows)} rows)")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
