#!/usr/bin/env python3
"""Validate ftx bench-results JSON files (the --json output of bench/*).

Checks the schema envelope described in docs/OBSERVABILITY.md:

  * top level: schema == "ftx.bench-results", schema_version == 1,
    "bench" (string), "full_scale" (bool), "meta" (object), "rows"
    (non-empty array of flat objects);
  * row values are strings, numbers, or bools, except an optional nested
    "metrics" object whose values are numbers (counters/gauges) or
    histogram objects with count/sum/min/max/p50/p90/p99/bounds/buckets,
    optional nested "audit"/"audit_disk" causal-audit reports
    (ftx.causal-audit schema v1) whose Save-work violation count must be
    zero, and an optional nested "critical_path" report (ftx critical-path
    schema v1) whose hop spans must tile the crash-to-commit window;
  * bench-specific required row fields for the benches we know about
    (e.g. fig8 rows must carry workload/protocol/checkpoints).

With --trace the files are instead Chrome trace_event JSON (the --trace
output of bench/*): every B/E slice must nest per (pid, tid) track, every
flow-finish ('f') must bind to a preceding flow-start ('s') with the same
(cat, name, id), and every counter sample ('C') must carry a numeric args
object.

With --timeseries the files are ftx.timeseries JSONL (the --timeseries
output of bench/*): a v1 header line naming the columns in strict bytewise
name order, then one array per sample with a strictly increasing sim-time
column, no NaN/inf anywhere, and nonnegative nondecreasing counters. With
--results RESULTS.json alongside, the final fleet.efficiency sample must
equal the end-of-run efficiency of the results file's last row.

Usage: check_bench_json.py [--trace] FILE.json [FILE.json ...]
       check_bench_json.py --timeseries [--results R.json] FILE.jsonl [...]
Exits 0 if every file validates, 1 otherwise.
"""

import json
import sys

SCHEMA_NAME = "ftx.bench-results"
SCHEMA_VERSION = 1
AUDIT_SCHEMA_VERSION = 1
TIMESERIES_SCHEMA_NAME = "ftx.timeseries"
TIMESERIES_SCHEMA_VERSION = 1
CRITICAL_PATH_SCHEMA_VERSION = 1
# Recovery phases a critical-path hop may be attributed to (src/obs/causal/).
CRITICAL_PATH_PHASES = {"detection", "log_scan", "page_install",
                        "undo_rollback", "rebuild", "re_execution", "message"}

# Required row fields per bench name prefix. Rows may carry more.
REQUIRED_ROW_FIELDS = {
    "fig8_": ["workload", "protocol", "scale", "checkpoints",
              "rio_overhead_pct", "disk_overhead_pct"],
    "table1_app_faults": ["workload", "fault_type", "crashes", "violations",
                          "violation_fraction"],
    "table2_os_faults": ["workload", "fault_type", "crashes",
                         "failed_recoveries", "failed_recovery_fraction"],
    "fig7_dangerous_paths": ["sweep", "dangerous_fraction"],
    "fig3_protocol_space": ["section", "protocol"],
    "section4_composition": ["section", "workload"],
    "ablation_crash_latency": ["slow_detection_probability",
                               "violation_fraction"],
    "ablation_cost_model": ["sweep"],
    "ablation_protocol_faults": ["protocol", "crashes", "violation_fraction"],
    "micro_commit_hotpath": ["benchmark", "real_time_ns", "cpu_time_ns",
                             "iterations"],
    "torture_commit": ["workload", "protocol", "scale", "batch", "commits",
                       "crash_states", "prefix_states", "torn_states",
                       "reorder_states", "survivor_committed",
                       "survivor_inflight", "survivor_none", "replays",
                       "replays_consistent", "violations", "ok"],
    "backend_equiv": ["workload", "protocol", "backend", "processes", "events",
                      "crashes", "batch", "commits", "window_syncs",
                      "rollbacks", "coordinated_rounds", "decisions",
                      "decision_crc", "transport_mismatches",
                      "durable_mismatches", "equal", "mismatch_index", "ok"],
    "fleet_faults": ["protocol", "crashes", "clients", "servers",
                     "requests_per_client", "necessary_ops", "executed_ops",
                     "efficiency", "violations", "commits", "rollbacks"],
    "recovery_profile": ["section", "workload", "protocol", "store", "scale",
                         "crash_fraction", "repeats", "ok", "violations",
                         "replays", "redo_records", "mttr_count",
                         "mttr_sim_ns_mean", "mttr_sim_ns_p50",
                         "mttr_sim_ns_p90", "mttr_sim_ns_p99",
                         "recover_wall_ns",
                         "phase_log_scan_ns", "phase_crc_validate_ns",
                         "phase_page_install_ns", "phase_reprotect_ns",
                         "phase_nd_replay_ns",
                         "phase_log_scan_count", "phase_crc_validate_count",
                         "phase_page_install_count", "phase_reprotect_count",
                         "phase_nd_replay_count"],
}

HISTOGRAM_FIELDS = {"count", "sum", "min", "max", "p50", "p90", "p99",
                    "bounds", "buckets"}

# Keys of the nested causal-audit report ("audit" / "audit_disk" row
# members) that must be present; reports may carry more.
AUDIT_REQUIRED_FIELDS = {"schema_version", "violations"}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_metrics(path, row_index, metrics):
    ok = True
    if not isinstance(metrics, dict):
        return fail(path, f"rows[{row_index}].metrics is not an object")
    for name, value in metrics.items():
        if is_number(value):
            continue
        if isinstance(value, dict):
            missing = HISTOGRAM_FIELDS - value.keys()
            if missing:
                ok = fail(path, f"rows[{row_index}].metrics[{name!r}] is an "
                                f"object but not a histogram (missing "
                                f"{sorted(missing)})")
                continue
            if len(value["buckets"]) != len(value["bounds"]) + 1:
                ok = fail(path, f"rows[{row_index}].metrics[{name!r}]: "
                                f"buckets must have len(bounds)+1 entries")
            if sum(value["buckets"]) != value["count"]:
                ok = fail(path, f"rows[{row_index}].metrics[{name!r}]: "
                                f"bucket counts do not sum to count")
            if value["count"] > 0:
                quantiles = [value["min"], value["p50"], value["p90"],
                             value["p99"], value["max"]]
                if any(not is_number(q) for q in quantiles):
                    ok = fail(path, f"rows[{row_index}].metrics[{name!r}]: "
                                    f"non-numeric quantile")
                elif sorted(quantiles) != quantiles:
                    ok = fail(path, f"rows[{row_index}].metrics[{name!r}]: "
                                    f"quantiles not monotone "
                                    f"(min<=p50<=p90<=p99<=max): {quantiles}")
            continue
        ok = fail(path, f"rows[{row_index}].metrics[{name!r}] has "
                        f"unexpected type {type(value).__name__}")
    return ok


def check_audit(path, row_index, key, audit):
    """Validates a nested causal-audit report and gates violations == 0."""
    if not isinstance(audit, dict):
        return fail(path, f"rows[{row_index}].{key} is not an object")
    ok = True
    missing = AUDIT_REQUIRED_FIELDS - audit.keys()
    if missing:
        return fail(path, f"rows[{row_index}].{key} missing {sorted(missing)}")
    if audit["schema_version"] != AUDIT_SCHEMA_VERSION:
        ok = fail(path, f"rows[{row_index}].{key}.schema_version is "
                        f"{audit['schema_version']!r}, expected "
                        f"{AUDIT_SCHEMA_VERSION}")
    # The gate: an audited run must uphold Save-work online.
    if audit["violations"] != 0:
        details = audit.get("findings", audit.get("incidents_total"))
        ok = fail(path, f"rows[{row_index}].{key}: Save-work violated online "
                        f"(violations={audit['violations']!r}, "
                        f"findings={details!r})")
    findings = audit.get("findings")
    if findings is not None:
        if not isinstance(findings, list):
            ok = fail(path, f"rows[{row_index}].{key}.findings is not a list")
        else:
            for j, finding in enumerate(findings):
                if not isinstance(finding, dict) or "detail" not in finding:
                    ok = fail(path, f"rows[{row_index}].{key}.findings[{j}] "
                                    f"is not a finding object")
    incidents = audit.get("incidents")
    if incidents is not None:
        if not isinstance(incidents, list):
            ok = fail(path, f"rows[{row_index}].{key}.incidents is not a list")
        else:
            for j, incident in enumerate(incidents):
                if (not isinstance(incident, dict)
                        or not isinstance(incident.get("reason"), str)
                        or not isinstance(incident.get("dump"), str)):
                    ok = fail(path, f"rows[{row_index}].{key}.incidents[{j}] "
                                    f"must carry string reason and dump")
    dumps = audit.get("incident_dumps")
    if dumps is not None and (not isinstance(dumps, list) or
                              any(not isinstance(d, str) for d in dumps)):
        ok = fail(path, f"rows[{row_index}].{key}.incident_dumps must be a "
                        f"list of strings")
    return ok


def check_critical_path(path, row_index, report):
    """Validates a nested critical-path report (fleet_faults max-crash rows).

    The hop chain must start at the root crash, tile the crash-to-commit
    window without gaps or overlaps (hop i+1 starts where hop i ends), use
    only known recovery phases, and name a binding hop that really is the
    longest one reported."""
    if not isinstance(report, dict):
        return fail(path, f"rows[{row_index}].critical_path is not an object")
    ok = True
    if report.get("schema_version") != CRITICAL_PATH_SCHEMA_VERSION:
        ok = fail(path, f"rows[{row_index}].critical_path.schema_version is "
                        f"{report.get('schema_version')!r}, expected "
                        f"{CRITICAL_PATH_SCHEMA_VERSION}")
    if report.get("found") is not True:
        # A crash-free or commit-free run legitimately has no path; nothing
        # else to validate.
        return ok
    span = report.get("span_ns")
    if not is_number(span) or span <= 0:
        ok = fail(path, f"rows[{row_index}].critical_path.span_ns {span!r} "
                        f"must be a positive number")
    hops = report.get("hops")
    if not isinstance(hops, list) or not hops:
        return fail(path, f"rows[{row_index}].critical_path.hops must be a "
                          f"non-empty list")
    cursor = report.get("root_crash_ns")
    longest = None
    for j, hop in enumerate(hops):
        if not isinstance(hop, dict):
            ok = fail(path, f"rows[{row_index}].critical_path.hops[{j}] is "
                            f"not an object")
            continue
        if hop.get("phase") not in CRITICAL_PATH_PHASES:
            ok = fail(path, f"rows[{row_index}].critical_path.hops[{j}]: "
                            f"unknown phase {hop.get('phase')!r}")
        if not (is_number(hop.get("dur_ns")) and hop["dur_ns"] >= 0):
            ok = fail(path, f"rows[{row_index}].critical_path.hops[{j}]: "
                            f"dur_ns {hop.get('dur_ns')!r} must be >= 0")
            continue
        if hop.get("start_ns") != cursor:
            ok = fail(path, f"rows[{row_index}].critical_path.hops[{j}] "
                            f"starts at {hop.get('start_ns')!r}, expected "
                            f"{cursor!r} (hops must tile the span)")
        cursor = hop.get("start_ns", cursor) + hop["dur_ns"]
        if longest is None or hop["dur_ns"] > longest["dur_ns"]:
            longest = hop
    # Hops may be truncated for reporting (hops_total > len(hops)); only a
    # complete chain must land exactly on the last dependent commit.
    if (report.get("hops_total") == len(hops)
            and cursor != report.get("last_commit_ns")):
        ok = fail(path, f"rows[{row_index}].critical_path: hops end at "
                        f"{cursor!r}, not last_commit_ns="
                        f"{report.get('last_commit_ns')!r}")
    binding = report.get("binding")
    if not isinstance(binding, dict):
        ok = fail(path, f"rows[{row_index}].critical_path.binding missing")
    elif longest is not None and binding.get("ns") != longest["dur_ns"]:
        ok = fail(path, f"rows[{row_index}].critical_path.binding.ns "
                        f"{binding.get('ns')!r} is not the longest reported "
                        f"hop ({longest['dur_ns']!r})")
    return ok


def required_fields_for(bench):
    for prefix, fields in REQUIRED_ROW_FIELDS.items():
        if bench == prefix or (prefix.endswith("_") and bench.startswith(prefix)):
            return fields
    return []


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    ok = True
    if doc.get("schema") != SCHEMA_NAME:
        ok = fail(path, f"schema is {doc.get('schema')!r}, "
                        f"expected {SCHEMA_NAME!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        ok = fail(path, f"schema_version is {doc.get('schema_version')!r}, "
                        f"expected {SCHEMA_VERSION}")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        ok = fail(path, "missing or empty 'bench'")
        bench = ""
    if not isinstance(doc.get("full_scale"), bool):
        ok = fail(path, "'full_scale' must be a bool")
    if not isinstance(doc.get("meta"), dict):
        ok = fail(path, "'meta' must be an object")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "'rows' must be a non-empty array")

    required = required_fields_for(bench)
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            ok = fail(path, f"rows[{i}] is not an object")
            continue
        for field in required:
            if field not in row:
                ok = fail(path, f"rows[{i}] missing required field "
                                f"{field!r} for bench {bench!r}")
        for key, value in row.items():
            if key == "metrics":
                ok = check_metrics(path, i, value) and ok
            elif key in ("audit", "audit_disk"):
                ok = check_audit(path, i, key, value) and ok
            elif key == "critical_path":
                ok = check_critical_path(path, i, value) and ok
            elif not isinstance(value, (str, int, float, bool)):
                ok = fail(path, f"rows[{i}][{key!r}] has unexpected type "
                                f"{type(value).__name__}")
        # Torture reports gate hard: an explored crash state that violates
        # the Save-work invariant fails validation, not just the binary.
        if bench == "torture_commit":
            if row.get("violations") != 0 or row.get("ok") is not True:
                ok = fail(path, f"rows[{i}]: crash-state invariant violated "
                                f"(violations={row.get('violations')!r}, "
                                f"diagnostics="
                                f"{row.get('violation_diagnostics')!r})")
            if row.get("replays") != row.get("replays_consistent"):
                ok = fail(path, f"rows[{i}]: {row.get('replays')} replays but "
                                f"only {row.get('replays_consistent')} "
                                f"consistent")
        # Backend-equivalence rows gate hard: in "both" mode the env::threads
        # decision log must be byte-equal to the env::sim oracle's, and no
        # run may have seen a transport or durability mismatch.
        if bench == "backend_equiv":
            if row.get("ok") is not True:
                ok = fail(path, f"rows[{i}]: backend equivalence failed "
                                f"(ok={row.get('ok')!r})")
            if row.get("backend") == "both" and row.get("equal") is not True:
                ok = fail(path, f"rows[{i}]: decision logs diverge at line "
                                f"{row.get('mismatch_index')!r}")
            if (row.get("transport_mismatches") != 0
                    or row.get("durable_mismatches") != 0):
                ok = fail(path, f"rows[{i}]: transport_mismatches="
                                f"{row.get('transport_mismatches')!r}, "
                                f"durable_mismatches="
                                f"{row.get('durable_mismatches')!r}")
        # Recovery-profile rows gate hard too: every sweep point must have
        # actually recovered (replays > 0) into a consistent state, and its
        # host-time phase attribution must have fired (the recovery ran
        # under the profiler, so the log-scan scope count cannot be zero).
        if bench == "recovery_profile":
            if row.get("violations") != 0 or row.get("ok") is not True:
                ok = fail(path, f"rows[{i}]: recovery inconsistent "
                                f"(violations={row.get('violations')!r}, "
                                f"ok={row.get('ok')!r})")
            if not (is_number(row.get("replays")) and row["replays"] > 0):
                ok = fail(path, f"rows[{i}]: zero replays — no recovery was "
                                f"exercised (replays="
                                f"{row.get('replays')!r})")
            if not (is_number(row.get("phase_log_scan_count"))
                    and row["phase_log_scan_count"] > 0):
                ok = fail(path, f"rows[{i}]: profiler saw no recover.log_scan "
                                f"scope (count="
                                f"{row.get('phase_log_scan_count')!r})")
    # Fleet efficiency rows gate hard: exactly-once must hold at every fault
    # rate, efficiency is necessary/executed so it lives in (0, 1] and is
    # exactly 1.0 fault-free, each protocol's curve must be (near-)monotone
    # nonincreasing in the injected crash count — the crash sets are prefixes
    # of each other, so added faults can only add rolled-back work — and a
    # full-scale run must actually be the 10k-client ROADMAP fleet.
    if bench == "fleet_faults":
        curves = {}
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                continue
            if row.get("violations") != 0:
                ok = fail(path, f"rows[{i}]: exactly-once violated "
                                f"(violations={row.get('violations')!r})")
            eff = row.get("efficiency")
            if not is_number(eff) or not 0.0 < eff <= 1.0:
                ok = fail(path, f"rows[{i}]: efficiency {eff!r} outside (0, 1]")
                continue
            if row.get("crashes") == 0 and eff != 1.0:
                ok = fail(path, f"rows[{i}]: fault-free efficiency is {eff!r},"
                                f" expected exactly 1.0")
            curves.setdefault(row.get("protocol"), []).append(
                (row.get("crashes"), eff))
        for protocol, points in curves.items():
            points.sort()
            for (c0, e0), (c1, e1) in zip(points, points[1:]):
                if e1 > e0 + 0.01:
                    ok = fail(path, f"{protocol!r}: efficiency rises from "
                                    f"{e0} at {c0} crashes to {e1} at {c1} "
                                    f"crashes (curve must be nonincreasing)")
        if doc.get("full_scale") is True:
            clients = [r.get("clients") for r in rows if isinstance(r, dict)]
            if any(not is_number(c) or c < 10000 for c in clients):
                ok = fail(path, f"full-scale fleet run with fewer than 10000 "
                                f"clients: {sorted(set(clients))!r}")
    if ok:
        print(f"{path}: ok ({bench}, {len(rows)} rows)")
    return ok


def check_trace_file(path):
    """Validates a Chrome trace_event JSON file (bench --trace output)."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return fail(path, "not a trace_event document (no traceEvents array)")

    ok = True
    events = doc["traceEvents"]
    depth = {}        # (pid, tid) -> open B count
    flow_starts = set()  # (cat, name, id) seen as 's'
    counts = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            ok = fail(path, f"traceEvents[{i}] is not an object")
            continue
        phase = event.get("ph")
        counts[phase] = counts.get(phase, 0) + 1
        if phase == "M":
            continue
        if phase not in ("B", "E", "i", "s", "f", "C"):
            ok = fail(path, f"traceEvents[{i}]: unexpected phase {phase!r}")
            continue
        track = (event.get("pid"), event.get("tid"))
        if phase == "B":
            depth[track] = depth.get(track, 0) + 1
        elif phase == "E":
            depth[track] = depth.get(track, 0) - 1
            if depth[track] < 0:
                ok = fail(path, f"traceEvents[{i}]: 'E' without open 'B' on "
                                f"track {track}")
        elif phase in ("s", "f"):
            flow_key = (event.get("cat"), event.get("name"), event.get("id"))
            if event.get("id") is None:
                ok = fail(path, f"traceEvents[{i}]: flow event without id")
            elif phase == "s":
                flow_starts.add(flow_key)
            elif flow_key not in flow_starts:
                ok = fail(path, f"traceEvents[{i}]: flow finish {flow_key} "
                                f"without a preceding start")
            if phase == "f" and event.get("bp") != "e":
                ok = fail(path, f"traceEvents[{i}]: flow finish must bind "
                                f"with bp='e'")
        elif phase == "C":
            args = event.get("args")
            if (not isinstance(args, dict) or not args
                    or any(not is_number(v) for v in args.values())):
                ok = fail(path, f"traceEvents[{i}]: counter sample needs a "
                                f"non-empty numeric args object")
    for track, open_slices in depth.items():
        if open_slices != 0:
            ok = fail(path, f"track {track}: {open_slices} unclosed 'B' "
                            f"slices at end of trace")
    if ok:
        summary = ", ".join(f"{phase}={n}" for phase, n in sorted(counts.items()))
        print(f"{path}: ok (trace, {len(events)} events: {summary})")
    return ok


def is_finite_number(value):
    return is_number(value) and value == value and abs(value) != float("inf")


def check_timeseries_file(path, results_path=None):
    """Validates an ftx.timeseries JSONL file (bench --timeseries output)."""
    try:
        with open(path, encoding="utf-8") as f:
            lines = [line for line in (l.strip() for l in f) if line]
    except OSError as e:
        return fail(path, f"unreadable: {e}")
    if not lines:
        return fail(path, "empty file")
    try:
        header = json.loads(lines[0])
        samples = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as e:
        return fail(path, f"invalid JSON line: {e}")

    ok = True
    if not isinstance(header, dict):
        return fail(path, "header line is not an object")
    if header.get("schema") != TIMESERIES_SCHEMA_NAME:
        ok = fail(path, f"schema is {header.get('schema')!r}, expected "
                        f"{TIMESERIES_SCHEMA_NAME!r}")
    if header.get("version") != TIMESERIES_SCHEMA_VERSION:
        ok = fail(path, f"version is {header.get('version')!r}, expected "
                        f"{TIMESERIES_SCHEMA_VERSION}")
    cadence = header.get("cadence_ns")
    if not (is_number(cadence) and cadence > 0):
        ok = fail(path, f"cadence_ns {cadence!r} must be a positive number")
        cadence = None
    columns = header.get("columns")
    if not isinstance(columns, list) or not columns:
        return fail(path, "'columns' must be a non-empty array")
    names = []
    for c, col in enumerate(columns):
        if (not isinstance(col, dict) or not isinstance(col.get("name"), str)
                or col.get("kind") not in ("counter", "gauge")):
            ok = fail(path, f"columns[{c}] must carry a string name and a "
                            f"counter|gauge kind: {col!r}")
            continue
        names.append(col["name"])
    # Column order is pinned: strict bytewise (ordinal) name order, the same
    # collation-independent order the registry snapshot uses.
    if names != sorted(names) or len(set(names)) != len(names):
        ok = fail(path, f"column names not in strict bytewise order: {names}")
    if header.get("samples") != len(samples):
        ok = fail(path, f"header says {header.get('samples')!r} samples, file "
                        f"has {len(samples)}")
    if not (isinstance(header.get("dropped"), int) and header["dropped"] >= 0):
        ok = fail(path, f"'dropped' must be a nonnegative integer, got "
                        f"{header.get('dropped')!r}")
    if not samples:
        return fail(path, "no samples")

    prev_t = None
    prev_counters = {}
    counter_idx = [c for c, col in enumerate(columns)
                   if isinstance(col, dict) and col.get("kind") == "counter"]
    for i, sample in enumerate(samples):
        if not isinstance(sample, list) or len(sample) != len(columns) + 1:
            ok = fail(path, f"sample {i} must be an array of "
                            f"{len(columns) + 1} values: {sample!r}")
            continue
        t = sample[0]
        if not is_finite_number(t) or t < 0:
            ok = fail(path, f"sample {i}: bad time {t!r}")
            continue
        if prev_t is not None and t <= prev_t:
            ok = fail(path, f"sample {i}: time {t} not strictly greater than "
                            f"{prev_t}")
        # Every sample except the closing one lands on a cadence boundary.
        if cadence and i < len(samples) - 1 and t % cadence != 0:
            ok = fail(path, f"sample {i}: time {t} off the {cadence} ns "
                            f"cadence")
        prev_t = t
        for c, value in enumerate(sample[1:]):
            if not is_finite_number(value):
                ok = fail(path, f"sample {i} column {c}: non-finite value "
                                f"{value!r}")
        for c in counter_idx:
            value = sample[1 + c]
            if not is_finite_number(value):
                continue
            if value < 0:
                ok = fail(path, f"sample {i}: counter "
                                f"{columns[c]['name']!r} negative: {value!r}")
            if c in prev_counters and value < prev_counters[c]:
                ok = fail(path, f"sample {i}: counter "
                                f"{columns[c]['name']!r} retreats from "
                                f"{prev_counters[c]!r} to {value!r}")
            prev_counters[c] = value

    # Cross-check: the closing fleet.efficiency sample is the end-of-run
    # state, so it must equal the efficiency the results row reports for the
    # sampled run (the last declared row's max-crash run).
    if results_path is not None and "fleet.efficiency" in names:
        try:
            with open(results_path, encoding="utf-8") as f:
                results = json.load(f)
            row = results["rows"][-1]
            reported = row["efficiency"]
        except (OSError, json.JSONDecodeError, LookupError, TypeError) as e:
            ok = fail(path, f"cannot cross-check against {results_path}: {e}")
        else:
            eff_col = 1 + names.index("fleet.efficiency")
            final = samples[-1][eff_col]
            if not is_number(reported) or abs(final - reported) > 1e-9:
                ok = fail(path, f"final fleet.efficiency sample {final!r} != "
                                f"reported end-of-run efficiency {reported!r} "
                                f"({results_path} rows[-1])")
    if ok:
        print(f"{path}: ok (timeseries, {len(samples)} samples x "
              f"{len(columns)} columns)")
    return ok


def main(argv):
    args = argv[1:]
    trace_mode = False
    timeseries_mode = False
    results_path = None
    if args and args[0] == "--trace":
        trace_mode = True
        args = args[1:]
    elif args and args[0] == "--timeseries":
        timeseries_mode = True
        args = args[1:]
        if len(args) >= 2 and args[0] == "--results":
            results_path = args[1]
            args = args[2:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for path in args:
        if trace_mode:
            ok = check_trace_file(path) and ok
        elif timeseries_mode:
            ok = check_timeseries_file(path, results_path) and ok
        else:
            ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
