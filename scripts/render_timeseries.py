#!/usr/bin/env python3
"""Self-contained HTML report for ftx.timeseries JSONL telemetry.

Reads the simulated-time telemetry a bench wrote via --timeseries PATH
(src/obs/tsdb/: a header line, then one JSON array per sample) and renders
one inline-SVG lane per column into a single HTML file with no external
dependencies — open it from a file:// URL on an air-gapped machine.

Counter columns (cumulative, nondecreasing) are plotted as rates: the
per-interval delta divided by the interval, in events per simulated second.
Gauge columns plot their sampled value directly. Whenever a `dc.down`
column is present, every interval in which at least one process was down
is shaded across all lanes — the fleet's recovery window — and the report
header summarizes the efficiency dip (minimum and final `fleet.efficiency`)
when that gauge exists.

The output is a pure function of the input bytes: no timestamps, hostnames
or randomness, so two runs of this script on byte-identical telemetry
produce byte-identical HTML (the determinism tests rely on this).

Usage:
  render_timeseries.py INPUT.jsonl [-o OUT.html] [--title TEXT]

Default output path is INPUT with its suffix replaced by `.html`.
"""

import argparse
import html
import json
import sys

LANE_W = 860
LANE_H = 110
MARGIN_L = 70
MARGIN_R = 16
MARGIN_T = 8
MARGIN_B = 20

CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 24px auto; max-width: 980px;
       color: #1a1a1a; background: #fcfcfc; }
h1 { font-size: 20px; } h2 { font-size: 15px; margin: 18px 0 2px; }
table.meta { border-collapse: collapse; margin: 8px 0 16px; }
table.meta td { border: 1px solid #ddd; padding: 3px 10px; }
table.meta td:first-child { background: #f3f3f3; font-weight: 600; }
.lane { margin-bottom: 4px; }
.axis { stroke: #999; stroke-width: 1; }
.grid { stroke: #e8e8e8; stroke-width: 1; }
.series { fill: none; stroke: #2060c0; stroke-width: 1.5; }
.down { fill: #e05050; fill-opacity: 0.18; }
.lbl { font: 11px system-ui, sans-serif; fill: #555; }
.dip { color: #b03030; font-weight: 600; }
"""


def load_jsonl(path):
    with open(path, encoding="utf-8") as f:
        lines = [line for line in (l.strip() for l in f) if line]
    if not lines:
        raise ValueError(f"{path}: empty file")
    header = json.loads(lines[0])
    if header.get("schema") != "ftx.timeseries":
        raise ValueError(f"{path}: not an ftx.timeseries file")
    samples = [json.loads(line) for line in lines[1:]]
    ncols = len(header["columns"])
    for i, s in enumerate(samples):
        if not isinstance(s, list) or len(s) != ncols + 1:
            raise ValueError(f"{path}: sample {i} has {len(s)} fields, want {ncols + 1}")
    return header, samples


def fmt(v):
    """Axis label: compact, deterministic."""
    if v == 0:
        return "0"
    a = abs(v)
    if a >= 1e6:
        return f"{v / 1e6:.3g}M"
    if a >= 1e3:
        return f"{v / 1e3:.3g}k"
    if a >= 1:
        return f"{v:.4g}"
    return f"{v:.3g}"


def lane_svg(name, kind, times_ns, values, down_spans, t_end_ns):
    """One column as an inline SVG lane. `values` is already rate-converted
    for counters; `down_spans` is [(start_ns, end_ns)] shaded on every lane."""
    w, h = LANE_W, LANE_H
    x0, x1 = MARGIN_L, w - MARGIN_R
    y0, y1 = MARGIN_T, h - MARGIN_B
    t_span = max(t_end_ns, 1)

    lo = min(values) if values else 0.0
    hi = max(values) if values else 1.0
    if name == "fleet.efficiency":
        lo, hi = min(lo, 0.99), 1.0  # pin the top so the dip reads at a glance
    if hi <= lo:
        hi = lo + 1.0
    pad = (hi - lo) * 0.06
    lo, hi = lo - pad, hi + pad

    def x(t):
        return x0 + (x1 - x0) * (t / t_span)

    def y(v):
        return y1 - (y1 - y0) * ((v - lo) / (hi - lo))

    parts = [f'<svg class="lane" width="{w}" height="{h}" viewBox="0 0 {w} {h}">']
    for s_ns, e_ns in down_spans:
        parts.append(
            f'<rect class="down" x="{x(s_ns):.1f}" y="{y0}" '
            f'width="{max(x(e_ns) - x(s_ns), 1.0):.1f}" height="{y1 - y0}"/>'
        )
    for frac in (0.0, 0.5, 1.0):
        gy = y0 + (y1 - y0) * frac
        parts.append(f'<line class="grid" x1="{x0}" y1="{gy:.1f}" x2="{x1}" y2="{gy:.1f}"/>')
    parts.append(f'<line class="axis" x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}"/>')
    parts.append(f'<line class="axis" x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}"/>')
    pts = " ".join(f"{x(t):.1f},{y(v):.1f}" for t, v in zip(times_ns, values))
    if pts:
        parts.append(f'<polyline class="series" points="{pts}"/>')
    unit = " (per sim s)" if kind == "counter" else ""
    parts.append(
        f'<text class="lbl" x="{x0}" y="{y0 + 4}" dy="6">{html.escape(name)}{unit}</text>'
    )
    parts.append(f'<text class="lbl" x="4" y="{y0 + 10}">{html.escape(fmt(hi))}</text>')
    parts.append(f'<text class="lbl" x="4" y="{y1}">{html.escape(fmt(lo))}</text>')
    parts.append(
        f'<text class="lbl" x="{x1 - 60}" y="{h - 6}">{t_end_ns / 1e6:.3f} sim ms</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def render(header, samples, title):
    columns = header["columns"]
    cadence_ns = header.get("cadence_ns", 0)
    times = [s[0] for s in samples]
    t_end = times[-1] if times else 1
    by_name = {c["name"]: i for i, c in enumerate(columns)}

    # Recovery window: merge consecutive sample intervals with dc.down > 0.
    down_spans = []
    down_idx = by_name.get("dc.down")
    if down_idx is not None:
        start = None
        for i, s in enumerate(samples):
            if s[1 + down_idx] > 0:
                if start is None:
                    start = times[i - 1] if i > 0 else times[i]
            elif start is not None:
                down_spans.append((start, times[i]))
                start = None
        if start is not None:
            down_spans.append((start, t_end))

    lanes = []
    for ci, col in enumerate(columns):
        vals = [s[1 + ci] for s in samples]
        if col["kind"] == "counter":
            # Rate over each interval, attributed to its right edge; the
            # first sample has no predecessor and plots zero.
            rates = [0.0]
            for i in range(1, len(samples)):
                dt = times[i] - times[i - 1]
                rates.append((vals[i] - vals[i - 1]) * 1e9 / dt if dt > 0 else 0.0)
            plot = rates
        else:
            plot = [float(v) for v in vals]
        lanes.append(lane_svg(col["name"], col["kind"], times, plot, down_spans, t_end))

    dip_note = ""
    eff_idx = by_name.get("fleet.efficiency")
    if eff_idx is not None and samples:
        effs = [s[1 + eff_idx] for s in samples]
        dip_note = (
            f'<p>Efficiency dip: minimum <span class="dip">{min(effs):.4f}</span>, '
            f"final {effs[-1]:.4f}. Shaded spans mark intervals with at least one "
            f"process down (the recovery window).</p>"
        )

    meta_rows = "".join(
        f"<tr><td>{html.escape(str(k))}</td><td>{html.escape(json.dumps(v))}</td></tr>"
        for k, v in sorted(header.get("meta", {}).items())
    )
    meta_rows += (
        f"<tr><td>cadence</td><td>{cadence_ns} ns</td></tr>"
        f"<tr><td>samples</td><td>{len(samples)} retained, "
        f"{header.get('dropped', 0)} evicted</td></tr>"
    )

    return (
        "<!doctype html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{CSS}</style></head><body>\n"
        f"<h1>{html.escape(title)}</h1>\n"
        f'<table class="meta">{meta_rows}</table>\n'
        f"{dip_note}\n"
        + "\n".join(f"<h2></h2>{lane}" for lane in lanes)
        + "\n</body></html>\n"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", help="ftx.timeseries JSONL file")
    parser.add_argument("-o", "--output", help="output HTML path (default: INPUT -> .html)")
    parser.add_argument("--title", default="ftx sim-time telemetry", help="report title")
    args = parser.parse_args()

    header, samples = load_jsonl(args.input)
    out_path = args.output
    if out_path is None:
        out_path = args.input.rsplit(".", 1)[0] + ".html"
    doc = render(header, samples, args.title)
    with open(out_path, "w", encoding="utf-8") as f:
        f.write(doc)
    print(f"wrote {len(samples)} samples x {len(header['columns'])} columns to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
