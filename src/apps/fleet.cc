#include "src/apps/fleet.h"

#include <algorithm>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/check.h"

namespace ftx_apps {
namespace {

constexpr uint64_t kServerMagic = 0x666c740073727600ULL;  // "flt\0srv\0"
constexpr uint64_t kClientMagic = 0x666c7400636c6900ULL;  // "flt\0cli\0"

// Wire tags. Fields are appended individually (no struct padding on the
// wire — message bytes must be deterministic).
constexpr uint8_t kTagRequest = 'R';
constexpr uint8_t kTagAck = 'A';
constexpr uint8_t kTagBye = 'B';

// --- server segment layout ---
// Ledger header at 0, then a per-client last-applied-seq table (dedup
// against resends after client rollback), then a per-client bye flag table
// (dedup against re-sent session ends).
constexpr int64_t kServerHeaderOffset = 0;
constexpr int64_t kServerTablesOffset = 128;

struct ServerState {
  uint64_t magic = kServerMagic;
  int64_t applied = 0;    // requests applied exactly once
  int64_t value_sum = 0;  // running ledger total
  int64_t byes = 0;       // client sessions ended
  int64_t reports = 0;    // progress lines printed
  int64_t since_report = 0;
};

// --- client segment layout ---
constexpr int64_t kClientHeaderOffset = 0;

struct ClientState {
  uint64_t magic = kClientMagic;
  int64_t phase = 0;     // 0 = send next request, 1 = awaiting ack
  int64_t next_seq = 0;  // requests sent so far
  int64_t acked = 0;     // acks processed
  int64_t last_applied_seen = 0;  // server-side per-client count echoed back
};

// Deterministic per-(pid, seq) jitter so the fleet's sends spread out
// instead of phase-locking (pure function of committed state — safe to
// reexecute).
int64_t MixJitter(int pid, int64_t seq, int64_t bound) {
  uint64_t x = static_cast<uint64_t>(pid) * 0x9e3779b97f4a7c15ULL +
               static_cast<uint64_t>(seq) * 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 29;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 32;
  return static_cast<int64_t>(x % static_cast<uint64_t>(bound));
}

int64_t LastSeqOffset(int local_client) {
  return kServerTablesOffset + static_cast<int64_t>(local_client) * 8;
}

int64_t ByeFlagOffset(const FleetConfig& config, int server_pid, int local_client) {
  return kServerTablesOffset + static_cast<int64_t>(FleetClientsOfServer(config, server_pid)) * 8 +
         local_client;
}

}  // namespace

int FleetServerOf(const FleetConfig& config, int client_pid) {
  const int index = client_pid - config.num_servers;
  FTX_CHECK(index >= 0 && index < config.num_clients);
  return index % config.num_servers;
}

int FleetClientsOfServer(const FleetConfig& config, int server_pid) {
  FTX_CHECK(server_pid >= 0 && server_pid < config.num_servers);
  if (server_pid >= config.num_clients) {
    return 0;
  }
  return (config.num_clients - server_pid - 1) / config.num_servers + 1;
}

int64_t FleetRequestValue(int client_pid, int64_t seq) {
  uint64_t x = static_cast<uint64_t>(client_pid) * 0xd1342543de82ef95ULL +
               static_cast<uint64_t>(seq) + 1;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<int64_t>(x & 0xffff);
}

int64_t FleetExpectedValueSum(const FleetConfig& config) {
  int64_t sum = 0;
  for (int i = 0; i < config.num_clients; ++i) {
    for (int64_t seq = 0; seq < config.requests_per_client; ++seq) {
      sum += FleetRequestValue(config.num_servers + i, seq);
    }
  }
  return sum;
}

// ---------------------------------------------------------------- server

FleetServer::FleetServer(FleetConfig config) : config_(config) {}

size_t FleetServer::SegmentBytes() const {
  // Worst-case table width: the server with the most assigned clients.
  const int max_clients =
      config_.num_servers > 0 ? FleetClientsOfServer(config_, 0) : config_.num_clients;
  const size_t raw = static_cast<size_t>(kServerTablesOffset) +
                     static_cast<size_t>(max_clients) * 9;  // 8B seq + 1B bye flag
  return (raw + 4095) / 4096 * 4096;
}

void FleetServer::Init(ftx_dc::ProcessEnv& env) {
  ServerState state;
  env.segment().WriteValue(kServerHeaderOffset, state);
  const int assigned = FleetClientsOfServer(config_, env.pid());
  for (int c = 0; c < assigned; ++c) {
    env.segment().WriteValue(LastSeqOffset(c), int64_t{-1});
    env.segment().WriteValue(ByeFlagOffset(config_, env.pid(), c), uint8_t{0});
  }
}

ftx_dc::StepOutcome FleetServer::Step(ftx_dc::ProcessEnv& env) {
  ServerState state = env.segment().Read<ServerState>(kServerHeaderOffset);
  if (state.magic != kServerMagic) {
    env.Crash("fleet-server: ledger header corrupted");
    return ftx_dc::StepOutcome{};
  }
  const int assigned = FleetClientsOfServer(config_, env.pid());

  std::optional<ftx_sim::Message> msg = env.TryReceive();
  if (!msg.has_value()) {
    if (state.byes >= assigned) {
      // Every client session ended: final summary line, then done.
      ftx::Bytes row;
      ftx::AppendValue(&row, uint8_t{'F'});
      ftx::AppendValue(&row, state.applied);
      ftx::AppendValue(&row, state.value_sum);
      env.Print(std::move(row));
      return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
    }
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kBlocked, ftx::Duration()};
  }

  size_t offset = 0;
  uint8_t tag = 0;
  if (!ftx::ReadValue(msg->payload, &offset, &tag)) {
    env.Crash("fleet-server: empty message");
    return ftx_dc::StepOutcome{};
  }

  if (tag == kTagRequest) {
    int64_t client_pid = 0;
    int64_t seq = 0;
    int64_t value = 0;
    if (!ftx::ReadValue(msg->payload, &offset, &client_pid) ||
        !ftx::ReadValue(msg->payload, &offset, &seq) ||
        !ftx::ReadValue(msg->payload, &offset, &value)) {
      env.Crash("fleet-server: truncated request");
      return ftx_dc::StepOutcome{};
    }
    const int local = (static_cast<int>(client_pid) - config_.num_servers) / config_.num_servers;
    if (local < 0 || local >= assigned ||
        FleetServerOf(config_, static_cast<int>(client_pid)) != env.pid()) {
      env.Crash("fleet-server: request from a client of another server");
      return ftx_dc::StepOutcome{};
    }
    const int64_t last_seq = env.segment().Read<int64_t>(LastSeqOffset(local));
    if (seq == last_seq + 1) {
      // Fresh request: apply exactly once.
      ++executed_ops_;
      state.applied += 1;
      state.value_sum += value;
      state.since_report += 1;
      env.segment().WriteValue(LastSeqOffset(local), seq);
      env.Compute(config_.work_per_op);
    }
    // A resend (seq <= last_seq, after a client rollback) is acked again
    // without re-applying; a gap (seq > last_seq + 1) cannot happen on a
    // FIFO channel and would have been a lost update — crash on it.
    if (seq > last_seq + 1) {
      env.Crash("fleet-server: sequence gap");
      return ftx_dc::StepOutcome{};
    }
    // The ack echoes the per-client applied count, so duplicate acks for
    // one seq are byte-identical no matter when they are produced.
    ftx::Bytes ack;
    ftx::AppendValue(&ack, kTagAck);
    ftx::AppendValue(&ack, seq);
    int64_t client_applied = env.segment().Read<int64_t>(LastSeqOffset(local)) + 1;
    ftx::AppendValue(&ack, client_applied);
    env.Send(static_cast<int>(client_pid), std::move(ack));

    if (config_.report_every > 0 && state.since_report >= config_.report_every) {
      state.since_report = 0;
      state.reports += 1;
      env.segment().WriteValue(kServerHeaderOffset, state);
      // Progress line: the visible event that drives fleet-wide coordinated
      // commits under the 2PC protocols.
      ftx::Bytes row;
      ftx::AppendValue(&row, uint8_t{'P'});
      ftx::AppendValue(&row, state.reports);
      ftx::AppendValue(&row, state.applied);
      env.Print(std::move(row));
    } else {
      env.segment().WriteValue(kServerHeaderOffset, state);
    }
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
  }

  if (tag == kTagBye) {
    int64_t client_pid = 0;
    if (!ftx::ReadValue(msg->payload, &offset, &client_pid)) {
      env.Crash("fleet-server: truncated bye");
      return ftx_dc::StepOutcome{};
    }
    const int local = (static_cast<int>(client_pid) - config_.num_servers) / config_.num_servers;
    if (local < 0 || local >= assigned) {
      env.Crash("fleet-server: bye from a client of another server");
      return ftx_dc::StepOutcome{};
    }
    const int64_t flag_offset = ByeFlagOffset(config_, env.pid(), local);
    if (env.segment().Read<uint8_t>(flag_offset) == 0) {
      env.segment().WriteValue(flag_offset, uint8_t{1});
      state.byes += 1;
      env.segment().WriteValue(kServerHeaderOffset, state);
    }
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
  }

  env.Crash("fleet-server: unknown message tag");
  return ftx_dc::StepOutcome{};
}

ftx::Status FleetServer::CheckIntegrity(ftx_dc::ProcessEnv& env) {
  ServerState state = env.segment().Read<ServerState>(kServerHeaderOffset);
  if (state.magic != kServerMagic) {
    return ftx::DataLossError("fleet-server: header corrupted");
  }
  if (state.applied < 0 || state.byes < 0 ||
      state.byes > FleetClientsOfServer(config_, env.pid())) {
    return ftx::DataLossError("fleet-server: ledger counters out of range");
  }
  return ftx::Status::Ok();
}

int64_t FleetServer::AppliedCount(ftx_dc::ProcessEnv& env) {
  return env.segment().Read<ServerState>(kServerHeaderOffset).applied;
}

int64_t FleetServer::ValueSum(ftx_dc::ProcessEnv& env) {
  return env.segment().Read<ServerState>(kServerHeaderOffset).value_sum;
}

// ---------------------------------------------------------------- client

FleetClient::FleetClient(FleetConfig config) : config_(config) {}

void FleetClient::Init(ftx_dc::ProcessEnv& env) {
  ClientState state;
  env.segment().WriteValue(kClientHeaderOffset, state);
}

ftx_dc::StepOutcome FleetClient::Step(ftx_dc::ProcessEnv& env) {
  ClientState state = env.segment().Read<ClientState>(kClientHeaderOffset);
  if (state.magic != kClientMagic) {
    env.Crash("fleet-client: state corrupted");
    return ftx_dc::StepOutcome{};
  }
  const int server = FleetServerOf(config_, env.pid());

  if (state.phase == 0) {
    if (state.acked >= config_.requests_per_client) {
      // Session complete: tell the server and finish.
      ftx::Bytes bye;
      ftx::AppendValue(&bye, kTagBye);
      ftx::AppendValue(&bye, static_cast<int64_t>(env.pid()));
      env.Send(server, std::move(bye));
      return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
    }
    ftx::Bytes request;
    ftx::AppendValue(&request, kTagRequest);
    ftx::AppendValue(&request, static_cast<int64_t>(env.pid()));
    ftx::AppendValue(&request, state.next_seq);
    ftx::AppendValue(&request, FleetRequestValue(env.pid(), state.next_seq));
    env.Send(server, std::move(request));
    state.phase = 1;
    state.next_seq += 1;
    env.segment().WriteValue(kClientHeaderOffset, state);
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
  }

  // Awaiting the ack for next_seq - 1.
  std::optional<ftx_sim::Message> msg = env.TryReceive();
  if (!msg.has_value()) {
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kBlocked, ftx::Duration()};
  }
  size_t offset = 0;
  uint8_t tag = 0;
  int64_t seq = -1;
  int64_t client_applied = 0;
  if (!ftx::ReadValue(msg->payload, &offset, &tag) || tag != kTagAck ||
      !ftx::ReadValue(msg->payload, &offset, &seq) ||
      !ftx::ReadValue(msg->payload, &offset, &client_applied)) {
    env.Crash("fleet-client: malformed ack");
    return ftx_dc::StepOutcome{};
  }
  if (seq == state.next_seq - 1) {
    ++executed_ops_;
    state.acked += 1;
    state.last_applied_seen = client_applied;
    state.phase = 0;
    env.segment().WriteValue(kClientHeaderOffset, state);
    // Deterministic think time before the next request spreads the fleet's
    // traffic out in simulated time.
    ftx::Duration think =
        config_.client_think +
        ftx::Microseconds(MixJitter(env.pid(), state.next_seq,
                                    std::max<int64_t>(config_.client_think.nanos() / 250, 1)));
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, think};
  }
  if (seq >= state.next_seq) {
    env.Crash("fleet-client: ack from the future");
    return ftx_dc::StepOutcome{};
  }
  // Stale duplicate (redelivered after a rollback): drop it and poll again.
  return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
}

ftx::Status FleetClient::CheckIntegrity(ftx_dc::ProcessEnv& env) {
  ClientState state = env.segment().Read<ClientState>(kClientHeaderOffset);
  if (state.magic != kClientMagic) {
    return ftx::DataLossError("fleet-client: state corrupted");
  }
  if (state.acked < 0 || state.acked > state.next_seq ||
      state.next_seq > config_.requests_per_client) {
    return ftx::DataLossError("fleet-client: sequence counters out of range");
  }
  return ftx::Status::Ok();
}

int64_t FleetClient::AckedCount(ftx_dc::ProcessEnv& env) {
  return env.segment().Read<ClientState>(kClientHeaderOffset).acked;
}

std::vector<std::unique_ptr<ftx_dc::App>> MakeFleetApps(const FleetConfig& config) {
  FTX_CHECK(config.num_servers >= 1);
  FTX_CHECK(config.num_clients >= 1);
  FTX_CHECK(config.requests_per_client >= 1);
  std::vector<std::unique_ptr<ftx_dc::App>> apps;
  apps.reserve(static_cast<size_t>(config.num_processes()));
  for (int s = 0; s < config.num_servers; ++s) {
    apps.push_back(std::make_unique<FleetServer>(config));
  }
  for (int c = 0; c < config.num_clients; ++c) {
    apps.push_back(std::make_unique<FleetClient>(config));
  }
  return apps;
}

}  // namespace ftx_apps
