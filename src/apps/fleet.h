// fleet: the fleet-scale client/server workload (ROADMAP: 10k+ processes).
//
// N client processes drive M server processes through a request/ack RPC
// loop: each client sends K sequenced requests to its home server (client i
// talks to server i % M), the server applies each request exactly once to
// its in-segment ledger (per-client sequence table for dedup) and replies,
// and every client ends its session with a "bye". Servers emit a progress
// line (a visible event) every `report_every` applies and a final summary
// line when all of their clients have said bye — under the 2PC protocols
// those visibles drive fleet-wide coordinated commits, which is the whole
// point: crash a process anywhere and the protocol decides how much of the
// fleet's work survives.
//
// The workload is the measurement substrate for the Dwork/Halpern/Waarts
// efficiency curve (bench/fleet_faults.cc): "necessary" work is one apply
// and one ack-processing per request (2·N·K units); every re-execution
// after a rollback re-counts in the host-side executed-work counters, so
//   efficiency = necessary / executed
// is 1.0 in a fault-free run and decays as injected crash rates grow.
// Exactly-once application (dedup despite resends and server rollbacks) is
// asserted separately as the bench's violation count.

#ifndef FTX_SRC_APPS_FLEET_H_
#define FTX_SRC_APPS_FLEET_H_

#include <memory>
#include <vector>

#include "src/checkpoint/app.h"

namespace ftx_apps {

struct FleetConfig {
  int num_servers = 2;          // pids [0, num_servers)
  int num_clients = 8;          // pids [num_servers, num_servers + num_clients)
  int requests_per_client = 4;  // K sequenced requests per client session
  ftx::Duration work_per_op = ftx::Microseconds(20);   // server apply cost
  ftx::Duration client_think = ftx::Microseconds(50);  // base think time
  int report_every = 256;       // server progress line (visible) cadence

  int num_processes() const { return num_servers + num_clients; }
};

// Topology helpers (shared by the apps, the bench, and the tests).
int FleetServerOf(const FleetConfig& config, int client_pid);
int FleetClientsOfServer(const FleetConfig& config, int server_pid);
// Deterministic request payload value for (client_pid, seq).
int64_t FleetRequestValue(int client_pid, int64_t seq);
// Sum of FleetRequestValue over every request in the run (the ledger total
// every violation check compares against).
int64_t FleetExpectedValueSum(const FleetConfig& config);

class FleetServer : public ftx_dc::App {
 public:
  explicit FleetServer(FleetConfig config);

  std::string_view name() const override { return "fleet-server"; }
  size_t SegmentBytes() const override;
  int64_t HeapOffset() const override { return 0; }
  int64_t HeapBytes() const override { return 0; }
  void Init(ftx_dc::ProcessEnv& env) override;
  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override;
  ftx::Status CheckIntegrity(ftx_dc::ProcessEnv& env) override;

  // Host-side work counter: applies executed, INCLUDING re-executions after
  // rollback (not simulated state; the efficiency denominator).
  int64_t executed_ops() const { return executed_ops_; }

  // Committed-ledger readers for violation checks / tests.
  static int64_t AppliedCount(ftx_dc::ProcessEnv& env);
  static int64_t ValueSum(ftx_dc::ProcessEnv& env);

 private:
  FleetConfig config_;
  int64_t executed_ops_ = 0;
};

class FleetClient : public ftx_dc::App {
 public:
  explicit FleetClient(FleetConfig config);

  std::string_view name() const override { return "fleet-client"; }
  size_t SegmentBytes() const override { return 4096; }
  int64_t HeapOffset() const override { return 0; }
  int64_t HeapBytes() const override { return 0; }
  void Init(ftx_dc::ProcessEnv& env) override;
  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override;
  ftx::Status CheckIntegrity(ftx_dc::ProcessEnv& env) override;

  // Host-side work counter: acks processed, including re-executions.
  int64_t executed_ops() const { return executed_ops_; }

  static int64_t AckedCount(ftx_dc::ProcessEnv& env);

 private:
  FleetConfig config_;
  int64_t executed_ops_ = 0;
};

// The full fleet: servers first, then clients (one app per pid).
std::vector<std::unique_ptr<ftx_dc::App>> MakeFleetApps(const FleetConfig& config);

}  // namespace ftx_apps

#endif  // FTX_SRC_APPS_FLEET_H_
