#include "src/apps/magic.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/crc32.h"

namespace ftx_apps {
namespace {

constexpr int64_t kHeaderOffset = 0;
constexpr int64_t kControlOffset = 256;
constexpr int64_t kControlSize = 768;
constexpr int64_t kScratchOffset = 4096;
constexpr int64_t kScratchSize = 4096;
constexpr int64_t kGridOffset = 8192;
constexpr uint64_t kHeaderMagic = 0x6d61676963766c73ULL;
// The undo buffer sits after the grid and holds a before-image of the last
// command's affected region.
constexpr int64_t kUndoBytes = 2 * 1024 * 1024;

struct MagicState {
  uint64_t magic = kHeaderMagic;
  int64_t command_count = 0;
  int64_t cells_painted = 0;
  int32_t grid_dim = 0;
  int32_t current_layer = 1;
};

struct Command {
  uint8_t opcode = 0;  // 'P' paint, 'E' erase, 'W' wire, 'F' fill
  int32_t x = 0;
  int32_t y = 0;
  int32_t w = 0;
  int32_t h = 0;
  int32_t layer = 1;
};

struct Scratch {
  Command command;
  int64_t cells_touched = 0;
  uint32_t region_crc = 0;
};

MagicState LoadState(ftx_dc::ProcessEnv& env) {
  return env.segment().Read<MagicState>(kHeaderOffset);
}

void StoreState(ftx_dc::ProcessEnv& env, const MagicState& state) {
  env.segment().WriteValue(kHeaderOffset, state);
}

int64_t CellOffset(int32_t grid_dim, int32_t x, int32_t y) {
  return kGridOffset + (static_cast<int64_t>(y) * grid_dim + x) * static_cast<int64_t>(sizeof(int32_t));
}

}  // namespace

Magic::Magic(MagicOptions options) : options_(options) {}

size_t Magic::SegmentBytes() const {
  int64_t grid_bytes = static_cast<int64_t>(options_.grid_dim) * options_.grid_dim *
                       static_cast<int64_t>(sizeof(int32_t));
  return static_cast<size_t>(kGridOffset + grid_bytes + kUndoBytes + HeapBytes() + 4096);
}

int64_t Magic::HeapOffset() const {
  return kGridOffset +
         static_cast<int64_t>(options_.grid_dim) * options_.grid_dim *
             static_cast<int64_t>(sizeof(int32_t)) +
         kUndoBytes;
}

void Magic::Init(ftx_dc::ProcessEnv& env) {
  MagicState state;
  state.grid_dim = options_.grid_dim;
  StoreState(env, state);
  ftx_dc::InitFaultControlArea(env, kControlOffset, kControlSize);
  // A small netlist arena gives the fault injector heap targets.
  for (int i = 0; i < 16; ++i) {
    ftx::Result<int64_t> block = env.heap().Alloc(512);
    FTX_CHECK(block.ok());
    uint8_t* p = env.segment().OpenForWrite(*block, 512);
    std::fill(p, p + 512, static_cast<uint8_t>(i + 1));
  }
}

ftx_dc::StepOutcome Magic::Step(ftx_dc::ProcessEnv& env) {
  // A command is typed as 2-3 keystroke tokens; the final token carries the
  // command descriptor.
  Command command;
  bool have_command = false;
  for (int i = 0; i < 4 && !have_command; ++i) {
    std::optional<ftx::Bytes> token = env.ReadUserInput();
    if (!token.has_value()) {
      return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
    }
    if (token->size() >= sizeof(Command)) {
      size_t offset = 0;
      FTX_CHECK(ftx::ReadValue(*token, &offset, &command));
      have_command = true;
    }
  }
  if (!have_command) {
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, options_.think_time};
  }

  MagicState state = LoadState(env);
  if (state.magic != kHeaderMagic) {
    env.Crash("magic: header corrupted");
    return ftx_dc::StepOutcome{};
  }
  ++state.command_count;

  Scratch scratch;
  scratch.command = command;

  const int32_t dim = state.grid_dim;
  int32_t x0 = std::clamp(command.x, 0, dim - 1);
  int32_t y0 = std::clamp(command.y, 0, dim - 1);
  int32_t x1 = std::clamp(command.x + command.w, 0, dim);
  int32_t y1 = std::clamp(command.y + command.h, 0, dim);

  // Snapshot the affected region into the undo buffer first (the paint is
  // undoable), then paint.
  if (options_.undo_snapshot) {
    int64_t undo_offset = kGridOffset + static_cast<int64_t>(options_.grid_dim) *
                                            options_.grid_dim * static_cast<int64_t>(sizeof(int32_t));
    int64_t undo_cursor = undo_offset;
    const int64_t undo_end = undo_offset + kUndoBytes;
    for (int32_t y = y0; y < y1; ++y) {
      int64_t row_bytes = static_cast<int64_t>(x1 - x0) * static_cast<int64_t>(sizeof(int32_t));
      if (row_bytes <= 0 || undo_cursor + row_bytes > undo_end) {
        break;
      }
      const uint8_t* src = env.segment().data() + CellOffset(dim, x0, y);
      env.segment().Write(undo_cursor, src, static_cast<size_t>(row_bytes));
      undo_cursor += row_bytes;
    }
  }

  uint32_t crc = 0;
  for (int32_t y = y0; y < y1; ++y) {
    int64_t row_offset = CellOffset(dim, x0, y);
    int64_t row_bytes = static_cast<int64_t>(x1 - x0) * static_cast<int64_t>(sizeof(int32_t));
    if (row_bytes <= 0) {
      continue;
    }
    auto* row = reinterpret_cast<int32_t*>(env.segment().OpenForWrite(row_offset, row_bytes));
    for (int32_t x = 0; x < x1 - x0; ++x) {
      switch (command.opcode) {
        case 'P':
          row[x] = command.layer;
          break;
        case 'E':
          row[x] = 0;
          break;
        case 'W':
          row[x] |= command.layer << 8;
          break;
        case 'F':
        default:
          row[x] = row[x] == 0 ? command.layer : row[x];
          break;
      }
      ++scratch.cells_touched;
    }
    crc = ftx::Crc32Extend(crc, row, static_cast<size_t>(row_bytes));
  }
  scratch.region_crc = crc;
  state.cells_painted += scratch.cells_touched;
  env.segment().WriteValue(kScratchOffset, scratch);
  StoreState(env, state);

  // All mutations are stored; only now may events that can commit run —
  // a commit must always capture the command's effect along with its
  // consumed input tokens, or reexecution would lose the command.
  env.Compute(options_.work_per_command);
  // The command handler timestamps the operation and polls for X events —
  // the unloggable transient ND that dominates magic's CAND-LOG commits.
  (void)env.GetTimeOfDay();
  (void)env.TryReceive();

  // Redraw: the visible event for this command.
  ftx::Bytes redraw;
  redraw.push_back('R');
  ftx::AppendValue(&redraw, state.command_count);
  ftx::AppendValue(&redraw, scratch.region_crc);
  ftx::AppendValue(&redraw, state.cells_painted);
  env.Print(std::move(redraw));

  return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, options_.think_time};
}

ftx_dc::FaultSurface Magic::fault_surface() const {
  ftx_dc::FaultSurface surface;
  surface.scratch_offset = kScratchOffset;
  surface.scratch_size = kScratchSize;
  surface.static_offset = kHeaderOffset;
  surface.static_size = kScratchOffset + kScratchSize;
  surface.control_offset = kControlOffset;
  surface.control_size = kControlSize;
  return surface;
}

ftx::Status Magic::CheckIntegrity(ftx_dc::ProcessEnv& env) {
  MagicState state = LoadState(env);
  if (state.magic != kHeaderMagic) {
    return ftx::DataLossError("magic: header corrupted");
  }
  if (state.grid_dim <= 0 || state.cells_painted < 0) {
    return ftx::DataLossError("magic: state invariants violated");
  }
  return env.heap().CheckGuards();
}

int64_t Magic::PaintedCells(ftx_dc::ProcessEnv& env) {
  MagicState state = LoadState(env);
  int64_t painted = 0;
  for (int32_t y = 0; y < state.grid_dim; ++y) {
    for (int32_t x = 0; x < state.grid_dim; ++x) {
      if (env.segment().Read<int32_t>(CellOffset(state.grid_dim, x, y)) != 0) {
        ++painted;
      }
    }
  }
  return painted;
}

std::vector<ftx::Bytes> Magic::MakeScript(uint64_t seed, int commands) {
  ftx::Rng rng(seed);
  std::vector<ftx::Bytes> script;
  const char opcodes[] = {'P', 'P', 'P', 'E', 'W', 'F'};
  for (int i = 0; i < commands; ++i) {
    // 1-2 partial keystrokes, then the command token.
    int partials = static_cast<int>(rng.NextInRange(1, 2));
    for (int k = 0; k < partials; ++k) {
      script.push_back(ftx::Bytes{static_cast<uint8_t>('a' + rng.NextBounded(26))});
    }
    Command command;
    command.opcode = static_cast<uint8_t>(opcodes[rng.NextBounded(6)]);
    command.x = static_cast<int32_t>(rng.NextBounded(700));
    command.y = static_cast<int32_t>(rng.NextBounded(700));
    command.w = static_cast<int32_t>(300 + rng.NextBounded(400));
    command.h = static_cast<int32_t>(300 + rng.NextBounded(400));
    command.layer = static_cast<int32_t>(1 + rng.NextBounded(6));
    ftx::Bytes token;
    ftx::AppendValue(&token, command);
    script.push_back(std::move(token));
  }
  return script;
}

}  // namespace ftx_apps
