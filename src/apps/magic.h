// magic: the VLSI CAD workload (Fig. 8b).
//
// A layout editor over a multi-layer cell grid. Each step is one user
// command (paint / erase / wire-route / fill) composed of several input
// keystrokes (fixed, loggable ND events), a couple of unloggable transient
// ND events (timestamping and an X-event select — these are what keep
// CAND-LOG's commit count high for magic), a burst of computation, a large
// region of the grid dirtied, and one redraw (the visible event). Commands
// arrive with one second of think time, the paper's pacing.
//
// The big per-command dirty footprint is what separates magic's DC-disk
// overheads from nvi's: synchronous redo records carry hundreds of pages.

#ifndef FTX_SRC_APPS_MAGIC_H_
#define FTX_SRC_APPS_MAGIC_H_

#include <vector>

#include "src/checkpoint/app.h"
#include "src/common/rng.h"

namespace ftx_apps {

struct MagicOptions {
  ftx::Duration think_time = ftx::Seconds(1.0);
  ftx::Duration work_per_command = ftx::Milliseconds(25);
  int32_t grid_dim = 1024;  // grid is grid_dim x grid_dim cells (int32 each)
  // Copy the affected region into the undo buffer before painting (magic's
  // undo facility); this is a large part of the per-command dirty footprint.
  bool undo_snapshot = true;
};

class Magic : public ftx_dc::App {
 public:
  explicit Magic(MagicOptions options = MagicOptions());

  std::string_view name() const override { return "magic"; }
  size_t SegmentBytes() const override;
  int64_t HeapOffset() const override;
  int64_t HeapBytes() const override { return 256 * 1024; }
  void Init(ftx_dc::ProcessEnv& env) override;
  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override;
  ftx_dc::FaultSurface fault_surface() const override;
  ftx::Status CheckIntegrity(ftx_dc::ProcessEnv& env) override;

  // Number of nonzero cells (recovery tests compare layouts).
  static int64_t PaintedCells(ftx_dc::ProcessEnv& env);

  // Command script: each command is 2-3 keystroke tokens; the last token of
  // a command carries the command descriptor.
  static std::vector<ftx::Bytes> MakeScript(uint64_t seed, int commands);

 private:
  MagicOptions options_;
};

}  // namespace ftx_apps

#endif  // FTX_SRC_APPS_MAGIC_H_
