#include "src/apps/nvi.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"

namespace ftx_apps {
namespace {

// Segment layout. The static region holds the editor's control structure;
// the scratch region is the per-keystroke working set ("stack"); the text
// lives in a gap buffer allocated from the segment heap.
constexpr int64_t kHeaderOffset = 0;
constexpr int64_t kControlOffset = 256;
constexpr int64_t kControlSize = 512;
constexpr int64_t kScratchOffset = 4096;
constexpr int64_t kScratchSize = 4096;
constexpr int64_t kStaticSize = kScratchOffset + kScratchSize;

constexpr uint64_t kHeaderMagic = 0x6e76692d6e76692eULL;
constexpr int64_t kTextCapacity = 256 * 1024;

struct EditorState {
  uint64_t magic = kHeaderMagic;
  int64_t key_count = 0;
  int64_t buffer_offset = 0;  // heap payload offset of the gap buffer
  int64_t gap_start = 0;      // cursor position == gap start
  int64_t gap_end = 0;        // [gap_start, gap_end) is the gap
  int64_t capacity = 0;
  int64_t saves = 0;
  int64_t signals = 0;
  int64_t keys_since_save = 0;
  int64_t keys_since_signal = 0;
  int64_t keys_since_status = 0;
};

struct Scratch {
  uint8_t key = 0;
  uint8_t is_control = 0;
  int64_t render_from = 0;
  int64_t render_len = 0;
  char line[64] = {};
};

EditorState LoadState(ftx_dc::ProcessEnv& env) {
  return env.segment().Read<EditorState>(kHeaderOffset);
}

void StoreState(ftx_dc::ProcessEnv& env, const EditorState& state) {
  env.segment().WriteValue(kHeaderOffset, state);
}

int64_t TextLength(const EditorState& s) { return s.capacity - (s.gap_end - s.gap_start); }

char TextAt(ftx_dc::ProcessEnv& env, const EditorState& s, int64_t i) {
  int64_t physical = i < s.gap_start ? i : i + (s.gap_end - s.gap_start);
  return static_cast<char>(env.segment().Read<uint8_t>(s.buffer_offset + physical));
}

// Moves the gap so that it starts at `target` (the new cursor position).
void MoveGap(ftx_dc::ProcessEnv& env, EditorState* s, int64_t target) {
  target = std::clamp<int64_t>(target, 0, TextLength(*s));
  ftx_vista::Segment& segment = env.segment();
  while (s->gap_start > target) {
    // Move the byte before the gap to the end of the gap.
    uint8_t b = segment.Read<uint8_t>(s->buffer_offset + s->gap_start - 1);
    segment.WriteValue(s->buffer_offset + s->gap_end - 1, b);
    --s->gap_start;
    --s->gap_end;
  }
  while (s->gap_start < target) {
    uint8_t b = segment.Read<uint8_t>(s->buffer_offset + s->gap_end);
    segment.WriteValue(s->buffer_offset + s->gap_start, b);
    ++s->gap_start;
    ++s->gap_end;
  }
}

}  // namespace

Nvi::Nvi(NviOptions options) : options_(options) {}

void Nvi::Init(ftx_dc::ProcessEnv& env) {
  EditorState state;
  ftx::Result<int64_t> buffer = env.heap().Alloc(kTextCapacity);
  FTX_CHECK(buffer.ok());
  state.buffer_offset = *buffer;
  state.gap_start = 0;
  state.gap_end = kTextCapacity;
  state.capacity = kTextCapacity;
  StoreState(env, state);
  ftx_dc::InitFaultControlArea(env, kControlOffset, kControlSize);
  Scratch scratch;
  env.segment().WriteValue(kScratchOffset, scratch);
}

ftx_dc::StepOutcome Nvi::Step(ftx_dc::ProcessEnv& env) {
  std::optional<ftx::Bytes> key = env.ReadUserInput();
  if (!key.has_value()) {
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
  }

  EditorState state = LoadState(env);
  if (state.magic != kHeaderMagic) {
    env.Crash("nvi: editor state magic corrupted");
    return ftx_dc::StepOutcome{};
  }
  // A wild pointer outside the heap is unusable: dereferencing it is the
  // crash event. In-range corruption is clamped and survives until a
  // consistency check catches it.
  if (state.buffer_offset < env.heap().arena_base() ||
      state.buffer_offset + state.capacity > env.heap().arena_base() + env.heap().arena_size()) {
    env.Crash("nvi: text buffer pointer out of range");
    return ftx_dc::StepOutcome{};
  }
  state.gap_end = std::clamp<int64_t>(state.gap_end, 0, state.capacity);
  state.gap_start = std::clamp<int64_t>(state.gap_start, 0, state.gap_end);
  ++state.key_count;
  ++state.keys_since_save;
  ++state.keys_since_signal;
  ++state.keys_since_status;

  // Per-keystroke working data ("stack frame" of the edit loop).
  Scratch scratch;
  scratch.key = key->empty() ? 0 : (*key)[0];
  scratch.is_control = static_cast<uint8_t>(scratch.key < 0x20 ? 1 : 0);

  if (scratch.is_control == 0) {
    // Insert the character at the cursor.
    if (state.gap_start < state.gap_end) {
      env.segment().WriteValue(state.buffer_offset + state.gap_start, scratch.key);
      ++state.gap_start;
    }
  } else {
    char op = key->size() > 1 ? static_cast<char>((*key)[1]) : 'L';
    switch (op) {
      case 'L':
        MoveGap(env, &state, state.gap_start - 1);
        break;
      case 'R':
        MoveGap(env, &state, state.gap_start + 1);
        break;
      case 'D':
        // Delete before the cursor: grow the gap backwards.
        if (state.gap_start > 0) {
          --state.gap_start;
        }
        break;
      case 'N':
        if (state.gap_start < state.gap_end) {
          env.segment().WriteValue(state.buffer_offset + state.gap_start,
                                   static_cast<uint8_t>('\n'));
          ++state.gap_start;
        }
        break;
      default:
        break;
    }
  }

  // Render the line around the cursor into scratch and build this
  // keystroke's echo. Payload includes the key counter so every echo is
  // distinct (a strict consistency check).
  scratch.render_from = std::max<int64_t>(0, state.gap_start - 24);
  scratch.render_len = std::min<int64_t>(48, TextLength(state) - scratch.render_from);
  ftx::Bytes echo;
  echo.reserve(static_cast<size_t>(scratch.render_len) + 16);
  int64_t kc = state.key_count;
  echo.push_back(static_cast<uint8_t>(kc & 0xff));
  echo.push_back(static_cast<uint8_t>((kc >> 8) & 0xff));
  echo.push_back(static_cast<uint8_t>((kc >> 16) & 0xff));
  for (int64_t i = 0; i < scratch.render_len && i < 48; ++i) {
    char c = TextAt(env, state, scratch.render_from + i);
    scratch.line[i] = c;
    echo.push_back(static_cast<uint8_t>(c));
  }
  env.segment().WriteValue(kScratchOffset, scratch);

  // Decide this step's side events and fold everything — counters included
  // — into the stored state *before* emitting any event a protocol might
  // commit at: a commit must always capture a resumable segment.
  bool do_status =
      options_.status_line_every > 0 && state.keys_since_status >= options_.status_line_every;
  bool do_signal = options_.signal_every > 0 && state.keys_since_signal >= options_.signal_every;
  bool do_save = options_.save_every > 0 && state.keys_since_save >= options_.save_every;
  if (do_status) {
    state.keys_since_status = 0;
  }
  if (do_signal) {
    state.keys_since_signal = 0;
    ++state.signals;
  }
  if (do_save) {
    state.keys_since_save = 0;
    ++state.saves;
  }
  StoreState(env, state);

  env.Compute(options_.work_per_key);
  env.Print(std::move(echo));
  if (do_status) {
    ftx::Bytes status;
    status.push_back('S');
    ftx::AppendValue(&status, state.key_count);
    ftx::AppendValue(&status, TextLength(state));
    env.Print(std::move(status));
  }
  if (do_signal) {
    env.DeliverSignal();
  }
  if (do_save) {
    ftx::Result<int> fd = env.Open("nvi.txt", /*writable=*/true);
    if (fd.ok()) {
      (void)env.WriteFile(*fd, TextLength(state));
      (void)env.Close(*fd);
    }
  }

  return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, options_.think_time};
}

ftx_dc::FaultSurface Nvi::fault_surface() const {
  ftx_dc::FaultSurface surface;
  surface.scratch_offset = kScratchOffset;
  surface.scratch_size = kScratchSize;
  surface.static_offset = kHeaderOffset;
  surface.static_size = kStaticSize;
  surface.control_offset = kControlOffset;
  surface.control_size = kControlSize;
  return surface;
}

ftx::Status Nvi::CheckIntegrity(ftx_dc::ProcessEnv& env) {
  EditorState state = LoadState(env);
  if (state.magic != kHeaderMagic) {
    return ftx::DataLossError("nvi: editor header magic corrupted");
  }
  if (state.gap_start < 0 || state.gap_start > state.gap_end || state.gap_end > state.capacity) {
    return ftx::DataLossError("nvi: gap buffer invariants violated");
  }
  return env.heap().CheckGuards();
}

std::string Nvi::BufferContents(ftx_dc::ProcessEnv& env) {
  EditorState state = LoadState(env);
  std::string text;
  int64_t n = TextLength(state);
  text.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    text.push_back(TextAt(env, state, i));
  }
  return text;
}

std::vector<ftx::Bytes> Nvi::MakeScript(uint64_t seed, int keystrokes) {
  ftx::Rng rng(seed);
  std::vector<ftx::Bytes> script;
  script.reserve(static_cast<size_t>(keystrokes));
  const char* charset = "abcdefghijklmnopqrstuvwxyz ,.";
  const size_t charset_size = 29;
  for (int i = 0; i < keystrokes; ++i) {
    double roll = rng.NextDouble();
    ftx::Bytes key;
    if (roll < 0.88) {
      key.push_back(static_cast<uint8_t>(charset[rng.NextBounded(charset_size)]));
    } else if (roll < 0.93) {
      key = {0x01, static_cast<uint8_t>(rng.NextBernoulli(0.5) ? 'L' : 'R')};
    } else if (roll < 0.96) {
      key = {0x01, 'D'};
    } else {
      key = {0x01, 'N'};
    }
    script.push_back(std::move(key));
  }
  return script;
}

}  // namespace ftx_apps
