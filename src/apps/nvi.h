// nvi: the interactive text-editor workload (Fig. 8a, Tables 1-2).
//
// A vi-like editor with a real gap buffer. Each step consumes one scripted
// keystroke (a fixed, loggable ND event), applies the edit, and echoes the
// screen update (a visible event). Occasional save commands exercise the
// open/write fixed-ND syscalls, and rare signals (SIGWINCH-style) are the
// residual unloggable non-determinism that keeps the -LOG protocols from
// reaching zero commits. A small fraction of keystrokes repaint the status
// line too — the extra visible with no new ND that separates CBNDVS from
// CPVS in commit counts.
//
// Interactive pacing is 100 ms of user think time per keystroke (the
// paper's setting); the fault studies run it non-interactively (zero think
// time), which multiplies its syscall rate — the property §4.2 uses to
// explain nvi's higher propagation-failure fraction.

#ifndef FTX_SRC_APPS_NVI_H_
#define FTX_SRC_APPS_NVI_H_

#include <memory>
#include <vector>

#include "src/checkpoint/app.h"
#include "src/common/rng.h"

namespace ftx_apps {

struct NviOptions {
  ftx::Duration think_time = ftx::Milliseconds(100);
  // Keystroke cost (parse + buffer update + screen formatting).
  ftx::Duration work_per_key = ftx::Microseconds(150);
  // One status-line repaint (an extra visible) every this many keystrokes.
  int status_line_every = 20;
  // One asynchronous signal delivered every this many keystrokes (0 = none).
  int signal_every = 2500;
  // Save the file every this many keystrokes (0 = never).
  int save_every = 4000;
};

class Nvi : public ftx_dc::App {
 public:
  explicit Nvi(NviOptions options = NviOptions());

  std::string_view name() const override { return "nvi"; }
  size_t SegmentBytes() const override { return 1 << 20; }
  void Init(ftx_dc::ProcessEnv& env) override;
  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override;
  ftx_dc::FaultSurface fault_surface() const override;
  ftx::Status CheckIntegrity(ftx_dc::ProcessEnv& env) override;

  // The text as currently held in the buffer (for recovery tests).
  static std::string BufferContents(ftx_dc::ProcessEnv& env);

  // Deterministic keystroke script: printable inserts, cursor moves,
  // deletes, newlines.
  static std::vector<ftx::Bytes> MakeScript(uint64_t seed, int keystrokes);

 private:
  NviOptions options_;
};

}  // namespace ftx_apps

#endif  // FTX_SRC_APPS_NVI_H_
