#include "src/apps/postgres.h"

#include <algorithm>

#include "src/common/check.h"

namespace ftx_apps {
namespace {

constexpr int64_t kHeaderOffset = 0;
constexpr int64_t kControlOffset = 256;
constexpr int64_t kControlSize = 768;
constexpr int64_t kScratchOffset = 4096;
constexpr int64_t kScratchSize = 4096;
constexpr int64_t kBucketsOffset = 8192;
constexpr int32_t kNumBuckets = 1024;
constexpr int64_t kStaticEnd = kBucketsOffset + kNumBuckets * 8;
constexpr uint64_t kMagic = 0x706f737467726573ULL;

struct DbState {
  uint64_t magic = kMagic;
  int64_t queries_run = 0;
  int64_t tuples = 0;
  int64_t inserts = 0;
  int64_t deletes = 0;
  int64_t queries_since_time = 0;
  int64_t queries_since_statfile = 0;
};

// One query token in the input script.
struct Query {
  uint8_t op = 'S';  // 'I' insert, 'S' select, 'U' update, 'D' delete
  int64_t key = 0;
  int64_t value = 0;
};

// Heap-resident tuple.
struct Tuple {
  int64_t key = 0;
  int64_t value = 0;
  int64_t next = -1;  // next tuple offset in the bucket chain, -1 = end
};

struct Scratch {
  Query query;
  int64_t probes = 0;
  int64_t result = -1;
};

DbState LoadState(ftx_dc::ProcessEnv& env) { return env.segment().Read<DbState>(kHeaderOffset); }
void StoreState(ftx_dc::ProcessEnv& env, const DbState& s) {
  env.segment().WriteValue(kHeaderOffset, s);
}

int64_t BucketOffset(int64_t key) {
  uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  return kBucketsOffset + static_cast<int64_t>(h % kNumBuckets) * 8;
}

}  // namespace

Postgres::Postgres(PostgresOptions options) : options_(options) {}

void Postgres::Init(ftx_dc::ProcessEnv& env) {
  DbState state;
  StoreState(env, state);
  ftx_dc::InitFaultControlArea(env, kControlOffset, kControlSize);
  for (int32_t b = 0; b < kNumBuckets; ++b) {
    env.segment().WriteValue(kBucketsOffset + static_cast<int64_t>(b) * 8, int64_t{-1});
  }
  // Stats/log file descriptor held open for the process lifetime.
  (void)env.Open("pg_stat", /*writable=*/true);
}

ftx_dc::StepOutcome Postgres::Step(ftx_dc::ProcessEnv& env) {
  std::optional<ftx::Bytes> token = env.ReadUserInput();
  if (!token.has_value()) {
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
  }
  Query query;
  size_t offset = 0;
  if (!ftx::ReadValue(*token, &offset, &query)) {
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
  }

  DbState state = LoadState(env);
  if (state.magic != kMagic) {
    env.Crash("postgres: database header corrupted");
    return ftx_dc::StepOutcome{};
  }
  ++state.queries_run;
  ++state.queries_since_time;
  ++state.queries_since_statfile;
  bool do_time = options_.gettimeofday_every > 0 &&
                 state.queries_since_time >= options_.gettimeofday_every;
  bool do_statfile = options_.checkpoint_file_every > 0 &&
                     state.queries_since_statfile >= options_.checkpoint_file_every;
  if (do_time) {
    state.queries_since_time = 0;
  }
  if (do_statfile) {
    state.queries_since_statfile = 0;
  }

  Scratch scratch;
  scratch.query = query;

  ftx_vista::Segment& segment = env.segment();
  int64_t bucket = BucketOffset(query.key);
  int64_t head = segment.Read<int64_t>(bucket);

  // Chain walk shared by all operations. A pointer outside the heap arena
  // (corruption) is a segfault: the crash event.
  const int64_t heap_base = env.heap().arena_base();
  const int64_t heap_end = heap_base + env.heap().arena_size();
  int64_t prev = -1;
  int64_t cursor = head;
  int64_t found = -1;
  int64_t hops = 0;
  while (cursor >= 0) {
    if (cursor < heap_base || cursor + static_cast<int64_t>(sizeof(Tuple)) > heap_end) {
      env.Crash("postgres: dereferenced bad tuple pointer");
      return ftx_dc::StepOutcome{};
    }
    if (++hops > state.tuples + 2) {
      env.Crash("postgres: bucket chain cycle");
      return ftx_dc::StepOutcome{};
    }
    ++scratch.probes;
    Tuple tuple = segment.Read<Tuple>(cursor);
    if (tuple.key == query.key) {
      found = cursor;
      break;
    }
    prev = cursor;
    cursor = tuple.next;
  }

  switch (query.op) {
    case 'I': {
      if (found < 0) {
        ftx::Result<int64_t> block = env.heap().Alloc(sizeof(Tuple));
        if (block.ok()) {
          Tuple tuple;
          tuple.key = query.key;
          tuple.value = query.value;
          tuple.next = head;
          segment.WriteValue(*block, tuple);
          segment.WriteValue(bucket, *block);
          ++state.tuples;
          ++state.inserts;
          scratch.result = query.value;
        }
      } else {
        Tuple tuple = segment.Read<Tuple>(found);
        tuple.value = query.value;
        segment.WriteValue(found, tuple);
        scratch.result = query.value;
      }
      break;
    }
    case 'U': {
      if (found >= 0) {
        Tuple tuple = segment.Read<Tuple>(found);
        tuple.value += query.value;
        segment.WriteValue(found, tuple);
        scratch.result = tuple.value;
      }
      break;
    }
    case 'D': {
      if (found >= 0) {
        Tuple tuple = segment.Read<Tuple>(found);
        if (prev < 0) {
          segment.WriteValue(bucket, tuple.next);
        } else {
          Tuple prev_tuple = segment.Read<Tuple>(prev);
          prev_tuple.next = tuple.next;
          segment.WriteValue(prev, prev_tuple);
        }
        if (!env.heap().Free(found).ok()) {
          env.Crash("postgres: free of corrupt tuple block");
          return ftx_dc::StepOutcome{};
        }
        --state.tuples;
        ++state.deletes;
        scratch.result = 0;
      }
      break;
    }
    case 'S':
    default: {
      if (found >= 0) {
        scratch.result = segment.Read<Tuple>(found).value;
      }
      break;
    }
  }
  segment.WriteValue(kScratchOffset, scratch);
  StoreState(env, state);

  // All segment mutations are stored; event calls follow.
  env.Compute(options_.work_per_query);
  if (do_time) {
    (void)env.GetTimeOfDay();
  }
  if (do_statfile) {
    (void)env.WriteFile(0, 512);  // append to the stats file (fixed ND)
  }

  // Result row: the query's visible event.
  ftx::Bytes row;
  row.push_back(query.op);
  ftx::AppendValue(&row, state.queries_run);
  ftx::AppendValue(&row, query.key);
  ftx::AppendValue(&row, scratch.result);
  env.Print(std::move(row));

  return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
}

ftx_dc::FaultSurface Postgres::fault_surface() const {
  ftx_dc::FaultSurface surface;
  surface.scratch_offset = kScratchOffset;
  surface.scratch_size = kScratchSize;
  surface.static_offset = kHeaderOffset;
  surface.static_size = kStaticEnd;
  surface.control_offset = kControlOffset;
  surface.control_size = kControlSize;
  return surface;
}

ftx::Status Postgres::CheckIntegrity(ftx_dc::ProcessEnv& env) {
  DbState state = LoadState(env);
  if (state.magic != kMagic) {
    return ftx::DataLossError("postgres: header corrupted");
  }
  if (state.tuples < 0) {
    return ftx::DataLossError("postgres: negative tuple count");
  }
  // Validate every bucket chain: offsets must stay inside the heap arena
  // and chains must terminate.
  const int64_t heap_base = env.heap().arena_base();
  const int64_t heap_end = heap_base + env.heap().arena_size();
  int64_t seen = 0;
  for (int32_t b = 0; b < kNumBuckets; ++b) {
    int64_t cursor = env.segment().Read<int64_t>(kBucketsOffset + static_cast<int64_t>(b) * 8);
    int64_t hops = 0;
    while (cursor >= 0) {
      if (cursor < heap_base || cursor >= heap_end || ++hops > state.tuples + 1) {
        return ftx::DataLossError("postgres: corrupt bucket chain " + std::to_string(b));
      }
      cursor = env.segment().Read<Tuple>(cursor).next;
      ++seen;
    }
  }
  if (seen != state.tuples) {
    return ftx::DataLossError("postgres: tuple count mismatch");
  }
  return env.heap().CheckGuards();
}

int64_t Postgres::Lookup(ftx_dc::ProcessEnv& env, int64_t key) {
  int64_t cursor = env.segment().Read<int64_t>(BucketOffset(key));
  while (cursor >= 0) {
    Tuple tuple = env.segment().Read<Tuple>(cursor);
    if (tuple.key == key) {
      return tuple.value;
    }
    cursor = tuple.next;
  }
  return -1;
}

int64_t Postgres::TupleCount(ftx_dc::ProcessEnv& env) { return LoadState(env).tuples; }

std::vector<ftx::Bytes> Postgres::MakeScript(uint64_t seed, int queries, int key_range) {
  ftx::Rng rng(seed);
  std::vector<ftx::Bytes> script;
  script.reserve(static_cast<size_t>(queries));
  for (int i = 0; i < queries; ++i) {
    Query query;
    double roll = rng.NextDouble();
    if (roll < 0.35) {
      query.op = 'I';
    } else if (roll < 0.65) {
      query.op = 'S';
    } else if (roll < 0.9) {
      query.op = 'U';
    } else {
      query.op = 'D';
    }
    query.key = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(key_range)));
    query.value = static_cast<int64_t>(rng.NextBounded(1000000));
    ftx::Bytes token;
    ftx::AppendValue(&token, query);
    script.push_back(std::move(token));
  }
  return script;
}

}  // namespace ftx_apps
