// postgres: the relational-database workload (Tables 1-2).
//
// A small but real storage engine: tuples live in heap-allocated blocks
// chained from a hash index, and each step executes one scripted query
// (INSERT / SELECT / UPDATE / DELETE) ending in a result line (the visible
// event). Compared to nvi it touches far more data per visible event and
// crosses the kernel boundary far less often — the property behind its
// lower propagation-failure fraction in §4.2.

#ifndef FTX_SRC_APPS_POSTGRES_H_
#define FTX_SRC_APPS_POSTGRES_H_

#include <vector>

#include "src/checkpoint/app.h"
#include "src/common/rng.h"

namespace ftx_apps {

struct PostgresOptions {
  ftx::Duration work_per_query = ftx::Microseconds(400);
  int gettimeofday_every = 50;  // stats timestamping cadence
  int checkpoint_file_every = 500;  // stats file write cadence (fixed ND)
};

class Postgres : public ftx_dc::App {
 public:
  explicit Postgres(PostgresOptions options = PostgresOptions());

  std::string_view name() const override { return "postgres"; }
  size_t SegmentBytes() const override { return 2 << 20; }
  void Init(ftx_dc::ProcessEnv& env) override;
  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override;
  ftx_dc::FaultSurface fault_surface() const override;
  ftx::Status CheckIntegrity(ftx_dc::ProcessEnv& env) override;

  // Looks a key up directly (recovery tests). Returns -1 when absent.
  static int64_t Lookup(ftx_dc::ProcessEnv& env, int64_t key);
  static int64_t TupleCount(ftx_dc::ProcessEnv& env);

  // Query script over a key space of `key_range` keys.
  static std::vector<ftx::Bytes> MakeScript(uint64_t seed, int queries, int key_range = 2000);

 private:
  PostgresOptions options_;
};

}  // namespace ftx_apps

#endif  // FTX_SRC_APPS_POSTGRES_H_
