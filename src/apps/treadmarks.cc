#include "src/apps/treadmarks.h"

#include <algorithm>
#include <utility>
#include <cmath>

#include "src/common/check.h"
#include "src/common/crc32.h"
#include "src/common/rng.h"

namespace ftx_apps {
namespace {

constexpr int64_t kHeaderOffset = 0;
constexpr int64_t kControlOffset = 256;
constexpr int64_t kControlSize = 768;
constexpr int64_t kScratchOffset = 4096;
constexpr int64_t kScratchSize = 8192;
constexpr int64_t kBodiesOffset = 16384;
constexpr uint64_t kMagic = 0x747265616d626e68ULL;

// Execution phases of the per-process state machine.
enum Phase : int32_t {
  kPhaseFetch = 0,    // requesting remote body pages
  kPhaseCompute = 1,  // octree build + force computation + integration
  kPhaseBarrier = 2,  // waiting at the iteration barrier
  kPhaseDone = 3,
};

struct Body {
  double x = 0, y = 0, z = 0;
  double vx = 0, vy = 0, vz = 0;
  double mass = 1.0;
  double pad = 0;
};

struct TmState {
  uint64_t magic = kMagic;
  int32_t phase = kPhaseFetch;
  int32_t iteration = 0;
  int32_t next_fetch_page = 0;   // cursor over remote pages this iteration
  int32_t outstanding_page = -1; // page id awaited, -1 if none
  int32_t pages_fetched = 0;
  // Bit i set = page i's data for the current iteration is installed.
  // Replays after a rollback consume redelivered replies *before* their
  // requests are re-issued; the mask lets an early reply be installed and
  // its page never re-requested (so no stale-vintage duplicate data).
  uint64_t fetched_mask = 0;
  int32_t barrier_done_mask = 0;  // process 0: bitmask of workers that
                                  // reached the current barrier
                                  // (idempotent under duplicated DONEs)
  int32_t barrier_released = 0;
  // Each iteration uses TWO barriers: stage 0 after the fetch phase (no
  // process may integrate until everyone holds a consistent snapshot) and
  // stage 1 after integration (no process may start the next fetch until
  // all bodies are updated). Without the stage-0 barrier a fast process
  // could integrate iteration k while a slow or recovering process is
  // still fetching k's pages — a data race recovery timing would expose.
  int32_t barrier_stage = 0;
  int64_t polls = 0;
  int64_t requests_served = 0;
  int32_t total_bodies = 0;
  int32_t pad = 0;
};

// Message tags.
struct TmMsg {
  uint8_t tag = 0;  // 'G' get page, 'P' page data, 'D' done, 'R' release
  int32_t page = -1;
  int32_t iteration = 0;
  int32_t from = -1;
};

// Octree node, allocated from the segment heap during tree build.
struct OctNode {
  double cx = 0, cy = 0, cz = 0;  // cell center
  double half = 0;                // half edge length
  double mx = 0, my = 0, mz = 0;  // sum of mass-weighted positions
  double mass = 0;
  int64_t children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  int32_t body = -1;   // leaf payload (body index), -1 if internal/empty
  int32_t is_leaf = 1;
};

int64_t BodyOffset(int index) {
  return kBodiesOffset + static_cast<int64_t>(index) * static_cast<int64_t>(sizeof(Body));
}

TmState LoadState(ftx_dc::ProcessEnv& env) { return env.segment().Read<TmState>(kHeaderOffset); }
void StoreState(ftx_dc::ProcessEnv& env, const TmState& s) {
  env.segment().WriteValue(kHeaderOffset, s);
}

}  // namespace

TreadMarks::TreadMarks(TreadMarksOptions options) : options_(options) {
  FTX_CHECK_EQ(options_.bodies % options_.num_processes, 0);
  FTX_CHECK_EQ(options_.bodies % options_.bodies_per_page, 0);
  FTX_CHECK_LE(options_.bodies / options_.bodies_per_page, 64);  // fetched_mask width
}

void TreadMarks::Init(ftx_dc::ProcessEnv& env) {
  TmState state;
  state.total_bodies = options_.bodies;
  StoreState(env, state);
  ftx_dc::InitFaultControlArea(env, kControlOffset, kControlSize);
  // Plummer-ish deterministic initial conditions, identical in every
  // process (each owns its slice; remote slices are refreshed via DSM).
  ftx::Rng rng(0xba53ba11);
  for (int i = 0; i < options_.bodies; ++i) {
    Body body;
    body.x = 100.0 * rng.NextDouble() - 50.0;
    body.y = 100.0 * rng.NextDouble() - 50.0;
    body.z = 100.0 * rng.NextDouble() - 50.0;
    body.vx = rng.NextDouble() - 0.5;
    body.vy = rng.NextDouble() - 0.5;
    body.vz = rng.NextDouble() - 0.5;
    body.mass = 0.5 + rng.NextDouble();
    env.segment().WriteValue(BodyOffset(i), body);
  }
}

ftx_dc::StepOutcome TreadMarks::Step(ftx_dc::ProcessEnv& env) {
  TmState state = LoadState(env);
  FTX_CHECK_EQ(state.magic, kMagic);
  const int me = env.pid();
  const int procs = options_.num_processes;
  const int pages_total = options_.bodies / options_.bodies_per_page;
  const int pages_per_proc = pages_total / procs;


  auto send_page = [&](int dst, int page, int32_t echo_iteration) {
    TmMsg header;
    header.tag = 'P';
    header.page = page;
    header.iteration = echo_iteration;  // echoes the *request's* iteration
    header.from = me;
    ftx::Bytes payload;
    ftx::AppendValue(&payload, header);
    int first_body = page * options_.bodies_per_page;
    for (int b = 0; b < options_.bodies_per_page; ++b) {
      ftx::AppendValue(&payload, env.segment().Read<Body>(BodyOffset(first_body + b)));
    }
    env.Send(dst, std::move(payload));
  };
  // Orders protocol points: messages from the causal past are consumed and
  // dropped, current ones are processed, FUTURE ones are deferred (left in
  // the inbox) until this process's replay catches up. Failure-free runs
  // never defer; only rollback redelivery produces out-of-phase traffic.
  auto classify = [&](const TmMsg& header) -> int {
    switch (header.tag) {
      case 'G':
        return 0;  // page requests are always serviceable
      case 'P':
        if (header.iteration != state.iteration) {
          return header.iteration < state.iteration ? -1 : 1;
        }
        return 0;
      case 'D':
      case 'R': {
        auto mine = std::make_pair(state.iteration, state.barrier_stage);
        auto theirs = std::make_pair(header.iteration, header.page);
        if (theirs == mine) {
          return 0;
        }
        return theirs < mine ? -1 : 1;
      }
      default:
        return -1;  // unknown traffic: drop
    }
  };

  // Handles one inbound message; returns true if one was consumed.
  auto service_one = [&]() -> bool {
    const ftx_sim::Message* peeked = env.PeekMessage();
    ++state.polls;
    if (peeked == nullptr) {
      (void)env.TryReceive();  // records the select-empty transient ND event
      return false;
    }
    {
      TmMsg peek_header;
      size_t peek_offset = 0;
      if (ftx::ReadValue(peeked->payload, &peek_offset, &peek_header) &&
          classify(peek_header) > 0) {
        return false;  // future traffic: leave queued until we catch up
      }
    }
    std::optional<ftx_sim::Message> msg = env.TryReceive();
    if (!msg.has_value()) {
      return false;
    }
    TmMsg header;
    size_t offset = 0;
    if (!ftx::ReadValue(msg->payload, &offset, &header)) {
      return true;
    }
    if (classify(header) < 0) {
      return true;  // stale duplicate from a rollback: consumed and dropped
    }
    // Every message's state effects are stored before any reply is sent: a
    // commit triggered by the reply (or any later event) must capture a
    // resumable state, or rollback would strand the protocol (e.g. waiting
    // forever for a page that was already consumed and released).
    switch (header.tag) {
      case 'G': {  // page request from another process
        ++state.requests_served;
        StoreState(env, state);
        send_page(header.from, header.page, header.iteration);
        break;
      }
      case 'P': {  // page data we asked for
        // Install only the FIRST reply for a page of the CURRENT iteration.
        // Rollback reexecution can duplicate requests, and a stale
        // duplicate's reply (served after the owner moved on) carries a
        // later iteration's data — installing it would corrupt this
        // iteration's snapshot. Per-channel FIFO guarantees the correct
        // (original) reply arrives first, so first-wins filtering is safe;
        // it also lets a redelivered reply land *before* its request is
        // re-issued during replay.
        bool fresh = header.iteration == state.iteration && header.page >= 0 &&
                     header.page < 64 && (state.fetched_mask & (1ULL << header.page)) == 0;
        if (!fresh) {
          break;
        }
        int first_body = header.page * options_.bodies_per_page;
        for (int b = 0; b < options_.bodies_per_page; ++b) {
          Body body;
          if (!ftx::ReadValue(msg->payload, &offset, &body)) {
            break;
          }
          env.segment().WriteValue(BodyOffset(first_body + b), body);
        }
        state.fetched_mask |= 1ULL << header.page;
        if (state.outstanding_page == header.page) {
          state.outstanding_page = -1;
        }
        ++state.pages_fetched;
        StoreState(env, state);
        break;
      }
      case 'D': {  // a worker reached the current barrier (process 0 only)
        // Only DONEs for this (iteration, stage) count, and each worker
        // only once: rollbacks can duplicate barrier messages. The stage
        // rides in header.page.
        if (header.iteration == state.iteration && header.page == state.barrier_stage &&
            header.from >= 0 && header.from < 32) {
          state.barrier_done_mask |= 1 << header.from;
        }
        StoreState(env, state);
        break;
      }
      case 'R': {  // barrier release for (iteration, stage) in the header
        if (header.iteration == state.iteration && header.page == state.barrier_stage) {
          state.barrier_released = 1;
        }
        StoreState(env, state);
        break;
      }
      default:
        break;
    }
    return true;
  };

  switch (state.phase) {
    case kPhaseFetch: {
      // Service inbound messages until the socket runs dry.
      for (int i = 0; i < options_.service_polls; ++i) {
        if (!service_one()) {
          break;
        }
      }
      if (state.outstanding_page >= 0 &&
          (state.fetched_mask & (1ULL << state.outstanding_page)) != 0) {
        state.outstanding_page = -1;  // reply landed before/without the wait
      }
      if (state.outstanding_page < 0) {
        // Find the next remote page that is not yet installed.
        state.next_fetch_page = 0;
        while (state.next_fetch_page < pages_total &&
               (state.next_fetch_page / pages_per_proc == me ||
                (state.fetched_mask & (1ULL << state.next_fetch_page)) != 0)) {
          ++state.next_fetch_page;
        }
        if (state.next_fetch_page >= pages_total) {
          // Stage-0 barrier: wait until every process holds this
          // iteration's snapshot before anyone integrates. barrier_released
          // is NOT reset here — the release may already have been consumed
          // while still fetching (replay redelivers it early).
          state.phase = kPhaseBarrier;
          state.barrier_stage = 0;
          if (me == 0) {
            state.barrier_done_mask |= 1;
          }
          StoreState(env, state);
          if (me != 0) {
            TmMsg done;
            done.tag = 'D';
            done.page = 0;  // stage
            done.iteration = state.iteration;
            done.from = me;
            ftx::Bytes payload;
            ftx::AppendValue(&payload, done);
            env.Send(0, std::move(payload));
          }
          return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
        }
        int page = state.next_fetch_page++;
        state.outstanding_page = page;
        StoreState(env, state);
        TmMsg request;
        request.tag = 'G';
        request.page = page;
        request.iteration = state.iteration;
        request.from = me;
        ftx::Bytes payload;
        ftx::AppendValue(&payload, request);
        env.Send(page / pages_per_proc, std::move(payload));
      }
      StoreState(env, state);
      // Poll again shortly; arrival also wakes us.
      return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kBlocked, options_.poll_timeout};
    }

    case kPhaseCompute: {
      env.Compute(options_.tree_work);
      // Build the octree over all N bodies in the heap arena.
      env.heap().Format();  // per-iteration arena reset
      auto alloc_node = [&](double cx, double cy, double cz, double half) -> int64_t {
        ftx::Result<int64_t> node_offset = env.heap().Alloc(sizeof(OctNode));
        FTX_CHECK(node_offset.ok());
        OctNode node;
        node.cx = cx;
        node.cy = cy;
        node.cz = cz;
        node.half = half;
        env.segment().WriteValue(*node_offset, node);
        return *node_offset;
      };

      const double kHalf = 512.0;  // generous root cell
      int64_t root = alloc_node(0, 0, 0, kHalf);

      // Insert every body.
      for (int i = 0; i < options_.bodies; ++i) {
        Body body = env.segment().Read<Body>(BodyOffset(i));
        int64_t node_offset = root;
        for (int depth = 0; depth < 64; ++depth) {
          OctNode node = env.segment().Read<OctNode>(node_offset);
          node.mx += body.mass * body.x;
          node.my += body.mass * body.y;
          node.mz += body.mass * body.z;
          node.mass += body.mass;
          if (node.is_leaf != 0 && node.body < 0 && depth > 0) {
            node.body = i;
            env.segment().WriteValue(node_offset, node);
            break;
          }
          // Internal node (or root, or occupied leaf needing a split).
          int32_t displaced = -1;
          if (node.is_leaf != 0 && node.body >= 0) {
            displaced = node.body;
            node.body = -1;
          }
          node.is_leaf = 0;
          auto octant_of = [&](const Body& b) {
            int oct = 0;
            if (b.x >= node.cx) oct |= 1;
            if (b.y >= node.cy) oct |= 2;
            if (b.z >= node.cz) oct |= 4;
            return oct;
          };
          auto child_for = [&](int oct) -> int64_t {
            if (node.children[oct] < 0) {
              double h = node.half / 2;
              node.children[oct] = alloc_node(node.cx + ((oct & 1) ? h : -h),
                                              node.cy + ((oct & 2) ? h : -h),
                                              node.cz + ((oct & 4) ? h : -h), h);
            }
            return node.children[oct];
          };
          if (displaced >= 0 && displaced != i) {
            Body other = env.segment().Read<Body>(BodyOffset(displaced));
            int oct = octant_of(other);
            int64_t child_offset = child_for(oct);
            OctNode child = env.segment().Read<OctNode>(child_offset);
            if (child.is_leaf != 0 && child.body < 0) {
              child.body = displaced;
              child.mx += other.mass * other.x;
              child.my += other.mass * other.y;
              child.mz += other.mass * other.z;
              child.mass += other.mass;
              env.segment().WriteValue(child_offset, child);
            } else {
              // Rare: both land in one octant; push the displaced body one
              // more level by re-inserting (bounded by depth loop).
              child.mx += other.mass * other.x;
              child.my += other.mass * other.y;
              child.mz += other.mass * other.z;
              child.mass += other.mass;
              env.segment().WriteValue(child_offset, child);
            }
          }
          int64_t next = child_for(octant_of(body));
          env.segment().WriteValue(node_offset, node);
          node_offset = next;
        }
      }

      env.Compute(options_.force_work);
      // Force computation for own bodies by theta-criterion traversal, then
      // leapfrog integration.
      const int own_first = me * (options_.bodies / procs);
      const int own_count = options_.bodies / procs;
      for (int i = own_first; i < own_first + own_count; ++i) {
        Body body = env.segment().Read<Body>(BodyOffset(i));
        double ax = 0, ay = 0, az = 0;
        // Explicit traversal stack in scratch (the "stack" fault region).
        auto* stack =
            reinterpret_cast<int64_t*>(env.segment().OpenForWrite(kScratchOffset, kScratchSize));
        int sp = 0;
        stack[sp++] = root;
        while (sp > 0) {
          OctNode node = env.segment().Read<OctNode>(stack[--sp]);
          if (node.mass <= 0) {
            continue;
          }
          double comx = node.mx / node.mass;
          double comy = node.my / node.mass;
          double comz = node.mz / node.mass;
          double dx = comx - body.x;
          double dy = comy - body.y;
          double dz = comz - body.z;
          double dist2 = dx * dx + dy * dy + dz * dz + 1e-6;
          double dist = std::sqrt(dist2);
          bool far_enough = (2 * node.half) / dist < options_.theta;
          if (node.is_leaf != 0 || far_enough || sp > 1000) {
            if (node.is_leaf != 0 && node.body == i) {
              continue;  // self-interaction
            }
            double inv = node.mass / (dist2 * dist);
            ax += dx * inv;
            ay += dy * inv;
            az += dz * inv;
          } else {
            for (int64_t child : node.children) {
              if (child >= 0 && sp < 1020) {
                stack[sp++] = child;
              }
            }
          }
        }
        body.vx += ax * options_.dt;
        body.vy += ay * options_.dt;
        body.vz += az * options_.dt;
        body.x += body.vx * options_.dt;
        body.y += body.vy * options_.dt;
        body.z += body.vz * options_.dt;
        env.segment().WriteValue(BodyOffset(i), body);
      }

      // Enter the stage-1 (post-integration) barrier. As with stage 0, an
      // early-redelivered release must not be wiped here.
      state.phase = kPhaseBarrier;
      state.barrier_stage = 1;
      if (me == 0) {
        // Process 0 counts itself.
        state.barrier_done_mask |= 1;
      }
      StoreState(env, state);
      if (me != 0) {
        TmMsg done;
        done.tag = 'D';
        done.page = 1;  // stage
        done.iteration = state.iteration;
        done.from = me;
        ftx::Bytes payload;
        ftx::AppendValue(&payload, done);
        env.Send(0, std::move(payload));
      }
      return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
    }

    case kPhaseBarrier: {
      for (int i = 0; i < options_.service_polls; ++i) {
        if (!service_one()) {
          break;
        }
      }
      bool released = false;
      if (me == 0) {
        released = state.barrier_done_mask == (1 << procs) - 1;
      } else {
        released = state.barrier_released != 0;
      }
      if (!released) {
        StoreState(env, state);
        return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kBlocked, options_.poll_timeout * 3};
      }

      // Advance the state completely — and store it — before any event
      // (release sends, progress print) a protocol could commit at. The
      // release carries the (iteration, stage) it releases; workers accept
      // only an exact match, so duplicated releases are harmless.
      const int32_t released_iteration = state.iteration;
      const int32_t released_stage = state.barrier_stage;
      bool finished = false;
      if (released_stage == 0) {
        state.phase = kPhaseCompute;
        // Expect (and accept early arrivals for) the stage-1 barrier next.
        state.barrier_stage = 1;
      } else {
        ++state.iteration;
        finished = state.iteration >= options_.iterations;
        state.phase = finished ? kPhaseDone : kPhaseFetch;
        state.next_fetch_page = 0;
        state.outstanding_page = -1;
        state.fetched_mask = 0;
        state.barrier_stage = 0;
      }
      if (me == 0) {
        state.barrier_done_mask = 0;
      }
      state.barrier_released = 0;
      StoreState(env, state);

      if (me == 0) {
        for (int p = 1; p < procs; ++p) {
          TmMsg release;
          release.tag = 'R';
          release.page = released_stage;
          release.iteration = released_iteration;
          release.from = 0;
          ftx::Bytes payload;
          ftx::AppendValue(&payload, release);
          env.Send(p, std::move(payload));
        }
        if (finished) {
          ftx::Bytes final_line;
          final_line.push_back('E');
          ftx::AppendValue(&final_line, state.iteration);
          ftx::AppendValue(&final_line, OwnBodiesChecksum(env));
          env.Print(std::move(final_line));
        } else if (released_stage == 1 && options_.report_every > 0 &&
                   state.iteration % options_.report_every == 0) {
          ftx::Bytes progress;
          progress.push_back('I');
          ftx::AppendValue(&progress, state.iteration);
          ftx::AppendValue(&progress, OwnBodiesChecksum(env));
          env.Print(std::move(progress));
        }
      }
      return ftx_dc::StepOutcome{finished ? ftx_dc::StepOutcome::Status::kDone
                                          : ftx_dc::StepOutcome::Status::kContinue,
                                 ftx::Duration()};
    }

    case kPhaseDone:
    default:
      return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
  }
}

ftx_dc::FaultSurface TreadMarks::fault_surface() const {
  ftx_dc::FaultSurface surface;
  surface.scratch_offset = kScratchOffset;
  surface.scratch_size = kScratchSize;
  surface.static_offset = kHeaderOffset;
  surface.static_size = kBodiesOffset;
  surface.control_offset = kControlOffset;
  surface.control_size = kControlSize;
  return surface;
}

ftx::Status TreadMarks::CheckIntegrity(ftx_dc::ProcessEnv& env) {
  TmState state = LoadState(env);
  if (state.magic != kMagic) {
    return ftx::DataLossError("treadmarks: header corrupted");
  }
  if (state.phase < kPhaseFetch || state.phase > kPhaseDone) {
    return ftx::DataLossError("treadmarks: bad phase");
  }
  return env.heap().CheckGuards();
}

int64_t TreadMarks::IterationsDone(ftx_dc::ProcessEnv& env) {
  return LoadState(env).iteration;
}

uint32_t TreadMarks::OwnBodiesChecksum(ftx_dc::ProcessEnv& env) {
  TmState state = LoadState(env);
  int me = env.pid();
  int procs = env.num_processes();
  int per_proc = state.total_bodies / procs;
  uint32_t crc = 0;
  for (int i = me * per_proc; i < (me + 1) * per_proc; ++i) {
    Body body = env.segment().Read<Body>(BodyOffset(i));
    crc = ftx::Crc32Extend(crc, &body, sizeof(Body) - sizeof(double));  // skip pad
  }
  return crc;
}

}  // namespace ftx_apps
