// TreadMarks running Barnes-Hut: the DSM workload (Fig. 8d).
//
// Four processes share an N-body space through a page-granularity
// distributed shared memory, as TreadMarks does. Each owns N/4 bodies. Per
// iteration a process:
//
//   1. fetches every remote body page on demand (request/reply messages —
//      the copious sends and receives of a DSM), serving other processes'
//      page requests while it waits (select polls on an empty socket are
//      the unloggable transient ND that dominates CAND's commit count);
//   2. builds a real Barnes-Hut octree over all N bodies in its segment
//      heap and computes forces by theta-criterion traversal;
//   3. integrates its own bodies and joins a barrier (workers report to
//      process 0, which releases the next iteration).
//
// Process 0 prints a progress line only every `report_every` iterations —
// visible events are rare, which is why the 2PC protocols win this workload
// in the paper.

#ifndef FTX_SRC_APPS_TREADMARKS_H_
#define FTX_SRC_APPS_TREADMARKS_H_

#include <vector>

#include "src/checkpoint/app.h"

namespace ftx_apps {

struct TreadMarksOptions {
  int num_processes = 4;
  int bodies = 512;            // total bodies, divisible by num_processes
  int bodies_per_page = 16;    // DSM page granularity
  int iterations = 60;
  int report_every = 20;       // progress visible cadence (process 0)
  double theta = 0.5;          // Barnes-Hut opening angle
  double dt = 0.05;            // integration timestep
  ftx::Duration tree_work = ftx::Milliseconds(20);
  ftx::Duration force_work = ftx::Milliseconds(45);
  int service_polls = 6;       // inbound polls per scheduling quantum
  // Longer than any Rio commit, so the polling rate is timeout-dominated
  // and commit-frequency comparisons between protocols stay fair.
  ftx::Duration poll_timeout = ftx::Microseconds(800);
};

class TreadMarks : public ftx_dc::App {
 public:
  explicit TreadMarks(TreadMarksOptions options = TreadMarksOptions());

  std::string_view name() const override { return "treadmarks"; }
  size_t SegmentBytes() const override { return 2 << 20; }
  int64_t HeapOffset() const override { return 1 << 20; }
  int64_t HeapBytes() const override { return 1 << 20; }
  void Init(ftx_dc::ProcessEnv& env) override;
  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override;
  ftx_dc::FaultSurface fault_surface() const override;
  ftx::Status CheckIntegrity(ftx_dc::ProcessEnv& env) override;

  // Completed iterations (for progress/recovery tests).
  static int64_t IterationsDone(ftx_dc::ProcessEnv& env);
  // Checksum over this process's own bodies (equality across runs).
  static uint32_t OwnBodiesChecksum(ftx_dc::ProcessEnv& env);

 private:
  TreadMarksOptions options_;
};

}  // namespace ftx_apps

#endif  // FTX_SRC_APPS_TREADMARKS_H_
