#include "src/apps/workloads.h"

#include "src/apps/magic.h"
#include "src/apps/nvi.h"
#include "src/apps/postgres.h"
#include "src/apps/treadmarks.h"
#include "src/apps/xpilot.h"
#include "src/common/check.h"

namespace ftx_apps {

const std::vector<std::string>& WorkloadNames() {
  static const std::vector<std::string> kNames = {"nvi", "magic", "xpilot", "treadmarks",
                                                  "postgres"};
  return kNames;
}

WorkloadSetup MakeWorkload(std::string_view name, int scale, uint64_t seed, bool interactive) {
  WorkloadSetup setup;
  if (name == "nvi") {
    NviOptions options;
    if (!interactive) {
      options.think_time = ftx::Duration();
    }
    setup.apps.push_back(std::make_unique<Nvi>(options));
    setup.scripts.push_back(Nvi::MakeScript(seed, scale));
    return setup;
  }
  if (name == "magic") {
    MagicOptions options;
    if (!interactive) {
      options.think_time = ftx::Duration();
    }
    setup.apps.push_back(std::make_unique<Magic>(options));
    setup.scripts.push_back(Magic::MakeScript(seed, scale));
    return setup;
  }
  if (name == "xpilot") {
    XpilotOptions options;
    options.frames = scale;
    setup.apps.push_back(std::make_unique<XpilotServer>(options));
    setup.scripts.emplace_back();
    for (int c = 0; c < options.num_clients; ++c) {
      setup.apps.push_back(std::make_unique<XpilotClient>(options));
      setup.scripts.push_back(XpilotClient::MakeJoystickScript(
          seed + static_cast<uint64_t>(c) + 1,
          scale / options.joystick_every_frames + 8));
    }
    return setup;
  }
  if (name == "treadmarks") {
    TreadMarksOptions options;
    options.iterations = scale;
    for (int p = 0; p < options.num_processes; ++p) {
      setup.apps.push_back(std::make_unique<TreadMarks>(options));
      setup.scripts.emplace_back();
    }
    return setup;
  }
  if (name == "postgres") {
    PostgresOptions options;
    setup.apps.push_back(std::make_unique<Postgres>(options));
    setup.scripts.push_back(Postgres::MakeScript(seed, scale));
    return setup;
  }
  FTX_CHECK_MSG(false, "unknown workload: %.*s", static_cast<int>(name.size()), name.data());
  return setup;
}

int DefaultScale(std::string_view name, bool full_scale) {
  if (name == "nvi") {
    return full_scale ? 7900 : 1200;
  }
  if (name == "magic") {
    return full_scale ? 190 : 60;
  }
  if (name == "xpilot") {
    return full_scale ? 450 : 150;  // frames
  }
  if (name == "treadmarks") {
    return full_scale ? 60 : 12;  // iterations
  }
  if (name == "postgres") {
    return full_scale ? 4000 : 800;
  }
  return 100;
}

}  // namespace ftx_apps
