// Workload factory: assembles the paper's application suite by name.
//
// "nvi", "magic" and "postgres" are single-process; "xpilot" is one server
// plus three clients; "treadmarks" is four peers. `scale` is the workload's
// primary unit count (keystrokes / commands / frames / iterations /
// queries). `interactive` enables the paper's think-time pacing (100 ms per
// keystroke, 1 s per command); the fault studies run non-interactively.

#ifndef FTX_SRC_APPS_WORKLOADS_H_
#define FTX_SRC_APPS_WORKLOADS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/checkpoint/app.h"
#include "src/common/bytes.h"

namespace ftx_apps {

struct WorkloadSetup {
  std::vector<std::unique_ptr<ftx_dc::App>> apps;
  // Input script per process (may be empty).
  std::vector<std::vector<ftx::Bytes>> scripts;
};

// Names accepted by MakeWorkload.
const std::vector<std::string>& WorkloadNames();

WorkloadSetup MakeWorkload(std::string_view name, int scale, uint64_t seed,
                           bool interactive = true);

// The paper's run sizes for Fig. 8 (nvi ~7.9k keystrokes, magic ~190
// commands, xpilot 30 s, Barnes-Hut). Scaled-down sizes keep the benches
// fast while preserving the event-mix ratios; pass `full_scale` for the
// paper's sizes.
int DefaultScale(std::string_view name, bool full_scale);

}  // namespace ftx_apps

#endif  // FTX_SRC_APPS_WORKLOADS_H_
