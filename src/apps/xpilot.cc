#include "src/apps/xpilot.h"

#include <algorithm>

#include "src/common/check.h"

namespace ftx_apps {
namespace {

constexpr int64_t kHeaderOffset = 0;
constexpr int64_t kControlOffset = 1024;
constexpr int64_t kControlSize = 512;
constexpr int64_t kScratchOffset = 4096;
constexpr int64_t kScratchSize = 2048;
constexpr int64_t kWorldOffset = 8192;
constexpr int kMaxShips = 8;
constexpr uint64_t kServerMagic = 0x7870696c6f747376ULL;
constexpr uint64_t kClientMagic = 0x7870696c6f74636cULL;

struct Ship {
  int32_t x = 320;
  int32_t y = 240;
  int32_t vx = 0;
  int32_t vy = 0;
  int32_t score = 0;
};

struct ServerState {
  uint64_t magic = kServerMagic;
  int64_t frame = 0;
  int64_t inputs_consumed = 0;
  int64_t next_deadline_ns = 0;  // absolute next-frame deadline
  int32_t frames_since_scoreline = 0;
  int32_t quit_sent = 0;
};

struct ClientState {
  uint64_t magic = kClientMagic;
  int64_t frames_rendered = 0;
  int64_t frames_since_joystick = 0;
  int32_t last_turn = 0;
  int32_t done = 0;
};

// Server update payload: frame number + all ship positions.
struct UpdateMsg {
  uint8_t tag = 'U';  // 'U' update, 'Q' quit
  int64_t frame = 0;
  Ship ships[kMaxShips];
};

// Client input payload.
struct InputMsg {
  uint8_t tag = 'I';
  int32_t client = 0;
  int32_t turn = 0;
  int32_t thrust = 0;
};

}  // namespace

XpilotServer::XpilotServer(XpilotOptions options) : options_(options) {
  FTX_CHECK_LE(options_.num_clients, kMaxShips);
}

void XpilotServer::Init(ftx_dc::ProcessEnv& env) {
  ServerState state;
  env.segment().WriteValue(kHeaderOffset, state);
  ftx_dc::InitFaultControlArea(env, kControlOffset, kControlSize);
  for (int i = 0; i < options_.num_clients; ++i) {
    Ship ship;
    ship.x = 100 + 50 * i;
    ship.y = 100 + 30 * i;
    env.segment().WriteValue(kWorldOffset + i * static_cast<int64_t>(sizeof(Ship)), ship);
  }
  (void)env.Bind(15345);  // the xpilot UDP port: kernel state to reconstruct
}

ftx_dc::StepOutcome XpilotServer::Step(ftx_dc::ProcessEnv& env) {
  auto state = env.segment().Read<ServerState>(kHeaderOffset);
  FTX_CHECK_EQ(state.magic, kServerMagic);

  if (state.frame >= options_.frames) {
    if (state.quit_sent == 0) {
      state.quit_sent = 1;
      env.segment().WriteValue(kHeaderOffset, state);
      UpdateMsg quit;
      quit.tag = 'Q';
      quit.frame = state.frame;
      for (int c = 1; c <= options_.num_clients; ++c) {
        ftx::Bytes payload;
        ftx::AppendValue(&payload, quit);
        env.Send(c, std::move(payload));
      }
    }
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
  }

  ++state.frame;
  ++state.frames_since_scoreline;
  // Frame deadlines slip rather than queue: when the loop has fallen
  // behind (overhead exceeded the budget), the next deadline is measured
  // from now.
  int64_t now_ns = env.Now().nanos();
  state.next_deadline_ns =
      std::max(state.next_deadline_ns + options_.frame_period.nanos(),
               now_ns + options_.frame_period.nanos() / 8);
  env.segment().WriteValue(kHeaderOffset, state);

  // Aggressive socket polling: most polls find nothing (select on an empty
  // set — transient ND); some consume client input messages (receives).
  for (int poll = 0; poll < options_.polls_per_frame; ++poll) {
    std::optional<ftx_sim::Message> msg = env.TryReceive();
    if (!msg.has_value()) {
      continue;
    }
    InputMsg input;
    size_t offset = 0;
    if (!ftx::ReadValue(msg->payload, &offset, &input) || input.tag != 'I') {
      continue;
    }
    ++state.inputs_consumed;
    int idx = std::clamp(input.client - 1, 0, kMaxShips - 1);
    int64_t ship_offset = kWorldOffset + idx * static_cast<int64_t>(sizeof(Ship));
    Ship ship = env.segment().Read<Ship>(ship_offset);
    ship.vx += input.turn;
    ship.vy += input.thrust;
    env.segment().WriteValue(ship_offset, ship);
  }

  // Physics: advance every ship.
  for (int i = 0; i < options_.num_clients; ++i) {
    int64_t ship_offset = kWorldOffset + i * static_cast<int64_t>(sizeof(Ship));
    Ship ship = env.segment().Read<Ship>(ship_offset);
    ship.x = (ship.x + ship.vx + 640) % 640;
    ship.y = (ship.y + ship.vy + 480) % 480;
    env.segment().WriteValue(ship_offset, ship);
  }

  // Fold all of this frame's state into the segment before emitting events.
  bool do_scoreline = options_.server_scoreline_every > 0 &&
                      state.frames_since_scoreline >= options_.server_scoreline_every;
  if (do_scoreline) {
    state.frames_since_scoreline = 0;
  }
  env.segment().WriteValue(kHeaderOffset, state);

  (void)env.GetTimeOfDay();  // frame timing
  env.Compute(options_.physics_work);

  // Broadcast the frame update.
  UpdateMsg update;
  update.frame = state.frame;
  for (int i = 0; i < options_.num_clients; ++i) {
    update.ships[i] =
        env.segment().Read<Ship>(kWorldOffset + i * static_cast<int64_t>(sizeof(Ship)));
  }
  for (int c = 1; c <= options_.num_clients; ++c) {
    ftx::Bytes payload;
    ftx::AppendValue(&payload, update);
    env.Send(c, std::move(payload));
    if (c < options_.num_clients) {
      // Real xpilot keeps draining its sockets while transmitting; the
      // interleaved select is why each send sees fresh non-determinism.
      std::optional<ftx_sim::Message> between = env.TryReceive();
      if (between.has_value()) {
        InputMsg input;
        size_t offset = 0;
        if (ftx::ReadValue(between->payload, &offset, &input) && input.tag == 'I') {
          ++state.inputs_consumed;
          env.segment().WriteValue(kHeaderOffset, state);
        }
      }
    }
  }

  if (do_scoreline) {
    ftx::Bytes scoreline;
    scoreline.push_back('S');
    ftx::AppendValue(&scoreline, state.frame);
    ftx::AppendValue(&scoreline, state.inputs_consumed);
    env.Print(std::move(scoreline));
  }

  // Pace to the absolute frame deadline: commit overhead is absorbed into
  // the frame's slack until it exceeds the budget, after which the loop
  // falls behind 15 fps naturally.
  ftx_dc::StepOutcome outcome;
  outcome.status = ftx_dc::StepOutcome::Status::kContinue;
  outcome.pace_until = ftx::TimePoint(state.next_deadline_ns);
  return outcome;
}

ftx_dc::FaultSurface XpilotServer::fault_surface() const {
  ftx_dc::FaultSurface surface;
  surface.scratch_offset = kScratchOffset;
  surface.scratch_size = kScratchSize;
  surface.static_offset = kHeaderOffset;
  surface.static_size = kWorldOffset + kMaxShips * static_cast<int64_t>(sizeof(Ship));
  surface.control_offset = kControlOffset;
  surface.control_size = kControlSize;
  return surface;
}

ftx::Status XpilotServer::CheckIntegrity(ftx_dc::ProcessEnv& env) {
  auto state = env.segment().Read<ServerState>(kHeaderOffset);
  if (state.magic != kServerMagic) {
    return ftx::DataLossError("xpilot-server: header corrupted");
  }
  return ftx::Status::Ok();
}

int64_t XpilotServer::FramesRun(ftx_dc::ProcessEnv& env) {
  return env.segment().Read<ServerState>(kHeaderOffset).frame;
}

XpilotClient::XpilotClient(XpilotOptions options) : options_(options) {}

void XpilotClient::Init(ftx_dc::ProcessEnv& env) {
  ClientState state;
  env.segment().WriteValue(kHeaderOffset, state);
}

ftx_dc::StepOutcome XpilotClient::Step(ftx_dc::ProcessEnv& env) {
  auto state = env.segment().Read<ClientState>(kHeaderOffset);
  FTX_CHECK_EQ(state.magic, kClientMagic);
  if (state.done != 0) {
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
  }

  std::optional<ftx_sim::Message> msg = env.TryReceive();
  if (!msg.has_value()) {
    // Block until the next server update arrives.
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kBlocked, ftx::Milliseconds(250)};
  }
  UpdateMsg update;
  size_t offset = 0;
  if (!ftx::ReadValue(msg->payload, &offset, &update)) {
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
  }
  if (update.tag == 'Q') {
    state.done = 1;
    env.segment().WriteValue(kHeaderOffset, state);
    return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kDone, ftx::Duration()};
  }

  ++state.frames_rendered;
  ++state.frames_since_joystick;
  bool do_joystick = state.frames_since_joystick >= options_.joystick_every_frames;
  if (do_joystick) {
    state.frames_since_joystick = 0;
  }
  env.segment().WriteValue(kHeaderOffset, state);

  // Render the frame: the client's visible event.
  env.Compute(options_.render_work);
  ftx::Bytes frame;
  frame.push_back('F');
  ftx::AppendValue(&frame, update.frame);
  int me = std::clamp(env.pid() - 1, 0, kMaxShips - 1);
  ftx::AppendValue(&frame, update.ships[me].x);
  ftx::AppendValue(&frame, update.ships[me].y);
  env.Print(std::move(frame));

  // Sample the joystick every few frames and send the input to the server.
  if (do_joystick) {
    InputMsg input;
    input.client = env.pid();
    std::optional<ftx::Bytes> stick = env.ReadUserInput();
    if (stick.has_value() && stick->size() >= 2) {
      state.last_turn = static_cast<int8_t>((*stick)[0]);
      input.turn = state.last_turn;
      input.thrust = static_cast<int8_t>((*stick)[1]);
      env.segment().WriteValue(kHeaderOffset, state);
    }
    ftx::Bytes payload;
    ftx::AppendValue(&payload, input);
    env.Send(0, std::move(payload));
  }

  return ftx_dc::StepOutcome{ftx_dc::StepOutcome::Status::kContinue, ftx::Duration()};
}

ftx_dc::FaultSurface XpilotClient::fault_surface() const {
  ftx_dc::FaultSurface surface;
  surface.scratch_offset = kScratchOffset;
  surface.scratch_size = kScratchSize;
  surface.static_offset = kHeaderOffset;
  surface.static_size = 1024;
  return surface;
}

int64_t XpilotClient::FramesRendered(ftx_dc::ProcessEnv& env) {
  return env.segment().Read<ClientState>(kHeaderOffset).frames_rendered;
}

std::vector<ftx::Bytes> XpilotClient::MakeJoystickScript(uint64_t seed, int samples) {
  ftx::Rng rng(seed);
  std::vector<ftx::Bytes> script;
  script.reserve(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    auto turn = static_cast<int8_t>(rng.NextInRange(-2, 2));
    auto thrust = static_cast<int8_t>(rng.NextInRange(-1, 1));
    script.push_back(ftx::Bytes{static_cast<uint8_t>(turn), static_cast<uint8_t>(thrust)});
  }
  return script;
}

}  // namespace ftx_apps
