// xpilot: the distributed real-time game workload (Fig. 8c).
//
// One server process and three client processes. The server runs a frame
// loop at 15 frames per second: it polls its sockets aggressively (many
// select calls per frame — transient, unloggable ND), consumes client input
// messages (receives), advances the game physics, and broadcasts an update
// to every client (sends). Clients block on the server update, render it
// (the visible event), sample the joystick every few frames (fixed,
// loggable ND), and send their input back.
//
// Because the application is continuous and real-time, performance is
// reported as the sustained frame rate rather than runtime overhead: when
// commit costs exceed the frame budget, the loop simply falls behind and
// the measured fps drops — the self-limiting behaviour behind the paper's
// "0 fps" entries for CAND on DC-disk.

#ifndef FTX_SRC_APPS_XPILOT_H_
#define FTX_SRC_APPS_XPILOT_H_

#include <vector>

#include "src/checkpoint/app.h"
#include "src/common/rng.h"

namespace ftx_apps {

struct XpilotOptions {
  int num_clients = 3;
  int frames = 450;  // 30 seconds at full speed
  ftx::Duration frame_period = ftx::Microseconds(66667);  // 15 fps
  ftx::Duration physics_work = ftx::Milliseconds(8);
  ftx::Duration render_work = ftx::Milliseconds(2);
  int polls_per_frame = 30;       // server socket polling intensity
  int joystick_every_frames = 3;  // client input sampling cadence
  int server_scoreline_every = 100;  // server visible cadence
};

class XpilotServer : public ftx_dc::App {
 public:
  explicit XpilotServer(XpilotOptions options = XpilotOptions());

  std::string_view name() const override { return "xpilot-server"; }
  size_t SegmentBytes() const override { return 1 << 20; }
  void Init(ftx_dc::ProcessEnv& env) override;
  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override;
  ftx_dc::FaultSurface fault_surface() const override;
  ftx::Status CheckIntegrity(ftx_dc::ProcessEnv& env) override;

  static int64_t FramesRun(ftx_dc::ProcessEnv& env);

 private:
  XpilotOptions options_;
};

class XpilotClient : public ftx_dc::App {
 public:
  explicit XpilotClient(XpilotOptions options = XpilotOptions());

  std::string_view name() const override { return "xpilot-client"; }
  size_t SegmentBytes() const override { return 256 * 1024; }
  void Init(ftx_dc::ProcessEnv& env) override;
  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override;
  ftx_dc::FaultSurface fault_surface() const override;

  static int64_t FramesRendered(ftx_dc::ProcessEnv& env);

  // Joystick tokens for a client's input script.
  static std::vector<ftx::Bytes> MakeJoystickScript(uint64_t seed, int samples);

 private:
  XpilotOptions options_;
};

}  // namespace ftx_apps

#endif  // FTX_SRC_APPS_XPILOT_H_
