#include "src/checkpoint/app.h"

namespace ftx_dc {

void InitFaultControlArea(ProcessEnv& env, int64_t offset, int64_t size) {
  // Distinct nonzero words: a deleted branch (zeroing) or a misdirected
  // store (copying one entry over another) always produces a detectable
  // change.
  int64_t words = size / static_cast<int64_t>(sizeof(uint64_t));
  for (int64_t i = 0; i < words; ++i) {
    uint64_t value = 0x636f6e74726f6cULL ^ (static_cast<uint64_t>(i + 1) * 0x9e3779b9ULL);
    env.segment().WriteValue(offset + i * static_cast<int64_t>(sizeof(uint64_t)), value);
  }
}

}  // namespace ftx_dc
