// Application model for the Discount Checking runtime.
//
// The paper's formal model (§2.2) treats a process as a state machine that
// computes by transitioning between states on events. Applications in this
// library are written exactly that way: all persistent state — including
// control state such as phase counters — lives in the process's Vista
// segment, and the runtime repeatedly calls Step(). That is what makes
// rollback + reexecution exact: restoring the segment restores the whole
// process. (Discount Checking achieved the same effect on real binaries by
// mapping the entire address space, stack included, into the segment.)
//
// Every interaction with the outside world goes through ProcessEnv, which is
// where the runtime intercepts events, consults the Save-work protocol, and
// charges simulated time.

#ifndef FTX_SRC_CHECKPOINT_APP_H_
#define FTX_SRC_CHECKPOINT_APP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/sim/network.h"
#include "src/vista/heap.h"
#include "src/vista/segment.h"

namespace ftx_dc {

// The runtime-provided environment an application executes against. Each
// method that corresponds to a paper event class is annotated.
class ProcessEnv {
 public:
  virtual ~ProcessEnv() = default;

  virtual int pid() const = 0;
  virtual int num_processes() const = 0;
  virtual ftx::TimePoint Now() const = 0;

  // All application state lives here.
  virtual ftx_vista::Segment& segment() = 0;
  virtual ftx_vista::SegmentHeap& heap() = 0;

  // --- events ---

  // Transient ND: simulated gettimeofday (different result on reexecution).
  virtual ftx::TimePoint GetTimeOfDay() = 0;

  // Transient ND: a delivered signal (the one ND class Targon/32 cannot
  // convert). No payload; the event itself is the non-determinism.
  virtual void DeliverSignal() = 0;

  // Fixed ND, loggable: next scripted user-input token, or nullopt when the
  // script is exhausted (end of workload).
  virtual std::optional<ftx::Bytes> ReadUserInput() = 0;

  // Visible event: output the user observes.
  virtual void Print(ftx::Bytes payload) = 0;

  // Send event.
  virtual void Send(int dst, ftx::Bytes payload) = 0;

  // Receive event (ND, loggable) if a message is pending. A poll that finds
  // nothing is recorded as a transient ND event (select on an empty set —
  // whether the message had arrived yet is scheduling-dependent).
  virtual std::optional<ftx_sim::Message> TryReceive() = 0;

  // MSG_PEEK: inspect the next pending message without consuming it (no
  // event is recorded; the consuming TryReceive is the receive event).
  // Applications use it to defer messages their protocol state cannot
  // accept yet — e.g. redelivered future-iteration traffic during replay.
  virtual const ftx_sim::Message* PeekMessage() = 0;

  // Deterministic computation consuming simulated time.
  virtual void Compute(ftx::Duration work) = 0;

  // --- syscalls (kernel state captured for recovery) ---

  virtual ftx::Result<int> Open(const std::string& path, bool writable) = 0;  // fixed ND
  virtual ftx::Status Close(int fd) = 0;
  virtual ftx::Result<int64_t> WriteFile(int fd, int64_t bytes) = 0;  // fixed ND
  virtual ftx::Status Bind(uint16_t port) = 0;

  // --- failure interface ---

  // Executes a crash event: the process detected a fault (failed consistency
  // check, smashed guard band, poisoned pointer) and terminates, per the
  // fail-before-incorrect-output assumption of §2.2.
  virtual void Crash(const std::string& reason) = 0;

  // Marks the *previous* application event as the activation of an injected
  // fault (used by the fault-injection study to delimit dangerous paths).
  virtual void MarkFaultActivation() = 0;
};

// What a Step() call tells the scheduler.
struct StepOutcome {
  enum class Status {
    kContinue,  // reschedule after `delay`
    kBlocked,   // waiting for a message; wake on arrival (or after `delay`
                //   if nonzero, as a poll timeout)
    kDone,      // workload complete
  };
  Status status = Status::kContinue;
  // Think time / pacing before the next step (e.g. 100 ms between
  // keystrokes); in addition to the simulated cost of the events executed.
  ftx::Duration delay;
  // Absolute deadline pacing (real-time loops): when set (>= 0 ns), the
  // next step runs at max(now + cost, pace_until) — recovery/commit
  // overhead is absorbed into the frame's slack until the budget is
  // exhausted, after which the loop falls behind naturally.
  ftx::TimePoint pace_until{-1};
};

// Where in an app's segment the fault injector may corrupt state. The
// scratch region models the stack (per-step working data); the static region
// models global/static variables; the control region is a table of
// long-lived configuration/dispatch words (the natural victim of
// wrong-destination stores and deleted branches — corrupt values there
// persist until the corrupted entry is used).
struct FaultSurface {
  int64_t scratch_offset = 0;
  int64_t scratch_size = 0;
  int64_t static_offset = 0;
  int64_t static_size = 0;
  int64_t control_offset = 0;
  int64_t control_size = 0;
};

// Fills a control table with distinct nonzero words; apps call this from
// Init for the region they expose as FaultSurface::control_*.
void InitFaultControlArea(ProcessEnv& env, int64_t offset, int64_t size);

class App {
 public:
  virtual ~App() = default;

  virtual std::string_view name() const = 0;

  // Segment size this app needs (heap arena included).
  virtual size_t SegmentBytes() const = 0;

  // Heap arena placement inside the segment. Default: the upper half. Apps
  // with a fully static layout may return zero HeapBytes.
  virtual int64_t HeapOffset() const { return static_cast<int64_t>(SegmentBytes()) / 2; }
  virtual int64_t HeapBytes() const { return static_cast<int64_t>(SegmentBytes()) / 2; }

  // Establishes the initial state in the segment. The runtime commits
  // checkpoint #0 right after Init — the paper's "the initial state of any
  // application is always committed".
  virtual void Init(ProcessEnv& env) = 0;

  // Executes one unit of work (one keystroke, one command, one frame, one
  // DSM iteration). Must be a pure function of segment state and ProcessEnv
  // results, so reexecution after rollback is faithful.
  virtual StepOutcome Step(ProcessEnv& env) = 0;

  // Fault-injection surface (§4.1 fault study). Apps with no injectable
  // regions return the default empty surface.
  virtual FaultSurface fault_surface() const { return FaultSurface{}; }

  // Called after recovery restores the committed state and zeroes any
  // volatile (recomputable) segment ranges: the application rebuilds caches
  // and derived structures here. The default does nothing.
  virtual void OnRecovered(ProcessEnv& env) { (void)env; }

  // Application-level consistency check (§2.6: traverse data structures,
  // verify checksums, inspect guard bands). Returns kDataLoss on detected
  // corruption; the caller then executes a crash event.
  virtual ftx::Status CheckIntegrity(ProcessEnv& env) {
    if (env.heap().arena_size() > 0) {
      return env.heap().CheckGuards();
    }
    return ftx::Status::Ok();
  }
};

}  // namespace ftx_dc

#endif  // FTX_SRC_CHECKPOINT_APP_H_
