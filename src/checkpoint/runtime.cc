#include "src/checkpoint/runtime.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/obs/causal/audit.h"
#include "src/obs/prof/prof.h"
#include "src/storage/commit_pipeline.h"

namespace ftx_dc {
namespace {

ftx_sm::EventKind ToTraceKind(ftx_proto::AppEvent event) {
  switch (event) {
    case ftx_proto::AppEvent::kInternal:
      return ftx_sm::EventKind::kInternal;
    case ftx_proto::AppEvent::kTransientNd:
    case ftx_proto::AppEvent::kSignal:
      return ftx_sm::EventKind::kTransientNd;
    case ftx_proto::AppEvent::kFixedNd:
    case ftx_proto::AppEvent::kUserInput:
      return ftx_sm::EventKind::kFixedNd;
    case ftx_proto::AppEvent::kReceive:
      return ftx_sm::EventKind::kReceive;
    case ftx_proto::AppEvent::kSend:
      return ftx_sm::EventKind::kSend;
    case ftx_proto::AppEvent::kVisible:
      return ftx_sm::EventKind::kVisible;
  }
  return ftx_sm::EventKind::kInternal;
}

}  // namespace

Runtime::Runtime(int pid, int num_processes, App* app,
                 std::unique_ptr<ftx_proto::Protocol> protocol, ftx::env::Environment env,
                 RuntimeMode mode, RuntimeCosts costs)
    : pid_(pid),
      num_processes_(num_processes),
      app_(app),
      protocol_(std::move(protocol)),
      env_(std::move(env)),
      mode_(mode),
      costs_(costs) {
  FTX_CHECK(app != nullptr);
  // The Environment builder already validated clock/transport/kernel/
  // recorder; the mode-dependent requirements are enforced here in the same
  // named-field style.
  FTX_CHECK_MSG(env_.clock != nullptr, "Runtime: missing required dependency 'clock'");
  FTX_CHECK_MSG(env_.transport != nullptr, "Runtime: missing required dependency 'transport'");
  FTX_CHECK_MSG(env_.kernel != nullptr, "Runtime: missing required dependency 'kernel'");
  FTX_CHECK_MSG(env_.recorder != nullptr, "Runtime: missing required dependency 'recorder'");
  if (mode_ == RuntimeMode::kRecoverable) {
    FTX_CHECK_MSG(protocol_ != nullptr, "Runtime: recoverable mode requires a protocol");
    FTX_CHECK_MSG(env_.trace != nullptr,
                  "Runtime: recoverable mode requires dependency 'trace'");
    FTX_CHECK_MSG(env_.store != nullptr,
                  "Runtime: recoverable mode requires dependency 'store'");
  }
  segment_ = std::make_unique<ftx_vista::Segment>(app->SegmentBytes());
  if (app->HeapBytes() > 0) {
    heap_ = std::make_unique<ftx_vista::SegmentHeap>(segment_.get(), app->HeapOffset(),
                                                     app->HeapBytes());
    heap_->Format();
  }
  if (env_.metrics != nullptr) {
    BindMetrics();
  }
}

void Runtime::BindMetrics() {
  ftx_obs::Registry* r = env_.metrics;
  const std::string p = "p" + std::to_string(pid_) + ".";
  // Probes read the very fields stats() exposes: the registry view and the
  // legacy struct are the same memory.
  r->RegisterCounterProbe(p + "dc.commits", [this]() { return stats_.commits; });
  r->RegisterCounterProbe(p + "dc.coordinated_commits",
                          [this]() { return stats_.coordinated_commits; });
  r->RegisterCounterProbe(p + "dc.commit_ns", [this]() { return stats_.commit_time.nanos(); });
  r->RegisterCounterProbe(p + "dc.pages_committed", [this]() { return stats_.pages_committed; });
  r->RegisterCounterProbe(p + "dc.bytes_persisted", [this]() { return stats_.bytes_persisted; });
  r->RegisterCounterProbe(p + "dc.events", [this]() { return stats_.events; });
  r->RegisterCounterProbe(p + "dc.nd_events", [this]() { return stats_.nd_events; });
  r->RegisterCounterProbe(p + "dc.visible_events", [this]() { return stats_.visible_events; });
  r->RegisterCounterProbe(p + "dc.sends", [this]() { return stats_.sends; });
  r->RegisterCounterProbe(p + "dc.receives", [this]() { return stats_.receives; });
  r->RegisterCounterProbe(p + "dc.logged_events", [this]() { return stats_.logged_events; });
  r->RegisterCounterProbe(p + "dc.rollbacks", [this]() { return stats_.rollbacks; });
  r->RegisterCounterProbe(p + "dc.recovery_ns", [this]() { return stats_.recovery_time.nanos(); });
  crash_counter_ = r->GetCounter(p + "dc.crash_events");
  fault_counter_ = r->GetCounter(p + "faults.activations");
  flush_counter_ = r->GetCounter(p + "dc.ndlog_flushes");
  commit_hist_ = r->GetHistogram("dc.commit_ns");
  recovery_hist_ = r->GetHistogram("dc.recovery_ns");
}

void Runtime::SetInputScript(std::vector<ftx::Bytes> script) {
  input_script_ = std::move(script);
}

void Runtime::SetCrashHandler(std::function<void(const std::string&)> handler) {
  crash_handler_ = std::move(handler);
}

void Runtime::Initialize() {
  in_step_ = true;
  step_cost_ = ftx::Duration();
  app_->Init(*this);
  in_step_ = false;
  step_cost_ = ftx::Duration();
  // Checkpoint #0: "the initial state of any application is always
  // committed". Its cost is excluded from overhead accounting (both the
  // recoverable and baseline versions start from a settled initial state).
  if (mode_ == RuntimeMode::kRecoverable) {
    DoCommit(/*coordinated=*/false);
    // "The initial state of any application is always committed" — durably:
    // checkpoint #0 never waits in an open group-commit window.
    FlushCommitWindow();
  } else {
    segment_->Commit();
  }
  step_cost_ = ftx::Duration();
}

StepOutcome Runtime::RunStep(ftx::Duration* cost_out) {
  FTX_CHECK(alive_);
  FTX_CHECK(!done_);
  ftx::TimePoint step_begin = Now();
  step_cost_ = pending_overhead_;
  pending_overhead_ = ftx::Duration();
  in_step_ = true;
  ++step_count_;
  StepOutcome outcome = app_->Step(*this);
  if (alive_) {
    FlushPendingCommit();
    if (outcome.status == StepOutcome::Status::kDone) {
      // Clean shutdown: the final commits must not ride an open window.
      Charge(FlushCommitWindow());
    }
  }
  in_step_ = false;
  if (outcome.status == StepOutcome::Status::kDone) {
    done_ = true;
  }
  *cost_out = step_cost_;
  if (env_.tracer != nullptr) {
    env_.tracer->Span(pid_, ftx_obs::TraceLane::kStep, "app", "step", step_begin,
                       step_begin + step_cost_);
  }
  return outcome;
}

void Runtime::Kill() {
  if (env_.tracer != nullptr) {
    env_.tracer->Instant(pid_, ftx_obs::TraceLane::kRecovery, "fault", "stop-failure", Now());
  }
  // Staged group-commit records die with the process: they were never
  // durable and never reported committed.
  DropStagedCommits();
  alive_ = false;
}

void Runtime::FlushPendingCommit() {
  if (pending_commit_) {
    pending_commit_ = false;
    Charge(DoCommit(/*coordinated=*/false));
  }
}

ftx_proto::CommitDecision Runtime::PreEvent(ftx_proto::AppEvent event) {
  ftx_proto::CommitDecision decision;
  if (mode_ == RuntimeMode::kBaseline) {
    return decision;
  }
  FlushPendingCommit();
  decision = protocol_->Decide(event);
  if (env_.audit != nullptr) {
    env_.audit->OnProtocolDecision(pid_, event, decision);
  }
  if (decision.flush_log_before && unflushed_log_bytes_ > 0) {
    // Optimistic Logging's output commit: wait for every outstanding log
    // record to reach stable storage — one batched sequential append.
    ftx::Duration flush_cost = env_.store->LogAppendCost(unflushed_log_bytes_);
    if (env_.tracer != nullptr) {
      ftx::TimePoint base = Now() + step_cost_;
      env_.tracer->Span(pid_, ftx_obs::TraceLane::kStorage, "dc", "ndlog.flush", base,
                         base + flush_cost);
    }
    if (flush_counter_ != nullptr) {
      flush_counter_->Increment();
    }
    Charge(flush_cost);
    unflushed_log_bytes_ = 0;
    flushed_log_records_ = nd_log_.size();
  }
  if (decision.commit_before) {
    if (decision.coordinated && env_.coordinated_commit && num_processes_ > 1) {
      // The coordinator callback runs the 2PC round: participants commit,
      // acks flow back, and this process commits — all recorded in the
      // trace and charged to this step.
      env_.coordinated_commit(decision.scope);
    } else {
      Charge(DoCommit(/*coordinated=*/false));
    }
  }
  if (event == ftx_proto::AppEvent::kVisible || event == ftx_proto::AppEvent::kSend) {
    // Output commit: anything about to escape the process (visible output,
    // a message another process may act on) must find every staged
    // group-commit window durable first.
    Charge(FlushCommitWindow());
  }
  Charge(costs_.event_intercept);
  return decision;
}

void Runtime::PostEvent(ftx_proto::AppEvent event, const ftx_proto::CommitDecision& decision,
                        int64_t message_id, bool logged, const char* label) {
  ++stats_.events;
  if (ftx_proto::IsNdEvent(event)) {
    ++stats_.nd_events;
  }
  if (mode_ == RuntimeMode::kBaseline) {
    return;
  }
  AppendTraceEvent(event, message_id, logged, label);
  if (decision.commit_after) {
    pending_commit_ = true;  // performed at the next event / step boundary
  }
}

void Runtime::AppendTraceEvent(ftx_proto::AppEvent event, int64_t message_id, bool logged,
                               const char* label) {
  if (env_.trace == nullptr) {
    return;
  }
  int64_t atomic_group = -1;
  if (event == ftx_proto::AppEvent::kVisible && env_.latest_atomic_group) {
    atomic_group = env_.latest_atomic_group();
  }
  env_.trace->Append(pid_, ToTraceKind(event), message_id, logged,
                      label != nullptr ? label : "", atomic_group);
}

void Runtime::AppendNdLog(NdLogRecord record, bool log_async) {
  int64_t bytes = record.CostBytes();
  nd_log_.push_back(std::move(record));
  ++nd_consumed_;  // live events are consumed as they are logged
  ++stats_.logged_events;
  Charge(costs_.nd_log_record);
  if (log_async) {
    unflushed_log_bytes_ += bytes;
  } else {
    Charge(env_.store->LogAppendCost(bytes));
    flushed_log_records_ = nd_log_.size();
  }
}

ftx::Duration Runtime::DoCommit(bool coordinated, int64_t atomic_group) {
  if (mode_ == RuntimeMode::kBaseline) {
    segment_->Commit();
    return ftx::Duration();
  }
  FTX_PROF_SCOPE("commit");
  const ftx::Duration fixed_cost = env_.store->CommitFixedCost();
  // Volatile (recomputable) ranges are excluded from what a commit
  // persists; their pages still pay the COW trap but not the persist path.
  const auto trapped = static_cast<int64_t>(segment_->dirty_page_count());
  const auto pages = static_cast<int64_t>(segment_->persisted_dirty_page_count());
  const ftx::Duration before_image_cost = costs_.page_trap * trapped;
  const ftx::Duration reprotect_cost = costs_.page_reprotect * pages;
  ftx::Duration cost = fixed_cost;
  cost += before_image_cost + reprotect_cost;

  // Capture the post-commit resume point: the synthetic register file plus
  // the kernel / input / ND-log cursors recovery must restore.
  CommittedMeta meta;
  meta.registers[0] = static_cast<uint64_t>(step_count_);
  meta.registers[1] = static_cast<uint64_t>(env_.clock->Now().nanos());
  meta.step_count = step_count_;
  meta.kernel_records = env_.kernel->RecordCount(pid_);
  meta.input_cursor = input_cursor_;
  meta.nd_consumed = nd_consumed_;

  ftx::Duration persist_cost;
  int64_t payload_bytes = 0;
  if (env_.redo_log != nullptr) {
    // DC-disk: synchronous redo record of the dirty pages + metadata. The
    // segment's visitor hands page spans straight to record serialization —
    // the only copy is the one the persist itself requires. The serialize
    // phase includes the incremental CRC AppendPage computes over each page.
    ftx_store::RedoRecord record;
    {
      FTX_PROF_SCOPE("commit.serialize_crc");
      record.ReservePages(pages, segment_->page_size());
      segment_->ForEachPersistedDirtyPage(
          [&record](int64_t offset, const uint8_t* image, size_t size) {
            record.AppendPage(offset, image, size);
          });
      ftx::AppendValue(&record.metadata, meta);
    }
    payload_bytes = record.PayloadBytes() + 64;
    if (GroupCommitActive()) {
      // Group commit: stage the record into the open window instead of
      // syncing it now. The window's single sync pair is paid at flush —
      // policy trip, ND-visible/send event, coordinated round, or clean
      // shutdown — and nothing is *reported* committed (trace event, audit
      // breakdown, message release) until then, so Save-work is untouched.
      bool must_flush = false;
      {
        FTX_PROF_SCOPE("commit.stage");
        must_flush = env_.commit_pipeline->Stage(std::move(record));
      }
      StagedCommitMeta sm;
      sm.coordinated = coordinated;
      sm.atomic_group = atomic_group;
      sm.pages = pages;
      sm.payload_bytes = payload_bytes;
      sm.fixed_cost = fixed_cost;
      sm.capture_cost = before_image_cost;
      sm.reprotect_cost = reprotect_cost;
      sm.begin_ns = (Now() + (in_step_ ? step_cost_ : pending_overhead_)).nanos();
      staged_meta_.push_back(sm);

      committed_ = meta;
      {
        FTX_PROF_SCOPE("commit.reprotect");
        segment_->Commit();
      }
      communicated_mask_ = 0;  // dependencies up to here ride this window
      ++stats_.commits;
      if (coordinated) {
        ++stats_.coordinated_commits;
      }
      stats_.commit_time += cost;  // capture portion; the window adds at flush
      stats_.pages_committed += pages;
      if (env_.tracer != nullptr) {
        ftx::TimePoint base = Now() + (in_step_ ? step_cost_ : pending_overhead_);
        env_.tracer->Span(pid_, ftx_obs::TraceLane::kStorage, "dc", "commit(stage)", base,
                           base + cost);
      }
      protocol_->OnCommitted();
      if (must_flush || coordinated) {
        // Coordinated rounds externalize through protocol messages, so a
        // 2PC commit must be durable before the round reports completion.
        cost += FlushCommitWindow();
      }
      return cost;
    }
    persist_cost = env_.store->PersistCost(payload_bytes);
    cost += persist_cost;
    stats_.bytes_persisted += payload_bytes;
    {
      FTX_PROF_SCOPE("commit.persist");
      env_.redo_log->Append(std::move(record));
    }
  } else {
    // Rio: data is already in the persistent segment; commit atomically
    // discards the undo log. Charge the (memory-speed) cost of retiring it.
    payload_bytes = segment_->undo_bytes();
    persist_cost = env_.store->PersistCost(payload_bytes);
    cost += persist_cost;
    stats_.bytes_persisted += payload_bytes;
  }
  committed_ = meta;

  {
    // Host-time equivalent of the reprotect_cost charge above: retire the
    // undo log and clear the dirty bitmaps.
    FTX_PROF_SCOPE("commit.reprotect");
    segment_->Commit();
  }
  env_.transport->ReleaseAllDelivered(pid_);
  communicated_mask_ = 0;  // dependencies up to here are now stable

  ++stats_.commits;
  if (coordinated) {
    ++stats_.coordinated_commits;
  }
  stats_.commit_time += cost;
  stats_.pages_committed += pages;

  if (env_.audit != nullptr) {
    // Stage the component breakdown so the audit ledger can attach it to the
    // kCommit trace event appended just below. Purely observational: every
    // quantity here was already computed for the charge above.
    ftx_causal::CommitCosts cc;
    cc.fixed_ns = fixed_cost.nanos();
    cc.before_image_ns = before_image_cost.nanos();
    cc.reprotect_ns = reprotect_cost.nanos();
    cc.persist_ns = persist_cost.nanos();
    cc.pages = pages;
    cc.payload_bytes = payload_bytes;
    const ftx::TimePoint base = Now() + (in_step_ ? step_cost_ : pending_overhead_);
    cc.begin_ns = base.nanos();
    cc.end_ns = (base + cost).nanos();
    env_.audit->StageCommitCosts(pid_, cc);
  }
  if (env_.trace != nullptr) {
    env_.trace->Append(pid_, ftx_sm::EventKind::kCommit, -1, false, "", atomic_group);
  }
  if (commit_hist_ != nullptr) {
    commit_hist_->Observe(cost.nanos());
  }
  if (env_.tracer != nullptr) {
    // The commit occupies the simulated interval just past what this process
    // has already accrued (the clock itself only advances between events).
    ftx::TimePoint base = Now() + (in_step_ ? step_cost_ : pending_overhead_);
    env_.tracer->Span(pid_, ftx_obs::TraceLane::kStorage, "dc",
                       coordinated ? "commit(2pc)" : "commit", base, base + cost);
  }
  protocol_->OnCommitted();
  return cost;
}

bool Runtime::GroupCommitActive() const {
  return env_.commit_pipeline != nullptr && env_.commit_pipeline->policy().enabled &&
         env_.redo_log != nullptr && mode_ == RuntimeMode::kRecoverable;
}

ftx::Duration Runtime::FlushCommitWindow() {
  if (!GroupCommitActive() || env_.commit_pipeline->empty()) {
    return ftx::Duration();
  }
  FTX_PROF_SCOPE("commit.window_flush");
  const int64_t records = env_.commit_pipeline->staged_records();
  FTX_CHECK_EQ(records, static_cast<int64_t>(staged_meta_.size()));
  int64_t window_bytes = 0;
  for (const StagedCommitMeta& sm : staged_meta_) {
    window_bytes += sm.payload_bytes;
  }
  {
    FTX_PROF_SCOPE("commit.persist");
    env_.commit_pipeline->Flush();
  }
  const ftx::Duration window_cost = env_.store->WindowPersistCost(records, window_bytes);
  // Overlap credit: a pipelined implementation captures + CRCs record N+1
  // while record N's window I/O is in flight. The capture cost of records
  // 2..N was already charged at their stage time; hand it back here, capped
  // at the window share the earlier records' I/O occupies (a singleton
  // window gets no credit — there is nothing to overlap with).
  ftx::Duration credit;
  for (size_t i = 1; i < staged_meta_.size(); ++i) {
    credit += staged_meta_[i].capture_cost;
  }
  const ftx::Duration cap = ftx::Nanoseconds(window_cost.nanos() * (records - 1) / records);
  if (credit > cap) {
    credit = cap;
  }
  const ftx::Duration cost = window_cost - credit;
  stats_.commit_time += cost;
  stats_.bytes_persisted += window_bytes;

  const ftx::TimePoint base = Now() + (in_step_ ? step_cost_ : pending_overhead_);
  for (const StagedCommitMeta& sm : staged_meta_) {
    if (env_.audit != nullptr) {
      ftx_causal::CommitCosts cc;
      cc.fixed_ns = sm.fixed_cost.nanos();
      cc.before_image_ns = sm.capture_cost.nanos();
      cc.reprotect_ns = sm.reprotect_cost.nanos();
      cc.persist_ns = window_cost.nanos() / records;  // per-record window share
      cc.pages = sm.pages;
      cc.payload_bytes = sm.payload_bytes;
      cc.begin_ns = sm.begin_ns;
      cc.end_ns = (base + cost).nanos();
      env_.audit->StageCommitCosts(pid_, cc);
    }
    if (env_.trace != nullptr) {
      env_.trace->Append(pid_, ftx_sm::EventKind::kCommit, -1, false, "", sm.atomic_group);
    }
    if (commit_hist_ != nullptr) {
      commit_hist_->Observe(sm.capture_cost.nanos() + cost.nanos() / records);
    }
  }
  if (env_.tracer != nullptr) {
    env_.tracer->Span(pid_, ftx_obs::TraceLane::kStorage, "dc",
                       "commit(window x" + std::to_string(records) + ")", base, base + cost);
  }
  env_.transport->ReleaseAllDelivered(pid_);
  staged_meta_.clear();
  return cost;
}

void Runtime::DropStagedCommits() {
  if (env_.commit_pipeline != nullptr) {
    env_.commit_pipeline->Drop();
  }
  staged_meta_.clear();
}

void Runtime::AppendCoordinationEvent(ftx_sm::EventKind kind, int64_t message_id) {
  if (env_.trace != nullptr && mode_ == RuntimeMode::kRecoverable) {
    // Coordination receives are recovery-system events, not application
    // non-determinism: the recovery system regenerates its own protocol
    // messages deterministically, so they are recorded as logged.
    bool logged = kind == ftx_sm::EventKind::kReceive;
    env_.trace->Append(pid_, kind, message_id, logged, "2pc");
  }
}

void Runtime::ChargeToStep(ftx::Duration cost) {
  if (in_step_) {
    Charge(cost);
  } else {
    pending_overhead_ += cost;
  }
}

ftx::Duration Runtime::CommitNow(bool coordinated, bool charge_inline, int64_t atomic_group) {
  ftx::Duration cost = DoCommit(coordinated, atomic_group);
  if (charge_inline) {
    Charge(cost);
  } else {
    pending_overhead_ += cost;
  }
  return cost;
}

ftx::Duration Runtime::Recover() {
  FTX_CHECK(!alive_);
  FTX_PROF_SCOPE("recover");
  DropStagedCommits();  // belt-and-braces; Kill() already dropped them
  ++stats_.rollbacks;
  ftx::Duration cost = costs_.recovery_fixed;
  // The breakdown mirrors the charges below, bucket by bucket; every
  // nanosecond added to `cost` lands in exactly one bucket so the phases
  // tile the returned latency.
  last_recovery_ = RecoveryBreakdown{};
  last_recovery_.log_scan_ns = costs_.recovery_fixed.nanos();

  if (env_.redo_log != nullptr) {
    // DC-disk: the volatile segment is gone; rebuild it by replaying the
    // redo chain from disk. Charge a read per record plus transfer.
    segment_->ResetToZero();
    const ftx_store::DiskParameters* disk_params = nullptr;
    auto* disk_store = dynamic_cast<ftx_store::DiskStore*>(env_.store);
    if (disk_store != nullptr) {
      disk_params = &disk_store->disk()->parameters();
    }
    {
      FTX_PROF_SCOPE("recover.log_scan");
      for (const ftx_store::RedoRecord& record : env_.redo_log->records()) {
        {
          FTX_PROF_SCOPE("recover.crc_validate");
          FTX_CHECK_MSG(record.ValidatePages(), "redo record failed CRC validation");
        }
        FTX_PROF_SCOPE("recover.page_install");
        bool well_formed =
            record.ForEachPage([this](int64_t offset, const uint8_t* image, size_t size) {
              segment_->InstallPage(offset, image, size);
            });
        FTX_CHECK_MSG(well_formed, "redo record page payload malformed");
        if (disk_params != nullptr) {
          cost += disk_params->half_rotation;
          cost += ftx::Nanoseconds(disk_params->per_byte.nanos() * record.PayloadBytes());
          last_recovery_.log_scan_ns += disk_params->half_rotation.nanos();
          last_recovery_.page_install_ns += disk_params->per_byte.nanos() * record.PayloadBytes();
        }
        ++last_recovery_.records;
      }
    }
    {
      FTX_PROF_SCOPE("recover.reprotect");
      segment_->Commit();
    }
    // Restore the capture point from the latest record's metadata.
    const ftx_store::RedoRecord* latest = env_.redo_log->Latest();
    if (latest != nullptr) {
      FTX_PROF_SCOPE("recover.meta_restore");
      size_t offset = 0;
      CommittedMeta meta;
      FTX_CHECK(ftx::ReadValue(latest->metadata, &offset, &meta));
      committed_ = meta;
    }
  } else {
    // Rio: the segment and undo log survived; roll back in place.
    const ftx::Duration undo =
        costs_.recovery_per_page * static_cast<int64_t>(segment_->dirty_page_count());
    cost += undo;
    last_recovery_.undo_rollback_ns = undo.nanos();
    FTX_PROF_SCOPE("recover.undo_rollback");
    segment_->Abort();
  }

  step_count_ = committed_.step_count;
  input_cursor_ = committed_.input_cursor;
  nd_consumed_ = committed_.nd_consumed;
  communicated_mask_ = 0;
  // Asynchronously-written log records that never reached stable storage
  // are lost with the crash; reexecution runs those events live.
  size_t survivors = std::max(flushed_log_records_, nd_consumed_);
  if (nd_log_.size() > survivors) {
    nd_log_.resize(survivors);
  }
  unflushed_log_bytes_ = 0;
  {
    FTX_PROF_SCOPE("recover.kernel_replay");
    FTX_CHECK(env_.kernel->ReconstructFor(pid_, committed_.kernel_records).ok());
  }
  env_.transport->RequeueRetained(pid_);

  // Volatile ranges were not part of the committed state: zero them and let
  // the application recompute (possibly avoiding re-corruption, §2.6).
  {
    FTX_PROF_SCOPE("recover.volatile_zero");
    segment_->ZeroVolatileRanges();
  }

  alive_ = true;
  crashed_ = false;
  crash_reason_.clear();
  pending_commit_ = false;  // cancelled by the rollback
  protocol_->OnCommitted();

  // Application rebuild of recomputable state, charged to the recovery
  // latency.
  ftx::Duration saved_step_cost = step_cost_;
  step_cost_ = ftx::Duration();
  bool was_in_step = in_step_;
  in_step_ = true;
  {
    FTX_PROF_SCOPE("recover.app_rebuild");
    app_->OnRecovered(*this);
  }
  in_step_ = was_in_step;
  cost += step_cost_;
  last_recovery_.rebuild_ns = step_cost_.nanos();
  step_cost_ = saved_step_cost;
  last_recovery_.total_ns = cost.nanos();

  stats_.recovery_time += cost;
  if (recovery_hist_ != nullptr) {
    recovery_hist_->Observe(cost.nanos());
  }
  if (env_.tracer != nullptr) {
    env_.tracer->Span(pid_, ftx_obs::TraceLane::kRecovery, "dc", "recover", Now(), Now() + cost);
  }
  if (env_.audit != nullptr) {
    env_.audit->OnRecovery(pid_, "recover", cost.nanos());
  }
  FTX_LOG(kInfo, "p%d recovered to step %lld (cost %s)", pid_,
          static_cast<long long>(step_count_), cost.ToString().c_str());
  return cost;
}

ftx::Duration Runtime::RestartFromScratch() {
  FTX_CHECK(!alive_);
  DropStagedCommits();
  ++stats_.rollbacks;
  segment_->ResetToZero();
  if (heap_ != nullptr) {
    heap_->Format();
  }
  FTX_CHECK(env_.kernel->ReconstructFor(pid_, 0).ok());
  env_.transport->ReleaseAllDelivered(pid_);
  input_cursor_ = 0;
  step_count_ = 0;
  nd_log_.clear();
  nd_consumed_ = 0;
  flushed_log_records_ = 0;
  unflushed_log_bytes_ = 0;
  communicated_mask_ = 0;
  committed_ = CommittedMeta{};
  pending_commit_ = false;
  pending_overhead_ = ftx::Duration();
  alive_ = true;
  crashed_ = false;
  crash_reason_.clear();
  if (protocol_ != nullptr) {
    protocol_->OnCommitted();
  }
  Initialize();
  ftx::Duration cost = costs_.recovery_fixed;
  last_recovery_ = RecoveryBreakdown{};
  last_recovery_.log_scan_ns = cost.nanos();
  last_recovery_.total_ns = cost.nanos();
  stats_.recovery_time += cost;
  if (recovery_hist_ != nullptr) {
    recovery_hist_->Observe(cost.nanos());
  }
  if (env_.tracer != nullptr) {
    env_.tracer->Span(pid_, ftx_obs::TraceLane::kRecovery, "dc", "restart", Now(), Now() + cost);
  }
  if (env_.audit != nullptr) {
    env_.audit->OnRecovery(pid_, "restart", cost.nanos());
  }
  FTX_LOG(kInfo, "p%d restarted from scratch (all committed work lost)", pid_);
  return cost;
}

// --- ProcessEnv ---

ftx::TimePoint Runtime::GetTimeOfDay() {
  if (mode_ == RuntimeMode::kBaseline) {
    Charge(costs_.syscall_service);
    return env_.kernel->GetTimeOfDay(pid_);
  }
  // Replay: a logged clock read is deterministic (full-logging protocols).
  if (InNdReplay() && nd_log_[nd_consumed_].kind == NdLogRecord::Kind::kTimeOfDay) {
    FTX_PROF_SCOPE("recover.nd_replay");
    ftx::TimePoint value = nd_log_[nd_consumed_].time_value;
    ++nd_consumed_;
    AppendTraceEvent(ftx_proto::AppEvent::kTransientNd, -1, /*logged=*/true, "time-replay");
    ++stats_.events;
    ++stats_.nd_events;
    return value;
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kTransientNd);
  Charge(costs_.syscall_service);
  ftx::TimePoint result = env_.kernel->GetTimeOfDay(pid_);
  if (d.log_event) {
    NdLogRecord record;
    record.kind = NdLogRecord::Kind::kTimeOfDay;
    record.time_value = result;
    AppendNdLog(std::move(record), d.log_async);
  }
  PostEvent(ftx_proto::AppEvent::kTransientNd, d, -1, d.log_event, "gettimeofday");
  return result;
}

void Runtime::DeliverSignal() {
  if (mode_ == RuntimeMode::kBaseline) {
    return;
  }
  // Replay: a logged delivery point replays trivially (no result to carry).
  if (InNdReplay() && nd_log_[nd_consumed_].kind == NdLogRecord::Kind::kSignal) {
    FTX_PROF_SCOPE("recover.nd_replay");
    ++nd_consumed_;
    AppendTraceEvent(ftx_proto::AppEvent::kSignal, -1, /*logged=*/true, "signal-replay");
    ++stats_.events;
    ++stats_.nd_events;
    return;
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kSignal);
  if (d.log_event) {
    NdLogRecord record;
    record.kind = NdLogRecord::Kind::kSignal;
    AppendNdLog(std::move(record), d.log_async);
  }
  PostEvent(ftx_proto::AppEvent::kSignal, d, -1, d.log_event, "signal");
}

std::optional<ftx::Bytes> Runtime::ReadUserInput() {
  if (mode_ == RuntimeMode::kBaseline) {
    if (input_cursor_ >= input_script_.size()) {
      return std::nullopt;
    }
    Charge(costs_.syscall_service);
    return input_script_[input_cursor_++];
  }
  // Recovery replay: a logged input is returned from the ND log and is
  // deterministic.
  if (InNdReplay()) {
    const NdLogRecord& record = nd_log_[nd_consumed_];
    if (record.kind == NdLogRecord::Kind::kUserInput) {
      FTX_PROF_SCOPE("recover.nd_replay");
      ++nd_consumed_;
      ++input_cursor_;
      AppendTraceEvent(ftx_proto::AppEvent::kUserInput, -1, /*logged=*/true, "input-replay");
      ++stats_.events;
      ++stats_.nd_events;
      return record.payload;
    }
  }
  if (input_cursor_ >= input_script_.size()) {
    return std::nullopt;
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kUserInput);
  Charge(costs_.syscall_service);
  ftx::Bytes payload = input_script_[input_cursor_++];
  bool logged = d.log_event;
  if (logged) {
    NdLogRecord record;
    record.kind = NdLogRecord::Kind::kUserInput;
    record.payload = payload;
    AppendNdLog(std::move(record), d.log_async);
  }
  PostEvent(ftx_proto::AppEvent::kUserInput, d, -1, logged, "input");
  return payload;
}

void Runtime::Print(ftx::Bytes payload) {
  ++stats_.visible_events;
  if (mode_ == RuntimeMode::kBaseline) {
    Charge(costs_.syscall_service);
    env_.recorder->Record(pid_, Now(), std::move(payload));
    return;
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kVisible);
  Charge(costs_.syscall_service);
  env_.recorder->Record(pid_, Now(), std::move(payload));
  PostEvent(ftx_proto::AppEvent::kVisible, d, -1, false, "visible");
}

void Runtime::Send(int dst, ftx::Bytes payload) {
  ++stats_.sends;
  if (mode_ == RuntimeMode::kBaseline) {
    Charge(costs_.syscall_service);
    env_.transport->Send(pid_, dst, std::move(payload));
    return;
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kSend);
  Charge(costs_.syscall_service);
  if (dst >= 0 && dst < 64) {
    communicated_mask_ |= 1ULL << dst;
  }
  int64_t message_id = env_.transport->Send(pid_, dst, std::move(payload));
  PostEvent(ftx_proto::AppEvent::kSend, d, message_id, false, "send");
}

std::optional<ftx::env::Message> Runtime::TryReceive() {
  if (mode_ == RuntimeMode::kBaseline) {
    std::optional<ftx::env::Message> msg = env_.transport->Deliver(pid_);
    if (msg.has_value()) {
      ++stats_.receives;
      Charge(costs_.syscall_service);
      env_.transport->ReleaseAllDelivered(pid_);
    }
    return msg;
  }
  // Recovery replay of logged receives and empty polls: bypass the network.
  if (InNdReplay()) {
    const NdLogRecord& record = nd_log_[nd_consumed_];
    if (record.kind == NdLogRecord::Kind::kReceive) {
      FTX_PROF_SCOPE("recover.nd_replay");
      ++nd_consumed_;
      ++stats_.events;
      ++stats_.nd_events;
      ++stats_.receives;
      AppendTraceEvent(ftx_proto::AppEvent::kReceive, record.message.id, /*logged=*/true,
                       "recv-replay");
      return record.message;
    }
    if (record.kind == NdLogRecord::Kind::kEmptyPoll) {
      FTX_PROF_SCOPE("recover.nd_replay");
      ++nd_consumed_;
      ++stats_.events;
      ++stats_.nd_events;
      AppendTraceEvent(ftx_proto::AppEvent::kTransientNd, -1, /*logged=*/true, "select-replay");
      return std::nullopt;
    }
  }
  std::optional<ftx::env::Message> msg = env_.transport->Deliver(pid_);
  if (!msg.has_value()) {
    // A poll that finds nothing: whether the message had arrived yet is
    // scheduling-dependent, i.e. a transient ND event (select).
    ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kTransientNd);
    if (d.log_event) {
      NdLogRecord record;
      record.kind = NdLogRecord::Kind::kEmptyPoll;
      AppendNdLog(std::move(record), d.log_async);
    }
    PostEvent(ftx_proto::AppEvent::kTransientNd, d, -1, d.log_event, "select-empty");
    return std::nullopt;
  }
  ++stats_.receives;
  if (msg->src >= 0 && msg->src < 64) {
    communicated_mask_ |= 1ULL << msg->src;
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kReceive);
  Charge(costs_.syscall_service);
  bool logged = d.log_event;
  if (logged) {
    NdLogRecord record;
    record.kind = NdLogRecord::Kind::kReceive;
    record.message = *msg;
    AppendNdLog(std::move(record), d.log_async);
    // The log now owns redelivery of this message.
    env_.transport->DropNewestRetained(pid_, msg->id);
  }
  PostEvent(ftx_proto::AppEvent::kReceive, d, msg->id, logged, "recv");
  return msg;
}

const ftx::env::Message* Runtime::PeekMessage() {
  // During ND-log replay, the logged receive is what the next consuming
  // TryReceive returns; present it for inspection.
  if (mode_ != RuntimeMode::kBaseline && InNdReplay()) {
    const NdLogRecord& record = nd_log_[nd_consumed_];
    if (record.kind == NdLogRecord::Kind::kReceive) {
      return &record.message;
    }
    if (record.kind == NdLogRecord::Kind::kEmptyPoll) {
      return nullptr;  // the logged poll found nothing; replay agrees
    }
  }
  return env_.transport->PeekNext(pid_);
}

void Runtime::Compute(ftx::Duration work) {
  Charge(work);
  if (mode_ == RuntimeMode::kBaseline) {
    return;
  }
  FlushPendingCommit();
  // Deterministic computation: consulted for completeness (commit-all counts
  // it) but not traced — internal events cannot affect either invariant.
  ftx_proto::CommitDecision d = protocol_->Decide(ftx_proto::AppEvent::kInternal);
  ++stats_.events;
  if (d.commit_after) {
    pending_commit_ = true;
  } else if (d.commit_before) {
    Charge(DoCommit(/*coordinated=*/false));
  }
}

ftx::Result<int> Runtime::Open(const std::string& path, bool writable) {
  if (mode_ == RuntimeMode::kBaseline) {
    Charge(costs_.syscall_service);
    return env_.kernel->Open(pid_, path, writable);
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kFixedNd);
  Charge(costs_.syscall_service);
  ftx::Result<int> result = env_.kernel->Open(pid_, path, writable);
  PostEvent(ftx_proto::AppEvent::kFixedNd, d, -1, false, "open");
  return result;
}

ftx::Status Runtime::Close(int fd) {
  if (mode_ == RuntimeMode::kBaseline) {
    Charge(costs_.syscall_service);
    return env_.kernel->Close(pid_, fd);
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kInternal);
  Charge(costs_.syscall_service);
  ftx::Status status = env_.kernel->Close(pid_, fd);
  PostEvent(ftx_proto::AppEvent::kInternal, d, -1, false, "close");
  return status;
}

ftx::Result<int64_t> Runtime::WriteFile(int fd, int64_t bytes) {
  if (mode_ == RuntimeMode::kBaseline) {
    Charge(costs_.syscall_service);
    return env_.kernel->Write(pid_, fd, bytes);
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kFixedNd);
  Charge(costs_.syscall_service);
  ftx::Result<int64_t> result = env_.kernel->Write(pid_, fd, bytes);
  PostEvent(ftx_proto::AppEvent::kFixedNd, d, -1, false, "write");
  return result;
}

ftx::Status Runtime::Bind(uint16_t port) {
  if (mode_ == RuntimeMode::kBaseline) {
    Charge(costs_.syscall_service);
    return env_.kernel->Bind(pid_, port);
  }
  ftx_proto::CommitDecision d = PreEvent(ftx_proto::AppEvent::kInternal);
  Charge(costs_.syscall_service);
  ftx::Status status = env_.kernel->Bind(pid_, port);
  PostEvent(ftx_proto::AppEvent::kInternal, d, -1, false, "bind");
  return status;
}

void Runtime::Crash(const std::string& reason) {
  FTX_LOG(kInfo, "p%d crash: %s", pid_, reason.c_str());
  if (crash_counter_ != nullptr) {
    crash_counter_->Increment();
  }
  if (env_.tracer != nullptr) {
    env_.tracer->Instant(pid_, ftx_obs::TraceLane::kRecovery, "fault", "crash: " + reason, Now());
  }
  if (mode_ == RuntimeMode::kRecoverable && env_.trace != nullptr) {
    env_.trace->Append(pid_, ftx_sm::EventKind::kCrash, -1, false, reason);
  }
  alive_ = false;
  crashed_ = true;
  crash_reason_ = reason;
  if (crash_handler_) {
    crash_handler_(reason);
  }
}

void Runtime::MarkFaultActivation() {
  if (fault_counter_ != nullptr) {
    fault_counter_->Increment();
  }
  if (env_.tracer != nullptr) {
    env_.tracer->Instant(pid_, ftx_obs::TraceLane::kRecovery, "fault", "fault-activation", Now());
  }
  if (env_.trace == nullptr || mode_ == RuntimeMode::kBaseline) {
    return;
  }
  // The activation of a bug is itself an (internal) event the process
  // executed; record it explicitly so the Lose-work window has a precise
  // start.
  ftx_sm::EventRef ref =
      env_.trace->Append(pid_, ftx_sm::EventKind::kInternal, -1, false, "fault-activation");
  env_.trace->MarkFaultActivation(ref);
}

}  // namespace ftx_dc
