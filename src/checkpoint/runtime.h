// Discount Checking runtime: one instance per process.
//
// The runtime is the reproduction of the paper's Discount Checking library
// (§3) plus its DC-disk variant:
//
//  * Application state lives in a Vista segment; write barriers log
//    before-images; commit = copy the register file, atomically discard the
//    undo log, reset page protections (cost model: fixed + per-dirty-page).
//  * Kernel state is preserved by intercepting syscalls, capturing their
//    parameters, and reconstructing kernel state by replay during recovery.
//  * DC-disk writes a redo record (dirty pages + metadata) synchronously to
//    a modeled disk at each commit and recovers by replaying the redo chain.
//  * Non-deterministic user input and receives can be logged to render them
//    deterministic (the -LOG protocols); recovery replays the log.
//
// The runtime intercepts every application event through ProcessEnv,
// consults the process's Save-work protocol for commit/log decisions,
// appends the event to the computation-wide trace, and charges simulated
// time. It also implements rollback + reexecution for failures.

#ifndef FTX_SRC_CHECKPOINT_RUNTIME_H_
#define FTX_SRC_CHECKPOINT_RUNTIME_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/checkpoint/app.h"
#include "src/env/env.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "src/protocol/protocol.h"
#include "src/recovery/output_recorder.h"
#include "src/sim/kernel.h"
#include "src/statemachine/trace.h"
#include "src/storage/redo_log.h"
#include "src/storage/stable_store.h"
#include "src/vista/heap.h"
#include "src/vista/segment.h"

namespace ftx_causal {
class CausalAudit;
}  // namespace ftx_causal

namespace ftx_dc {

// Cost model knobs (see DESIGN.md §5 for calibration rationale).
struct RuntimeCosts {
  // Per intercepted event: syscall-interposition overhead.
  ftx::Duration event_intercept = ftx::Microseconds(1);
  // First touch of a page since the last commit: COW trap + before-image
  // copy (charged at commit, per dirty page, equivalent in total).
  ftx::Duration page_trap = ftx::Microseconds(10);
  // Re-protecting one page at commit.
  ftx::Duration page_reprotect = ftx::Microseconds(2);
  // Persisting one ND log record (Rio memory speed).
  ftx::Duration nd_log_record = ftx::Microseconds(3);
  // Basic syscall service time.
  ftx::Duration syscall_service = ftx::Microseconds(2);
  // Rollback handling (signal, log scan) at recovery, plus per-page restore.
  ftx::Duration recovery_fixed = ftx::Milliseconds(1);
  ftx::Duration recovery_per_page = ftx::Microseconds(3);
};

enum class RuntimeMode {
  kBaseline,     // no interception, no commits: the unrecoverable version
  kRecoverable,  // full Discount Checking
};

// Per-phase decomposition of the most recent Recover()/RestartFromScratch()
// on this runtime, in simulated nanoseconds, as actually charged — the sum
// of the phases equals the returned recovery cost exactly (no estimates).
// The critical-path tracker (src/obs/causal/critical_path.h) consumes this
// to attribute the binding recovery's time to a phase; the struct lives
// here, not in obs/, so the checkpoint layer stays observer-free.
struct RecoveryBreakdown {
  int64_t log_scan_ns = 0;       // fixed rollback cost + per-record rotation waits
  int64_t page_install_ns = 0;   // redo payload transfer back into the segment
  int64_t undo_rollback_ns = 0;  // Rio per-page undo of uncommitted state
  int64_t rebuild_ns = 0;        // application OnRecovered recomputation
  int64_t records = 0;           // redo records replayed (DC-disk) or 0
  int64_t total_ns = 0;          // == the Duration Recover() returned
};

struct RuntimeStats {
  int64_t commits = 0;
  int64_t coordinated_commits = 0;  // commits performed as a 2PC participant
  ftx::Duration commit_time;
  int64_t pages_committed = 0;
  int64_t bytes_persisted = 0;
  int64_t events = 0;
  int64_t nd_events = 0;
  int64_t visible_events = 0;
  int64_t sends = 0;
  int64_t receives = 0;
  int64_t logged_events = 0;
  int64_t rollbacks = 0;
  ftx::Duration recovery_time;
};

// Everything a Runtime needs from the surrounding computation now arrives
// through the backend-agnostic ftx::env::Environment (src/env/env.h): a
// Clock, a Transport, the kernel, trace/recorder/store/redo_log, the 2PC
// hooks, and the optional observability sinks. Construct one with
// Environment::Builder, which validates required dependencies by name.
class Runtime : public ProcessEnv {
 public:
  Runtime(int pid, int num_processes, App* app, std::unique_ptr<ftx_proto::Protocol> protocol,
          ftx::env::Environment env, RuntimeMode mode, RuntimeCosts costs = {});

  // --- lifecycle (driven by the Computation runner) ---

  // Runs App::Init and commits checkpoint #0.
  void Initialize();

  // Runs one App::Step inside cost accounting; returns the outcome and the
  // simulated time the step consumed (events + pending overheads).
  StepOutcome RunStep(ftx::Duration* cost_out);

  // Stop failure: the process ceases execution (no state corruption).
  void Kill();

  // Rolls back to the last committed state and resumes execution. For Rio
  // the segment's undo log restores state; for DC-disk the segment is
  // rebuilt from the redo chain. Kernel state is reconstructed by syscall
  // replay. Returns the simulated recovery latency.
  ftx::Duration Recover();

  // Total loss of committed state (an OS crash with a volatile store): the
  // process restarts from its initial state, its input script from the
  // beginning. Returns the restart latency.
  ftx::Duration RestartFromScratch();

  // Local commit; exposed for 2PC participation (the coordinator commits
  // other processes through this). Returns the commit's simulated cost;
  // when `charge_inline` is false the cost is added to pending overhead and
  // charged at this process's next step.
  ftx::Duration CommitNow(bool coordinated, bool charge_inline, int64_t atomic_group = -1);

  // --- 2PC coordination hooks (used by the Computation runner) ---

  // Appends a coordination-protocol message event (prepare/ack) to the
  // trace. These events make the happens-before edges of the coordinated
  // commit explicit, which is what lets remote commits cover remote ND
  // events under the Save-work checker.
  void AppendCoordinationEvent(ftx_sm::EventKind kind, int64_t message_id);

  // Adds simulated time to the currently-running step (the coordinator
  // charges the whole 2PC round to the process that triggered it).
  void ChargeToStep(ftx::Duration cost);

  bool alive() const { return alive_; }
  bool done() const { return done_; }
  bool crashed() const { return crashed_; }
  const std::string& crash_reason() const { return crash_reason_; }
  const RuntimeStats& stats() const { return stats_; }
  // Phase decomposition of the most recent recovery (zeroed until one runs).
  const RecoveryBreakdown& last_recovery() const { return last_recovery_; }
  ftx_proto::Protocol& protocol() { return *protocol_; }
  App& app() { return *app_; }

  // Scripted user input (the workload's keystrokes/commands).
  void SetInputScript(std::vector<ftx::Bytes> script);

  // Installs a hook invoked on crash events (the Computation runner uses it
  // to schedule recovery or end the experiment).
  void SetCrashHandler(std::function<void(const std::string&)> handler);

  // --- ProcessEnv ---
  int pid() const override { return pid_; }
  int num_processes() const override { return num_processes_; }
  ftx::TimePoint Now() const override { return env_.clock->Now(); }
  ftx_vista::Segment& segment() override { return *segment_; }
  ftx_vista::SegmentHeap& heap() override { return *heap_; }
  ftx::TimePoint GetTimeOfDay() override;
  void DeliverSignal() override;
  std::optional<ftx::Bytes> ReadUserInput() override;
  void Print(ftx::Bytes payload) override;
  void Send(int dst, ftx::Bytes payload) override;
  std::optional<ftx::env::Message> TryReceive() override;
  const ftx::env::Message* PeekMessage() override;
  void Compute(ftx::Duration work) override;
  ftx::Result<int> Open(const std::string& path, bool writable) override;
  ftx::Status Close(int fd) override;
  ftx::Result<int64_t> WriteFile(int fd, int64_t bytes) override;
  ftx::Status Bind(uint16_t port) override;
  void Crash(const std::string& reason) override;
  void MarkFaultActivation() override;

 public:
  // Processes this one has sent to or received from since its last commit
  // (bit per pid); drives Coordinated Checkpointing's participant closure.
  uint64_t communicated_mask() const { return communicated_mask_; }

 private:
  struct NdLogRecord {
    enum class Kind : uint8_t { kUserInput, kReceive, kTimeOfDay, kEmptyPoll, kSignal };
    Kind kind = Kind::kUserInput;
    ftx::Bytes payload;          // input bytes
    ftx::env::Message message;   // for receives
    ftx::TimePoint time_value;  // for gettimeofday

    int64_t CostBytes() const {
      switch (kind) {
        case Kind::kUserInput:
          return static_cast<int64_t>(payload.size()) + 16;
        case Kind::kReceive:
          return static_cast<int64_t>(message.payload.size()) + 32;
        case Kind::kTimeOfDay:
          return 16;
        case Kind::kEmptyPoll:
        case Kind::kSignal:
          return 8;
      }
      return 8;
    }
  };

  // One staged (not yet durable) group commit's deferred bookkeeping: what
  // the runtime still owes the observers — audit cost breakdown, kCommit
  // trace event, retained-message release — once the window's sync lands.
  // The storage-side redo record itself is staged in env_.commit_pipeline.
  struct StagedCommitMeta {
    bool coordinated = false;
    int64_t atomic_group = -1;
    int64_t pages = 0;
    int64_t payload_bytes = 0;
    ftx::Duration fixed_cost;
    ftx::Duration capture_cost;  // before-image copy + serialize/CRC; the
                                 // portion a pipelined implementation hides
                                 // under the persist of earlier records
    ftx::Duration reprotect_cost;
    int64_t begin_ns = 0;  // simulated stage instant (audit interval start)
  };

  // Auxiliary (non-segment) state that must travel with commits.
  struct CommittedMeta {
    uint64_t registers[4] = {0, 0, 0, 0};  // synthetic register file image
    int64_t step_count = 0;
    size_t kernel_records = 0;
    size_t input_cursor = 0;
    size_t nd_consumed = 0;
  };

  // Protocol consultation before an event executes: performs any
  // commit-before (coordinated or local) and charges interception cost.
  ftx_proto::CommitDecision PreEvent(ftx_proto::AppEvent event);

  // Trace recording + commit-after, once the event's action is done.
  void PostEvent(ftx_proto::AppEvent event, const ftx_proto::CommitDecision& decision,
                 int64_t message_id, bool logged, const char* label);

  // Appends an ND-log record, charging either a synchronous stable-store
  // append or (log_async) deferring the write into the pending batch.
  void AppendNdLog(NdLogRecord record, bool log_async);

  void AppendTraceEvent(ftx_proto::AppEvent event, int64_t message_id, bool logged,
                        const char* label);
  void Charge(ftx::Duration d) { step_cost_ += d; }
  bool InNdReplay() const { return nd_consumed_ < nd_log_.size(); }

  // Performs a deferred commit-after, if one is pending. Called at the next
  // intercepted event and at the end of each step. Deferring "commit
  // immediately after a non-deterministic event" to just before the next
  // event still upholds Save-work (the commit stays between the ND event
  // and everything downstream) while guaranteeing the application has
  // folded the event's result into its segment — the state-machine
  // equivalent of Discount Checking capturing registers and stack at the
  // true commit instant.
  void FlushPendingCommit();

  ftx::Duration DoCommit(bool coordinated, int64_t atomic_group = -1);

  // True when commits are being staged into group-commit windows: an
  // enabled CommitPipeline is attached, the store is a redo log (DC-disk),
  // and the runtime is recoverable.
  bool GroupCommitActive() const;

  // Persists the open group-commit window — one pair of sync I/Os for every
  // staged record — then emits the deferred per-record observers (audit
  // breakdown, kCommit trace events in stage order) and releases retained
  // messages. Returns the window's simulated cost after the pipeline
  // overlap credit; zero when nothing is staged. The caller charges it.
  ftx::Duration FlushCommitWindow();

  // Crash/kill/restart path: staged records never became durable and were
  // never reported committed — forget them (all-or-prefix semantics).
  void DropStagedCommits();

  // Registers "p<pid>.*" probes over stats_ and creates the owned
  // instruments below. Called from the constructor when env_.metrics is
  // set.
  void BindMetrics();

  int pid_;
  int num_processes_;
  App* app_;
  std::unique_ptr<ftx_proto::Protocol> protocol_;
  ftx::env::Environment env_;
  RuntimeMode mode_;
  RuntimeCosts costs_;

  std::unique_ptr<ftx_vista::Segment> segment_;
  std::unique_ptr<ftx_vista::SegmentHeap> heap_;

  bool alive_ = true;
  bool done_ = false;
  bool crashed_ = false;
  bool in_step_ = false;
  std::string crash_reason_;
  std::function<void(const std::string&)> crash_handler_;

  std::vector<ftx::Bytes> input_script_;
  size_t input_cursor_ = 0;

  // ND log (the -LOG protocols and the full loggers): survives failures up
  // to the flushed prefix; replayed on recovery. Asynchronously-written
  // records (Optimistic Logging) are lost by a crash until flushed.
  std::vector<NdLogRecord> nd_log_;
  size_t nd_consumed_ = 0;
  size_t flushed_log_records_ = 0;   // durable prefix of nd_log_
  int64_t unflushed_log_bytes_ = 0;  // cost of the pending async batch
  uint64_t communicated_mask_ = 0;

  int64_t step_count_ = 0;
  bool pending_commit_ = false;
  CommittedMeta committed_;
  // Deferred observer bookkeeping for records staged in the group-commit
  // pipeline, parallel (same order) to env_.commit_pipeline's window.
  std::vector<StagedCommitMeta> staged_meta_;

  ftx::Duration step_cost_;
  ftx::Duration pending_overhead_;  // costs charged outside a step (2PC)

  RuntimeStats stats_;
  RecoveryBreakdown last_recovery_;

  // Owned instruments (null when no registry is attached). The histograms
  // are computation-wide ("dc.commit_ns" / "dc.recovery_ns"), shared across
  // processes via the registry's get-or-create semantics.
  ftx_obs::Counter* crash_counter_ = nullptr;
  ftx_obs::Counter* fault_counter_ = nullptr;
  ftx_obs::Counter* flush_counter_ = nullptr;
  ftx_obs::Histogram* commit_hist_ = nullptr;
  ftx_obs::Histogram* recovery_hist_ = nullptr;
};

}  // namespace ftx_dc

#endif  // FTX_SRC_CHECKPOINT_RUNTIME_H_
