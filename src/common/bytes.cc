#include "src/common/bytes.h"

#include <cstdio>

namespace ftx {

void EnsureAppendCapacity(Bytes* out, size_t extra) {
  size_t needed = out->size() + extra;
  if (needed <= out->capacity()) {
    return;
  }
  size_t doubled = out->capacity() * 2;
  out->reserve(needed > doubled ? needed : doubled);
}

void AppendRaw(Bytes* out, const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  EnsureAppendCapacity(out, size);
  out->insert(out->end(), p, p + size);
}

void AppendString(Bytes* out, const std::string& s) {
  AppendValue(out, static_cast<uint32_t>(s.size()));
  EnsureAppendCapacity(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

bool ReadString(const Bytes& in, size_t* offset, std::string* s) {
  uint32_t size = 0;
  if (!ReadValue(in, offset, &size)) {
    return false;
  }
  if (*offset + size > in.size()) {
    return false;
  }
  s->assign(reinterpret_cast<const char*>(in.data() + *offset), size);
  *offset += size;
  return true;
}

std::string HexDump(const Bytes& data, size_t max_bytes) {
  std::string out;
  char buf[4];
  size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%02x", data[i]);
    if (i != 0) {
      out += ' ';
    }
    out += buf;
  }
  if (n < data.size()) {
    out += " ...";
  }
  return out;
}

}  // namespace ftx
