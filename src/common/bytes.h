// Byte-buffer helpers shared by logs, messages, and checkpoints.

#ifndef FTX_SRC_COMMON_BYTES_H_
#define FTX_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ftx {

using Bytes = std::vector<uint8_t>;

// Grows `out`'s capacity to hold `extra` more bytes, doubling rather than
// reserving the exact size (an exact reserve per append defeats the
// vector's geometric growth and turns long append sequences — large redo
// records — quadratic).
void EnsureAppendCapacity(Bytes* out, size_t extra);

// Serializes a trivially-copyable value into `out` (little-endian host
// layout; the simulator never crosses real machines, so host layout is the
// wire format).
template <typename T>
void AppendValue(Bytes* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  EnsureAppendCapacity(out, sizeof(T));
  out->insert(out->end(), p, p + sizeof(T));
}

// Appends a raw byte run.
void AppendRaw(Bytes* out, const void* data, size_t size);

// Reads a value back; returns false if fewer than sizeof(T) bytes remain.
// Advances *offset on success.
template <typename T>
bool ReadValue(const Bytes& in, size_t* offset, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*offset + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(value, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

// Appends a length-prefixed string.
void AppendString(Bytes* out, const std::string& s);

// Reads a length-prefixed string written by AppendString.
bool ReadString(const Bytes& in, size_t* offset, std::string* s);

// Hex dump (for test diagnostics): "de ad be ef ..." capped at `max_bytes`.
std::string HexDump(const Bytes& data, size_t max_bytes = 64);

}  // namespace ftx

#endif  // FTX_SRC_COMMON_BYTES_H_
