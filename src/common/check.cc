#include "src/common/check.h"

#include <cstdarg>

namespace ftx {

void FatalError(const char* file, int line, const char* format, ...) {
  std::fprintf(stderr, "[FATAL] %s:%d: ", file, line);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace ftx
