// Lightweight CHECK/DCHECK macros for invariant enforcement.
//
// These are used throughout the library to enforce internal invariants. A
// failed check prints the failing condition, file, and line, then aborts.
// They deliberately do not throw: the library is exception-free per the
// systems style guides this project follows.

#ifndef FTX_SRC_COMMON_CHECK_H_
#define FTX_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ftx {

// Prints a formatted fatal message and aborts. Used by the CHECK macros;
// callers may also use it directly for unreachable code paths.
[[noreturn]] void FatalError(const char* file, int line, const char* format, ...);

}  // namespace ftx

#define FTX_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::ftx::FatalError(__FILE__, __LINE__, "CHECK failed: %s", #cond);  \
    }                                                                    \
  } while (0)

#define FTX_CHECK_MSG(cond, ...)                          \
  do {                                                    \
    if (!(cond)) {                                        \
      ::ftx::FatalError(__FILE__, __LINE__, __VA_ARGS__); \
    }                                                     \
  } while (0)

#define FTX_CHECK_EQ(a, b) FTX_CHECK((a) == (b))
#define FTX_CHECK_NE(a, b) FTX_CHECK((a) != (b))
#define FTX_CHECK_LT(a, b) FTX_CHECK((a) < (b))
#define FTX_CHECK_LE(a, b) FTX_CHECK((a) <= (b))
#define FTX_CHECK_GT(a, b) FTX_CHECK((a) > (b))
#define FTX_CHECK_GE(a, b) FTX_CHECK((a) >= (b))

#ifdef NDEBUG
#define FTX_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define FTX_DCHECK(cond) FTX_CHECK(cond)
#endif

#define FTX_UNREACHABLE() ::ftx::FatalError(__FILE__, __LINE__, "unreachable code reached")

#endif  // FTX_SRC_COMMON_CHECK_H_
