#include "src/common/crc32.h"

#include <array>

namespace ftx {
namespace {

constexpr uint32_t kPolynomial = 0xedb88320u;  // reflected IEEE 802.3

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Extend(uint32_t seed, const void* data, size_t size) {
  const auto& table = Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const void* data, size_t size) { return Crc32Extend(0, data, size); }

}  // namespace ftx
