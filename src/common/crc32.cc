#include "src/common/crc32.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstring>

// The slice-by-8 loop folds two 32-bit loads into the CRC assuming
// little-endian byte order; a big-endian port would need byteswaps, not a
// silently different checksum.
static_assert(std::endian::native == std::endian::little,
              "Crc32Extend's slice-by-8 loop requires a little-endian host");

namespace ftx {

// Implemented in crc32_hw.cc (stubbed false/portable on non-x86 targets).
namespace crc32_internal {
bool HardwareProbe();
uint32_t HardwareExtend(uint32_t seed, const void* data, size_t size);
}  // namespace crc32_internal

namespace {

constexpr uint32_t kPolynomial = 0xedb88320u;  // reflected IEEE 802.3

// Slice-by-8 lookup tables. Table()[0] is the classic byte-at-a-time table;
// Table()[k][i] advances the CRC of byte i by k additional zero bytes, which
// lets the hot loop fold eight input bytes per iteration with eight
// independent table loads (Intel's slicing-by-8 technique). The CRC values
// produced are bit-identical to the byte-at-a-time form.
using SliceTables = std::array<std::array<uint32_t, 256>, 8>;

SliceTables BuildTables() {
  SliceTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xff];
    }
  }
  return tables;
}

const SliceTables& Tables() {
  static const SliceTables tables = BuildTables();
  return tables;
}

using CrcFn = uint32_t (*)(uint32_t, const void*, size_t);

// Resolved lazily on first use (relaxed atomics: the resolution is
// idempotent, so a racing first-call pair just probes CPUID twice).
std::atomic<CrcFn> g_active_fn{nullptr};
std::atomic<Crc32Impl> g_active_impl{Crc32Impl::kAuto};

CrcFn Resolve(Crc32Impl impl) {
  const bool hw = (impl == Crc32Impl::kAuto || impl == Crc32Impl::kHardware) &&
                  crc32_internal::HardwareProbe();
  g_active_impl.store(hw ? Crc32Impl::kHardware : Crc32Impl::kPortable,
                      std::memory_order_relaxed);
  CrcFn fn = hw ? &crc32_internal::HardwareExtend : &Crc32PortableExtend;
  g_active_fn.store(fn, std::memory_order_relaxed);
  return fn;
}

}  // namespace

uint32_t Crc32PortableExtend(uint32_t seed, const void* data, size_t size) {
  const SliceTables& t = Tables();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  // Fold eight bytes per iteration. The two 32-bit loads are unaligned-safe
  // via memcpy (compiles to plain loads on x86/arm) and assume little-endian
  // hosts, which everything this library targets is.
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^
        t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    c = t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

Crc32Impl SetCrc32Impl(Crc32Impl impl) {
  Resolve(impl);
  return g_active_impl.load(std::memory_order_relaxed);
}

Crc32Impl ActiveCrc32Impl() {
  if (g_active_fn.load(std::memory_order_relaxed) == nullptr) {
    Resolve(Crc32Impl::kAuto);
  }
  return g_active_impl.load(std::memory_order_relaxed);
}

bool Crc32HardwareAvailable() { return crc32_internal::HardwareProbe(); }

uint32_t Crc32Extend(uint32_t seed, const void* data, size_t size) {
  CrcFn fn = g_active_fn.load(std::memory_order_relaxed);
  if (fn == nullptr) {
    fn = Resolve(Crc32Impl::kAuto);
  }
  return fn(seed, data, size);
}

uint32_t Crc32(const void* data, size_t size) { return Crc32Extend(0, data, size); }

}  // namespace ftx
