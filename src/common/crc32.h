// CRC-32 (IEEE 802.3 polynomial, reflected), slice-by-8 + PCLMUL.
//
// Used for application-level consistency checks (the paper's §2.6
// recommendation that processes checksum their data to crash sooner after a
// fault) and for validating log records and checkpoint images. Two
// implementations produce bit-identical digests:
//
//   * portable: slice-by-8 table folding, eight bytes per iteration — ~5x
//     the byte-at-a-time form on page-sized buffers;
//   * hardware: PCLMULQDQ carry-less-multiply folding (the Intel
//     "Fast CRC Computation Using PCLMULQDQ" technique), 64 bytes per
//     iteration across four 128-bit accumulators. Note the SSE4.2
//     _mm_crc32_u64 instruction is NOT usable here: its polynomial is
//     hardwired to CRC-32C (Castagnoli, 0x1EDC6F41), which can never
//     reproduce the IEEE digests this log format is committed to.
//
// Dispatch is by runtime CPUID probe (no special compile flags needed; the
// hardware kernel carries its own target attributes), so every build flavor
// — FTX_NATIVE or not — gets the fast path when the host supports it, and
// digests never depend on which path ran.

#ifndef FTX_SRC_COMMON_CRC32_H_
#define FTX_SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ftx {

// One-shot CRC of a buffer.
uint32_t Crc32(const void* data, size_t size);

// Incremental form: pass the previous return value as `seed` to extend a
// running checksum across multiple buffers. Start with seed = 0.
uint32_t Crc32Extend(uint32_t seed, const void* data, size_t size);

// Always the slice-by-8 software path, regardless of SetCrc32Impl: the
// dispatcher's fallback, and the reference the hardware path is fuzzed
// against. Same incremental contract as Crc32Extend.
uint32_t Crc32PortableExtend(uint32_t seed, const void* data, size_t size);

// Implementation selector. kAuto probes CPUID once and uses the PCLMUL
// kernel when the host supports it; kHardware forces it (falls back to
// portable, with ActiveCrc32Impl reporting kPortable, when unsupported);
// kPortable forces the table path (the CPUID-fallback tests use this).
enum class Crc32Impl {
  kAuto,
  kPortable,
  kHardware,
};

// Selects the implementation for subsequent Crc32/Crc32Extend calls and
// returns the implementation actually in effect (kPortable or kHardware).
// Not intended for concurrent use with in-flight checksums; tests and
// benches call it during setup.
Crc32Impl SetCrc32Impl(Crc32Impl impl);

// The implementation currently in effect (resolves kAuto).
Crc32Impl ActiveCrc32Impl();

// True when the CPUID probe found PCLMULQDQ + SSE4.1 support.
bool Crc32HardwareAvailable();

}  // namespace ftx

#endif  // FTX_SRC_COMMON_CRC32_H_
