// CRC-32 (IEEE 802.3 polynomial, reflected), slice-by-8.
//
// Used for application-level consistency checks (the paper's §2.6
// recommendation that processes checksum their data to crash sooner after a
// fault) and for validating log records and checkpoint images. The
// implementation folds eight bytes per iteration (slicing-by-8), which is
// ~5x the throughput of the byte-at-a-time form on page-sized buffers while
// producing bit-identical checksums.

#ifndef FTX_SRC_COMMON_CRC32_H_
#define FTX_SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ftx {

// One-shot CRC of a buffer.
uint32_t Crc32(const void* data, size_t size);

// Incremental form: pass the previous return value as `seed` to extend a
// running checksum across multiple buffers. Start with seed = 0.
uint32_t Crc32Extend(uint32_t seed, const void* data, size_t size);

}  // namespace ftx

#endif  // FTX_SRC_COMMON_CRC32_H_
