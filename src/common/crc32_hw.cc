// PCLMULQDQ-folded CRC-32 (IEEE 802.3, reflected) — the hardware kernel
// behind ftx::Crc32's runtime dispatch.
//
// Folding follows Intel's "Fast CRC Computation for Generic Polynomials
// Using PCLMULQDQ": four 128-bit accumulators fold 64 input bytes per
// iteration with carry-less multiplies, then collapse to one accumulator
// folded 16 bytes at a time. The fold constants are the precomputed
// x^N mod P values for the IEEE polynomial (the same ones the Linux
// kernel's crc32-pclmul uses), pre-shifted one bit for the reflected
// domain.
//
// The final 128-bit -> 32-bit reduction deliberately reuses the slice-by-8
// table path instead of the Barrett step: the fold loop's invariant is that
// the raw CRC of (accumulator bytes || unconsumed bytes) equals the raw CRC
// of the whole message, so running the table CRC over the 16 accumulator
// bytes plus the (< 64-byte) tail finishes the digest exactly. That keeps
// the only hand-derived algebra in this file inside the fold step — which
// the dispatch-equality fuzz test pins against the portable path — at the
// cost of ~16 table iterations per call, noise at the buffer sizes the
// commit path hashes.
//
// Why not SSE4.2 _mm_crc32_u64: that instruction's polynomial is hardwired
// to CRC-32C (Castagnoli). It is faster still, but produces different
// digests, and every persisted log record and golden file is committed to
// IEEE CRCs — so it is not an option for this codebase.

#include "src/common/crc32.h"

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#define FTX_CRC32_HW_X86 1
#include <immintrin.h>
#endif

namespace ftx {
namespace crc32_internal {

#ifdef FTX_CRC32_HW_X86

namespace {

// x^N mod P fold constants: reflect32(x^N mod P) << 1 for the IEEE
// polynomial P = 0x104C11DB7. A fold over distance D bits multiplies the
// accumulator's low qword by x^(D+32) and its high qword by x^(D-32) (the
// +-32 offsets come from where each qword's bytes sit relative to the
// 16-byte block being absorbed, in the reflected domain). D = 512 for the
// four-accumulator 64-byte loop, D = 128 for the collapse loop. Exponent
// choices verified empirically against the slice-by-8 path (see the
// crc32 dispatch-equality fuzz test).
constexpr int64_t kFold512Lo = 0x0000000154442bd4;  // x^544 mod P
constexpr int64_t kFold512Hi = 0x00000001c6e41596;  // x^480 mod P
constexpr int64_t kFold128Lo = 0x00000001751997d0;  // x^160 mod P
constexpr int64_t kFold128Hi = 0x00000000ccaa009e;  // x^96  mod P

// One fold step: advances accumulator `x` past 8*distance bits and absorbs
// the next 16-byte block `d`. k holds the distance's two constants (low
// qword applied to x's low half, high to high).
__attribute__((target("pclmul,sse2"))) inline __m128i Fold(__m128i x, __m128i d, __m128i k) {
  const __m128i lo = _mm_clmulepi64_si128(x, k, 0x00);
  const __m128i hi = _mm_clmulepi64_si128(x, k, 0x11);
  return _mm_xor_si128(_mm_xor_si128(lo, hi), d);
}

__attribute__((target("pclmul,sse2"))) uint32_t ExtendPclmul(uint32_t seed, const void* data,
                                                             size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  // Seed conditioning: XOR the conditioned CRC into the first four message
  // bytes (the standard initial-value identity for reflected CRCs).
  __m128i x0 = _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
                             _mm_cvtsi32_si128(static_cast<int>(seed ^ 0xffffffffu)));
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
  p += 64;
  size -= 64;

  const __m128i k12 = _mm_set_epi64x(kFold512Hi, kFold512Lo);
  while (size >= 64) {
    x0 = Fold(x0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), k12);
    x1 = Fold(x1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)), k12);
    x2 = Fold(x2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)), k12);
    x3 = Fold(x3, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)), k12);
    p += 64;
    size -= 64;
  }

  const __m128i k34 = _mm_set_epi64x(kFold128Hi, kFold128Lo);
  __m128i x = Fold(x0, x1, k34);
  x = Fold(x, x2, k34);
  x = Fold(x, x3, k34);
  while (size >= 16) {
    x = Fold(x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), k34);
    p += 16;
    size -= 16;
  }

  // Table-path finish over the folded accumulator and the sub-16-byte tail.
  // Seeding the portable extend with 0xffffffff cancels its conditioning,
  // yielding the raw CRC the fold invariant is stated in.
  alignas(16) uint8_t acc[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(acc), x);
  uint32_t c = Crc32PortableExtend(0xffffffffu, acc, sizeof(acc));
  // Compose incrementally: extending from a finished digest re-enters the
  // raw domain, so the concatenation identity holds.
  return Crc32PortableExtend(c, p, size);
}

}  // namespace

bool HardwareProbe() {
  static const bool available = __builtin_cpu_supports("pclmul") != 0;
  return available;
}

uint32_t HardwareExtend(uint32_t seed, const void* data, size_t size) {
  if (size < 64) {
    // The four-accumulator prologue needs a full cache line; short buffers
    // (framing runs, slot sectors are the floor at 512) go straight to the
    // table path.
    return Crc32PortableExtend(seed, data, size);
  }
  return ExtendPclmul(seed, data, size);
}

#else  // !FTX_CRC32_HW_X86

bool HardwareProbe() { return false; }

uint32_t HardwareExtend(uint32_t seed, const void* data, size_t size) {
  return Crc32PortableExtend(seed, data, size);
}

#endif

}  // namespace crc32_internal
}  // namespace ftx
