#include "src/common/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace ftx {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::atomic<bool> g_level_explicit{false};
std::once_flag g_env_once;

// Whole lines are emitted under this mutex so parallel trial workers never
// interleave mid-line.
std::mutex g_emit_mu;

// Per-thread: each worker thread's simulator prefixes only that thread's
// lines (see the header's thread-safety note).
thread_local const void* t_time_owner = nullptr;
thread_local int64_t (*t_time_now_ns)(const void*) = nullptr;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

// FTX_LOG_LEVEL is read lazily at the first level query so that callers who
// configure logging before any output still win, and ones who never touch
// the API get environment control for free.
void ConsultEnvOnce() {
  std::call_once(g_env_once, [] {
    if (g_level_explicit.load(std::memory_order_relaxed)) {
      return;  // an explicit SetLogLevel beat the first query
    }
    const char* env = std::getenv("FTX_LOG_LEVEL");
    if (env == nullptr) {
      return;
    }
    LogLevel parsed;
    if (ParseLogLevel(env, &parsed)) {
      g_level.store(static_cast<int>(parsed), std::memory_order_relaxed);
    } else {
      std::fprintf(stderr, "[W log] ignoring unparseable FTX_LOG_LEVEL=\"%s\"\n", env);
    }
  });
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i] >= 'A' && a[i] <= 'Z' ? static_cast<char>(a[i] - 'A' + 'a') : a[i];
    if (ca != b[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text.size() == 1 && text[0] >= '0' && text[0] <= '3') {
    *out = static_cast<LogLevel>(text[0] - '0');
    return true;
  }
  struct Name {
    std::string_view name;
    LogLevel level;
  };
  static constexpr Name kNames[] = {
      {"error", LogLevel::kError},
      {"warning", LogLevel::kWarning},
      {"warn", LogLevel::kWarning},
      {"info", LogLevel::kInfo},
      {"debug", LogLevel::kDebug},
  };
  for (const Name& candidate : kNames) {
    if (EqualsIgnoreCase(text, candidate.name)) {
      *out = candidate.level;
      return true;
    }
  }
  return false;
}

void SetLogLevel(LogLevel level) {
  g_level_explicit.store(true, std::memory_order_relaxed);  // beats the environment
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  ConsultEnvOnce();
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogSimTimeSource(const void* owner, int64_t (*now_ns)(const void*)) {
  t_time_owner = owner;
  t_time_now_ns = now_ns;
}

void ClearLogSimTimeSource(const void* owner) {
  if (t_time_owner == owner) {
    t_time_owner = nullptr;
    t_time_now_ns = nullptr;
  }
}

void LogMessage(LogLevel level, const char* file, int line, const char* format, ...) {
  char prefix[256];
  if (t_time_now_ns != nullptr) {
    int64_t now_ns = t_time_now_ns(t_time_owner);
    std::snprintf(prefix, sizeof prefix, "[%s %.6fs %s:%d] ", LevelTag(level),
                  static_cast<double>(now_ns) * 1e-9, file, line);
  } else {
    std::snprintf(prefix, sizeof prefix, "[%s %s:%d] ", LevelTag(level), file, line);
  }

  // Format the body off-lock, growing once if the stack buffer is short.
  char stack_body[512];
  std::string heap_body;
  const char* body = stack_body;
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(stack_body, sizeof stack_body, format, args);
  va_end(args);
  if (needed >= static_cast<int>(sizeof stack_body)) {
    heap_body.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(heap_body.data(), heap_body.size(), format, args_copy);
    heap_body.resize(static_cast<size_t>(needed));
    body = heap_body.c_str();
  }
  va_end(args_copy);

  std::lock_guard<std::mutex> lock(g_emit_mu);
  std::fprintf(stderr, "%s%s\n", prefix, body);
}

}  // namespace ftx
