#include "src/common/log.h"

#include <cstdarg>
#include <cstdio>

namespace ftx {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line, const char* format, ...) {
  std::fprintf(stderr, "[%s %s:%d] ", LevelTag(level), file, line);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fprintf(stderr, "\n");
}

}  // namespace ftx
