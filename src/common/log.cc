#include "src/common/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ftx {
namespace {

LogLevel g_level = LogLevel::kWarning;
bool g_env_consulted = false;

const void* g_time_owner = nullptr;
int64_t (*g_time_now_ns)(const void*) = nullptr;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

// FTX_LOG_LEVEL is read lazily at the first level query so that callers who
// configure logging before any output still win, and ones who never touch
// the API get environment control for free.
void ConsultEnvOnce() {
  if (g_env_consulted) {
    return;
  }
  g_env_consulted = true;
  const char* env = std::getenv("FTX_LOG_LEVEL");
  if (env != nullptr && !ParseLogLevel(env, &g_level)) {
    std::fprintf(stderr, "[W log] ignoring unparseable FTX_LOG_LEVEL=\"%s\"\n", env);
  }
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i] >= 'A' && a[i] <= 'Z' ? static_cast<char>(a[i] - 'A' + 'a') : a[i];
    if (ca != b[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text.size() == 1 && text[0] >= '0' && text[0] <= '3') {
    *out = static_cast<LogLevel>(text[0] - '0');
    return true;
  }
  struct Name {
    std::string_view name;
    LogLevel level;
  };
  static constexpr Name kNames[] = {
      {"error", LogLevel::kError},
      {"warning", LogLevel::kWarning},
      {"warn", LogLevel::kWarning},
      {"info", LogLevel::kInfo},
      {"debug", LogLevel::kDebug},
  };
  for (const Name& candidate : kNames) {
    if (EqualsIgnoreCase(text, candidate.name)) {
      *out = candidate.level;
      return true;
    }
  }
  return false;
}

void SetLogLevel(LogLevel level) {
  g_env_consulted = true;  // explicit configuration beats the environment
  g_level = level;
}

LogLevel GetLogLevel() {
  ConsultEnvOnce();
  return g_level;
}

void SetLogSimTimeSource(const void* owner, int64_t (*now_ns)(const void*)) {
  g_time_owner = owner;
  g_time_now_ns = now_ns;
}

void ClearLogSimTimeSource(const void* owner) {
  if (g_time_owner == owner) {
    g_time_owner = nullptr;
    g_time_now_ns = nullptr;
  }
}

void LogMessage(LogLevel level, const char* file, int line, const char* format, ...) {
  if (g_time_now_ns != nullptr) {
    int64_t now_ns = g_time_now_ns(g_time_owner);
    std::fprintf(stderr, "[%s %.6fs %s:%d] ", LevelTag(level),
                 static_cast<double>(now_ns) * 1e-9, file, line);
  } else {
    std::fprintf(stderr, "[%s %s:%d] ", LevelTag(level), file, line);
  }
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fprintf(stderr, "\n");
}

}  // namespace ftx
