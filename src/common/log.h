// Minimal leveled logging to stderr.
//
// Verbosity is process-global and off by default so benchmark output stays
// clean; tests and examples raise it when diagnosing a scenario. The
// FTX_LOG_LEVEL environment variable (error|warning|info|debug, or 0-3) is
// consulted once at first use; an explicit SetLogLevel overrides it.
//
// When a discrete-event simulator is active it registers itself as the log
// time source and every line is prefixed with the current simulated time,
// so interleaved per-process logs read as one timeline.
//
// Thread-safety: the level is an atomic read on the hot path; lines are
// formatted off-lock and emitted whole under one mutex, so parallel trials
// never interleave mid-line. The simulated-time source slot is thread-local
// — each worker thread running its own Simulator (see ftx::TrialPool) gets
// that simulator's clock in its prefixes without racing the other workers.

#ifndef FTX_SRC_COMMON_LOG_H_
#define FTX_SRC_COMMON_LOG_H_

#include <cstdint>
#include <string_view>

namespace ftx {

enum class LogLevel { kError = 0, kWarning = 1, kInfo = 2, kDebug = 3 };

// Sets the maximum level that will be emitted (default kWarning, or
// FTX_LOG_LEVEL when set). Overrides the environment.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "error"/"warning"/"warn"/"info"/"debug" (any case) or
// "0".."3" into a level. Returns false (and leaves *out alone) on junk.
bool ParseLogLevel(std::string_view text, LogLevel* out);

// Simulated-time prefixing: while a source is registered, log lines emitted
// from the registering thread carry the source's current time. The slot is
// thread-local; `owner` disambiguates nested/overlapping simulator lifetimes
// on one thread: Clear only deregisters if `owner` still owns the slot.
void SetLogSimTimeSource(const void* owner, int64_t (*now_ns)(const void* owner));
void ClearLogSimTimeSource(const void* owner);

// printf-style log emission; prefer the FTX_LOG macro.
void LogMessage(LogLevel level, const char* file, int line, const char* format, ...);

}  // namespace ftx

#define FTX_LOG(level, ...)                                                  \
  do {                                                                       \
    if (static_cast<int>(::ftx::LogLevel::level) <=                          \
        static_cast<int>(::ftx::GetLogLevel())) {                            \
      ::ftx::LogMessage(::ftx::LogLevel::level, __FILE__, __LINE__,          \
                        __VA_ARGS__);                                        \
    }                                                                        \
  } while (0)

#endif  // FTX_SRC_COMMON_LOG_H_
