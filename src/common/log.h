// Minimal leveled logging to stderr.
//
// Verbosity is process-global and off by default so benchmark output stays
// clean; tests and examples raise it when diagnosing a scenario.

#ifndef FTX_SRC_COMMON_LOG_H_
#define FTX_SRC_COMMON_LOG_H_

namespace ftx {

enum class LogLevel { kError = 0, kWarning = 1, kInfo = 2, kDebug = 3 };

// Sets the maximum level that will be emitted (default kWarning).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style log emission; prefer the FTX_LOG macro.
void LogMessage(LogLevel level, const char* file, int line, const char* format, ...);

}  // namespace ftx

#define FTX_LOG(level, ...)                                                  \
  do {                                                                       \
    if (static_cast<int>(::ftx::LogLevel::level) <=                          \
        static_cast<int>(::ftx::GetLogLevel())) {                            \
      ::ftx::LogMessage(::ftx::LogLevel::level, __FILE__, __LINE__,          \
                        __VA_ARGS__);                                        \
    }                                                                        \
  } while (0)

#endif  // FTX_SRC_COMMON_LOG_H_
