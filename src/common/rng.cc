#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace ftx {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t DeriveTrialSeed(uint64_t base_seed, uint64_t trial_index) {
  // SplitMix64's state advances by a fixed odd gamma per step, so the state
  // feeding output #(trial_index+1) is reachable directly; one finalizer call
  // then gives that output with full avalanche between neighbouring trials.
  uint64_t state = base_seed + trial_index * 0x9e3779b97f4a7c15ULL;
  return SplitMix64Next(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64Next(&sm);
  }
  // xoshiro must not start from the all-zero state; SplitMix64 makes that
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FTX_CHECK_GT(bound, 0u);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` that fits in 64 bits.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  FTX_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits → double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  FTX_CHECK_GT(mean, 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork(uint64_t tag) {
  // Mix the parent's stream with the tag through SplitMix64 so children with
  // different tags are decorrelated.
  uint64_t mix = NextU64() ^ (tag * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  return Rng(SplitMix64Next(&mix));
}

}  // namespace ftx
