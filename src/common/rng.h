// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator — workload generation, fault
// injection sites, network jitter — flows through Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via SplitMix64, which is the recommended seeding
// procedure for the xoshiro family.

#ifndef FTX_SRC_COMMON_RNG_H_
#define FTX_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ftx {

// SplitMix64 step: advances *state and returns the next output. Exposed so
// tests can derive independent child seeds the same way Rng does.
uint64_t SplitMix64Next(uint64_t* state);

// Seed of trial `trial_index` in a sharded experiment: the (trial_index+1)-th
// output of the SplitMix64 stream seeded with `base_seed`, computed in O(1)
// by jumping the stream's additive state. Every (base_seed, trial_index)
// pair maps to the same seed on every thread count and schedule, which is
// what makes --jobs 1 and --jobs N runs bit-identical.
uint64_t DeriveTrialSeed(uint64_t base_seed, uint64_t trial_index);

// xoshiro256** 1.0. Not thread-safe; each simulated entity owns its own Rng.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t NextU64();

  // Uniform over [0, bound). bound must be nonzero. Uses rejection sampling
  // to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform over [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Exponentially distributed double with the given mean (> 0).
  double NextExponential(double mean);

  // Standard-normal via Box-Muller.
  double NextGaussian();

  // Derives an independent child generator; children with distinct tags are
  // decorrelated from each other and from the parent.
  Rng Fork(uint64_t tag);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace ftx

#endif  // FTX_SRC_COMMON_RNG_H_
