#include "src/common/sim_time.h"

#include <cstdio>

namespace ftx {
namespace {

std::string FormatNanos(int64_t ns) {
  char buf[64];
  if (ns < 0) {
    return "-" + FormatNanos(-ns);
  }
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns));
  } else if (ns < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace

std::string Duration::ToString() const { return FormatNanos(ns_); }

std::string TimePoint::ToString() const { return "t=" + FormatNanos(ns_); }

}  // namespace ftx
