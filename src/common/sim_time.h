// Simulated-time types.
//
// The discrete-event simulator measures time in integer nanoseconds. Using a
// strong typedef pair (Duration, TimePoint) instead of raw int64 catches
// unit mistakes at compile time; helpers construct durations from human
// units.

#ifndef FTX_SRC_COMMON_SIM_TIME_H_
#define FTX_SRC_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace ftx {

// A span of simulated time in nanoseconds. Value-semantic, totally ordered.
class Duration {
 public:
  constexpr Duration() : ns_(0) {}
  constexpr explicit Duration(int64_t ns) : ns_(ns) {}

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1000000; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr Duration operator+(Duration other) const { return Duration(ns_ + other.ns_); }
  constexpr Duration operator-(Duration other) const { return Duration(ns_ - other.ns_); }
  constexpr Duration operator*(int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;  // e.g. "1.500ms"

 private:
  int64_t ns_;
};

constexpr Duration Nanoseconds(int64_t n) { return Duration(n); }
constexpr Duration Microseconds(int64_t n) { return Duration(n * 1000); }
constexpr Duration Milliseconds(int64_t n) { return Duration(n * 1000000); }
constexpr Duration Seconds(double s) { return Duration(static_cast<int64_t>(s * 1e9)); }

// An absolute instant of simulated time (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() : ns_(0) {}
  constexpr explicit TimePoint(int64_t ns) : ns_(ns) {}

  constexpr int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.nanos()); }
  constexpr Duration operator-(TimePoint other) const { return Duration(ns_ - other.ns_); }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  int64_t ns_;
};

}  // namespace ftx

#endif  // FTX_SRC_COMMON_SIM_TIME_H_
