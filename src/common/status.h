// Status and Result<T>: exception-free error propagation.
//
// The library reports recoverable errors through Status (an error code plus
// a human-readable message) and Result<T> (a Status or a value). Invariant
// violations use FTX_CHECK instead and abort.

#ifndef FTX_SRC_COMMON_STATUS_H_
#define FTX_SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "src/common/check.h"

namespace ftx {

// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller supplied a bad parameter
  kNotFound,          // a named entity does not exist
  kFailedPrecondition,  // object is in the wrong state for the operation
  kOutOfRange,        // index/offset outside a valid range
  kResourceExhausted, // a simulated resource limit (disk full, table full)
  kAborted,           // operation rolled back (transaction abort, crash)
  kDataLoss,          // corruption detected (checksum/guard-band failure)
  kUnavailable,       // target process/host is down
  kInternal,          // bug in the library itself
};

// Returns a stable lowercase name for the code (e.g. "invalid_argument").
std::string_view StatusCodeName(StatusCode code);

// Value-semantic error type. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {
    FTX_DCHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors mirroring absl::*Error.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status AbortedError(std::string message);
Status DataLossError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);

// A Status or a value of type T. Dereferencing a non-OK Result aborts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit by design
    FTX_CHECK_MSG(!status_.ok(), "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    FTX_CHECK_MSG(ok(), "Result::value() on error: %s", status_.ToString().c_str());
    return *value_;
  }
  const T& value() const& {
    FTX_CHECK_MSG(ok(), "Result::value() on error: %s", status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    FTX_CHECK_MSG(ok(), "Result::value() on error: %s", status_.ToString().c_str());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ftx

// Propagates a non-OK status to the caller.
#define FTX_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::ftx::Status ftx_status_ = (expr);    \
    if (!ftx_status_.ok()) {               \
      return ftx_status_;                  \
    }                                      \
  } while (0)

#endif  // FTX_SRC_COMMON_STATUS_H_
