#include "src/core/computation.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace ftx {

Computation::Computation(ComputationOptions options, std::vector<std::unique_ptr<ftx_dc::App>> apps)
    : options_(std::move(options)), apps_(std::move(apps)) {
  FTX_CHECK(!apps_.empty());
  const int n = num_processes();

  // Shard layout for the partitioned engine. Results are byte-identical for
  // every shard count; the default (1) is exactly the monolithic engine.
  const ftx_sim::ShardPlan plan = ftx_sim::ShardPlan::Uniform(n, options_.shards);
  sim_ = std::make_unique<ftx_sim::Simulator>(options_.seed, plan);
  network_ = std::make_unique<ftx_sim::Network>(sim_.get(), n, options_.network);
  // The runtimes consume the simulator/network only through the env::sim
  // adapters (pure forwarding — the Computation runner IS the sim backend).
  env_clock_ = std::make_unique<ftx::env::SimClock>(sim_.get());
  env_transport_ = std::make_unique<ftx::env::SimTransport>(network_.get());
  kernel_ = std::make_unique<ftx_sim::KernelSim>(env_clock_.get(), plan, options_.kernel_limits);
  // The audit needs full vector clocks, so it overrides lean_trace.
  ftx_sm::TraceOptions trace_options;
  trace_options.record_clocks = !options_.lean_trace || options_.audit;
  trace_ = std::make_unique<ftx_sm::Trace>(n, trace_options);

  tracer_.SetEnabled(options_.enable_tracing || !options_.trace_path.empty());
  sim_->BindMetrics(&metrics_);
  network_->BindMetrics(&metrics_);
  kernel_->BindMetrics(&metrics_);

  if (options_.audit && options_.mode == ftx_dc::RuntimeMode::kRecoverable) {
    audit_ = std::make_unique<ftx_causal::CausalAudit>(n, options_.audit_options);
    audit_->SetTimeSource([this]() { return sim_->Now().nanos(); });
    audit_->SetTracer(&tracer_);
    network_->SetMessageObserver([this](int64_t id, int src, int dst, int64_t bytes) {
      audit_->OnMessage(id, src, dst, bytes);
    });
  }
  if (options_.critical_path && options_.mode == ftx_dc::RuntimeMode::kRecoverable) {
    critical_path_ =
        std::make_unique<ftx_causal::CriticalPathTracker>(n, options_.critical_path_options);
    critical_path_->SetTimeSource([this]() { return sim_->Now().nanos(); });
  }
  // The trace exposes a single append-observer slot; the audit and the
  // critical-path tracker share it through one forwarding closure.
  if (audit_ != nullptr || critical_path_ != nullptr) {
    trace_->SetAppendObserver([this](ftx_sm::EventRef ref, const ftx_sm::TraceEvent& ev,
                                     const ftx_sm::VectorClock& clock) {
      if (audit_ != nullptr) {
        audit_->OnTraceEvent(ref, ev, clock);
      }
      if (critical_path_ != nullptr) {
        critical_path_->OnTraceEvent(ref, ev);
      }
    });
  }

  if (options_.timeseries || !options_.timeseries_path.empty()) {
    tsdb_ = std::make_unique<ftx_obs::TimeSeriesDb>(options_.timeseries_options);
    tsdb_->SetMeta("protocol", options_.protocol);
    switch (options_.store) {
      case StoreKind::kRio:
        tsdb_->SetMeta("store", "rio");
        break;
      case StoreKind::kDisk:
        tsdb_->SetMeta("store", "disk");
        break;
      case StoreKind::kVolatileMemory:
        tsdb_->SetMeta("store", "volatile");
        break;
    }
    tsdb_->SetMeta("processes", static_cast<int64_t>(n));
    tsdb_->SetMeta("seed", static_cast<int64_t>(options_.seed));
    // Core lanes: simulator progress, fleet-wide DC activity, and failure
    // state. Every one is a simulated quantity — invariant across shard
    // layouts — so the default export honors the byte-identity contract.
    tsdb_->AddCounter("sim.events_executed", [this]() { return sim_->events_executed(); });
    tsdb_->AddCounter("dc.commits", [this]() {
      int64_t total = 0;
      for (const auto& rt : runtimes_) {
        total += rt->stats().commits;
      }
      return total;
    });
    tsdb_->AddCounter("dc.rollbacks", [this]() {
      int64_t total = 0;
      for (const auto& rt : runtimes_) {
        total += rt->stats().rollbacks;
      }
      return total;
    });
    tsdb_->AddCounter("net.messages_sent", [this]() { return network_->total_messages(); });
    tsdb_->AddGauge("dc.down", [this]() {
      int64_t down = 0;
      for (const auto& rt : runtimes_) {
        down += rt->alive() ? 0 : 1;
      }
      return static_cast<double>(down);
    });
    if (options_.timeseries_options.shard_lanes && sim_->num_shards() > 1) {
      // Layout-dependent lanes, opt-in only (see TimeSeriesOptions).
      tsdb_->AddCounter("sim.cross_shard_events",
                        [this]() { return sim_->cross_shard_events(); });
      for (int s = 0; s < sim_->num_shards(); ++s) {
        tsdb_->AddCounter("shard" + std::to_string(s) + ".events_executed",
                          [this, s]() { return sim_->ShardEventsExecuted(s); });
      }
    }
    sim_->SetEventHook(
        [this](int shard, TimePoint t) { (void)shard; tsdb_->OnSimTime(t.nanos()); });
  }

  blocked_.assign(static_cast<size_t>(n), false);
  pump_token_.assign(static_cast<size_t>(n), 0);
  done_time_.assign(static_cast<size_t>(n), TimePoint());
  recovery_attempts_.assign(static_cast<size_t>(n), 0);
  recovery_abandoned_.assign(static_cast<size_t>(n), false);
  busy_until_.assign(static_cast<size_t>(n), TimePoint());

  const bool recoverable = options_.mode == ftx_dc::RuntimeMode::kRecoverable;
  for (int pid = 0; pid < n; ++pid) {
    // One storage stack per machine.
    ftx_store::RedoLog* redo_log = nullptr;
    ftx_store::CommitPipeline* commit_pipeline = nullptr;
    if (options_.store == StoreKind::kDisk) {
      disks_.push_back(std::make_unique<ftx_store::DiskModel>(options_.disk));
      stores_.push_back(std::make_unique<ftx_store::DiskStore>(disks_.back().get()));
      redo_logs_.push_back(std::make_unique<ftx_store::RedoLog>());
      redo_log = redo_logs_.back().get();
      if (options_.journal_disk_writes) {
        ftx_store::WriteJournal* journal = disks_.back()->EnableJournal();
        journal->SetClock([this]() { return sim_->Now(); });
        redo_log->AttachJournal(journal);
      }
      if (options_.group_commit.enabled) {
        commit_pipelines_.push_back(
            std::make_unique<ftx_store::CommitPipeline>(redo_log, options_.group_commit));
        commit_pipeline = commit_pipelines_.back().get();
      } else {
        commit_pipelines_.push_back(nullptr);
      }
    } else if (options_.store == StoreKind::kVolatileMemory) {
      disks_.push_back(nullptr);
      stores_.push_back(std::make_unique<ftx_store::MemoryStore>());
      redo_logs_.push_back(nullptr);
      commit_pipelines_.push_back(nullptr);
    } else {
      disks_.push_back(nullptr);
      stores_.push_back(std::make_unique<ftx_store::RioStore>());
      redo_logs_.push_back(nullptr);
      commit_pipelines_.push_back(nullptr);
    }

    ftx::env::Environment::Builder env_builder;
    env_builder.WithClock(env_clock_.get())
        .WithTransport(env_transport_.get())
        .WithKernel(kernel_.get())
        .WithRecorder(&recorder_)
        .WithStore(stores_.back().get())
        .WithRedoLog(redo_log)
        .WithCommitPipeline(commit_pipeline)
        .WithCoordinatedCommit(
            [this, pid](ftx_proto::CoordinationScope scope) { CoordinatedCommit(pid, scope); })
        .WithLatestAtomicGroup([this]() { return next_atomic_group_ - 1; })
        .WithMetrics(&metrics_)
        .WithTracer(&tracer_)
        .WithAudit(audit_.get());
    ftx::env::Environment env;
    if (recoverable) {
      env_builder.WithTrace(trace_.get());
      env = env_builder.BuildRecoverable();
    } else {
      env = env_builder.Build();
    }
    const std::string prefix = "p" + std::to_string(pid) + ".";
    if (disks_.back() != nullptr) {
      disks_.back()->BindMetrics(&metrics_, prefix);
    }
    if (redo_log != nullptr) {
      redo_log->BindMetrics(&metrics_, prefix);
    }

    std::unique_ptr<ftx_proto::Protocol> protocol;
    if (recoverable) {
      protocol = options_.protocol_factory ? options_.protocol_factory()
                                           : ftx_proto::MakeProtocolByName(options_.protocol);
    }
    runtimes_.push_back(std::make_unique<ftx_dc::Runtime>(
        pid, n, apps_[static_cast<size_t>(pid)].get(), std::move(protocol), std::move(env),
        options_.mode, options_.costs));
    network_->SetArrivalCallback(pid, [this, pid]() { WakeIfBlocked(pid); });
  }
}

Computation::~Computation() = default;

ftx_dc::Runtime& Computation::runtime(int pid) {
  FTX_CHECK(pid >= 0 && pid < num_processes());
  return *runtimes_[static_cast<size_t>(pid)];
}

ftx_dc::App& Computation::app(int pid) {
  FTX_CHECK(pid >= 0 && pid < num_processes());
  return *apps_[static_cast<size_t>(pid)];
}

ftx_store::RedoLog* Computation::redo_log(int pid) {
  FTX_CHECK(pid >= 0 && pid < num_processes());
  return redo_logs_[static_cast<size_t>(pid)].get();
}

ftx_store::CommitPipeline* Computation::commit_pipeline(int pid) {
  FTX_CHECK(pid >= 0 && pid < num_processes());
  return commit_pipelines_[static_cast<size_t>(pid)].get();
}

ftx_store::WriteJournal* Computation::write_journal(int pid) {
  FTX_CHECK(pid >= 0 && pid < num_processes());
  return disks_[static_cast<size_t>(pid)] == nullptr ? nullptr
                                                     : disks_[static_cast<size_t>(pid)]->journal();
}

void Computation::SetInputScript(int pid, std::vector<Bytes> script) {
  runtime(pid).SetInputScript(std::move(script));
}

int Computation::recovery_attempts(int pid) const {
  FTX_CHECK(pid >= 0 && pid < num_processes());
  return recovery_attempts_[static_cast<size_t>(pid)];
}

bool Computation::recovery_abandoned(int pid) const {
  FTX_CHECK(pid >= 0 && pid < num_processes());
  return recovery_abandoned_[static_cast<size_t>(pid)];
}

bool Computation::AllDone() const {
  // Done is monotone (finished processes are never killed or restarted), so
  // the scan resumes past the done prefix instead of rescanning it — Run()
  // calls this once per simulated event, which would be O(N) per event at
  // fleet scale.
  while (all_done_scan_ < static_cast<size_t>(num_processes()) &&
         runtimes_[all_done_scan_]->done()) {
    ++all_done_scan_;
  }
  return all_done_scan_ == static_cast<size_t>(num_processes());
}

void Computation::SchedulePump(int pid, Duration delay) {
  // A process can never start its next step before the simulated work of
  // its previous step has elapsed — message arrivals must not time-travel a
  // busy process.
  Duration busy_gap = busy_until_[static_cast<size_t>(pid)] - sim_->Now();
  if (busy_gap > delay) {
    delay = busy_gap;
  }
  int64_t token = ++pump_token_[static_cast<size_t>(pid)];
  sim_->ScheduleAfterFor(pid, delay, [this, pid, token]() {
    if (pump_token_[static_cast<size_t>(pid)] == token) {
      Pump(pid);
    }
  });
}

void Computation::WakeIfBlocked(int pid) {
  auto& rt = *runtimes_[static_cast<size_t>(pid)];
  if (blocked_[static_cast<size_t>(pid)] && rt.alive() && !rt.done()) {
    blocked_[static_cast<size_t>(pid)] = false;
    SchedulePump(pid, Duration());
  }
}

void Computation::Pump(int pid) {
  auto& rt = *runtimes_[static_cast<size_t>(pid)];
  if (!rt.alive() || rt.done()) {
    return;
  }
  blocked_[static_cast<size_t>(pid)] = false;

  Duration cost;
  ftx_dc::StepOutcome outcome = rt.RunStep(&cost);
  busy_until_[static_cast<size_t>(pid)] = sim_->Now() + cost;

  if (!rt.alive()) {
    // The step ended in a crash event (propagation failure).
    if (options_.auto_recover) {
      if (recovery_attempts_[static_cast<size_t>(pid)] >= options_.max_recovery_attempts) {
        recovery_abandoned_[static_cast<size_t>(pid)] = true;
        FTX_LOG(kInfo, "p%d: recovery abandoned after %d attempts", pid,
                recovery_attempts_[static_cast<size_t>(pid)]);
        if (audit_ != nullptr) {
          audit_->RecordIncident(
              "recovery abandoned p" + std::to_string(pid) + " after " +
                  std::to_string(recovery_attempts_[static_cast<size_t>(pid)]) + " attempts",
              std::nullopt);
        }
        return;
      }
      ++recovery_attempts_[static_cast<size_t>(pid)];
      sim_->ScheduleAfterFor(pid, options_.recovery_delay, [this, pid]() {
        auto& failed = *runtimes_[static_cast<size_t>(pid)];
        if (failed.alive()) {
          return;  // already recovered by someone else
        }
        Duration recovery_cost = failed.Recover();
        NoteRecovery(pid, recovery_cost);
        SchedulePump(pid, recovery_cost);
      });
    }
    return;
  }

  if (rt.done()) {
    done_time_[static_cast<size_t>(pid)] = sim_->Now() + cost;
    return;
  }

  switch (outcome.status) {
    case ftx_dc::StepOutcome::Status::kContinue: {
      Duration delay = cost + outcome.delay;
      if (outcome.pace_until.nanos() >= 0) {
        Duration until_deadline = outcome.pace_until - sim_->Now();
        delay = std::max(delay, until_deadline);
      }
      SchedulePump(pid, delay);
      break;
    }
    case ftx_dc::StepOutcome::Status::kBlocked:
      blocked_[static_cast<size_t>(pid)] = true;
      if (network_->HasPending(pid)) {
        // A message landed during the step; do not sleep on it.
        blocked_[static_cast<size_t>(pid)] = false;
        SchedulePump(pid, cost);
      } else if (outcome.delay.nanos() > 0) {
        SchedulePump(pid, cost + outcome.delay);  // poll timeout
      }
      break;
    case ftx_dc::StepOutcome::Status::kDone:
      done_time_[static_cast<size_t>(pid)] = sim_->Now() + cost;
      break;
  }
}

void Computation::CoordinatedCommit(int initiator, ftx_proto::CoordinationScope scope) {
  auto& init_rt = *runtimes_[static_cast<size_t>(initiator)];

  std::vector<int> participants;
  if (scope == ftx_proto::CoordinationScope::kCommunicated) {
    // Koo-Toueg-style dependency closure: include every process that has
    // communicated (sent to or received from), directly or transitively,
    // with a member of the set since its own last commit. The closure runs
    // on the runtimes' 64-bit communication masks, so this scope (CPV-2PC
    // family) caps at 64 processes; fleet-scale protocols use kNdDirty.
    FTX_CHECK_MSG(num_processes() <= 64,
                  "kCommunicated coordination scope supports at most 64 processes (got %d)",
                  num_processes());
    uint64_t members = 1ULL << initiator;
    bool grew = true;
    while (grew) {
      grew = false;
      for (int pid = 0; pid < num_processes(); ++pid) {
        auto& rt = *runtimes_[static_cast<size_t>(pid)];
        if (!rt.alive() || (members & (1ULL << pid)) != 0) {
          continue;
        }
        if ((rt.communicated_mask() & members) != 0) {
          members |= 1ULL << pid;
          grew = true;
        }
      }
    }
    for (int pid = 0; pid < num_processes(); ++pid) {
      if (pid != initiator && (members & (1ULL << pid)) != 0) {
        participants.push_back(pid);
      }
    }
  } else {
    const bool only_dirty = scope == ftx_proto::CoordinationScope::kNdDirty;
    for (int pid = 0; pid < num_processes(); ++pid) {
      if (pid == initiator) {
        continue;
      }
      auto& rt = *runtimes_[static_cast<size_t>(pid)];
      if (!rt.alive()) {
        continue;
      }
      if (!only_dirty || rt.protocol().HasUncommittedNd()) {
        participants.push_back(pid);
      }
    }
    if (only_dirty && participants.empty() && !init_rt.protocol().HasUncommittedNd()) {
      return;  // nothing anywhere to preserve
    }
  }

  // One 2PC round: prepare out, participants commit, acks back, coordinator
  // commits. The trace events make every happens-before edge explicit, and
  // all of the round's commits share an atomic group — they are "atomic
  // with" one another in the sense of the Save-work Theorem.
  const int64_t atomic_group = next_atomic_group_++;
  Duration max_participant_commit;
  for (int pid : participants) {
    auto& rt = *runtimes_[static_cast<size_t>(pid)];
    int64_t prepare_id = next_coord_message_id_++;
    init_rt.AppendCoordinationEvent(ftx_sm::EventKind::kSend, prepare_id);
    rt.AppendCoordinationEvent(ftx_sm::EventKind::kReceive, prepare_id);
    Duration commit_cost =
        rt.CommitNow(/*coordinated=*/true, /*charge_inline=*/false, atomic_group);
    max_participant_commit = std::max(max_participant_commit, commit_cost);
    int64_t ack_id = next_coord_message_id_++;
    rt.AppendCoordinationEvent(ftx_sm::EventKind::kSend, ack_id);
    init_rt.AppendCoordinationEvent(ftx_sm::EventKind::kReceive, ack_id);
  }

  Duration round;
  if (!participants.empty()) {
    // Prepare + ack message latencies, overlapped across participants, plus
    // the slowest participant's commit.
    round += options_.network.base_latency * 2;
    round += max_participant_commit;
  }
  round += init_rt.CommitNow(/*coordinated=*/false, /*charge_inline=*/false, atomic_group);
  init_rt.ChargeToStep(round);

  metrics_.GetCounter("dc.2pc_rounds")->Increment();
  if (tracer_.enabled()) {
    tracer_.Span(initiator, ftx_obs::TraceLane::kCoordination, "2pc",
                 "2pc-round(" + std::to_string(participants.size() + 1) + ")", sim_->Now(),
                 sim_->Now() + round);
  }
}

void Computation::NoteRecovery(int pid, Duration cost) {
  if (critical_path_ == nullptr) {
    return;
  }
  const ftx_dc::RecoveryBreakdown& br = runtimes_[static_cast<size_t>(pid)]->last_recovery();
  ftx_causal::RecoveryPhases phases;
  phases.log_scan_ns = br.log_scan_ns;
  phases.page_install_ns = br.page_install_ns;
  phases.undo_rollback_ns = br.undo_rollback_ns;
  phases.rebuild_ns = br.rebuild_ns;
  // Recover()/RestartFromScratch() ran at the current instant and charged
  // `cost` forward; the gap back to the crash is detection latency, which
  // the tracker derives itself.
  critical_path_->OnRecovery(pid, sim_->Now().nanos(), (sim_->Now() + cost).nanos(), phases);
}

void Computation::ScheduleStopFailure(int pid, TimePoint at, Duration recovery_delay) {
  sim_->ScheduleAtFor(pid, at, [this, pid, recovery_delay]() {
    auto& rt = *runtimes_[static_cast<size_t>(pid)];
    if (!rt.alive() || rt.done()) {
      return;
    }
    FTX_LOG(kInfo, "stop failure: p%d at %s", pid, sim_->Now().ToString().c_str());
    rt.Kill();
    if (critical_path_ != nullptr) {
      // Stop failures never append a kCrash trace event (the process simply
      // goes silent), so the tracker is told directly.
      critical_path_->OnCrash(pid);
    }
    ++pump_token_[static_cast<size_t>(pid)];  // cancel any scheduled pump
    sim_->ScheduleAfterFor(pid, recovery_delay, [this, pid]() {
      auto& failed = *runtimes_[static_cast<size_t>(pid)];
      if (failed.alive()) {
        return;
      }
      Duration cost = failed.Recover();
      NoteRecovery(pid, cost);
      SchedulePump(pid, cost);
    });
  });
}

void Computation::ScheduleOsStopFailure(TimePoint at, Duration reboot_delay) {
  for (int pid = 0; pid < num_processes(); ++pid) {
    if (stores_[static_cast<size_t>(pid)]->SurvivesOsCrash()) {
      ScheduleStopFailure(pid, at, reboot_delay);
      continue;
    }
    // Without Rio (or a disk log), the OS crash destroys the segment, the
    // undo log, and every checkpoint: the application can only restart from
    // scratch — all committed work is forfeit.
    sim_->ScheduleAtFor(pid, at, [this, pid, reboot_delay]() {
      auto& rt = *runtimes_[static_cast<size_t>(pid)];
      if (!rt.alive() || rt.done()) {
        return;
      }
      FTX_LOG(kInfo, "OS crash with volatile store: p%d restarts from scratch", pid);
      rt.Kill();
      if (critical_path_ != nullptr) {
        critical_path_->OnCrash(pid);
      }
      ++pump_token_[static_cast<size_t>(pid)];
      sim_->ScheduleAfterFor(pid, reboot_delay, [this, pid]() {
        auto& failed = *runtimes_[static_cast<size_t>(pid)];
        if (failed.alive()) {
          return;
        }
        Duration cost = failed.RestartFromScratch();
        NoteRecovery(pid, cost);
        SchedulePump(pid, cost);
      });
    });
  }
}

ComputationResult Computation::Run() {
  FTX_CHECK_MSG(!started_, "Computation::Run may only be called once");
  started_ = true;

  for (int pid = 0; pid < num_processes(); ++pid) {
    runtimes_[static_cast<size_t>(pid)]->Initialize();
  }
  for (int pid = 0; pid < num_processes(); ++pid) {
    SchedulePump(pid, Duration());
  }

  const TimePoint deadline = TimePoint() + options_.max_sim_time;
  int64_t executed = 0;
  while (!AllDone() && sim_->HasPending()) {
    if (sim_->Now() > deadline) {
      break;
    }
    sim_->RunOne();
    FTX_CHECK_MSG(++executed <= options_.max_sim_events,
                  "computation exceeded simulated event limit");
  }

  if (audit_ != nullptr) {
    audit_->Finalize();
  }
  if (tsdb_ != nullptr) {
    // Close the series at the simulator's final instant so the last sample
    // is the end-of-run state (what the checker cross-validates against the
    // aggregate report).
    tsdb_->Finalize(sim_->Now().nanos());
    if (!options_.timeseries_path.empty()) {
      Status status = tsdb_->WriteJsonl(options_.timeseries_path);
      if (!status.ok()) {
        FTX_LOG(kWarning, "failed to write timeseries to %s: %s",
                options_.timeseries_path.c_str(), status.ToString().c_str());
      } else {
        FTX_LOG(kInfo, "wrote %lld timeseries samples to %s",
                static_cast<long long>(tsdb_->samples_retained()),
                options_.timeseries_path.c_str());
      }
    }
  }

  ComputationResult result;
  result.all_done = AllDone();
  TimePoint end;
  for (int pid = 0; pid < num_processes(); ++pid) {
    const auto& stats = runtimes_[static_cast<size_t>(pid)]->stats();
    result.per_process.push_back(stats);
    result.total_commits += stats.commits;
    result.total_events += stats.events;
    result.total_rollbacks += stats.rollbacks;
    result.done_times.push_back(done_time_[static_cast<size_t>(pid)]);
    end = std::max(end, done_time_[static_cast<size_t>(pid)]);
  }
  if (end == TimePoint()) {
    end = sim_->Now();
  }
  result.end_time = end;

  if (!options_.trace_path.empty()) {
    Status status = tracer_.WriteChromeTrace(options_.trace_path);
    if (!status.ok()) {
      FTX_LOG(kWarning, "failed to write trace to %s: %s", options_.trace_path.c_str(),
              status.ToString().c_str());
    } else {
      FTX_LOG(kInfo, "wrote %zu trace events to %s", tracer_.size(),
              options_.trace_path.c_str());
    }
  }
  return result;
}

}  // namespace ftx
