// Computation: the top-level assembly of the failure-transparency system.
//
// A Computation owns the simulator, network, kernel, trace, output recorder,
// stable stores, and one Discount Checking runtime per application process.
// It schedules process steps on simulated time, implements the two-phase
// commit the CPV-2PC/CBNDV-2PC protocols request, injects stop failures, and
// recovers failed processes.
//
// This is the library's primary public entry point; see also
// src/core/experiment.h for the one-call experiment wrappers the benches
// and examples use.

#ifndef FTX_SRC_CORE_COMPUTATION_H_
#define FTX_SRC_CORE_COMPUTATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/checkpoint/app.h"
#include "src/checkpoint/runtime.h"
#include "src/env/sim_env.h"
#include "src/obs/causal/audit.h"
#include "src/obs/causal/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/protocol/protocol.h"
#include "src/recovery/output_recorder.h"
#include "src/sim/kernel.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/statemachine/trace.h"
#include "src/storage/commit_pipeline.h"
#include "src/storage/disk_model.h"
#include "src/storage/redo_log.h"
#include "src/storage/stable_store.h"

namespace ftx {

enum class StoreKind {
  kRio,   // Discount Checking on Rio reliable memory
  kDisk,  // DC-disk: synchronous redo log on a modeled disk per machine
  kVolatileMemory,  // memory-speed commits that do NOT survive OS crashes
                    //   (the contrast that motivates Rio)
};

struct ComputationOptions {
  uint64_t seed = 1;
  // One of MeasuredProtocolNames() or "commit-all". Ignored in baseline
  // mode.
  std::string protocol = "cpvs";
  StoreKind store = StoreKind::kRio;
  ftx_dc::RuntimeMode mode = ftx_dc::RuntimeMode::kRecoverable;
  ftx_dc::RuntimeCosts costs;
  ftx_sim::NetworkOptions network;
  ftx_sim::KernelLimits kernel_limits;
  ftx_store::DiskParameters disk;
  // Number of contiguous-pid shards for the partitioned event engine
  // (src/sim/partition.h). Simulated results are byte-identical for every
  // value — the merge front replays the monolithic event order — so this is
  // purely a fleet-scale layout knob. Uniform partition; must be in
  // [1, num_processes].
  int shards = 1;
  // Fleet-scale trace mode: keep the replayable per-process event log but
  // skip the dense vector-clock snapshots (O(N) per event — quadratic
  // memory at 10k processes). Commit/rollback replay is unaffected;
  // ClockOf/EventHappensBefore (and therefore the causal audit) are
  // unavailable. Ignored (full clocks kept) when audit is on.
  bool lean_trace = false;
  // DC-disk only: journal every redo-log disk write as sector-granular ops
  // with barriers at the commit's two sync points (see
  // src/storage/write_journal.h). Off by default — the journal retains
  // every byte ever committed, and only the crash-state exploration engine
  // (src/torture/) consumes it. Never changes any simulated quantity.
  bool journal_disk_writes = false;
  // DC-disk only: group-commit batching policy. Off by default — batching
  // changes the disk write schedule and therefore simulated commit
  // latencies, so golden-reproducing runs must leave it disabled (a
  // disabled policy is byte-identical to one-sync-pair-per-commit). When
  // enabled, each runtime stages commits into a ftx_store::CommitPipeline
  // and whole windows persist under a single sync pair; the runtime forces
  // a flush before any visible/send event, so Save-work is unaffected.
  ftx_store::BatchPolicy group_commit;
  // Automatic recovery after a crash event (propagation-failure studies).
  bool auto_recover = true;
  Duration recovery_delay = Milliseconds(50);
  // A process that keeps crashing after this many recoveries is declared
  // unrecoverable (the fault study's "failed recovery" outcome).
  int max_recovery_attempts = 3;
  // Run limits (simulated).
  Duration max_sim_time = Seconds(7200);
  int64_t max_sim_events = 200000000;
  // Simulated-timeline tracing (steps, commits, 2PC rounds, crashes,
  // recoveries). When trace_path is non-empty, Run() additionally writes a
  // Chrome trace_event JSON file there (open in Perfetto / chrome://tracing).
  bool enable_tracing = false;
  std::string trace_path;
  // Live causal audit (src/obs/causal/): vector-clock event ledger, online
  // Save-work verification, crash flight recorder, per-commit cost
  // attribution. Strictly observational — simulated quantities are
  // byte-identical with the audit on or off. Recoverable mode only (baseline
  // runs have no trace to audit). Off by default; tests and the --audit
  // bench flag turn it on.
  bool audit = false;
  ftx_causal::CausalAuditOptions audit_options;
  // Simulated-time telemetry (src/obs/tsdb/): sample every registered
  // counter/gauge series on a fixed sim-time cadence, driven by the
  // simulator's pre-event hook. Strictly observational (the hook only reads
  // state), so simulated quantities are byte-identical with it on or off,
  // and the sampled series itself is byte-identical for any shards value
  // unless timeseries_options.shard_lanes opts into per-shard columns.
  // Enabled by `timeseries` or by a non-empty timeseries_path (the JSONL
  // export Run() writes there).
  bool timeseries = false;
  ftx_obs::TimeSeriesOptions timeseries_options;
  std::string timeseries_path;
  // Causal critical-path tracking (src/obs/causal/critical_path.h): online
  // taint propagation from crashes through message edges to the last
  // dependent commit. Observer-only (same neutrality contract as the
  // audit); works with lean traces. Recoverable mode only.
  bool critical_path = false;
  ftx_causal::CriticalPathOptions critical_path_options;
  // Test hook: when set, used instead of MakeProtocolByName(protocol) to
  // build each process's protocol (e.g. a deliberately broken
  // commit-too-little protocol the audit must flag). Called once per
  // process.
  std::function<std::unique_ptr<ftx_proto::Protocol>()> protocol_factory;
};

struct ComputationResult {
  bool all_done = false;
  TimePoint end_time;           // when the last process finished
  int64_t total_commits = 0;
  int64_t total_events = 0;
  int64_t total_rollbacks = 0;
  std::vector<ftx_dc::RuntimeStats> per_process;
  std::vector<TimePoint> done_times;  // zero TimePoint when not done
};

class Computation {
 public:
  // Apps are owned by the computation. One process per app, pid = index.
  Computation(ComputationOptions options, std::vector<std::unique_ptr<ftx_dc::App>> apps);
  ~Computation();

  Computation(const Computation&) = delete;
  Computation& operator=(const Computation&) = delete;

  int num_processes() const { return static_cast<int>(apps_.size()); }

  // Scripted user input for one process (before Run).
  void SetInputScript(int pid, std::vector<Bytes> script);

  // Initializes all runtimes (checkpoint #0) and runs the computation until
  // every process is done, a crash stops it (when auto_recover is off), or a
  // limit is hit.
  ComputationResult Run();

  // --- failure injection ---

  // Stop failure: the process ceases execution at `at` and recovers (from
  // its last commit) after `recovery_delay`.
  void ScheduleStopFailure(int pid, TimePoint at, Duration recovery_delay = Milliseconds(50));

  // Whole-machine stop failure: every process stops at `at` and recovers
  // after `reboot_delay` (Rio and the disk log both survive OS crashes).
  void ScheduleOsStopFailure(TimePoint at, Duration reboot_delay = Seconds(30.0));

  // --- accessors (valid during and after Run) ---

  ftx_sim::Simulator& sim() { return *sim_; }
  ftx_sim::Network& network() { return *network_; }
  ftx_sim::KernelSim& kernel() { return *kernel_; }
  ftx_sm::Trace& trace() { return *trace_; }
  ftx_rec::OutputRecorder& recorder() { return recorder_; }
  // Computation-wide metrics registry: every subsystem (simulator, network,
  // kernel, per-machine disks/redo logs, per-process runtimes) registers its
  // instruments here at construction.
  ftx_obs::Registry& metrics() { return metrics_; }
  ftx_obs::Tracer& tracer() { return tracer_; }
  // Null unless ComputationOptions::audit was set (and mode is recoverable).
  ftx_causal::CausalAudit* audit() { return audit_.get(); }
  // Null unless timeseries telemetry is enabled. Callers may register
  // additional probe columns (the fleet bench adds fleet.* lanes) any time
  // before Run() executes the first event.
  ftx_obs::TimeSeriesDb* timeseries() { return tsdb_.get(); }
  // Null unless ComputationOptions::critical_path was set (recoverable mode).
  ftx_causal::CriticalPathTracker* critical_path() { return critical_path_.get(); }
  ftx_dc::Runtime& runtime(int pid);
  ftx_dc::App& app(int pid);
  // DC-disk only (nullptr otherwise): the machine's redo log, and — when
  // journal_disk_writes is set — its write-op journal. The torture engine
  // uses these to collect op traces and to install survivor records before
  // a scheduled recovery.
  ftx_store::RedoLog* redo_log(int pid);
  ftx_store::WriteJournal* write_journal(int pid);
  // Non-null only in DC-disk mode with options.group_commit.enabled.
  ftx_store::CommitPipeline* commit_pipeline(int pid);
  const ComputationOptions& options() const { return options_; }
  int recovery_attempts(int pid) const;
  // True when a process exhausted max_recovery_attempts (it kept crashing
  // after recovery — generic recovery failed).
  bool recovery_abandoned(int pid) const;

 private:
  void Pump(int pid);
  void SchedulePump(int pid, Duration delay);
  // Forwards a completed recovery (its simulated interval plus the
  // runtime's per-phase charge) to the critical-path tracker. No-op when
  // the tracker is off.
  void NoteRecovery(int pid, Duration cost);
  void WakeIfBlocked(int pid);
  void CoordinatedCommit(int initiator, ftx_proto::CoordinationScope scope);
  bool AllDone() const;

  ComputationOptions options_;
  std::vector<std::unique_ptr<ftx_dc::App>> apps_;

  // Probe closures in the registry read subsystem state, but only when a
  // snapshot is taken, so member destruction order is not a hazard.
  ftx_obs::Registry metrics_;
  ftx_obs::Tracer tracer_;

  std::unique_ptr<ftx_sim::Simulator> sim_;
  std::unique_ptr<ftx_sim::Network> network_;
  // env::sim adapters the runtimes consume the simulator/network through.
  std::unique_ptr<ftx::env::SimClock> env_clock_;
  std::unique_ptr<ftx::env::SimTransport> env_transport_;
  std::unique_ptr<ftx_sim::KernelSim> kernel_;
  std::unique_ptr<ftx_sm::Trace> trace_;
  ftx_rec::OutputRecorder recorder_;
  std::unique_ptr<ftx_causal::CausalAudit> audit_;
  std::unique_ptr<ftx_obs::TimeSeriesDb> tsdb_;
  std::unique_ptr<ftx_causal::CriticalPathTracker> critical_path_;

  // Per-process storage stack (one disk/log per machine in DC-disk mode).
  std::vector<std::unique_ptr<ftx_store::DiskModel>> disks_;
  std::vector<std::unique_ptr<ftx_store::StableStore>> stores_;
  std::vector<std::unique_ptr<ftx_store::RedoLog>> redo_logs_;
  std::vector<std::unique_ptr<ftx_store::CommitPipeline>> commit_pipelines_;

  std::vector<std::unique_ptr<ftx_dc::Runtime>> runtimes_;

  std::vector<bool> blocked_;
  std::vector<int64_t> pump_token_;  // invalidates stale scheduled pumps
  std::vector<TimePoint> busy_until_;  // end of each process's current step
  std::vector<TimePoint> done_time_;
  std::vector<int> recovery_attempts_;
  std::vector<bool> recovery_abandoned_;
  int64_t next_coord_message_id_ = 1000000000000000LL;  // disjoint from network ids
  int64_t next_atomic_group_ = 1;
  // AllDone() resume point: runtimes below this index are known done (done
  // is monotone), so the per-event loop check is amortized O(1).
  mutable size_t all_done_scan_ = 0;
  bool started_ = false;
};

}  // namespace ftx

#endif  // FTX_SRC_CORE_COMPUTATION_H_
