#include "src/core/experiment.h"

#include <algorithm>
#include <utility>

#include "src/apps/workloads.h"
#include "src/apps/xpilot.h"
#include "src/common/check.h"

namespace ftx {

std::unique_ptr<Computation> BuildComputation(const RunSpec& spec) {
  int scale = spec.scale > 0 ? spec.scale
                             : ftx_apps::DefaultScale(spec.workload, /*full_scale=*/false);
  ftx_apps::WorkloadSetup setup =
      ftx_apps::MakeWorkload(spec.workload, scale, spec.seed, spec.interactive);

  ComputationOptions options;
  options.seed = spec.seed;
  options.protocol = spec.protocol;
  options.store = spec.store;
  options.mode = spec.mode;
  if (!spec.trace_path.empty()) {
    options.enable_tracing = true;
    options.trace_path = spec.trace_path;
  }
  options.timeseries_path = spec.timeseries_path;
  options.audit = spec.audit;
  if (spec.tweak_options) {
    spec.tweak_options(&options);
  }

  auto computation = std::make_unique<Computation>(options, std::move(setup.apps));
  for (int pid = 0; pid < computation->num_processes(); ++pid) {
    if (pid < static_cast<int>(setup.scripts.size()) &&
        !setup.scripts[static_cast<size_t>(pid)].empty()) {
      computation->SetInputScript(pid, setup.scripts[static_cast<size_t>(pid)]);
    }
  }
  return computation;
}

RunOutput Collect(Computation& computation, const ComputationResult& result) {
  RunOutput output;
  output.result = result;
  output.outputs = computation.recorder();
  output.elapsed = result.end_time - TimePoint();
  output.metrics = computation.metrics().Snapshot();
  if (computation.audit() != nullptr) {
    computation.audit()->Finalize();  // idempotent (Run already finalized)
    output.audited = true;
    output.audit_violations = computation.audit()->violations();
    output.audit_report = computation.audit()->ToJson();
  }
  for (const auto& stats : result.per_process) {
    output.checkpoints += stats.commits;
    output.max_process_commits = std::max(output.max_process_commits, stats.commits);
  }
  // xpilot: sustained frame rate of the slowest client.
  if (computation.num_processes() > 1 &&
      computation.app(0).name() == std::string_view("xpilot-server")) {
    double min_fps = 1e9;
    for (int pid = 1; pid < computation.num_processes(); ++pid) {
      int64_t frames = ftx_apps::XpilotClient::FramesRendered(computation.runtime(pid));
      TimePoint done = result.done_times[static_cast<size_t>(pid)];
      double seconds = (done == TimePoint() ? output.elapsed : done - TimePoint()).seconds();
      if (seconds > 0) {
        min_fps = std::min(min_fps, static_cast<double>(frames) / seconds);
      }
    }
    output.min_client_fps = min_fps >= 1e9 ? 0.0 : min_fps;
  }
  return output;
}

RunOutput RunExperiment(const RunSpec& spec) {
  std::unique_ptr<Computation> computation = BuildComputation(spec);
  ComputationResult result = computation->Run();
  return Collect(*computation, result);
}

OverheadRow MeasureOverhead(const RunSpec& spec) { return MeasureOverhead(spec, nullptr); }

OverheadRow MeasureOverhead(const RunSpec& spec, TrialPool* pool) {
  RunSpec baseline_spec = spec;
  baseline_spec.mode = ftx_dc::RuntimeMode::kBaseline;
  // Only the recoverable run — the one the figures measure — writes the
  // trace. (Serially the baseline's file was immediately overwritten; in
  // parallel the two runs would race on it.)
  baseline_spec.trace_path.clear();
  baseline_spec.timeseries_path.clear();  // recoverable run owns the telemetry file too
  baseline_spec.audit = false;  // nothing to audit without a trace

  RunSpec recoverable_spec = spec;
  recoverable_spec.mode = ftx_dc::RuntimeMode::kRecoverable;

  RunOutput baseline;
  RunOutput recoverable;
  auto run_half = [&](int64_t i) {
    if (i == 0) {
      baseline = RunExperiment(baseline_spec);
    } else {
      recoverable = RunExperiment(recoverable_spec);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(2, run_half);
  } else {
    run_half(0);
    run_half(1);
  }

  OverheadRow row;
  row.workload = spec.workload;
  row.protocol = spec.protocol;
  row.store = spec.store;
  row.checkpoints = recoverable.checkpoints;
  row.baseline = baseline.elapsed;
  row.recoverable = recoverable.elapsed;
  if (recoverable.elapsed.seconds() > 0) {
    row.checkpoints_per_second =
        static_cast<double>(recoverable.max_process_commits) / recoverable.elapsed.seconds();
  }
  if (baseline.elapsed.nanos() > 0) {
    row.overhead_percent = 100.0 *
                           static_cast<double>((recoverable.elapsed - baseline.elapsed).nanos()) /
                           static_cast<double>(baseline.elapsed.nanos());
  }
  row.baseline_fps = baseline.min_client_fps;
  row.recoverable_fps = recoverable.min_client_fps;
  row.recoverable_metrics = std::move(recoverable.metrics);
  row.audited = recoverable.audited;
  row.audit_violations = recoverable.audit_violations;
  row.audit_report = std::move(recoverable.audit_report);
  return row;
}

RecoveryCheck VerifyConsistentRecovery(
    const RunSpec& spec, const std::function<void(Computation&)>& schedule_failures) {
  // Reference: the same workload, failure-free, in baseline mode (identical
  // inputs → identical visible stream).
  RunSpec reference_spec = spec;
  reference_spec.mode = ftx_dc::RuntimeMode::kBaseline;
  RunOutput reference = RunExperiment(reference_spec);

  RunSpec failed_spec = spec;
  failed_spec.mode = ftx_dc::RuntimeMode::kRecoverable;
  std::unique_ptr<Computation> computation = BuildComputation(failed_spec);
  schedule_failures(*computation);
  ComputationResult result = computation->Run();
  RunOutput recovered = Collect(*computation, result);

  ftx_rec::ConsistencyResult consistency = ftx_rec::CheckConsistentRecovery(
      reference.outputs, recovered.outputs, computation->num_processes(),
      /*require_complete=*/true);

  RecoveryCheck check;
  check.consistent = consistency.consistent;
  check.completed = result.all_done;
  check.duplicates_tolerated = consistency.duplicates_tolerated;
  check.rollbacks = result.total_rollbacks;
  check.diagnostic = consistency.diagnostic;
  return check;
}

}  // namespace ftx
