// One-call experiment drivers used by the benches, examples, and
// integration tests: run a named workload under a protocol/store
// combination, measure commits and overhead against the unrecoverable
// baseline, and verify consistent recovery across injected failures.

#ifndef FTX_SRC_CORE_EXPERIMENT_H_
#define FTX_SRC_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/core/computation.h"
#include "src/core/parallel.h"
#include "src/recovery/consistency.h"

namespace ftx {

struct RunSpec {
  std::string workload = "nvi";
  int scale = 0;  // 0 = DefaultScale(workload, /*full_scale=*/false)
  uint64_t seed = 1;
  bool interactive = true;
  std::string protocol = "cpvs";
  StoreKind store = StoreKind::kRio;
  ftx_dc::RuntimeMode mode = ftx_dc::RuntimeMode::kRecoverable;
  // Non-empty: enable simulated-timeline tracing and write a Chrome
  // trace_event JSON file here when the run finishes.
  std::string trace_path;
  // Non-empty: enable sim-time telemetry sampling (src/obs/tsdb/) and write
  // the ftx.timeseries JSONL here when the run finishes. Like trace_path,
  // MeasureOverhead gives this to the recoverable run only.
  std::string timeseries_path;
  // Live causal audit (recoverable runs only; see ComputationOptions::audit).
  bool audit = false;
  // Optional hook to adjust computation options (failure schedules are
  // installed by the caller on the returned computation instead).
  std::function<void(ComputationOptions*)> tweak_options;
};

// A completed run with everything the measurements need.
struct RunOutput {
  ComputationResult result;
  ftx_rec::OutputRecorder outputs;
  Duration elapsed;
  int64_t checkpoints = 0;      // total commits across processes
  int64_t max_process_commits = 0;
  double min_client_fps = 0.0;  // xpilot only: slowest client's frame rate
  // Every instrument the computation's registry held at the end of the run
  // (simulator/network/kernel activity, per-process runtime stats, disk and
  // redo-log I/O). Serializes via MetricsSnapshot::ToJson.
  ftx_obs::MetricsSnapshot metrics;
  // When the run was audited: the causal-audit report (CausalAudit::ToJson)
  // and its Save-work violation count; audit_report is a JSON null
  // otherwise.
  bool audited = false;
  int64_t audit_violations = 0;
  ftx_obs::Json audit_report;
};

// Builds the computation for a spec (callers may schedule failures before
// running).
std::unique_ptr<Computation> BuildComputation(const RunSpec& spec);

// Extracts measurements from a finished computation.
RunOutput Collect(Computation& computation, const ComputationResult& result);

// Builds + runs in one call.
RunOutput RunExperiment(const RunSpec& spec);

// Fig. 8 row: run the baseline and the recoverable version, compute
// overhead.
struct OverheadRow {
  std::string workload;
  std::string protocol;
  StoreKind store = StoreKind::kRio;
  int64_t checkpoints = 0;
  double checkpoints_per_second = 0.0;
  Duration baseline;
  Duration recoverable;
  double overhead_percent = 0.0;
  double baseline_fps = 0.0;     // xpilot
  double recoverable_fps = 0.0;  // xpilot
  // Snapshot of the recoverable run's registry (the run the figures
  // measure); carried into the per-row "metrics" object of --json output.
  ftx_obs::MetricsSnapshot recoverable_metrics;
  // Causal audit of the recoverable run when spec.audit was set (the
  // baseline half is never audited — it has no trace).
  bool audited = false;
  int64_t audit_violations = 0;
  ftx_obs::Json audit_report;
};
OverheadRow MeasureOverhead(const RunSpec& spec);

// Same measurement with the baseline and recoverable runs fanned across
// `pool` (they are independent simulations). The baseline run never writes a
// trace — only the recoverable run, the one the figures measure, honours
// spec.trace_path — so the emitted row and trace are identical to the serial
// overload's for any pool size. pool == nullptr falls back to serial.
OverheadRow MeasureOverhead(const RunSpec& spec, TrialPool* pool);

// Runs the workload twice — failure-free baseline as the reference, then
// the recoverable version with `schedule_failures` applied — and checks
// consistent recovery of the visible output.
struct RecoveryCheck {
  bool consistent = false;
  bool completed = false;
  int duplicates_tolerated = 0;
  int64_t rollbacks = 0;
  std::string diagnostic;
};
RecoveryCheck VerifyConsistentRecovery(
    const RunSpec& spec, const std::function<void(Computation&)>& schedule_failures);

}  // namespace ftx

#endif  // FTX_SRC_CORE_EXPERIMENT_H_
