#include "src/core/fault_study.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/apps/workloads.h"
#include "src/common/check.h"
#include "src/core/computation.h"
#include "src/faults/calibration.h"
#include "src/faults/injector.h"
#include "src/faults/os_faults.h"
#include "src/statemachine/invariants.h"

namespace ftx {
namespace {

// Small non-interactive runs keep ~50-crash studies fast while leaving room
// for activation + latency tails before the workload ends.
int StudyScale(const std::string& app_name) { return app_name == "nvi" ? 600 : 600; }

struct StudySetup {
  std::unique_ptr<Computation> computation;
  ftx_fault::FaultyApp* faulty = nullptr;
};

StudySetup BuildFaultyComputation(const std::string& app_name, const ftx_fault::FaultSpec& spec,
                                  uint64_t seed, const std::string& protocol, StoreKind store,
                                  bool audit) {
  int scale = StudyScale(app_name);
  ftx_apps::WorkloadSetup setup =
      ftx_apps::MakeWorkload(app_name, scale, seed, /*interactive=*/false);
  FTX_CHECK_EQ(setup.apps.size(), 1u);

  auto faulty = std::make_unique<ftx_fault::FaultyApp>(std::move(setup.apps[0]), spec);
  ftx_fault::FaultyApp* faulty_raw = faulty.get();
  std::vector<std::unique_ptr<ftx_dc::App>> apps;
  apps.push_back(std::move(faulty));

  ComputationOptions options;
  options.seed = seed;
  options.protocol = protocol;
  options.store = store;
  options.auto_recover = true;
  options.recovery_delay = Milliseconds(5);
  options.max_recovery_attempts = 2;
  options.max_sim_time = Seconds(600.0);
  options.audit = audit;

  StudySetup result;
  result.computation = std::make_unique<Computation>(std::move(options), std::move(apps));
  result.computation->SetInputScript(0, setup.scripts[0]);
  result.faulty = faulty_raw;
  return result;
}

void CollectAudit(Computation& computation, FaultRunResult* result) {
  ftx_causal::CausalAudit* audit = computation.audit();
  if (audit == nullptr) {
    return;
  }
  audit->Finalize();  // idempotent (Run already finalized)
  result->audited = true;
  result->audit_violations = audit->violations();
  result->audit_incidents = audit->flight().total_incidents();
  if (!audit->flight().incidents().empty()) {
    result->audit_first_dump = audit->flight().incidents().front().dump;
  }
}

FaultRunResult RunPropagationFault(const std::string& app_name, ftx_fault::FaultType type,
                                   uint64_t seed, const std::string& protocol, StoreKind store,
                                   double slow_detection_probability,
                                   double continue_probability, bool audit) {
  ftx::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  ftx_fault::FaultSpec spec;
  spec.type = type;
  int scale = StudyScale(app_name);
  spec.activation_step =
      static_cast<int64_t>(rng.NextInRange(scale / 5, (scale * 7) / 10));
  spec.slow_detection_probability = slow_detection_probability;
  spec.continue_probability = continue_probability;
  spec.seed = rng.NextU64();

  StudySetup setup = BuildFaultyComputation(app_name, spec, seed, protocol, store, audit);
  ComputationResult run = setup.computation->Run();

  FaultRunResult result;
  CollectAudit(*setup.computation, &result);
  const ftx_fault::InjectionOutcome& outcome = setup.faulty->outcome();
  result.crashed = outcome.crashed;
  result.benign = outcome.benign_overwrite && !outcome.crashed;
  if (!result.crashed) {
    return result;
  }

  // Lose-work measurement from the recorded trace.
  ftx_sm::LoseWorkResult lose_work =
      ftx_sm::CheckLoseWorkOperational(setup.computation->trace(), 0);
  result.violated_lose_work = lose_work.applicable && lose_work.violated;

  // End-to-end outcome: with the fault suppressed on reexecution, the run
  // completes iff rollback removed the corruption, i.e. iff no commit
  // landed between activation and crash.
  result.recovery_failed = !run.all_done || setup.computation->recovery_abandoned(0);
  result.trace_and_outcome_agree = result.violated_lose_work == result.recovery_failed;
  return result;
}

}  // namespace

FaultRunResult RunApplicationFault(const std::string& app_name, ftx_fault::FaultType type,
                                   uint64_t seed, const std::string& protocol, StoreKind store,
                                   bool audit) {
  return RunPropagationFault(app_name, type, seed, protocol, store,
                             ftx_fault::AppFaultSlowDetectionProbability(app_name, type),
                             ftx_fault::ContinueProbability(type), audit);
}

FaultRunResult RunOsFault(const std::string& app_name, ftx_fault::FaultType type, uint64_t seed,
                          const std::string& protocol, StoreKind store, bool audit) {
  ftx::Rng rng(seed * 0xd1b54a32d192ed03ULL + 5);
  ftx_fault::OsFaultPlan plan = ftx_fault::PlanOsFault(&rng, app_name, type);

  if (plan.manifestation == ftx_fault::OsFaultManifestation::kPropagationFailure) {
    FaultRunResult result = RunPropagationFault(app_name, type, seed, protocol, store,
                                                plan.slow_detection_probability,
                                                plan.continue_probability, audit);
    // OS propagation failures always crash *something* — if the corruption
    // was benignly overwritten in the application, the kernel itself still
    // went down; treat it as a stop failure instead (recovery succeeds).
    if (!result.crashed) {
      result.crashed = true;
      result.recovery_failed = false;
      result.violated_lose_work = false;
    }
    return result;
  }

  // Stop failure: the machine halts mid-run and reboots; recovery restarts
  // the application from its last commit. Run it for real.
  ftx_fault::FaultSpec no_fault;
  no_fault.activation_step = -1;  // never activates
  StudySetup setup = BuildFaultyComputation(app_name, no_fault, seed, protocol, store, audit);
  // Crash somewhere in the middle of the (non-interactive) run.
  Duration when = Seconds(0.02 + 0.2 * plan.when_fraction);
  setup.computation->ScheduleOsStopFailure(TimePoint() + when, /*reboot_delay=*/Seconds(1.0));
  ComputationResult run = setup.computation->Run();

  FaultRunResult result;
  CollectAudit(*setup.computation, &result);
  result.crashed = true;
  result.recovery_failed = !run.all_done;
  result.trace_and_outcome_agree = true;
  return result;
}

std::vector<FaultRunResult> RunCrashingTrials(
    TrialPool* pool, int target, uint64_t seed_base, int max_attempts,
    const std::function<FaultRunResult(uint64_t seed)>& attempt) {
  std::vector<FaultRunResult> crashing;
  if (target <= 0 || max_attempts <= 0) {
    return crashing;
  }
  // Attempts run in waves sized to the pool, but the crash count always
  // folds in attempt order and stops at `target`, so the returned vector is
  // the same for every pool size (a wave may compute attempts past the
  // stopping point; they are discarded). Serial runs use waves of one and
  // therefore never compute a surplus attempt — exactly the old loop.
  const int64_t wave =
      pool != nullptr && pool->jobs() > 1 ? static_cast<int64_t>(pool->jobs()) * 2 : 1;
  int64_t issued = 0;
  while (static_cast<int>(crashing.size()) < target && issued < max_attempts) {
    const int64_t n = std::min<int64_t>(wave, max_attempts - issued);
    std::vector<FaultRunResult> results(static_cast<size_t>(n));
    auto body = [&](int64_t i) {
      results[static_cast<size_t>(i)] =
          attempt(DeriveTrialSeed(seed_base, static_cast<uint64_t>(issued + i)));
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, body);
    } else {
      for (int64_t i = 0; i < n; ++i) {
        body(i);
      }
    }
    issued += n;
    for (FaultRunResult& result : results) {
      if (!result.crashed) {
        continue;  // the paper's methodology: only crashing runs count
      }
      crashing.push_back(result);
      if (static_cast<int>(crashing.size()) >= target) {
        break;
      }
    }
  }
  return crashing;
}

FaultStudyRow RunFaultStudy(const FaultStudySpec& spec) {
  FaultStudyRow row;
  row.type = spec.type;
  std::vector<FaultRunResult> crashes = RunCrashingTrials(
      spec.pool, spec.target_crashes, spec.seed_base, spec.target_crashes * 20,
      [&spec](uint64_t seed) {
        return spec.kind == FaultStudyKind::kOs
                   ? RunOsFault(spec.app, spec.type, seed, spec.protocol, spec.store, spec.audit)
                   : RunApplicationFault(spec.app, spec.type, seed, spec.protocol, spec.store,
                                         spec.audit);
      });
  row.crashes = static_cast<int>(crashes.size());
  row.audited = spec.audit;
  for (const FaultRunResult& result : crashes) {
    if (result.violated_lose_work) {
      ++row.violations;
    }
    if (result.recovery_failed) {
      ++row.failed_recoveries;
    }
    row.audit_violations += result.audit_violations;
    row.audit_incidents += result.audit_incidents;
    if (!result.audit_first_dump.empty() && row.audit_incident_dumps.size() < 2) {
      row.audit_incident_dumps.push_back(result.audit_first_dump);
    }
  }
  if (row.crashes > 0) {
    row.violation_fraction = static_cast<double>(row.violations) / row.crashes;
    row.failed_recovery_fraction = static_cast<double>(row.failed_recoveries) / row.crashes;
  }
  return row;
}

}  // namespace ftx
