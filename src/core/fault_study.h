// Drivers for the §4 fault-injection studies (Tables 1 and 2).
//
// Table 1 (application faults): inject one of the seven fault types into a
// run of nvi or postgres upholding Save-work with CPVS on Discount
// Checking, keep only runs that crash, and measure whether the process
// committed between fault activation and the crash — a Lose-work violation,
// detected from the recorded trace by the same checker the theory module
// exports. An end-to-end cross-check also recovers the process (with the
// fault suppressed) and verifies that recovery succeeds iff no such commit
// happened.
//
// Table 2 (operating-system faults): each injected kernel fault manifests
// as a stop failure (recovery always possible) or as a propagation failure
// into application state (behaving like Table 1), with the manifestation
// ratio driven by the application's syscall rate. The reported number is
// the fraction of crashes from which the application failed to recover.

#ifndef FTX_SRC_CORE_FAULT_STUDY_H_
#define FTX_SRC_CORE_FAULT_STUDY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/computation.h"
#include "src/core/parallel.h"
#include "src/faults/fault_types.h"

namespace ftx {

struct FaultRunResult {
  bool crashed = false;          // at least one crash event executed
  bool benign = false;           // corruption never used / overwritten
  bool violated_lose_work = false;  // commit between activation and crash
  bool recovery_failed = false;  // process never completed its run
  bool trace_and_outcome_agree = false;  // end-to-end cross-check
  // Filled when the run was audited (see FaultStudySpec::audit): online
  // Save-work violation count and the number of flight-recorder incidents
  // (crash injections, abandoned recoveries, Save-work findings).
  bool audited = false;
  int64_t audit_violations = 0;
  int64_t audit_incidents = 0;
  // First flight-recorder dump of the run (crash incidents carry the causal
  // chain to the crash event), empty when none was recorded.
  std::string audit_first_dump;
};

// One Table 1 run: inject `type` into `app_name` ("nvi" or "postgres") with
// the given seed. `protocol` defaults to CPVS, the paper's choice (and the
// best protocol for not violating Lose-work on single-process apps).
FaultRunResult RunApplicationFault(const std::string& app_name, ftx_fault::FaultType type,
                                   uint64_t seed, const std::string& protocol = "cpvs",
                                   StoreKind store = StoreKind::kRio, bool audit = false);

// One Table 2 run: inject an operating-system fault of `type` while
// `app_name` runs. Stop-failure manifestations schedule a whole-machine
// stop; propagation manifestations corrupt application state.
FaultRunResult RunOsFault(const std::string& app_name, ftx_fault::FaultType type, uint64_t seed,
                          const std::string& protocol = "cpvs",
                          StoreKind store = StoreKind::kRio, bool audit = false);

// Aggregated study: `target_crashes` crashing runs of one fault type.
struct FaultStudyRow {
  ftx_fault::FaultType type = ftx_fault::FaultType::kStackBitFlip;
  int crashes = 0;
  int violations = 0;       // Table 1 numerator
  int failed_recoveries = 0;  // Table 2 numerator
  double violation_fraction = 0.0;
  double failed_recovery_fraction = 0.0;
  // Aggregated over the crashing runs when FaultStudySpec::audit was set.
  bool audited = false;
  int64_t audit_violations = 0;
  int64_t audit_incidents = 0;
  // Flight-recorder dumps from the first few crashing runs, folded in
  // attempt order (deterministic for any pool size).
  std::vector<std::string> audit_incident_dumps;
};

// Which study the spec drives: Table 1 injects into the application's own
// code; Table 2 injects into the simulated kernel.
enum class FaultStudyKind { kApplication, kOs };

// Everything a study needs, in named fields.
struct FaultStudySpec {
  std::string app = "nvi";
  ftx_fault::FaultType type = ftx_fault::FaultType::kStackBitFlip;
  FaultStudyKind kind = FaultStudyKind::kApplication;
  int target_crashes = 50;
  uint64_t seed_base = 1;
  std::string protocol = "cpvs";
  StoreKind store = StoreKind::kRio;
  // Live causal audit on every recoverable run of the study (strictly
  // observational; see ComputationOptions::audit). A fault study with
  // Save-work upheld must report zero online violations even across crashes
  // and recoveries — the crashes themselves land as flight-recorder
  // incidents.
  bool audit = false;
  // Non-null: attempts fan out across the pool in deterministic waves (each
  // attempt's seed comes from DeriveTrialSeed(seed_base, attempt) and the
  // crash count folds in attempt order, so any --jobs value produces the
  // same row). Null: same seeds and fold order, one attempt at a time.
  TrialPool* pool = nullptr;
};

FaultStudyRow RunFaultStudy(const FaultStudySpec& spec);

// The wave engine under RunFaultStudy, reusable for custom trials (see
// bench/ablation_crash_latency): runs attempt(DeriveTrialSeed(seed_base, i))
// for i = 0, 1, ... until `target` attempts report crashed, never issuing
// more than `max_attempts`, and returns the crashing results in attempt
// order. Deterministic for a fixed seed_base regardless of pool size.
std::vector<FaultRunResult> RunCrashingTrials(
    TrialPool* pool, int target, uint64_t seed_base, int max_attempts,
    const std::function<FaultRunResult(uint64_t seed)>& attempt);

}  // namespace ftx

#endif  // FTX_SRC_CORE_FAULT_STUDY_H_
