#include "src/core/parallel.h"

#include <algorithm>

#include "src/obs/prof/prof.h"

namespace ftx {

int TrialPool::DefaultJobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

TrialPool::TrialPool(int jobs) : jobs_(jobs <= 0 ? DefaultJobs() : jobs) {
  // The calling thread is the jobs_-th worker: it drains its own batches in
  // ParallelFor, so only jobs_ - 1 dedicated threads are needed.
  workers_.reserve(static_cast<size_t>(jobs_ - 1));
  for (int i = 0; i < jobs_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TrialPool::~TrialPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void TrialPool::RunOneIndex(Batch* batch, std::unique_lock<std::mutex>& lock) {
  int64_t index = batch->next++;
  ++batch->active;
  if (batch->next >= batch->n) {
    open_batches_.erase(std::find(open_batches_.begin(), open_batches_.end(), batch));
  }
  lock.unlock();
  std::exception_ptr error;
  try {
    (*batch->fn)(index);
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  if (error && (batch->error_index < 0 || index < batch->error_index)) {
    // Keep the lowest-index exception so the rethrow is deterministic.
    batch->error = error;
    batch->error_index = index;
  }
  if (--batch->active == 0 && batch->next >= batch->n) {
    batch->done_cv.notify_all();
  }
}

void TrialPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!open_batches_.empty()) {
      // Oldest batch first: outer batches were opened before the inner
      // batches their trials spawn, so finishing them first frees their
      // callers soonest.
      RunOneIndex(open_batches_.front(), lock);
      continue;
    }
    if (shutdown_) {
      return;
    }
    work_cv_.wait(lock);
  }
}

void TrialPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  // Propagate the caller's active wall-clock profiler (ftx::prof) into
  // whichever worker runs each index, so a profiled bench row that shards
  // trials still captures every scope in one profile. The per-thread shards
  // keep the hot path contention-free; Profiler::Merge() re-aggregates them
  // deterministically. No-op when profiling is off.
  if (ftx_prof::Profiler* profiler = ftx_prof::Profiler::ActiveOnThisThread();
      profiler != nullptr) {
    const std::function<void(int64_t)> wrapped = [profiler, &fn](int64_t i) {
      ftx_prof::Activation activate(profiler);
      fn(i);
    };
    ParallelForImpl(n, wrapped);
    return;
  }
  ParallelForImpl(n, fn);
}

void TrialPool::ParallelForImpl(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  if (jobs_ == 1 || n == 1) {
    // Serial fast path with the same contract as the sharded one: every
    // index runs, the lowest-index exception is rethrown afterwards.
    std::exception_ptr error;
    for (int64_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
        }
      }
    }
    if (error) {
      std::rethrow_exception(error);
    }
    return;
  }

  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  std::unique_lock<std::mutex> lock(mu_);
  open_batches_.push_back(&batch);
  work_cv_.notify_all();
  // Help with our own batch until every index is claimed, then wait for the
  // stragglers other threads still run. Workers never touch `batch` after
  // its last active index finishes, so stack ownership is safe.
  while (batch.next < batch.n) {
    RunOneIndex(&batch, lock);
  }
  while (batch.active > 0) {
    batch.done_cv.wait(lock);
  }
  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

}  // namespace ftx
