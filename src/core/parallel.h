// Parallel trial engine for the experiment stack.
//
// The paper's evaluation is embarrassingly parallel: thousands of
// independent fault-injection trials (Tables 1-2, Fig. 7) and
// protocol-by-workload measurement rows (Fig. 8) each build their own
// Simulator/Computation from a seed and never touch shared state. TrialPool
// fans that work out across a fixed set of worker threads while keeping the
// results bit-identical to a serial run:
//
//  * per-trial seeds are derived from (base_seed, trial_index) via
//    ftx::DeriveTrialSeed (a SplitMix64 stream jump), never from shared RNG
//    state, so a trial's inputs do not depend on scheduling;
//  * results are gathered into a vector indexed by trial, so downstream
//    folds see them in trial order regardless of completion order;
//  * the calling thread participates in its own batch, so nested
//    ParallelFor calls (a bench row that itself shards a fault study) can
//    never deadlock the fixed-size pool.
//
// Thread-safety contract for trial bodies: each trial must confine its
// mutable state (Computation, Registry, Rng) to itself. The process-global
// log state is thread-safe and its simulated-time prefix is per-thread (see
// src/common/log.h).

#ifndef FTX_SRC_CORE_PARALLEL_H_
#define FTX_SRC_CORE_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace ftx {

class TrialPool {
 public:
  // jobs <= 0 selects hardware concurrency. jobs == 1 runs everything
  // inline on the calling thread (no worker threads, no locking).
  explicit TrialPool(int jobs = 0);
  ~TrialPool();

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  int jobs() const { return jobs_; }

  // std::thread::hardware_concurrency(), clamped to at least 1.
  static int DefaultJobs();

  // Runs fn(i) for every i in [0, n), fanning across the pool; the calling
  // thread helps drain its own batch, so fn may itself call ParallelFor.
  // All n indices run even if some throw; afterwards the lowest-index
  // exception (a deterministic choice) is rethrown. The pool remains usable
  // after an exception. When the calling thread has an active ftx::prof
  // profiler, every index runs under it (per-thread shards; see
  // src/obs/prof/prof.h), so profiles span sharded work.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void ParallelForImpl(int64_t n, const std::function<void(int64_t)>& fn);

  struct Batch {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t n = 0;
    int64_t next = 0;    // next unclaimed index (guarded by pool mu_)
    int64_t active = 0;  // claimed but unfinished indices
    std::condition_variable done_cv;
    std::exception_ptr error;
    int64_t error_index = -1;
  };

  void WorkerLoop();
  // Claims and runs one index of `batch`. `lock` is held on entry and exit,
  // released while the trial body runs.
  void RunOneIndex(Batch* batch, std::unique_lock<std::mutex>& lock);

  int jobs_ = 1;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::vector<Batch*> open_batches_;  // batches with unclaimed indices
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Runs `trial(i, DeriveTrialSeed(base_seed, i))` for every trial in
// [0, num_trials) across the pool and returns the results in trial order.
// The result type must be default-constructible.
template <typename Fn>
auto RunSharded(TrialPool& pool, int64_t num_trials, uint64_t base_seed, Fn&& trial)
    -> std::vector<decltype(trial(int64_t{0}, uint64_t{0}))> {
  using Result = decltype(trial(int64_t{0}, uint64_t{0}));
  std::vector<Result> results(static_cast<size_t>(num_trials > 0 ? num_trials : 0));
  pool.ParallelFor(num_trials, [&](int64_t i) {
    results[static_cast<size_t>(i)] = trial(i, DeriveTrialSeed(base_seed, static_cast<uint64_t>(i)));
  });
  return results;
}

}  // namespace ftx

#endif  // FTX_SRC_CORE_PARALLEL_H_
