#include "src/env/env.h"

#include <utility>

#include "src/common/check.h"

namespace ftx::env {

Environment::Builder& Environment::Builder::WithClock(Clock* clock) {
  env_.clock = clock;
  return *this;
}

Environment::Builder& Environment::Builder::WithTransport(Transport* transport) {
  env_.transport = transport;
  return *this;
}

Environment::Builder& Environment::Builder::WithKernel(ftx_sim::KernelSim* kernel) {
  env_.kernel = kernel;
  return *this;
}

Environment::Builder& Environment::Builder::WithTrace(ftx_sm::Trace* trace) {
  env_.trace = trace;
  return *this;
}

Environment::Builder& Environment::Builder::WithRecorder(ftx_rec::OutputRecorder* recorder) {
  env_.recorder = recorder;
  return *this;
}

Environment::Builder& Environment::Builder::WithStore(ftx_store::StableStore* store) {
  env_.store = store;
  return *this;
}

Environment::Builder& Environment::Builder::WithRedoLog(ftx_store::RedoLog* redo_log) {
  env_.redo_log = redo_log;
  return *this;
}

Environment::Builder& Environment::Builder::WithCommitPipeline(
    ftx_store::CommitPipeline* pipeline) {
  env_.commit_pipeline = pipeline;
  return *this;
}

Environment::Builder& Environment::Builder::WithCoordinatedCommit(
    std::function<void(ftx_proto::CoordinationScope)> fn) {
  env_.coordinated_commit = std::move(fn);
  return *this;
}

Environment::Builder& Environment::Builder::WithLatestAtomicGroup(std::function<int64_t()> fn) {
  env_.latest_atomic_group = std::move(fn);
  return *this;
}

Environment::Builder& Environment::Builder::WithMetrics(ftx_obs::Registry* metrics) {
  env_.metrics = metrics;
  return *this;
}

Environment::Builder& Environment::Builder::WithTracer(ftx_obs::Tracer* tracer) {
  env_.tracer = tracer;
  return *this;
}

Environment::Builder& Environment::Builder::WithAudit(ftx_causal::CausalAudit* audit) {
  env_.audit = audit;
  return *this;
}

namespace {
void RequireField(bool present, const char* field) {
  FTX_CHECK_MSG(present, "ftx::env::Environment: missing required dependency '%s'", field);
}
}  // namespace

Environment Environment::Builder::Build() const {
  RequireField(env_.clock != nullptr, "clock");
  RequireField(env_.transport != nullptr, "transport");
  RequireField(env_.kernel != nullptr, "kernel");
  RequireField(env_.recorder != nullptr, "recorder");
  return env_;
}

Environment Environment::Builder::BuildRecoverable() const {
  Environment env = Build();
  RequireField(env.trace != nullptr, "trace");
  RequireField(env.store != nullptr, "store");
  return env;
}

}  // namespace ftx::env
