// Backend-agnostic execution environment seam.
//
// The Discount Checking runtime (ftx_dc::Runtime) and the Save-work drivers
// were written against the discrete-event simulator directly; this header
// extracts the three capabilities they actually consume — a clock, a message
// transport with recovery-buffer semantics, and a durable append medium —
// into small virtual interfaces so the same runtime can execute on different
// substrates:
//
//   env::sim      adapters over ftx_sim (src/env/sim_env.h). Pure forwarding:
//                 every simulated quantity, golden output, torture state and
//                 causal-audit report stays byte-identical. The simulator
//                 remains the deterministic oracle.
//   env::threads  real std::thread processes (src/env/thread_env.h): an
//                 in-process channel transport, wall-clock time, a
//                 file-backed stable medium whose unsynced writes genuinely
//                 die with the process (kill-flag crash injection).
//
// Interface contracts (what every backend must guarantee):
//
//   Clock         Now() is monotone non-decreasing. Charge(d) accounts d of
//                 execution cost (sim: no-op — cost is charged by scheduling;
//                 threads: accumulates into Now). NextNoise(bound) is the
//                 backend's perturbation source for transient-ND events.
//   Transport     FIFO per (src, dst); Send returns a transport-assigned id
//                 that is strictly increasing in global send order. Delivered
//                 messages are RETAINED per receiver until ReleaseAllDelivered
//                 (commit) and re-queued in original order by RequeueRetained
//                 (rollback) — the paper's redoable-receive property (§2.1).
//                 DropNewestRetained forgets the newest retained message (a
//                 logged receive is replayed from the ND log, not the buffer).
//   StableMedium  Append buffers bytes volatilely; only Sync makes the bytes
//                 durable. CrashDropBuffered models process/OS death: every
//                 byte appended since the last Sync is lost. ReadDurable
//                 returns exactly the synced prefix.
//
// Environment aggregates the per-process dependency set the runtime needs
// and replaces the old raw-pointer grab-bag RuntimeDeps; its Builder
// validates every required field at construction with a named-field error.

#ifndef FTX_SRC_ENV_ENV_H_
#define FTX_SRC_ENV_ENV_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/sim_time.h"

namespace ftx_sim {
class KernelSim;
}  // namespace ftx_sim
namespace ftx_sm {
class Trace;
}  // namespace ftx_sm
namespace ftx_rec {
class OutputRecorder;
}  // namespace ftx_rec
namespace ftx_store {
class StableStore;
class RedoLog;
class CommitPipeline;
}  // namespace ftx_store
namespace ftx_obs {
class Registry;
class Tracer;
}  // namespace ftx_obs
namespace ftx_causal {
class CausalAudit;
}  // namespace ftx_causal
namespace ftx_proto {
enum class CoordinationScope;
}  // namespace ftx_proto

namespace ftx::env {

// A message in flight or delivered. Formerly ftx_sim::Message; the sim
// namespace keeps an alias so existing applications compile unchanged.
struct Message {
  int64_t id = -1;
  int src = -1;
  int dst = -1;
  ftx::Bytes payload;
  ftx::TimePoint sent_at;
  ftx::TimePoint delivered_at;
};

// Time source + execution-cost accounting.
class Clock {
 public:
  virtual ~Clock() = default;

  // Current time. Monotone non-decreasing.
  virtual ftx::TimePoint Now() const = 0;

  // Accounts `work` of execution cost. The sim backend ignores this (cost is
  // charged by scheduling the next step later); the threads backend folds it
  // into Now so charged virtual work is visible in timestamps.
  virtual void Charge(ftx::Duration work) = 0;

  // Perturbation source for transient-ND events (gettimeofday noise).
  // Uniform in [0, bound). The sim backend draws from the simulator's RNG
  // stream so replacing direct rng use is byte-identical.
  virtual uint64_t NextNoise(uint64_t bound) = 0;
};

// Message fabric with the recovery-buffer semantics recovery depends on.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int num_processes() const = 0;

  // Queues a message for delivery; returns its id (strictly increasing in
  // global send order).
  virtual int64_t Send(int src, int dst, ftx::Bytes payload) = 0;

  // True if a message is waiting in dst's inbox right now.
  virtual bool HasPending(int dst) const = 0;

  // Pops the next message for dst (a receive event); the message moves to
  // dst's recovery buffer. nullopt if the inbox is empty.
  virtual std::optional<Message> Deliver(int dst) = 0;

  // MSG_PEEK: next message for dst without consuming it, or nullptr.
  virtual const Message* PeekNext(int dst) const = 0;

  // dst committed: every message it has consumed is covered by the commit,
  // so all retained copies are discarded.
  virtual void ReleaseAllDelivered(int dst) = 0;

  // A just-delivered message was captured in dst's ND log; it must not ALSO
  // be redelivered from the recovery buffer on rollback. `message_id` must
  // be the newest retained message.
  virtual void DropNewestRetained(int dst, int64_t message_id) = 0;

  // dst rolled back: retained messages return to the *front* of its inbox in
  // original delivery order so reexecution re-receives them.
  virtual void RequeueRetained(int dst) = 0;

  // Invoked whenever a message lands in dst's inbox (blocked receivers wake
  // on it). One callback per process.
  virtual void SetArrivalCallback(int dst, std::function<void()> callback) = 0;
};

// Durable append medium with an explicit volatile/durable boundary.
class StableMedium {
 public:
  virtual ~StableMedium() = default;

  virtual std::string_view name() const = 0;

  // Buffers bytes. NOT durable until Sync.
  virtual void Append(const void* data, size_t size) = 0;

  // Makes every buffered byte durable.
  virtual void Sync() = 0;

  // Crash model: the process (or OS) died — all bytes appended since the
  // last Sync are lost.
  virtual void CrashDropBuffered() = 0;

  // Bytes that would survive a crash right now.
  virtual int64_t durable_bytes() const = 0;

  // Reads back exactly the durable prefix (what recovery sees).
  virtual void ReadDurable(ftx::Bytes* out) const = 0;

  // Discards all state, durable included (test reset / reformat).
  virtual void Reset() = 0;
};

// Crash injection flag shared between a process and its killer. When armed,
// the commit path dies between buffering a record and syncing it — the
// classic torn-commit window. Both backends honor it so crash handling is
// one code path; under env::threads the killer is genuinely another thread.
struct KillSwitch {
  std::atomic<bool> armed{false};
};

// Per-process dependency set for ftx_dc::Runtime. Replaces RuntimeDeps.
//
// clock/transport/kernel/recorder are required for every runtime; trace and
// store are additionally required for recoverable modes (the Runtime
// constructor enforces that, since the mode is its parameter, with the same
// named-field style). Everything else is optional.
struct Environment {
  Clock* clock = nullptr;
  Transport* transport = nullptr;
  ftx_sim::KernelSim* kernel = nullptr;
  ftx_sm::Trace* trace = nullptr;
  ftx_rec::OutputRecorder* recorder = nullptr;
  ftx_store::StableStore* store = nullptr;
  ftx_store::RedoLog* redo_log = nullptr;
  // Optional group-commit staging pipeline over redo_log. When present and
  // its policy is enabled, the runtime stages commits here and a whole
  // window is persisted under one sync pair (flushed before anything
  // externally visible escapes — the Save-work invariant is untouched).
  ftx_store::CommitPipeline* commit_pipeline = nullptr;
  // Initiates a coordinated commit round over the given participant scope.
  std::function<void(ftx_proto::CoordinationScope)> coordinated_commit;
  // Atomic group id of the most recent coordinated round (2PC bookkeeping).
  std::function<int64_t()> latest_atomic_group;
  ftx_obs::Registry* metrics = nullptr;    // optional
  ftx_obs::Tracer* tracer = nullptr;       // optional
  ftx_causal::CausalAudit* audit = nullptr;  // optional

  class Builder;
};

// Validating builder: Build() FTX_CHECKs every required dependency and names
// the missing field, replacing the scattered null-pointer crashes the old
// RuntimeDeps produced.
class Environment::Builder {
 public:
  Builder& WithClock(Clock* clock);
  Builder& WithTransport(Transport* transport);
  Builder& WithKernel(ftx_sim::KernelSim* kernel);
  Builder& WithTrace(ftx_sm::Trace* trace);
  Builder& WithRecorder(ftx_rec::OutputRecorder* recorder);
  Builder& WithStore(ftx_store::StableStore* store);
  Builder& WithRedoLog(ftx_store::RedoLog* redo_log);
  Builder& WithCommitPipeline(ftx_store::CommitPipeline* pipeline);
  Builder& WithCoordinatedCommit(std::function<void(ftx_proto::CoordinationScope)> fn);
  Builder& WithLatestAtomicGroup(std::function<int64_t()> fn);
  Builder& WithMetrics(ftx_obs::Registry* metrics);
  Builder& WithTracer(ftx_obs::Tracer* tracer);
  Builder& WithAudit(ftx_causal::CausalAudit* audit);

  // Validates clock, transport, kernel, recorder (required for every
  // runtime) and returns the aggregate. Aborts with
  //   "ftx::env::Environment: missing required dependency '<field>'"
  // on the first absent field.
  Environment Build() const;

  // Additionally validates trace and store (required for recoverable
  // runtime modes).
  Environment BuildRecoverable() const;

 private:
  Environment env_;
};

}  // namespace ftx::env

#endif  // FTX_SRC_ENV_ENV_H_
