#include "src/env/script_runner.h"

#include <condition_variable>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/check.h"
#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/env/sim_env.h"
#include "src/env/thread_env.h"
#include "src/protocol/protocol.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/statemachine/event.h"

namespace ftx::env {
namespace {

ftx_proto::AppEvent ToAppEvent(ftx_sm::EventKind kind) {
  switch (kind) {
    case ftx_sm::EventKind::kTransientNd:
      return ftx_proto::AppEvent::kTransientNd;
    case ftx_sm::EventKind::kFixedNd:
      return ftx_proto::AppEvent::kUserInput;  // scripted fixed ND models user input
    case ftx_sm::EventKind::kReceive:
      return ftx_proto::AppEvent::kReceive;
    case ftx_sm::EventKind::kSend:
      return ftx_proto::AppEvent::kSend;
    case ftx_sm::EventKind::kVisible:
      return ftx_proto::AppEvent::kVisible;
    default:
      return ftx_proto::AppEvent::kInternal;
  }
}

std::string Format(const char* fmt, ...) {
  char buf[192];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

// Fixed-size payload derived from the script message id, so both backends
// move identical bytes and per-message transit time is constant (which keeps
// simulated arrival order equal to send order).
ftx::Bytes PayloadFor(int64_t message_id) {
  ftx::Bytes payload;
  ftx::AppendValue(&payload, message_id);
  ftx::AppendValue(&payload, static_cast<uint64_t>(message_id) * 0x9e3779b97f4a7c15ULL);
  return payload;
}

constexpr uint32_t kCommitMagic = 0x46435231;  // "FCR1"

// Commit record framing on the stable medium: magic, pid, per-process
// sequence, CRC of the preceding fields. Fixed-size, so a durable log is a
// whole number of records and recovery counting is a scan.
void EncodeCommitRecord(ftx::Bytes* out, int pid, int64_t sequence) {
  const size_t base = out->size();
  ftx::AppendValue(out, kCommitMagic);
  ftx::AppendValue(out, static_cast<int32_t>(pid));
  ftx::AppendValue(out, sequence);
  ftx::AppendValue(out, ftx::Crc32(out->data() + base, out->size() - base));
}

constexpr size_t kCommitRecordBytes = 4 + 4 + 8 + 4;

// Number of intact records for `pid` in a durable image; -1 on a framing or
// CRC violation (durable state a commit never produced).
int64_t CountCommitRecords(const ftx::Bytes& durable, int pid) {
  if (durable.size() % kCommitRecordBytes != 0) return -1;
  int64_t count = 0;
  size_t offset = 0;
  while (offset < durable.size()) {
    uint32_t magic = 0;
    int32_t rec_pid = 0;
    int64_t sequence = 0;
    uint32_t crc = 0;
    size_t cursor = offset;
    if (!ftx::ReadValue(durable, &cursor, &magic) || !ftx::ReadValue(durable, &cursor, &rec_pid) ||
        !ftx::ReadValue(durable, &cursor, &sequence) || !ftx::ReadValue(durable, &cursor, &crc)) {
      return -1;
    }
    if (magic != kCommitMagic || rec_pid != pid || sequence != count ||
        crc != ftx::Crc32(durable.data() + offset, kCommitRecordBytes - 4)) {
      return -1;
    }
    ++count;
    offset = cursor;
  }
  return count;
}

// Drives one script through a backend's Clock/Transport/StableMedium set.
// All protocol semantics (decision order, 2PC participant selection,
// communication tracking) mirror ftx_proto::ScriptReplay so the failure-free
// commit count can be cross-checked against the pure replay.
class ScriptExecutor {
 public:
  ScriptExecutor(const std::vector<ftx_sm::ScriptedEvent>& script, const ScriptRunOptions& options,
                 Clock* clock, Transport* transport, std::vector<StableMedium*> media,
                 std::vector<KillSwitch*> kills, std::function<void()> quiesce)
      : script_(script),
        num_processes_(options.num_processes),
        batch_records_(options.batch_records),
        clock_(clock),
        transport_(transport),
        media_(std::move(media)),
        kills_(std::move(kills)),
        quiesce_(std::move(quiesce)),
        communicated_(static_cast<size_t>(options.num_processes), 0),
        committed_count_(static_cast<size_t>(options.num_processes), 0),
        staged_(static_cast<size_t>(options.num_processes), 0),
        delivered_(static_cast<size_t>(options.num_processes)) {
    FTX_CHECK_GE(batch_records_, 1);
    FTX_CHECK_GT(num_processes_, 0);
    FTX_CHECK_EQ(media_.size(), static_cast<size_t>(num_processes_));
    FTX_CHECK_EQ(kills_.size(), static_cast<size_t>(num_processes_));
    for (int p = 0; p < num_processes_; ++p) {
      protocols_.push_back(ftx_proto::MakeProtocolByName(options.protocol));
    }
    // The script records a message's receiver only at its receive event;
    // resolve send destinations up front.
    for (const auto& ev : script_) {
      if (ev.kind == ftx_sm::EventKind::kReceive && ev.message_id >= 0) {
        receiver_of_[ev.message_id] = ev.process;
      }
    }
  }

  // Must be called once per script index, in ascending order (the threads
  // driver enforces this with a turn barrier; internal state needs no
  // further locking because turns serialize all access).
  void ExecuteEvent(size_t index) {
    const ftx_sm::ScriptedEvent& ev = script_[index];
    const int p = ev.process;
    if (ev.kind == ftx_sm::EventKind::kCrash) {
      CrashAndRecover(p);
      return;
    }
    ftx_proto::CommitDecision d = protocols_[static_cast<size_t>(p)]->Decide(ToAppEvent(ev.kind));
    const bool logged = ev.logged || d.log_event;
    if (logged && ftx_sm::IsNonDeterministic(ev.kind)) {
      ++log_.logged_events;
    }
    if (d.commit_before) {
      if (d.coordinated && num_processes_ > 1) {
        CoordinatedCommit(p, d.scope);
      } else {
        Commit(p, -1);
      }
    }
    TrackCommunication(ev);
    if (batch_records_ > 1 &&
        (ev.kind == ftx_sm::EventKind::kSend || ev.kind == ftx_sm::EventKind::kVisible)) {
      // Output commit: the staged window must be durable before any bytes
      // escape the process (a message or visible output).
      SyncWindow(p);
    }
    switch (ev.kind) {
      case ftx_sm::EventKind::kSend: {
        // A send whose receive never appears in the script has no scripted
        // destination; transmitting it anyway would strand the message ahead
        // of scripted traffic in some inbox and shift every later delivery
        // there. It stays un-transmitted, so the fabric carries exactly the
        // flows the script will consume.
        auto receiver = receiver_of_.find(ev.message_id);
        if (receiver != receiver_of_.end()) {
          const int64_t tid =
              transport_->Send(p, receiver->second, PayloadFor(ev.message_id));
          transport_id_[ev.message_id] = tid;
        }
        break;
      }
      case ftx_sm::EventKind::kReceive: {
        quiesce_();  // sim backend: let scheduled deliveries land
        std::optional<Message> msg = transport_->Deliver(p);
        auto it = transport_id_.find(ev.message_id);
        const int64_t want = it != transport_id_.end() ? it->second : -1;
        if (!msg.has_value() || msg->id != want || msg->payload != PayloadFor(ev.message_id)) {
          ++log_.transport_mismatches;
        } else if (logged) {
          // The ND log owns redelivery of a logged receive.
          transport_->DropNewestRetained(p, msg->id);
        } else {
          delivered_[static_cast<size_t>(p)].push_back(*msg);
        }
        break;
      }
      default:
        clock_->Charge(ftx::Microseconds(1));
        break;
    }
    log_.lines.push_back(Format("e%zu p%d %s msg=%lld log=%d cb=%d ca=%d", index, p,
                                std::string(ftx_sm::EventKindName(ev.kind)).c_str(),
                                static_cast<long long>(ev.message_id), logged ? 1 : 0,
                                d.commit_before ? 1 : 0, d.commit_after ? 1 : 0));
    if (d.commit_after) {
      Commit(p, -1);
    }
  }

  // End of script: every open window syncs (ascending pid order — both
  // drivers call this single-threaded after the last scripted event).
  void FinishWindows() {
    for (int p = 0; p < num_processes_; ++p) {
      SyncWindow(p);
    }
  }

  DecisionLog TakeLog() { return std::move(log_); }

 private:
  void TrackCommunication(const ftx_sm::ScriptedEvent& ev) {
    if (ev.kind == ftx_sm::EventKind::kSend && ev.message_id >= 0) {
      sender_of_[ev.message_id] = ev.process;
    }
    if (ev.kind == ftx_sm::EventKind::kReceive && ev.message_id >= 0) {
      auto it = sender_of_.find(ev.message_id);
      if (it != sender_of_.end()) {
        communicated_[static_cast<size_t>(ev.process)] |= 1ULL << it->second;
        communicated_[static_cast<size_t>(it->second)] |= 1ULL << ev.process;
      }
    }
  }

  // Appends the commit record; returns false if the kill switch fired in the
  // torn window between buffering and syncing (the record never became
  // durable).
  bool CommitThroughMedium(int p) {
    ftx::Bytes record;
    EncodeCommitRecord(&record, p, committed_count_[static_cast<size_t>(p)]);
    media_[static_cast<size_t>(p)]->Append(record.data(), record.size());
    if (kills_[static_cast<size_t>(p)] != nullptr &&
        kills_[static_cast<size_t>(p)]->armed.load()) {
      return false;
    }
    media_[static_cast<size_t>(p)]->Sync();
    return true;
  }

  void Commit(int p, int64_t atomic_group) {
    if (batch_records_ > 1) {
      StageCommit(p, atomic_group);
      return;
    }
    FTX_CHECK(CommitThroughMedium(p));  // the kill switch is armed only by CrashAndRecover
    ++committed_count_[static_cast<size_t>(p)];
    ++log_.window_syncs;
    transport_->ReleaseAllDelivered(p);
    delivered_[static_cast<size_t>(p)].clear();
    protocols_[static_cast<size_t>(p)]->OnCommitted();
    communicated_[static_cast<size_t>(p)] = 0;
    ++log_.commits;
    log_.lines.push_back(Format("commit p%d g=%lld n=%lld", p,
                                static_cast<long long>(atomic_group),
                                static_cast<long long>(committed_count_[static_cast<size_t>(p)])));
  }

  // Group-commit path: the record is appended to the medium but NOT synced —
  // it joins the open window. The protocol observes the commit immediately
  // (the process continues from it), but durability arrives only with the
  // window's sync; a crash first drops the whole staged suffix.
  void StageCommit(int p, int64_t atomic_group) {
    ftx::Bytes record;
    EncodeCommitRecord(&record, p, committed_count_[static_cast<size_t>(p)]);
    media_[static_cast<size_t>(p)]->Append(record.data(), record.size());
    ++committed_count_[static_cast<size_t>(p)];
    ++staged_[static_cast<size_t>(p)];
    protocols_[static_cast<size_t>(p)]->OnCommitted();
    communicated_[static_cast<size_t>(p)] = 0;
    ++log_.commits;
    log_.lines.push_back(Format("commit p%d g=%lld n=%lld", p,
                                static_cast<long long>(atomic_group),
                                static_cast<long long>(committed_count_[static_cast<size_t>(p)])));
    // Coordinated rounds externalize through protocol messages: their
    // commits must be durable when the round completes, so they never wait
    // in an open window.
    if (atomic_group >= 0 || staged_[static_cast<size_t>(p)] >= batch_records_) {
      SyncWindow(p);
    }
  }

  // Makes the open window durable: one Sync for every staged record, then
  // the deferred commit reporting (retained-message release).
  void SyncWindow(int p) {
    const int64_t staged = staged_[static_cast<size_t>(p)];
    if (staged == 0) {
      return;
    }
    media_[static_cast<size_t>(p)]->Sync();
    ++log_.window_syncs;
    staged_[static_cast<size_t>(p)] = 0;
    transport_->ReleaseAllDelivered(p);
    delivered_[static_cast<size_t>(p)].clear();
    log_.lines.push_back(Format("sync p%d w=%lld n=%lld", p, static_cast<long long>(staged),
                                static_cast<long long>(committed_count_[static_cast<size_t>(p)])));
  }

  // Mirrors ScriptReplay's participant selection (scope closure, ascending
  // pid order, prepare/ack bracketing, initiator last).
  void CoordinatedCommit(int initiator, ftx_proto::CoordinationScope scope) {
    ++log_.coordinated_rounds;
    const int64_t group = next_group_++;
    uint64_t members = 1ULL << initiator;
    if (scope == ftx_proto::CoordinationScope::kCommunicated) {
      bool grew = true;
      while (grew) {
        grew = false;
        for (int pid = 0; pid < num_processes_; ++pid) {
          if ((members & (1ULL << pid)) != 0) continue;
          if ((communicated_[static_cast<size_t>(pid)] & members) != 0) {
            members |= 1ULL << pid;
            grew = true;
          }
        }
      }
    }
    for (int pid = 0; pid < num_processes_; ++pid) {
      if (pid == initiator) continue;
      if (scope == ftx_proto::CoordinationScope::kNdDirty &&
          !protocols_[static_cast<size_t>(pid)]->HasUncommittedNd()) {
        continue;
      }
      if (scope == ftx_proto::CoordinationScope::kCommunicated &&
          (members & (1ULL << pid)) == 0) {
        continue;
      }
      const int64_t prepare = next_coord_message_++;
      log_.lines.push_back(Format("2pc-prep p%d->p%d m=%lld", initiator, pid,
                                  static_cast<long long>(prepare)));
      Commit(pid, group);
      const int64_t ack = next_coord_message_++;
      log_.lines.push_back(
          Format("2pc-ack p%d->p%d m=%lld", pid, initiator, static_cast<long long>(ack)));
    }
    Commit(initiator, group);
  }

  void CrashAndRecover(int p) {
    // The failure arrives while a commit is in flight: the record reaches
    // the medium's buffer, the kill fires before the sync, the process dies
    // and its unsynced bytes die with it.
    if (kills_[static_cast<size_t>(p)] != nullptr) {
      kills_[static_cast<size_t>(p)]->armed.store(true);
    }
    const bool survived = CommitThroughMedium(p);
    FTX_CHECK(!survived || kills_[static_cast<size_t>(p)] == nullptr);
    media_[static_cast<size_t>(p)]->CrashDropBuffered();
    if (kills_[static_cast<size_t>(p)] != nullptr) {
      kills_[static_cast<size_t>(p)]->armed.store(false);
    }

    // Staged group-commit records (appended, never synced) died with the
    // buffer: the commit count rolls back to the durable prefix — the
    // all-or-prefix survivor semantics of a batched window.
    committed_count_[static_cast<size_t>(p)] -= staged_[static_cast<size_t>(p)];
    staged_[static_cast<size_t>(p)] = 0;

    // Recovery, phase 1: the durable log must contain exactly the committed
    // records — nothing torn, nothing lost.
    ftx::Bytes durable;
    media_[static_cast<size_t>(p)]->ReadDurable(&durable);
    const int64_t records = CountCommitRecords(durable, p);
    if (records != committed_count_[static_cast<size_t>(p)]) {
      ++log_.durable_mismatches;
    }

    // Phase 2: redoable receives — every uncommitted delivery must come back
    // in original order with identical id and payload.
    transport_->RequeueRetained(p);
    int64_t redelivered = 0;
    for (const Message& expected : delivered_[static_cast<size_t>(p)]) {
      std::optional<Message> msg = transport_->Deliver(p);
      if (!msg.has_value() || msg->id != expected.id || msg->payload != expected.payload) {
        ++log_.transport_mismatches;
      } else {
        ++redelivered;
      }
    }

    // Rollback: the protocol and communication state return to the last
    // committed point (the decision sequence does not re-execute from
    // there; see the header).
    protocols_[static_cast<size_t>(p)]->OnCommitted();
    communicated_[static_cast<size_t>(p)] = 0;
    ++log_.rollbacks;
    log_.lines.push_back(Format("rollback p%d durable=%lld redelivered=%lld", p,
                                static_cast<long long>(records),
                                static_cast<long long>(redelivered)));
  }

  const std::vector<ftx_sm::ScriptedEvent>& script_;
  const int num_processes_;
  const int64_t batch_records_;
  Clock* clock_;
  Transport* transport_;
  std::vector<StableMedium*> media_;
  std::vector<KillSwitch*> kills_;
  std::function<void()> quiesce_;

  std::vector<std::unique_ptr<ftx_proto::Protocol>> protocols_;
  std::vector<uint64_t> communicated_;
  std::vector<int64_t> committed_count_;
  std::vector<int64_t> staged_;  // open-window records per process (batched)
  // Unlogged deliveries since each process's last commit (what a rollback
  // must see redelivered).
  std::vector<std::vector<Message>> delivered_;
  std::map<int64_t, int> sender_of_;
  std::map<int64_t, int> receiver_of_;
  std::map<int64_t, int64_t> transport_id_;  // script message id -> transport id
  int64_t next_coord_message_ = 1LL << 40;
  int64_t next_group_ = 1;
  DecisionLog log_;
};

// Grants script indices to process threads strictly in order.
class TurnKeeper {
 public:
  void WaitFor(size_t index) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return next_ == index; });
  }
  void Advance() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++next_;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t next_ = 0;
};

}  // namespace

std::string DecisionLog::Canonical() const {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

uint32_t DecisionLog::Crc() const {
  const std::string text = Canonical();
  return ftx::Crc32(text.data(), text.size());
}

std::vector<ftx_sm::ScriptedEvent> InjectCrashes(std::vector<ftx_sm::ScriptedEvent> script,
                                                 int num_crashes, uint64_t seed,
                                                 int num_processes) {
  ftx::Rng rng(seed);
  if (script.empty()) return script;
  for (int i = 0; i < num_crashes; ++i) {
    ftx_sm::ScriptedEvent crash;
    crash.process =
        static_cast<ftx_sm::ProcessId>(rng.NextBounded(static_cast<uint64_t>(num_processes)));
    crash.kind = ftx_sm::EventKind::kCrash;
    const size_t position = 1 + static_cast<size_t>(rng.NextBounded(script.size()));
    script.insert(script.begin() + static_cast<ptrdiff_t>(position), crash);
  }
  return script;
}

DecisionLog RunScriptOnSim(const std::vector<ftx_sm::ScriptedEvent>& script,
                           const ScriptRunOptions& options) {
  ftx_sim::Simulator sim(options.sim_seed);
  // Zero jitter + fixed-size payloads: arrival order equals send order, the
  // same guarantee ChannelTransport gives, so the comparison isolates the
  // backend substrate rather than fabric scheduling.
  ftx_sim::NetworkOptions net_options;
  net_options.max_jitter = ftx::Duration();
  ftx_sim::Network network(&sim, options.num_processes, net_options);
  SimClock clock(&sim);
  SimTransport transport(&network);

  std::vector<std::unique_ptr<MemMedium>> media;
  std::vector<std::unique_ptr<KillSwitch>> kills;
  std::vector<StableMedium*> media_ptrs;
  std::vector<KillSwitch*> kill_ptrs;
  for (int p = 0; p < options.num_processes; ++p) {
    media.push_back(std::make_unique<MemMedium>());
    kills.push_back(std::make_unique<KillSwitch>());
    media_ptrs.push_back(media.back().get());
    kill_ptrs.push_back(kills.back().get());
  }

  ScriptExecutor executor(script, options, &clock, &transport, media_ptrs, kill_ptrs,
                          [&sim] { sim.RunUntilIdle(); });
  for (size_t i = 0; i < script.size(); ++i) {
    executor.ExecuteEvent(i);
    // Each scripted event occupies its own sim tick. Two sends at the same
    // timestamp would trip Network's per-channel FIFO collision bump (+1ns),
    // which can push a message past a later cross-channel send — an arrival
    // order the synchronous ChannelTransport can never produce.
    sim.ScheduleAfter(ftx::Microseconds(1), [] {});
    sim.RunUntilIdle();
  }
  executor.FinishWindows();
  return executor.TakeLog();
}

DecisionLog RunScriptOnThreads(const std::vector<ftx_sm::ScriptedEvent>& script,
                               const ScriptRunOptions& options) {
  RealClock clock;
  ChannelTransport transport(options.num_processes, &clock);

  std::vector<std::unique_ptr<FileMedium>> media;
  std::vector<std::unique_ptr<KillSwitch>> kills;
  std::vector<StableMedium*> media_ptrs;
  std::vector<KillSwitch*> kill_ptrs;
  for (int p = 0; p < options.num_processes; ++p) {
    media.push_back(std::make_unique<FileMedium>("ftx-equiv-p" + std::to_string(p)));
    kills.push_back(std::make_unique<KillSwitch>());
    media_ptrs.push_back(media.back().get());
    kill_ptrs.push_back(kills.back().get());
  }

  ScriptExecutor executor(script, options, &clock, &transport, media_ptrs, kill_ptrs, [] {});
  TurnKeeper turns;
  std::vector<std::thread> workers;
  for (int pid = 0; pid < options.num_processes; ++pid) {
    workers.emplace_back([&, pid] {
      for (size_t i = 0; i < script.size(); ++i) {
        if (script[i].process != pid) continue;
        turns.WaitFor(i);
        executor.ExecuteEvent(i);
        turns.Advance();
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  executor.FinishWindows();
  return executor.TakeLog();
}

}  // namespace ftx::env
