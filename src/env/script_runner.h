// Cross-backend scripted execution: the backend-equivalence harness.
//
// The same seeded event script (ftx_sm::MakeRandomScript, optionally with
// injected crash events) is executed on two substrates — the discrete-event
// simulator through the env::sim adapters, and real std::threads through
// env::threads — driving each backend's Transport / StableMedium / Clock for
// real: sends and receives move actual payloads through the fabric, every
// commit appends + syncs a framed record to the process's stable medium, and
// a crash arms the kill switch mid-commit (the torn-commit window), drops
// the unsynced buffer, then recovers by reading back the durable record
// count and re-delivering the retained messages in order (the paper's
// redoable-receive property, verified against what was originally
// delivered).
//
// Each run produces a DecisionLog: the canonical rendering of every protocol
// consultation, commit, coordinated round, and rollback, in global script
// order. Acceptance for the env::threads backend is byte-equality of the two
// logs plus zero transport/durability mismatches on either side — the
// simulator stays the oracle, the threads backend must reproduce its
// decision sequence exactly.
//
// Deliberate scope limit: a crash rolls the protocol back to its last
// committed state but the script is not re-executed from there (the
// decision sequence models first execution + rollback, not replay); the
// full replay path is exercised end-to-end by the Computation runner.

#ifndef FTX_SRC_ENV_SCRIPT_RUNNER_H_
#define FTX_SRC_ENV_SCRIPT_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/statemachine/random_model.h"

namespace ftx::env {

struct ScriptRunOptions {
  int num_processes = 3;
  std::string protocol = "cpvs";
  uint64_t sim_seed = 1;  // seed of the oracle's simulator instance
  // Group-commit window size (mirrors ftx_store::BatchPolicy::max_records).
  // 1 = sync every commit record as it is appended (the historical path,
  // byte-identical to the committed decision-log goldens). >1 = commits
  // stage unsynced on the medium and the open window syncs when it fills,
  // before any send/visible event, at every coordinated round, and at end
  // of script; a crash drops the staged window and rolls the commit count
  // back to the durable prefix (all-or-prefix semantics).
  int64_t batch_records = 1;
};

// Canonical record of one scripted run. Lines are appended in global script
// order; Canonical() is the byte-comparable rendering.
struct DecisionLog {
  std::vector<std::string> lines;
  int64_t commits = 0;
  int64_t rollbacks = 0;
  int64_t coordinated_rounds = 0;
  int64_t logged_events = 0;
  // Deliveries whose id/payload did not match the script pairing, plus
  // post-crash redeliveries that differed from the original delivery.
  int64_t transport_mismatches = 0;
  // Recoveries where the durable record count != the commits performed.
  int64_t durable_mismatches = 0;
  // Group-commit window syncs (equals commits when batch_records == 1).
  int64_t window_syncs = 0;

  std::string Canonical() const;
  uint32_t Crc() const;
  bool clean() const { return transport_mismatches == 0 && durable_mismatches == 0; }
};

// Inserts `num_crashes` kCrash events into a copy of `script` at
// seed-deterministic positions (never before the first event).
std::vector<ftx_sm::ScriptedEvent> InjectCrashes(std::vector<ftx_sm::ScriptedEvent> script,
                                                 int num_crashes, uint64_t seed,
                                                 int num_processes);

// Executes the script on the simulator backend (SimClock / SimTransport over
// a private Simulator+Network, MemMedium per process), inline on the calling
// thread. Pure function of (script, options) — safe to shard across jobs.
DecisionLog RunScriptOnSim(const std::vector<ftx_sm::ScriptedEvent>& script,
                           const ScriptRunOptions& options);

// Executes the script on the threads backend: one std::thread per process
// (RealClock / ChannelTransport / FileMedium), each executing its own
// events under a global turn discipline that enforces script order.
DecisionLog RunScriptOnThreads(const std::vector<ftx_sm::ScriptedEvent>& script,
                               const ScriptRunOptions& options);

}  // namespace ftx::env

#endif  // FTX_SRC_ENV_SCRIPT_RUNNER_H_
