// env::sim — adapters binding the ftx::env seam to the discrete-event
// simulator. Pure forwarding: no state of its own, no reordering, no extra
// RNG draws. Routing the runtime through these adapters leaves every
// simulated quantity (goldens, torture states, causal-audit reports)
// byte-identical, which is what keeps the simulator usable as the
// deterministic oracle for other backends.

#ifndef FTX_SRC_ENV_SIM_ENV_H_
#define FTX_SRC_ENV_SIM_ENV_H_

#include <functional>
#include <optional>
#include <utility>

#include "src/env/env.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace ftx::env {

// Clock over the simulator: Now is simulated time, Charge is a no-op (the
// scheduling loop charges cost by scheduling the next step later), and
// NextNoise draws from the simulator's single RNG stream — the exact draw
// KernelSim::GetTimeOfDay used to make directly.
class SimClock final : public Clock {
 public:
  explicit SimClock(ftx_sim::Simulator* sim) : sim_(sim) {}

  ftx::TimePoint Now() const override { return sim_->Now(); }
  void Charge(ftx::Duration work) override { (void)work; }
  uint64_t NextNoise(uint64_t bound) override { return sim_->rng().NextBounded(bound); }

 private:
  ftx_sim::Simulator* sim_;
};

// Transport over the simulated network: every method forwards verbatim.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(ftx_sim::Network* network) : network_(network) {}

  int num_processes() const override { return network_->num_processes(); }
  int64_t Send(int src, int dst, ftx::Bytes payload) override {
    return network_->Send(src, dst, std::move(payload));
  }
  bool HasPending(int dst) const override { return network_->HasPending(dst); }
  std::optional<Message> Deliver(int dst) override { return network_->Deliver(dst); }
  const Message* PeekNext(int dst) const override { return network_->PeekNext(dst); }
  void ReleaseAllDelivered(int dst) override { network_->ReleaseAllDelivered(dst); }
  void DropNewestRetained(int dst, int64_t message_id) override {
    network_->DropNewestRetained(dst, message_id);
  }
  void RequeueRetained(int dst) override { network_->RequeueRetained(dst); }
  void SetArrivalCallback(int dst, std::function<void()> callback) override {
    network_->SetArrivalCallback(dst, std::move(callback));
  }

 private:
  ftx_sim::Network* network_;
};

// In-memory stable medium with the volatile/durable boundary made explicit.
// Backend-agnostic (no simulator dependency) — it is the medium the sim side
// of cross-backend runs uses, and a convenient test double.
class MemMedium final : public StableMedium {
 public:
  std::string_view name() const override { return "mem"; }
  void Append(const void* data, size_t size) override {
    const auto* bytes = static_cast<const uint8_t*>(data);
    buffered_.insert(buffered_.end(), bytes, bytes + size);
  }
  void Sync() override {
    durable_.insert(durable_.end(), buffered_.begin(), buffered_.end());
    buffered_.clear();
  }
  void CrashDropBuffered() override { buffered_.clear(); }
  int64_t durable_bytes() const override { return static_cast<int64_t>(durable_.size()); }
  void ReadDurable(ftx::Bytes* out) const override { *out = durable_; }
  void Reset() override {
    buffered_.clear();
    durable_.clear();
  }

 private:
  ftx::Bytes buffered_;
  ftx::Bytes durable_;
};

}  // namespace ftx::env

#endif  // FTX_SRC_ENV_SIM_ENV_H_
