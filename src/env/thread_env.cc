#include "src/env/thread_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/check.h"

namespace ftx::env {

// --- RealClock ---

RealClock::RealClock(uint64_t noise_seed)
    : origin_(std::chrono::steady_clock::now()), rng_(noise_seed) {}

ftx::TimePoint RealClock::Now() const {
  const auto elapsed = std::chrono::steady_clock::now() - origin_;
  const int64_t wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  std::lock_guard<std::mutex> lock(mu_);
  return ftx::TimePoint{wall_ns + charged_ns_};
}

void RealClock::Charge(ftx::Duration work) {
  if (work.nanos() <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  charged_ns_ += work.nanos();
}

uint64_t RealClock::NextNoise(uint64_t bound) {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextBounded(bound);
}

// --- ChannelTransport ---

ChannelTransport::ChannelTransport(int num_processes, Clock* clock)
    : clock_(clock),
      inbox_(static_cast<size_t>(num_processes)),
      recovery_buffer_(static_cast<size_t>(num_processes)),
      arrival_callback_(static_cast<size_t>(num_processes)) {
  FTX_CHECK(num_processes > 0);
}

int ChannelTransport::num_processes() const { return static_cast<int>(inbox_.size()); }

int64_t ChannelTransport::Send(int src, int dst, ftx::Bytes payload) {
  std::function<void()> callback;
  int64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FTX_CHECK(dst >= 0 && dst < static_cast<int>(inbox_.size()));
    id = next_message_id_++;
    Message msg;
    msg.id = id;
    msg.src = src;
    msg.dst = dst;
    msg.payload = std::move(payload);
    if (clock_ != nullptr) {
      msg.sent_at = clock_->Now();
      msg.delivered_at = msg.sent_at;
    }
    inbox_[static_cast<size_t>(dst)].push_back(std::move(msg));
    callback = arrival_callback_[static_cast<size_t>(dst)];
  }
  arrival_cv_.notify_all();
  if (callback) callback();
  return id;
}

bool ChannelTransport::HasPending(int dst) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !inbox_[static_cast<size_t>(dst)].empty();
}

std::optional<Message> ChannelTransport::Deliver(int dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& inbox = inbox_[static_cast<size_t>(dst)];
  if (inbox.empty()) return std::nullopt;
  Message msg = std::move(inbox.front());
  inbox.pop_front();
  if (clock_ != nullptr) msg.delivered_at = clock_->Now();
  recovery_buffer_[static_cast<size_t>(dst)].push_back(msg);
  return msg;
}

const Message* ChannelTransport::PeekNext(int dst) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto& inbox = inbox_[static_cast<size_t>(dst)];
  if (inbox.empty()) return nullptr;
  // Safe to hand out: deques do not relocate the front element until it is
  // popped, and the seam's contract is "valid until the next transport call
  // for dst" (same as ftx_sim::Network).
  return &inbox.front();
}

void ChannelTransport::ReleaseAllDelivered(int dst) {
  std::lock_guard<std::mutex> lock(mu_);
  recovery_buffer_[static_cast<size_t>(dst)].clear();
}

void ChannelTransport::DropNewestRetained(int dst, int64_t message_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& retained = recovery_buffer_[static_cast<size_t>(dst)];
  FTX_CHECK(!retained.empty());
  FTX_CHECK(retained.back().id == message_id);
  retained.pop_back();
}

void ChannelTransport::RequeueRetained(int dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& retained = recovery_buffer_[static_cast<size_t>(dst)];
  auto& inbox = inbox_[static_cast<size_t>(dst)];
  // Original delivery order, ahead of anything that arrived since.
  for (auto it = retained.rbegin(); it != retained.rend(); ++it) {
    inbox.push_front(*it);
  }
  retained.clear();
}

void ChannelTransport::SetArrivalCallback(int dst, std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  arrival_callback_[static_cast<size_t>(dst)] = std::move(callback);
}

bool ChannelTransport::WaitForPending(int dst, ftx::Duration timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return arrival_cv_.wait_for(lock, std::chrono::nanoseconds(timeout.nanos()), [&] {
    return !inbox_[static_cast<size_t>(dst)].empty();
  });
}

int64_t ChannelTransport::total_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_message_id_;
}

// --- FileMedium ---

FileMedium::FileMedium(const std::string& tag) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string templ = std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/" + tag + ".XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  fd_ = ::mkstemp(buf.data());
  FTX_CHECK_MSG(fd_ >= 0, "FileMedium: mkstemp('%s') failed", templ.c_str());
  path_.assign(buf.data());
}

FileMedium::~FileMedium() {
  if (fd_ >= 0) ::close(fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

void FileMedium::Append(const void* data, size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffered_.insert(buffered_.end(), bytes, bytes + size);
}

void FileMedium::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t written = 0;
  while (written < buffered_.size()) {
    const ssize_t n = ::pwrite(fd_, buffered_.data() + written, buffered_.size() - written,
                               static_cast<off_t>(durable_bytes_) + static_cast<off_t>(written));
    FTX_CHECK_MSG(n > 0, "FileMedium: pwrite(%s) failed", path_.c_str());
    written += static_cast<size_t>(n);
  }
  FTX_CHECK(::fsync(fd_) == 0);
  durable_bytes_ += static_cast<int64_t>(buffered_.size());
  buffered_.clear();
}

void FileMedium::CrashDropBuffered() {
  std::lock_guard<std::mutex> lock(mu_);
  buffered_.clear();
}

int64_t FileMedium::durable_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_bytes_;
}

void FileMedium::ReadDurable(ftx::Bytes* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->assign(static_cast<size_t>(durable_bytes_), 0);
  size_t done = 0;
  while (done < out->size()) {
    const ssize_t n =
        ::pread(fd_, out->data() + done, out->size() - done, static_cast<off_t>(done));
    FTX_CHECK_MSG(n > 0, "FileMedium: pread(%s) failed", path_.c_str());
    done += static_cast<size_t>(n);
  }
}

void FileMedium::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  buffered_.clear();
  durable_bytes_ = 0;
  FTX_CHECK(::ftruncate(fd_, 0) == 0);
}

int64_t FileMedium::buffered_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(buffered_.size());
}

}  // namespace ftx::env
