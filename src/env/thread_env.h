// env::threads — a real-execution backend for the ftx::env seam.
//
// Processes are std::threads, time is the host's steady clock, messages move
// through an in-process channel transport (mutex + condition variable), and
// the stable medium is a host temp file whose unsynced appends are genuinely
// lost when the process is killed: Append only buffers in memory; Sync
// write(2)s + fsync(2)s; a kill between the two drops the buffer, exactly
// the torn-commit window the paper's recovery protocols must tolerate.
//
// What this backend guarantees (and what it does not):
//   - ChannelTransport preserves FIFO per (src, dst) and, because sends
//     enqueue synchronously, global arrival order equals global send order.
//     Recovery-buffer semantics (retain / release / requeue / drop-newest)
//     are identical to ftx_sim::Network.
//   - RealClock is monotone and folds Charge()d virtual work into Now, so
//     charged costs remain visible in timestamps; NextNoise draws from a
//     seeded local stream (wall-clock noise is not reproducible, seeded
//     noise is).
//   - No global determinism: thread interleaving is the host scheduler's.
//     Deterministic cross-backend comparison comes from driving a scripted
//     event order (src/env/script_runner.h), with the simulator as oracle.

#ifndef FTX_SRC_ENV_THREAD_ENV_H_
#define FTX_SRC_ENV_THREAD_ENV_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/env/env.h"

namespace ftx::env {

// Wall-clock time (steady_clock) plus accumulated Charge()d work, anchored
// at 0 when constructed so timestamps look like the simulator's.
class RealClock final : public Clock {
 public:
  explicit RealClock(uint64_t noise_seed = 0x5eedc10c);

  ftx::TimePoint Now() const override;
  void Charge(ftx::Duration work) override;
  uint64_t NextNoise(uint64_t bound) override;

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  int64_t charged_ns_ = 0;
  ftx::Rng rng_;
};

// In-process channel fabric. Thread-safe; delivery is immediate (a Send
// enqueues into dst's inbox before returning), so global arrival order is
// global send order. Recovery-buffer semantics mirror ftx_sim::Network.
class ChannelTransport final : public Transport {
 public:
  ChannelTransport(int num_processes, Clock* clock = nullptr);

  int num_processes() const override;
  int64_t Send(int src, int dst, ftx::Bytes payload) override;
  bool HasPending(int dst) const override;
  std::optional<Message> Deliver(int dst) override;
  const Message* PeekNext(int dst) const override;
  void ReleaseAllDelivered(int dst) override;
  void DropNewestRetained(int dst, int64_t message_id) override;
  void RequeueRetained(int dst) override;
  void SetArrivalCallback(int dst, std::function<void()> callback) override;

  // Blocks until dst has a pending message or `timeout` elapses. Returns
  // whether a message is pending. (Real receivers block; the simulator's
  // reschedule-on-arrival has no meaning here.)
  bool WaitForPending(int dst, ftx::Duration timeout);

  int64_t total_messages() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable arrival_cv_;
  Clock* clock_;
  int64_t next_message_id_ = 0;
  std::vector<std::deque<Message>> inbox_;
  std::vector<std::deque<Message>> recovery_buffer_;
  std::vector<std::function<void()>> arrival_callback_;
};

// Stable medium backed by a host temp file. Append buffers in memory; Sync
// writes + fsyncs; CrashDropBuffered loses the buffer. durable_bytes() and
// ReadDurable() consult only what actually reached the file.
class FileMedium final : public StableMedium {
 public:
  // Creates (mkstemp) a file under $TMPDIR (default /tmp) named after
  // `tag`. The file is removed on destruction.
  explicit FileMedium(const std::string& tag = "ftx-medium");
  ~FileMedium() override;

  FileMedium(const FileMedium&) = delete;
  FileMedium& operator=(const FileMedium&) = delete;

  std::string_view name() const override { return "file"; }
  void Append(const void* data, size_t size) override;
  void Sync() override;
  void CrashDropBuffered() override;
  int64_t durable_bytes() const override;
  void ReadDurable(ftx::Bytes* out) const override;
  void Reset() override;

  const std::string& path() const { return path_; }
  int64_t buffered_bytes() const;

 private:
  mutable std::mutex mu_;
  std::string path_;
  int fd_ = -1;
  ftx::Bytes buffered_;
  int64_t durable_bytes_ = 0;
};

}  // namespace ftx::env

#endif  // FTX_SRC_ENV_THREAD_ENV_H_
