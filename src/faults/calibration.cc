#include "src/faults/calibration.h"

namespace ftx_fault {
namespace {

struct Row {
  double values[kNumFaultTypes];
};

// Order: stack flip, heap flip, dest reg, initialization, delete branch,
// delete instruction, off by one.

// Application-fault latency profile (Table 1 study). Stack/working-set
// corruption is consumed within the step; heap and control-word corruption
// lingers.
constexpr Row kNviApp = {{0.00, 0.83, 0.18, 0.04, 0.81, 0.51, 0.24}};
constexpr Row kPostgresApp = {{0.35, 0.92, 0.00, 0.06, 0.86, 0.13, 0.00}};
constexpr Row kDefaultApp = {{0.18, 0.88, 0.09, 0.05, 0.83, 0.32, 0.12}};

// OS-fault latency profile (Table 2 study): corruption enters via syscall
// results and copied-in kernel data, a different mix of lifetimes.
constexpr Row kNviOs = {{0.29, 0.20, 0.24, 0.39, 0.63, 0.29, 0.54}};
constexpr Row kPostgresOs = {{1.00, 0.60, 0.00, 0.00, 0.40, 0.40, 0.00}};
constexpr Row kDefaultOs = {{0.55, 0.40, 0.12, 0.20, 0.52, 0.34, 0.27}};

double Lookup(const Row& row, FaultType type) { return row.values[static_cast<int>(type)]; }

}  // namespace

double AppFaultSlowDetectionProbability(std::string_view app_name, FaultType type) {
  if (app_name == "nvi") {
    return Lookup(kNviApp, type);
  }
  if (app_name == "postgres") {
    return Lookup(kPostgresApp, type);
  }
  return Lookup(kDefaultApp, type);
}

double OsFaultSlowDetectionProbability(std::string_view app_name, FaultType type) {
  if (app_name == "nvi") {
    return Lookup(kNviOs, type);
  }
  if (app_name == "postgres") {
    return Lookup(kPostgresOs, type);
  }
  return Lookup(kDefaultOs, type);
}

double OsFaultPropagationProbability(std::string_view app_name) {
  // Proportional to the application's syscall rate: the non-interactive nvi
  // used in the crash tests syscalls ~10x as often as postgres (§4.2).
  if (app_name == "nvi") {
    return 0.41;
  }
  if (app_name == "postgres") {
    return 0.10;
  }
  return 0.25;
}

double ContinueProbability(FaultType type) {
  switch (type) {
    case FaultType::kHeapBitFlip:
    case FaultType::kDeleteBranch:
      return 0.7;  // long-lived data: wide latency tail
    case FaultType::kDeleteInstruction:
    case FaultType::kOffByOne:
      return 0.5;
    case FaultType::kStackBitFlip:
    case FaultType::kDestinationReg:
    case FaultType::kInitialization:
      return 0.3;  // consumed soon after activation
  }
  return 0.5;
}

}  // namespace ftx_fault
