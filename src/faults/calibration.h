// Calibrated fault-behaviour parameters.
//
// The fault study's one empirical input that a synthetic workload cannot
// reproduce from first principles is the activation-to-crash latency of each
// fault type in each application — in the paper it is a property of the real
// binaries' data flow. These tables calibrate the injector's
// slow-detection probability per (application, fault type) to the latency
// profile implied by the paper's fault study [6, 7]:
//
//  * corruption of per-step working data (stack flips, missed stores,
//    missed initialization) tends to be consumed immediately → fast crash;
//  * corruption of long-lived heap data and control words (heap flips,
//    deleted branches) tends to linger across many steps → slow crash.
//
// Everything downstream of these probabilities — where commits land, which
// runs violate Lose-work, whether recovery succeeds — is measured, not
// assumed. The ablation bench (bench/ablation_crash_latency) sweeps these
// values to show how Table 1 shifts when applications crash sooner, the
// paper's §2.6 recommendation.

// The tables are constexpr and every lookup is a pure function of its
// arguments, so concurrent sharded trials (ftx::TrialPool) may call these
// freely; keep it that way — no caches or lazily built state here.

#ifndef FTX_SRC_FAULTS_CALIBRATION_H_
#define FTX_SRC_FAULTS_CALIBRATION_H_

#include <string_view>

#include "src/faults/fault_types.h"

namespace ftx_fault {

// Probability that detection is slow (≥1 full step elapses between
// activation and crash) when `type` is injected into the application's own
// code (Table 1 study).
double AppFaultSlowDetectionProbability(std::string_view app_name, FaultType type);

// Same, for propagation failures that began as operating-system faults
// (Table 2 study): the corruption profile differs because it enters through
// syscall results and copied-in kernel data.
double OsFaultSlowDetectionProbability(std::string_view app_name, FaultType type);

// Probability that an OS fault manifests as a propagation failure (corrupts
// application state before the system stops) rather than a stop failure.
// Grows with the application's syscall rate: the paper infers ~41% for nvi
// (which syscalls ~10x as often) and ~10% for postgres.
double OsFaultPropagationProbability(std::string_view app_name);

// Geometric continue probability for the slow-detection latency tail.
double ContinueProbability(FaultType type);

}  // namespace ftx_fault

#endif  // FTX_SRC_FAULTS_CALIBRATION_H_
