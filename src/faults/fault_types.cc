#include "src/faults/fault_types.h"

namespace ftx_fault {

std::string_view FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kStackBitFlip:
      return "stack bit flip";
    case FaultType::kHeapBitFlip:
      return "heap bit flip";
    case FaultType::kDestinationReg:
      return "destination reg";
    case FaultType::kInitialization:
      return "initialization";
    case FaultType::kDeleteBranch:
      return "delete branch";
    case FaultType::kDeleteInstruction:
      return "delete instruction";
    case FaultType::kOffByOne:
      return "off by one";
  }
  return "unknown";
}

const std::vector<FaultType>& AllFaultTypes() {
  static const std::vector<FaultType> kTypes = {
      FaultType::kStackBitFlip,      FaultType::kHeapBitFlip,  FaultType::kDestinationReg,
      FaultType::kInitialization,    FaultType::kDeleteBranch, FaultType::kDeleteInstruction,
      FaultType::kOffByOne,
  };
  return kTypes;
}

}  // namespace ftx_fault
