// The seven programming-error fault types of the §4 fault study.
//
// The paper injects faults by modifying application source to simulate
// common programming errors [6]. This library applies the equivalent
// state-level corruption to the running application's persistent segment:
// what matters to the Lose-work analysis is where corrupt state lands and
// how long the process runs before the corruption is detected (the crash
// event), not the syntactic form of the bug.

#ifndef FTX_SRC_FAULTS_FAULT_TYPES_H_
#define FTX_SRC_FAULTS_FAULT_TYPES_H_

#include <string_view>
#include <vector>

namespace ftx_fault {

enum class FaultType {
  kStackBitFlip = 0,   // flip a bit in per-step working data
  kHeapBitFlip,        // flip a bit in an allocated heap block
  kDestinationReg,     // a result stored into the wrong variable
  kInitialization,     // a new object's field left uninitialized
  kDeleteBranch,       // a conditional guard removed (control word zeroed)
  kDeleteInstruction,  // one store skipped (a field reverted/zeroed)
  kOffByOne,           // loop bound off by one (writes past a buffer end)
};

inline constexpr int kNumFaultTypes = 7;

std::string_view FaultTypeName(FaultType type);

const std::vector<FaultType>& AllFaultTypes();

}  // namespace ftx_fault

#endif  // FTX_SRC_FAULTS_FAULT_TYPES_H_
