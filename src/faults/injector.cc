#include "src/faults/injector.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace ftx_fault {
namespace {

constexpr uint8_t kGarbagePattern = 0xcd;  // uninitialized-memory fill

}  // namespace

FaultyApp::FaultyApp(std::unique_ptr<ftx_dc::App> inner, FaultSpec spec)
    : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {
  FTX_CHECK(inner_ != nullptr);
}

void FaultyApp::ApplyCorruption(ftx_dc::ProcessEnv& env) {
  ftx_vista::Segment& segment = env.segment();
  const ftx_dc::FaultSurface surface = inner_->fault_surface();

  auto corrupt_bytes = [&](int64_t offset, const std::vector<uint8_t>& bytes) {
    uint8_t* p = segment.OpenForWrite(offset, bytes.size());
    std::copy(bytes.begin(), bytes.end(), p);
    spans_.push_back(CorruptSpan{offset, bytes});
  };
  auto flip_bit_at = [&](int64_t offset) {
    uint8_t byte = 0;
    segment.ReadRaw(offset, &byte, 1);
    byte ^= static_cast<uint8_t>(1u << rng_.NextBounded(8));
    corrupt_bytes(offset, {byte});
  };
  auto random_in = [&](int64_t base, int64_t size, int64_t need) -> int64_t {
    FTX_CHECK_GT(size, need);
    return base + static_cast<int64_t>(rng_.NextBounded(static_cast<uint64_t>(size - need)));
  };
  auto pick_heap_block = [&]() -> std::optional<std::pair<int64_t, int64_t>> {
    auto blocks = env.heap().arena_size() > 0 ? env.heap().LiveBlocks()
                                              : std::vector<std::pair<int64_t, int64_t>>{};
    if (blocks.empty()) {
      return std::nullopt;
    }
    return blocks[rng_.NextBounded(blocks.size())];
  };

  switch (spec_.type) {
    case FaultType::kStackBitFlip: {
      if (surface.scratch_size > 1) {
        flip_bit_at(random_in(surface.scratch_offset, surface.scratch_size, 1));
      }
      break;
    }
    case FaultType::kHeapBitFlip: {
      if (auto block = pick_heap_block(); block.has_value() && block->second > 0) {
        flip_bit_at(block->first +
                    static_cast<int64_t>(rng_.NextBounded(static_cast<uint64_t>(block->second))));
      }
      break;
    }
    case FaultType::kDestinationReg: {
      // A computed result lands in the wrong variable: copy one control
      // word over another.
      if (surface.control_size > 16) {
        int64_t src = random_in(surface.control_offset, surface.control_size, 8) & ~int64_t{7};
        int64_t dst = random_in(surface.control_offset, surface.control_size, 8) & ~int64_t{7};
        if (src != dst) {
          std::vector<uint8_t> bytes(8);
          segment.ReadRaw(src, bytes.data(), 8);
          // Only a real change counts as corruption.
          std::vector<uint8_t> old(8);
          segment.ReadRaw(dst, old.data(), 8);
          if (old != bytes) {
            corrupt_bytes(dst, bytes);
          }
        }
      }
      break;
    }
    case FaultType::kInitialization: {
      // A freshly allocated object is used without initialization: fill a
      // heap block (or scratch slot) with the uninitialized-memory pattern.
      if (auto block = pick_heap_block(); block.has_value() && block->second > 0) {
        int64_t n = std::min<int64_t>(block->second, 32);
        corrupt_bytes(block->first, std::vector<uint8_t>(static_cast<size_t>(n), kGarbagePattern));
      } else if (surface.scratch_size > 32) {
        corrupt_bytes(random_in(surface.scratch_offset, surface.scratch_size, 32),
                      std::vector<uint8_t>(32, kGarbagePattern));
      }
      break;
    }
    case FaultType::kDeleteBranch: {
      // A guard conditional disappears: a control word gets zeroed,
      // steering later execution down the unguarded path.
      if (surface.control_size > 8) {
        int64_t off = random_in(surface.control_offset, surface.control_size, 8) & ~int64_t{7};
        std::vector<uint8_t> old(8);
        segment.ReadRaw(off, old.data(), 8);
        std::vector<uint8_t> zeros(8, 0);
        if (old != zeros) {
          corrupt_bytes(off, zeros);
        }
      }
      break;
    }
    case FaultType::kDeleteInstruction: {
      // One store is skipped: the destination keeps a stale (zeroed) value.
      if (surface.control_size > 8) {
        int64_t off = random_in(surface.control_offset, surface.control_size, 8) & ~int64_t{7};
        std::vector<uint8_t> old(8);
        segment.ReadRaw(off, old.data(), 8);
        std::vector<uint8_t> zeros(8, 0);
        if (old != zeros) {
          corrupt_bytes(off, zeros);
        }
      }
      break;
    }
    case FaultType::kOffByOne: {
      // A loop writes one element past the end of a buffer: smash the byte
      // just past a live heap block's payload (its guard region).
      if (auto block = pick_heap_block(); block.has_value()) {
        int64_t off = block->first + block->second;
        uint8_t byte = 0;
        segment.ReadRaw(off, &byte, 1);
        corrupt_bytes(off, {static_cast<uint8_t>(byte ^ 0xff)});
      }
      break;
    }
  }
}

bool FaultyApp::CorruptionPresent(ftx_dc::ProcessEnv& env) const {
  for (const CorruptSpan& span : spans_) {
    std::vector<uint8_t> current(span.corrupt_bytes.size());
    env.segment().ReadRaw(span.offset, current.data(), current.size());
    if (current == span.corrupt_bytes) {
      return true;
    }
  }
  return false;
}

ftx_dc::StepOutcome FaultyApp::Step(ftx_dc::ProcessEnv& env) {
  ++harness_steps_;

  if (!activated_ && harness_steps_ == spec_.activation_step) {
    activated_ = true;
    outcome_.activated = true;
    outcome_.activation_step = harness_steps_;
    ApplyCorruption(env);
    env.MarkFaultActivation();
    if (spans_.empty()) {
      // No injectable target existed (e.g. empty heap): benign run.
      outcome_.benign_overwrite = true;
      activated_ = false;
    } else if (!rng_.NextBernoulli(spec_.slow_detection_probability)) {
      detect_after_steps_ = 0;  // the corrupt datum is used right away
    } else {
      detect_after_steps_ = 1;
      while (rng_.NextBernoulli(spec_.continue_probability)) {
        ++detect_after_steps_;
      }
    }
    if (activated_ && detect_after_steps_ == 0) {
      if (CorruptionPresent(env)) {
        ++outcome_.crash_count;
        outcome_.crashed = true;
        outcome_.crash_step = harness_steps_;
        env.Crash(std::string("fault detected: ") + std::string(FaultTypeName(spec_.type)));
        return ftx_dc::StepOutcome{};
      }
      outcome_.benign_overwrite = true;
      activated_ = false;
    }
  } else if (activated_) {
    ++steps_since_activation_;
    // After the first crash the process re-checks its data every step (the
    // recommended crash-early consistency checks, §2.6); before it, the
    // corrupted datum is reached per the calibrated latency.
    bool check_now = outcome_.crash_count > 0 || steps_since_activation_ >= detect_after_steps_;
    if (check_now) {
      if (CorruptionPresent(env)) {
        ++outcome_.crash_count;
        outcome_.crashed = true;
        outcome_.crash_step = harness_steps_;
        env.Crash(std::string("fault detected: ") + std::string(FaultTypeName(spec_.type)));
        return ftx_dc::StepOutcome{};
      }
      if (outcome_.crash_count == 0) {
        // Legitimately overwritten before ever being used: benign.
        outcome_.benign_overwrite = true;
        activated_ = false;
      }
      // After recovery, absence of the corruption means rollback cleaned
      // it; execution simply continues.
    }
  }

  return inner_->Step(env);
}

}  // namespace ftx_fault
