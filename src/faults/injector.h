// Application fault injection (§4.1).
//
// FaultyApp is a decorator around a real application. At a chosen step it
// *activates* the fault — applies type-specific corruption to the app's
// segment and records the activation event in the trace — and from then on
// arbitrates when the corruption is detected, at which point the process
// executes a crash event.
//
// Detection is real: the injector remembers the exact corrupt bytes it
// wrote and "uses the corrupted datum" at a scheduled point — if the bytes
// are still corrupt the process crashes; if the application legitimately
// overwrote them the run is benign (the paper discards non-crash runs). The
// same check is what makes the end-to-end property emerge: when a commit
// captured the corruption, rollback restores *corrupt* state and the
// process crashes again during reexecution; when no commit did, rollback
// removes the corruption and the (suppressed-fault) rerun completes. This is
// exactly the paper's "runs recovered from crashes if and only if they did
// not commit after fault activation".
//
// The *time to detection* (how many steps the process survives after
// activation) is the one quantity that cannot be derived from a synthetic
// workload: in the paper it is a property of real binaries' data-flow. It
// is therefore a calibrated per-(application, fault-type) distribution; see
// calibration.h and DESIGN.md §5.

#ifndef FTX_SRC_FAULTS_INJECTOR_H_
#define FTX_SRC_FAULTS_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/checkpoint/app.h"
#include "src/common/rng.h"
#include "src/faults/fault_types.h"

namespace ftx_fault {

struct FaultSpec {
  FaultType type = FaultType::kStackBitFlip;
  // Step at which the fault activates (buggy code executes).
  int64_t activation_step = 10;
  // Probability that detection is *slow* (one or more full steps elapse
  // between activation and crash, letting commits land on the dangerous
  // path). With probability 1-p the corrupted datum is used immediately,
  // before the step executes any further events.
  double slow_detection_probability = 0.5;
  // Given slow detection, each subsequent step continues (survives) with
  // this probability: latency ~ 1 + Geometric.
  double continue_probability = 0.5;
  uint64_t seed = 42;
};

struct InjectionOutcome {
  bool activated = false;
  bool crashed = false;
  bool benign_overwrite = false;  // corruption erased by a legitimate write
  int64_t activation_step = -1;
  int64_t crash_step = -1;
  int crash_count = 0;
};

class FaultyApp : public ftx_dc::App {
 public:
  FaultyApp(std::unique_ptr<ftx_dc::App> inner, FaultSpec spec);

  std::string_view name() const override { return inner_->name(); }
  size_t SegmentBytes() const override { return inner_->SegmentBytes(); }
  int64_t HeapOffset() const override { return inner_->HeapOffset(); }
  int64_t HeapBytes() const override { return inner_->HeapBytes(); }
  void Init(ftx_dc::ProcessEnv& env) override { inner_->Init(env); }
  ftx_dc::StepOutcome Step(ftx_dc::ProcessEnv& env) override;
  ftx_dc::FaultSurface fault_surface() const override { return inner_->fault_surface(); }
  ftx::Status CheckIntegrity(ftx_dc::ProcessEnv& env) override {
    return inner_->CheckIntegrity(env);
  }

  const InjectionOutcome& outcome() const { return outcome_; }
  ftx_dc::App& inner() { return *inner_; }

 private:
  void ApplyCorruption(ftx_dc::ProcessEnv& env);
  bool CorruptionPresent(ftx_dc::ProcessEnv& env) const;

  std::unique_ptr<ftx_dc::App> inner_;
  FaultSpec spec_;
  ftx::Rng rng_;

  int64_t harness_steps_ = 0;  // harness state; deliberately not rolled back
  bool activated_ = false;
  int64_t detect_after_steps_ = 0;  // steps to survive post-activation
  int64_t steps_since_activation_ = 0;

  // The corruption record: segment offsets and the corrupt bytes written.
  struct CorruptSpan {
    int64_t offset = 0;
    std::vector<uint8_t> corrupt_bytes;
  };
  std::vector<CorruptSpan> spans_;

  InjectionOutcome outcome_;
};

}  // namespace ftx_fault

#endif  // FTX_SRC_FAULTS_INJECTOR_H_
