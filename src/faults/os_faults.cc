#include "src/faults/os_faults.h"

#include "src/faults/calibration.h"

namespace ftx_fault {

OsFaultPlan PlanOsFault(ftx::Rng* rng, std::string_view app_name, FaultType type) {
  OsFaultPlan plan;
  plan.type = type;
  plan.when_fraction = 0.05 + 0.9 * rng->NextDouble();
  if (rng->NextBernoulli(OsFaultPropagationProbability(app_name))) {
    plan.manifestation = OsFaultManifestation::kPropagationFailure;
    plan.slow_detection_probability = OsFaultSlowDetectionProbability(app_name, type);
    plan.continue_probability = ContinueProbability(type);
  } else {
    plan.manifestation = OsFaultManifestation::kStopFailure;
  }
  return plan;
}

}  // namespace ftx_fault
