// Operating-system fault model (§4.2).
//
// A fault injected into the running kernel manifests in one of two ways:
//
//  * a *stop failure*: the system halts before affecting application state.
//    Any commit discipline recovers from these — recovery re-executes from
//    the last checkpoint after reboot.
//  * a *propagation failure*: buggy kernel execution corrupts application
//    state (through syscall results, signal delivery, copied-in data)
//    before the crash. These behave like application faults for Lose-work.
//
// The manifestation ratio is driven by how often the application crosses
// the kernel boundary (its syscall rate); see calibration.h.

#ifndef FTX_SRC_FAULTS_OS_FAULTS_H_
#define FTX_SRC_FAULTS_OS_FAULTS_H_

#include <cstdint>
#include <string_view>

#include "src/common/rng.h"
#include "src/faults/fault_types.h"

namespace ftx_fault {

enum class OsFaultManifestation {
  kStopFailure,
  kPropagationFailure,
};

struct OsFaultPlan {
  OsFaultManifestation manifestation = OsFaultManifestation::kStopFailure;
  FaultType type = FaultType::kStackBitFlip;
  // For propagation failures: the injector parameters to use.
  double slow_detection_probability = 0.0;
  double continue_probability = 0.5;
  // Step / time fraction at which the fault strikes, uniform in (0, 1).
  double when_fraction = 0.5;
};

// Draws the manifestation of one OS fault of `type` against `app_name`.
OsFaultPlan PlanOsFault(ftx::Rng* rng, std::string_view app_name, FaultType type);

}  // namespace ftx_fault

#endif  // FTX_SRC_FAULTS_OS_FAULTS_H_
