#include "src/obs/causal/audit.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/sim_time.h"

namespace ftx_causal {
namespace {

// ND->commit flow ids live in their own range, disjoint from network
// message ids (small integers) and 2PC coordination ids (>= 1e15).
constexpr int64_t kNdFlowIdBase = 2000000000000000LL;

}  // namespace

CausalAudit::CausalAudit(int num_processes, CausalAuditOptions options)
    : options_(options),
      num_processes_(num_processes),
      ledger_(options.flight_capacity),
      auditor_(num_processes),
      flight_(&ledger_, options.max_incidents) {
  FTX_CHECK_GT(num_processes, 0);
  decisions_.resize(static_cast<size_t>(num_processes));
  pending_nd_flows_.resize(static_cast<size_t>(num_processes));
}

void CausalAudit::SetTimeSource(std::function<int64_t()> now_ns) {
  now_ns_ = std::move(now_ns);
}

void CausalAudit::SetTracer(ftx_obs::Tracer* tracer) { tracer_ = tracer; }

void CausalAudit::StageCommitCosts(int pid, const CommitCosts& costs) {
  staged_costs_ = std::make_pair(pid, costs);
}

void CausalAudit::OnTraceEvent(ftx_sm::EventRef ref, const ftx_sm::TraceEvent& ev,
                               const ftx_sm::VectorClock& clock) {
  FTX_CHECK_MSG(!finalized_, "trace event after CausalAudit::Finalize");
  const int64_t now = now_ns_ ? now_ns_() : 0;
  const ftx::TimePoint at(now);
  const int pid = ref.process;

  LedgerEntry entry;
  entry.ref = ref;
  entry.kind = ev.kind;
  entry.logged = ev.logged;
  entry.message_id = ev.message_id;
  entry.atomic_group = ev.atomic_group;
  entry.label = ev.label;
  entry.sim_time_ns = now;
  entry.clock = clock;
  if (ev.kind == ftx_sm::EventKind::kCommit && staged_costs_.has_value() &&
      staged_costs_->first == pid) {
    entry.has_costs = true;
    entry.costs = staged_costs_->second;
    staged_costs_.reset();
  }
  const int64_t seq = ledger_.Append(std::move(entry));

  auditor_.OnEvent(ref, ev, clock);
  // Every fresh finding becomes an incident with the downstream event as
  // the causal focus — the dump marks the chain that reaches it, including
  // the uncovered ND event the reason string names.
  const auto& findings = auditor_.findings();
  for (; prior_findings_ < static_cast<int64_t>(findings.size()); ++prior_findings_) {
    const SaveWorkFinding& finding = findings[static_cast<size_t>(prior_findings_)];
    flight_.RecordIncident("save-work violation: " + finding.ToString(), finding.downstream);
  }

  if (ev.kind == ftx_sm::EventKind::kCrash) {
    flight_.RecordIncident("crash p" + std::to_string(pid) +
                               (ev.label.empty() ? "" : ": " + ev.label),
                           ref);
  }

  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  if (tracing) {
    if (ev.kind == ftx_sm::EventKind::kSend && ev.message_id >= 0) {
      tracer_->FlowStart(pid, ftx_obs::TraceLane::kStep, "causal", "msg", at, ev.message_id);
    } else if (ev.kind == ftx_sm::EventKind::kReceive && ev.message_id >= 0) {
      tracer_->FlowFinish(pid, ftx_obs::TraceLane::kStep, "causal", "msg", at, ev.message_id);
    }
  }
  auto& pending_flows = pending_nd_flows_[static_cast<size_t>(pid)];
  if (ftx_sm::IsNonDeterministic(ev.kind) && !ev.logged) {
    if (tracing) {
      if (static_cast<int>(pending_flows.size()) < options_.max_pending_nd_flows) {
        const int64_t flow_id = kNdFlowIdBase + seq;
        tracer_->FlowStart(pid, ftx_obs::TraceLane::kStep, "causal", "nd->commit", at, flow_id);
        pending_flows.push_back(flow_id);
      } else {
        ++nd_flows_dropped_;
      }
    }
  }
  if (ev.kind == ftx_sm::EventKind::kCommit) {
    if (tracing) {
      for (int64_t flow_id : pending_flows) {
        tracer_->FlowFinish(pid, ftx_obs::TraceLane::kStorage, "causal", "nd->commit", at,
                            flow_id);
      }
      const LedgerEntry* commit_entry = ledger_.FindByRef(ref);
      if (commit_entry != nullptr && commit_entry->has_costs) {
        const CommitCosts& costs = commit_entry->costs;
        const ftx::TimePoint sample_at(costs.end_ns);
        tracer_->CounterSample(pid, "dc", "commit cost (ns)", sample_at,
                               {{"fixed", static_cast<double>(costs.fixed_ns)},
                                {"before_image", static_cast<double>(costs.before_image_ns)},
                                {"reprotect", static_cast<double>(costs.reprotect_ns)},
                                {"persist", static_cast<double>(costs.persist_ns)}});
        tracer_->CounterSample(pid, "dc", "commit payload", sample_at,
                               {{"pages", static_cast<double>(costs.pages)},
                                {"bytes", static_cast<double>(costs.payload_bytes)}});
      }
    }
    pending_flows.clear();
  }
}

void CausalAudit::OnProtocolDecision(int pid, ftx_proto::AppEvent event,
                                     const ftx_proto::CommitDecision& decision) {
  (void)event;
  FTX_CHECK(pid >= 0 && pid < num_processes_);
  DecisionTally& tally = decisions_[static_cast<size_t>(pid)];
  ++tally.decides;
  tally.commit_before += decision.commit_before ? 1 : 0;
  tally.commit_after += decision.commit_after ? 1 : 0;
  tally.coordinated += decision.coordinated ? 1 : 0;
  tally.log_event += decision.log_event ? 1 : 0;
  tally.flush_log_before += decision.flush_log_before ? 1 : 0;
}

void CausalAudit::OnMessage(int64_t message_id, int src, int dst, int64_t bytes) {
  messages_[message_id] = MessageInfo{src, dst, bytes};
  message_bytes_ += bytes;
}

void CausalAudit::OnRecovery(int pid, const char* what, int64_t cost_ns) {
  LedgerEntry entry;
  entry.note = true;
  entry.label = std::string(what) + " p" + std::to_string(pid) +
                " cost=" + std::to_string(cost_ns) + "ns";
  entry.sim_time_ns = now_ns_ ? now_ns_() : 0;
  ledger_.Append(std::move(entry));
}

void CausalAudit::RecordIncident(const std::string& reason,
                                 const std::optional<ftx_sm::EventRef>& focus) {
  flight_.RecordIncident(reason, focus);
}

void CausalAudit::Finalize() {
  if (finalized_) {
    return;
  }
  auditor_.Finalize();
  const auto& findings = auditor_.findings();
  for (; prior_findings_ < static_cast<int64_t>(findings.size()); ++prior_findings_) {
    const SaveWorkFinding& finding = findings[static_cast<size_t>(prior_findings_)];
    flight_.RecordIncident("save-work violation: " + finding.ToString(), finding.downstream);
  }
  finalized_ = true;
}

ftx_obs::Json CausalAudit::ToJson() const {
  ftx_obs::Json out = ftx_obs::Json::Object();
  out.Set("schema_version", ftx_obs::Json(kCausalAuditSchemaVersion));
  out.Set("events", ftx_obs::Json(auditor_.events_seen()));
  out.Set("nd_unlogged", ftx_obs::Json(auditor_.nd_unlogged()));
  out.Set("downstream_checked", ftx_obs::Json(auditor_.downstream_checked()));
  out.Set("pending_peak", ftx_obs::Json(auditor_.pending_peak()));
  out.Set("pending_at_finalize", ftx_obs::Json(auditor_.pending_resolved_at_finalize()));
  out.Set("violations", ftx_obs::Json(auditor_.violations()));
  out.Set("visible_rule", ftx_obs::Json(auditor_.CountVisibleRule()));
  out.Set("orphan_rule", ftx_obs::Json(auditor_.CountOrphanRule()));
  out.Set("finalized", ftx_obs::Json(auditor_.finalized()));

  ftx_obs::Json findings = ftx_obs::Json::Array();
  const auto& all = auditor_.findings();
  const auto reported =
      std::min<size_t>(all.size(), static_cast<size_t>(options_.max_findings_in_report));
  for (size_t i = 0; i < reported; ++i) {
    const SaveWorkFinding& f = all[i];
    ftx_obs::Json item = ftx_obs::Json::Object();
    item.Set("nd", ftx_obs::Json(RefToString(f.nd)));
    item.Set("kind", ftx_obs::Json(std::string(ftx_sm::EventKindName(f.nd_kind))));
    item.Set("downstream", ftx_obs::Json(RefToString(f.downstream)));
    item.Set("rule", ftx_obs::Json(f.visible_rule ? "visible" : "orphan"));
    item.Set("at_finalize", ftx_obs::Json(f.resolved_at_finalize));
    item.Set("detail", ftx_obs::Json(f.ToString()));
    findings.Push(std::move(item));
  }
  out.Set("findings", std::move(findings));
  out.Set("findings_truncated",
          ftx_obs::Json(static_cast<int64_t>(all.size() - reported)));

  ftx_obs::Json incidents = ftx_obs::Json::Array();
  for (const FlightRecorder::Incident& incident : flight_.incidents()) {
    ftx_obs::Json item = ftx_obs::Json::Object();
    item.Set("reason", ftx_obs::Json(incident.reason));
    item.Set("dump", ftx_obs::Json(incident.dump));
    incidents.Push(std::move(item));
  }
  out.Set("incidents", std::move(incidents));
  out.Set("incidents_total", ftx_obs::Json(flight_.total_incidents()));

  DecisionTally total;
  for (const DecisionTally& tally : decisions_) {
    total.decides += tally.decides;
    total.commit_before += tally.commit_before;
    total.commit_after += tally.commit_after;
    total.coordinated += tally.coordinated;
    total.log_event += tally.log_event;
    total.flush_log_before += tally.flush_log_before;
  }
  ftx_obs::Json decisions = ftx_obs::Json::Object();
  decisions.Set("decides", ftx_obs::Json(total.decides));
  decisions.Set("commit_before", ftx_obs::Json(total.commit_before));
  decisions.Set("commit_after", ftx_obs::Json(total.commit_after));
  decisions.Set("coordinated", ftx_obs::Json(total.coordinated));
  decisions.Set("log_event", ftx_obs::Json(total.log_event));
  decisions.Set("flush_log_before", ftx_obs::Json(total.flush_log_before));
  out.Set("decisions", std::move(decisions));

  out.Set("messages", ftx_obs::Json(static_cast<int64_t>(messages_.size())));
  out.Set("message_bytes", ftx_obs::Json(message_bytes_));

  ftx_obs::Json ledger = ftx_obs::Json::Object();
  ledger.Set("appended", ftx_obs::Json(ledger_.total_appended()));
  ledger.Set("capacity", ftx_obs::Json(static_cast<int64_t>(ledger_.capacity())));
  out.Set("ledger", std::move(ledger));
  out.Set("nd_flows_dropped", ftx_obs::Json(nd_flows_dropped_));
  return out;
}

}  // namespace ftx_causal
