// CausalAudit: the live causal-audit assembly a Computation owns.
//
// One instance per (recoverable) Computation, enabled by
// ComputationOptions::audit. It wires together the three layers of the
// subsystem:
//
//   * CausalLedger — every trace event (ND, visible, send/receive, commit,
//     crash) mirrored into a bounded vector-clock-stamped ring, via the
//     Trace::Append observer the Computation installs, plus recovery notes
//     and per-commit cost attribution staged by the runtime;
//   * SaveWorkAuditor — the online Save-work/Save-work-orphan check,
//     cross-checking the protocol's actual commit decisions against the
//     causal frontier as the run executes;
//   * FlightRecorder — incident dumps (crash injection, abandoned
//     recovery, every Save-work finding) of the ring with the causal chain
//     marked.
//
// It also exports causal structure to the Chrome/Perfetto tracer when one
// is recording: send->receive flow arrows (id = message id), ND->commit
// attribution arrows (which commit saved which ND event), and per-commit
// cost-attribution counter tracks (before-image, re-protect, persist I/O)
// from the staged CommitCosts.
//
// The audit is strictly an observer: it never charges simulated time,
// schedules simulator work, or touches protocol state, so every simulated
// quantity is byte-identical with the audit on or off (CTest-asserted).
// All hooks are gated on a single `enabled` load so the disabled path
// costs one predictable branch (bench_hotpath.sh gates run audit-off).

#ifndef FTX_SRC_OBS_CAUSAL_AUDIT_H_
#define FTX_SRC_OBS_CAUSAL_AUDIT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/causal/auditor.h"
#include "src/obs/causal/flight_recorder.h"
#include "src/obs/causal/ledger.h"
#include "src/obs/json.h"
#include "src/obs/trace_event.h"
#include "src/protocol/protocol.h"
#include "src/statemachine/trace.h"

namespace ftx_causal {

struct CausalAuditOptions {
  int flight_capacity = 256;  // ledger ring size (events per dump)
  int max_incidents = 8;      // retained flight dumps
  int max_findings_in_report = 16;
  // ND->commit flow arrows drawn per process per commit window (extras are
  // counted, not drawn — a log-nothing protocol would flood the trace).
  int max_pending_nd_flows = 32;
};

// The ftx.causal-audit report schema version (nested under bench rows as
// "audit"; scripts/check_bench_json.py validates it).
inline constexpr int kCausalAuditSchemaVersion = 1;

class CausalAudit {
 public:
  CausalAudit(int num_processes, CausalAuditOptions options = {});

  // Simulated-time source (the Computation's simulator clock), consulted at
  // every ledger append. Must be set before events flow.
  void SetTimeSource(std::function<int64_t()> now_ns);
  // Optional Perfetto export target; flows/counters are emitted only while
  // the tracer itself is enabled.
  void SetTracer(ftx_obs::Tracer* tracer);

  // The Trace::Append observer body (the Computation installs the
  // forwarding closure).
  void OnTraceEvent(ftx_sm::EventRef ref, const ftx_sm::TraceEvent& ev,
                    const ftx_sm::VectorClock& clock);

  // Stages cost attribution for the commit whose trace event the runtime is
  // about to append (same call stack, so one staged slot suffices).
  void StageCommitCosts(int pid, const CommitCosts& costs);

  // Every protocol consultation, tallied per process (the audit's view of
  // the protocol's actual decisions).
  void OnProtocolDecision(int pid, ftx_proto::AppEvent event,
                          const ftx_proto::CommitDecision& decision);

  // Message metadata from the network (sizes for dumps and report totals).
  void OnMessage(int64_t message_id, int src, int dst, int64_t bytes);

  // Recovery / restart completion annotations (ledger notes).
  void OnRecovery(int pid, const char* what, int64_t cost_ns);

  // External incident (the Computation reports abandoned recoveries; the
  // torture engine reports violations).
  void RecordIncident(const std::string& reason,
                      const std::optional<ftx_sm::EventRef>& focus);

  // Resolves pending Save-work checks; called by Computation::Run at the
  // end. Idempotent.
  void Finalize();

  const SaveWorkAuditor& auditor() const { return auditor_; }
  const CausalLedger& ledger() const { return ledger_; }
  const FlightRecorder& flight() const { return flight_; }
  int64_t violations() const { return auditor_.violations(); }

  // The structured "audit" report object embedded in --json rows:
  // {schema_version, events, nd_unlogged, downstream_checked, violations,
  //  visible_rule, orphan_rule, findings:[{nd,kind,downstream,rule,detail}],
  //  incidents:[{reason,dump}], decisions:{...}, messages, message_bytes}.
  ftx_obs::Json ToJson() const;

 private:
  struct DecisionTally {
    int64_t decides = 0;
    int64_t commit_before = 0;
    int64_t commit_after = 0;
    int64_t coordinated = 0;
    int64_t log_event = 0;
    int64_t flush_log_before = 0;
  };
  struct MessageInfo {
    int src = -1;
    int dst = -1;
    int64_t bytes = 0;
  };

  CausalAuditOptions options_;
  int num_processes_;
  std::function<int64_t()> now_ns_;
  ftx_obs::Tracer* tracer_ = nullptr;

  CausalLedger ledger_;
  SaveWorkAuditor auditor_;
  FlightRecorder flight_;

  std::vector<DecisionTally> decisions_;
  std::map<int64_t, MessageInfo> messages_;
  int64_t message_bytes_ = 0;

  // Per-process ND flow ids awaiting their covering commit.
  std::vector<std::vector<int64_t>> pending_nd_flows_;
  int64_t nd_flows_dropped_ = 0;

  std::optional<std::pair<int, CommitCosts>> staged_costs_;
  int64_t prior_findings_ = 0;  // findings already turned into incidents
  bool finalized_ = false;
};

}  // namespace ftx_causal

#endif  // FTX_SRC_OBS_CAUSAL_AUDIT_H_
