#include "src/obs/causal/auditor.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/causal/ledger.h"

namespace ftx_causal {

std::string SaveWorkFinding::ToString() const {
  std::string out = "uncovered ";
  out += ftx_sm::EventKindName(nd_kind);
  out += " " + RefToString(nd);
  out += visible_rule ? " causally precedes visible " : " causally precedes commit ";
  out += RefToString(downstream);
  if (resolved_at_finalize) {
    out += " (no covering commit by end of run)";
  }
  return out;
}

SaveWorkAuditor::SaveWorkAuditor(int num_processes) {
  FTX_CHECK_GT(num_processes, 0);
  const auto n = static_cast<size_t>(num_processes);
  nd_pos_.resize(n);
  nd_kind_.resize(n);
  commit_pos_.resize(n);
  commit_group_.resize(n);
  pending_.resize(n);
}

void SaveWorkAuditor::OnEvent(const ftx_sm::EventRef& ref, const ftx_sm::TraceEvent& ev,
                              const ftx_sm::VectorClock& clock) {
  FTX_CHECK(!finalized_);
  FTX_CHECK(ref.valid() && static_cast<size_t>(ref.process) < nd_pos_.size());
  ++events_seen_;
  const auto p = static_cast<size_t>(ref.process);
  const int64_t pos = ref.index + 1;

  if (ev.kind == ftx_sm::EventKind::kCommit) {
    // Record the commit before the downstream scan so a commit trivially
    // covers its own process's earlier NDs (the offline cover can be the
    // downstream commit itself).
    commit_pos_[p].push_back(pos);
    commit_group_[p].push_back(ev.atomic_group);
    // This commit is the first commit after every ND a pending check on p
    // was waiting for (no earlier commit existed past the check's K), so it
    // is the cover: only the atomic-group rule can apply — being appended
    // after the downstream event, it cannot happen-before it.
    for (const PendingCheck& check : pending_[p]) {
      const bool covered = ev.atomic_group >= 0 && check.downstream_group >= 0 &&
                           ev.atomic_group <= check.downstream_group;
      if (!covered) {
        EmitWindow(check, /*at_finalize=*/false);
      }
    }
    pending_open_ -= static_cast<int64_t>(pending_[p].size());
    pending_[p].clear();
  }

  if (ftx_sm::IsNonDeterministic(ev.kind) && !ev.logged) {
    ++nd_unlogged_;
    nd_pos_[p].push_back(pos);
    nd_kind_[p].push_back(ev.kind);
  }

  if (ev.kind == ftx_sm::EventKind::kVisible || ev.kind == ftx_sm::EventKind::kCommit) {
    CheckDownstream(ref, ev, clock);
  }
}

void SaveWorkAuditor::CheckDownstream(const ftx_sm::EventRef& ref, const ftx_sm::TraceEvent& ev,
                                      const ftx_sm::VectorClock& clock) {
  ++downstream_checked_;
  const bool visible_rule = ev.kind == ftx_sm::EventKind::kVisible;
  for (size_t p = 0; p < nd_pos_.size(); ++p) {
    const int64_t k = clock.Get(static_cast<ftx_sm::ProcessId>(p));
    if (k <= 0) {
      continue;
    }
    const auto& commits = commit_pos_[p];
    auto cit = std::upper_bound(commits.begin(), commits.end(), k);
    const int64_t last_commit_pos = cit == commits.begin() ? 0 : *(cit - 1);
    const auto& nds = nd_pos_[p];
    auto lo = std::upper_bound(nds.begin(), nds.end(), last_commit_pos);
    auto hi = std::upper_bound(nds.begin(), nds.end(), k);
    if (lo == hi) {
      continue;  // every ND of p in v's past is hb-covered
    }
    PendingCheck check;
    check.nd_owner = static_cast<ftx_sm::ProcessId>(p);
    check.nd_positions.assign(lo, hi);
    check.nd_kinds.assign(nd_kind_[p].begin() + (lo - nds.begin()),
                          nd_kind_[p].begin() + (hi - nds.begin()));
    check.downstream = ref;
    check.visible_rule = visible_rule;
    check.downstream_group = ev.atomic_group;
    if (cit != commits.end()) {
      // The cover exists (first commit of p past K); it cannot
      // happen-before v (its position exceeds v's clock component), so only
      // the atomic-group rule applies — and its verdict is final.
      const int64_t cover_group = commit_group_[p][static_cast<size_t>(cit - commits.begin())];
      const bool covered = cover_group >= 0 && check.downstream_group >= 0 &&
                           cover_group <= check.downstream_group;
      if (!covered) {
        EmitWindow(check, /*at_finalize=*/false);
      }
    } else {
      pending_[p].push_back(std::move(check));
      ++pending_open_;
      pending_peak_ = std::max(pending_peak_, pending_open_);
    }
  }
}

void SaveWorkAuditor::EmitWindow(const PendingCheck& check, bool at_finalize) {
  for (size_t i = 0; i < check.nd_positions.size(); ++i) {
    SaveWorkFinding finding;
    // Positions are index + 1 on the ND owner's process; recover the ref.
    finding.nd = ftx_sm::EventRef{check.nd_owner, check.nd_positions[i] - 1};
    finding.nd_kind = check.nd_kinds[i];
    finding.downstream = check.downstream;
    finding.visible_rule = check.visible_rule;
    finding.resolved_at_finalize = at_finalize;
    findings_.push_back(std::move(finding));
  }
}

void SaveWorkAuditor::Finalize() {
  if (finalized_) {
    return;
  }
  finalized_ = true;
  for (auto& per_process : pending_) {
    for (const PendingCheck& check : per_process) {
      ++pending_resolved_at_finalize_;
      EmitWindow(check, /*at_finalize=*/true);
    }
    per_process.clear();
  }
  pending_open_ = 0;
}

int64_t SaveWorkAuditor::CountVisibleRule() const {
  int64_t n = 0;
  for (const SaveWorkFinding& f : findings_) {
    if (f.visible_rule) {
      ++n;
    }
  }
  return n;
}

int64_t SaveWorkAuditor::CountOrphanRule() const {
  return static_cast<int64_t>(findings_.size()) - CountVisibleRule();
}

}  // namespace ftx_causal
