// Online Save-work auditor.
//
// Replays the Save-work Theorem's two rules (§2.3) against the live event
// stream, incrementally, as each event is appended to the trace:
//
//   visible rule — every executed unlogged ND event that causally precedes
//     a visible event must be covered by a commit of its own process that
//     happens-before the visible (or is atomic with it, for 2PC rounds);
//   orphan rule — the same, with a commit event downstream.
//
// The offline oracle (ftx_sm::CheckSaveWork) walks the full trace after the
// run: O(ND x downstream x processes). This auditor reaches the identical
// verdict online with per-process position arithmetic. For each process it
// keeps the sorted positions (index + 1 — i.e. the event's own vector-clock
// component) of its unlogged ND events and of its commits. When a
// downstream event v with clock V arrives, component K = V.Get(p) bounds
// p's events in v's causal past; the largest commit position <= K bounds
// the hb-covered prefix; unlogged ND positions in the window
// (last_commit_pos, K] are exactly the NDs whose covering commit — the
// first commit of p after them — has not (yet) happened-before v:
//
//   * if p already has a commit past K, that commit is the cover and only
//     the atomic-group rule can still save it (a 2PC round's commits are
//     atomic with one another, and rounds are serialized, so cover.group <=
//     v.group means the cover truly precedes v even where happens-before
//     cannot see it — the same branch the offline checker takes);
//   * otherwise the verdict is *pending*: the cover will be p's next
//     commit, whenever it is appended. This is the live case the offline
//     checker never faces — during a 2PC round a participant's commit is
//     appended before the coordinator's same-group commit, so the
//     coordinator's uncovered NDs look bare for a moment. The pending
//     check resolves at p's next commit (group rule applied then) or
//     becomes a violation at Finalize() if no commit ever arrives.
//
// Violations are counted as (nd, downstream) pairs, matching CheckSaveWork
// finding-for-finding; tests/causal_audit_test.cc pins the equivalence on
// randomized traces.

#ifndef FTX_SRC_OBS_CAUSAL_AUDITOR_H_
#define FTX_SRC_OBS_CAUSAL_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/statemachine/trace.h"
#include "src/statemachine/vector_clock.h"

namespace ftx_causal {

struct SaveWorkFinding {
  ftx_sm::EventRef nd;
  ftx_sm::EventKind nd_kind = ftx_sm::EventKind::kInternal;
  ftx_sm::EventRef downstream;
  bool visible_rule = false;        // downstream is visible; else orphan rule
  bool resolved_at_finalize = false;  // cover never arrived before the end

  // "uncovered <kind> p0#5 causally precedes visible p1#9" — the same
  // phrasing as the offline checker's SaveWorkViolation::ToString.
  std::string ToString() const;
};

class SaveWorkAuditor {
 public:
  explicit SaveWorkAuditor(int num_processes);

  // Feed every trace event, in global append order, with the appending
  // process's clock as of the event (what Trace::Append's observer hands
  // out).
  void OnEvent(const ftx_sm::EventRef& ref, const ftx_sm::TraceEvent& ev,
               const ftx_sm::VectorClock& clock);

  // Resolves every still-pending check as uncovered (its cover commit never
  // arrived). Idempotent; further OnEvent calls are not allowed after it.
  void Finalize();

  const std::vector<SaveWorkFinding>& findings() const { return findings_; }
  int64_t violations() const { return static_cast<int64_t>(findings_.size()); }
  int64_t CountVisibleRule() const;
  int64_t CountOrphanRule() const;

  int64_t events_seen() const { return events_seen_; }
  int64_t nd_unlogged() const { return nd_unlogged_; }
  int64_t downstream_checked() const { return downstream_checked_; }
  int64_t pending_peak() const { return pending_peak_; }
  int64_t pending_resolved_at_finalize() const { return pending_resolved_at_finalize_; }
  bool finalized() const { return finalized_; }

 private:
  // A downstream event saw uncovered NDs of `process` with no candidate
  // cover yet; the process's next commit (or Finalize) decides.
  struct PendingCheck {
    ftx_sm::ProcessId nd_owner = ftx_sm::kInvalidProcess;
    std::vector<int64_t> nd_positions;          // window (last_commit, K]
    std::vector<ftx_sm::EventKind> nd_kinds;    // parallel to nd_positions
    ftx_sm::EventRef downstream;
    bool visible_rule = false;
    int64_t downstream_group = -1;
  };

  void CheckDownstream(const ftx_sm::EventRef& ref, const ftx_sm::TraceEvent& ev,
                       const ftx_sm::VectorClock& clock);
  void EmitWindow(const PendingCheck& check, bool at_finalize);

  // Positions are index + 1: event i of process p has position i+1, the
  // value component p of any clock that has absorbed it reports.
  std::vector<std::vector<int64_t>> nd_pos_;        // unlogged NDs, sorted
  std::vector<std::vector<ftx_sm::EventKind>> nd_kind_;
  std::vector<std::vector<int64_t>> commit_pos_;    // sorted
  std::vector<std::vector<int64_t>> commit_group_;  // parallel to commit_pos_
  std::vector<std::vector<PendingCheck>> pending_;  // keyed by ND owner

  std::vector<SaveWorkFinding> findings_;
  int64_t events_seen_ = 0;
  int64_t nd_unlogged_ = 0;
  int64_t downstream_checked_ = 0;
  int64_t pending_open_ = 0;
  int64_t pending_peak_ = 0;
  int64_t pending_resolved_at_finalize_ = 0;
  bool finalized_ = false;
};

}  // namespace ftx_causal

#endif  // FTX_SRC_OBS_CAUSAL_AUDITOR_H_
