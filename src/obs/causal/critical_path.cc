#include "src/obs/causal/critical_path.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace ftx_causal {

namespace {

constexpr const char* kDetection = "detection";
constexpr const char* kLogScan = "log_scan";
constexpr const char* kPageInstall = "page_install";
constexpr const char* kUndoRollback = "undo_rollback";
constexpr const char* kRebuild = "rebuild";
constexpr const char* kReExecution = "re_execution";
constexpr const char* kMessage = "message";

}  // namespace

CriticalPathTracker::CriticalPathTracker(int num_processes, CriticalPathOptions options)
    : options_(options), num_processes_(num_processes) {
  FTX_CHECK_GT(num_processes, 0);
  taint_.resize(static_cast<size_t>(num_processes));
  recoveries_.resize(static_cast<size_t>(num_processes));
}

void CriticalPathTracker::SetTimeSource(std::function<int64_t()> now_ns) {
  now_ns_ = std::move(now_ns);
}

void CriticalPathTracker::TaintProcess(int pid, const Taint& taint) {
  Taint& slot = taint_[static_cast<size_t>(pid)];
  if (slot.tainted) {
    return;  // first taint wins; later edges cannot start an earlier chain
  }
  slot = taint;
  slot.tainted = true;
}

void CriticalPathTracker::OnCrash(int pid) {
  FTX_CHECK_MSG(now_ns_ != nullptr, "critical-path tracker has no time source");
  if (pid < 0 || pid >= num_processes_) {
    return;
  }
  ++crashes_;
  Taint t;
  t.at_ns = now_ns_();
  t.via_crash = true;
  TaintProcess(pid, t);
}

void CriticalPathTracker::OnTraceEvent(ftx_sm::EventRef ref, const ftx_sm::TraceEvent& ev) {
  (void)ref;
  FTX_CHECK_MSG(now_ns_ != nullptr, "critical-path tracker has no time source");
  const int pid = static_cast<int>(ev.process);
  if (pid < 0 || pid >= num_processes_) {
    return;
  }
  const int64_t now = now_ns_();
  switch (ev.kind) {
    case ftx_sm::EventKind::kCrash: {
      ++crashes_;
      Taint t;
      t.at_ns = now;
      t.via_crash = true;
      TaintProcess(pid, t);
      break;
    }
    case ftx_sm::EventKind::kSend: {
      // Only tainted sends can propagate taint; untainted ones need no entry
      // (this is what keeps the map small on a 10k-process fleet).
      if (taint_[static_cast<size_t>(pid)].tainted && ev.message_id >= 0) {
        tainted_sends_.emplace(ev.message_id, SendInfo{pid, now});
      }
      break;
    }
    case ftx_sm::EventKind::kReceive: {
      if (ev.message_id < 0) {
        break;
      }
      auto it = tainted_sends_.find(ev.message_id);
      if (it == tainted_sends_.end()) {
        break;
      }
      Taint t;
      t.at_ns = now;
      t.via_crash = false;
      t.from_pid = it->second.pid;
      t.send_ns = it->second.t_ns;
      t.message_id = ev.message_id;
      TaintProcess(pid, t);
      break;
    }
    case ftx_sm::EventKind::kCommit: {
      // "Last" by execution order: the simulator's global (time, seq) order
      // makes ties at equal times deterministic too.
      if (taint_[static_cast<size_t>(pid)].tainted) {
        last_commit_pid_ = pid;
        last_commit_ns_ = now;
      }
      break;
    }
    default:
      break;
  }
}

void CriticalPathTracker::OnRecovery(int pid, int64_t start_ns, int64_t end_ns,
                                     const RecoveryPhases& phases) {
  if (pid < 0 || pid >= num_processes_) {
    return;
  }
  recoveries_[static_cast<size_t>(pid)].push_back(Recovery{start_ns, end_ns, phases});
}

int64_t CriticalPathTracker::tainted_processes() const {
  int64_t n = 0;
  for (const Taint& t : taint_) {
    n += t.tainted ? 1 : 0;
  }
  return n;
}

CriticalPathTracker::Path CriticalPathTracker::Extract() const {
  Path path;
  path.found = last_commit_pid_ >= 0;
  if (!path.found) {
    return path;
  }
  path.last_pid = last_commit_pid_;
  path.last_commit_ns = last_commit_ns_;

  // Backward walk: each step covers one process's span [taint, end) and then
  // jumps to the process that tainted it. Hops are collected back-to-front
  // and reversed at the end. The walk terminates at a via_crash taint; the
  // taint graph is acyclic in time (every edge strictly decreases `end`,
  // except possibly the last same-instant receive, bounded by num_processes
  // first-taint edges), so the loop bound is a belt-and-braces guard.
  std::vector<Hop> reversed;
  int pid = last_commit_pid_;
  int64_t end = last_commit_ns_;
  for (int steps = 0; steps <= num_processes_; ++steps) {
    const Taint& t = taint_[static_cast<size_t>(pid)];
    FTX_CHECK_MSG(t.tainted, "critical path reached untainted process p%d", pid);
    if (t.via_crash) {
      // Decompose [crash, end): detection until the first recovery that
      // started at/after the crash, its charged phases, then re-execution.
      const int64_t crash = t.at_ns;
      const Recovery* rec = nullptr;
      for (const Recovery& r : recoveries_[static_cast<size_t>(pid)]) {
        if (r.start_ns >= crash) {
          rec = &r;
          break;
        }
      }
      int64_t cursor = end;
      if (rec != nullptr && rec->end_ns <= end) {
        if (end > rec->end_ns) {
          reversed.push_back(Hop{pid, kReExecution, rec->end_ns, end - rec->end_ns});
        }
        // Phase spans are laid out in charge order inside [start, end); any
        // slack the runtime charged beyond the itemized phases (scheduling
        // rounding) is folded into the last itemized phase's span so the
        // spans tile the interval exactly.
        const RecoveryPhases& ph = rec->phases;
        int64_t at = rec->start_ns;
        struct Item {
          const char* name;
          int64_t ns;
        };
        const Item items[] = {{kLogScan, ph.log_scan_ns},
                              {kPageInstall, ph.page_install_ns},
                              {kUndoRollback, ph.undo_rollback_ns},
                              {kRebuild, ph.rebuild_ns}};
        std::vector<Hop> phase_hops;
        for (const Item& item : items) {
          if (item.ns > 0) {
            phase_hops.push_back(Hop{pid, item.name, at, item.ns});
            at += item.ns;
          }
        }
        const int64_t slack = rec->end_ns - at;
        if (slack > 0 && !phase_hops.empty()) {
          phase_hops.back().dur_ns += slack;
        } else if (slack > 0) {
          phase_hops.push_back(Hop{pid, kRebuild, at, slack});
        }
        for (auto it = phase_hops.rbegin(); it != phase_hops.rend(); ++it) {
          reversed.push_back(*it);
        }
        cursor = rec->start_ns;
        if (cursor > crash) {
          reversed.push_back(Hop{pid, kDetection, crash, cursor - crash});
        }
      } else if (cursor > crash) {
        // No completed recovery inside the span (abandoned or still down):
        // the whole wait is detection latency.
        reversed.push_back(Hop{pid, kDetection, crash, cursor - crash});
      }
      path.root_pid = pid;
      path.root_crash_ns = crash;
      break;
    }
    // Tainted by a message: re-execution from the receive to this span's
    // end, then the message hop, then continue at the sender.
    if (end > t.at_ns) {
      reversed.push_back(Hop{pid, kReExecution, t.at_ns, end - t.at_ns});
    }
    if (t.at_ns > t.send_ns) {
      reversed.push_back(Hop{t.from_pid, kMessage, t.send_ns, t.at_ns - t.send_ns});
    }
    pid = t.from_pid;
    end = t.send_ns;
  }
  FTX_CHECK_MSG(path.root_pid >= 0, "critical-path walk did not reach a crash root");

  std::reverse(reversed.begin(), reversed.end());
  path.span_ns = path.last_commit_ns - path.root_crash_ns;
  path.hops_total = static_cast<int64_t>(reversed.size());
  for (const Hop& h : reversed) {
    path.totals_ns[h.phase] += h.dur_ns;
    // Binding span: strictly-greater keeps the EARLIEST maximal hop, a
    // deterministic tie-break.
    if (h.dur_ns > path.binding_ns) {
      path.binding_ns = h.dur_ns;
      path.binding_pid = h.pid;
      path.binding_phase = h.phase;
    }
  }
  if (static_cast<int>(reversed.size()) > options_.max_hops_in_report) {
    reversed.resize(static_cast<size_t>(options_.max_hops_in_report));
  }
  path.hops = std::move(reversed);
  return path;
}

ftx_obs::Json CriticalPathTracker::ToJson() const {
  const Path path = Extract();
  ftx_obs::Json j = ftx_obs::Json::Object();
  j.Set("schema_version", kCriticalPathSchemaVersion);
  j.Set("crashes", crashes_);
  j.Set("tainted_processes", tainted_processes());
  j.Set("tainted_messages", tainted_messages());
  j.Set("found", path.found);
  if (!path.found) {
    return j;
  }
  j.Set("root_pid", path.root_pid);
  j.Set("root_crash_ns", path.root_crash_ns);
  j.Set("last_pid", path.last_pid);
  j.Set("last_commit_ns", path.last_commit_ns);
  j.Set("span_ns", path.span_ns);
  ftx_obs::Json binding = ftx_obs::Json::Object();
  binding.Set("pid", path.binding_pid);
  binding.Set("phase", path.binding_phase);
  binding.Set("ns", path.binding_ns);
  j.Set("binding", std::move(binding));
  ftx_obs::Json totals = ftx_obs::Json::Object();
  for (const auto& kv : path.totals_ns) {
    totals.Set(kv.first, kv.second);
  }
  j.Set("totals_ns", std::move(totals));
  ftx_obs::Json hops = ftx_obs::Json::Array();
  for (const Hop& h : path.hops) {
    ftx_obs::Json hop = ftx_obs::Json::Object();
    hop.Set("pid", h.pid);
    hop.Set("phase", h.phase);
    hop.Set("start_ns", h.start_ns);
    hop.Set("dur_ns", h.dur_ns);
    hops.Push(std::move(hop));
  }
  j.Set("hops", std::move(hops));
  j.Set("hops_total", path.hops_total);
  return j;
}

}  // namespace ftx_causal
