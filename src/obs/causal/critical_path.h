// Causal critical-path extraction for crash-injected fleet runs.
//
// The causal audit answers "was this commit safe?"; the MTTR profiler
// answers "how long did recovery take in wall-clock?". Neither answers the
// fleet-scale question this module exists for: of everything a fault storm
// delayed, WHICH dependency chain bound the end-to-end outcome, and which
// process / which recovery phase on that chain is the one to optimize?
//
// The tracker observes the same Trace::Append stream as the causal audit
// (chained observer; works in lean-trace mode since it never reads vector
// clocks) and propagates *taint* online:
//
//   * a crash taints its process from the crash instant;
//   * a send by a tainted process taints the message (send time recorded);
//   * a receive of a tainted message taints the receiver, recording the
//     (sender, send-time, receive-time) edge that first tainted it.
//
// Because the simulator executes events in global (time, seq) order, the
// first taint of each process is well defined and the whole propagation is
// O(1) state per process plus one map entry per tainted message — no full
// event log, so a 10k-process fleet run costs kilobytes, not the quadratic
// clock state lean traces exist to avoid.
//
// Extraction walks backward from the LAST tainted commit through the
// first-taint edges to the crash that roots the chain, then attributes
// every span on the path to a phase:
//
//   detection      crash -> that process's recovery start (failure-detection
//                  + scheduling latency; the recovery_delay knob)
//   log_scan       recovery-log read (fixed seek + rotation share)
//   page_install   persisted-page/record transfer back into memory
//   undo_rollback  Rio-style undo of uncommitted in-place state
//   rebuild        application OnRecovered re-initialization
//   re_execution   post-recovery (or post-receive) work until the hop's
//                  outgoing send/commit
//   message        tainted send -> receive network latency
//
// The per-recovery phase splits come from Runtime::RecoveryBreakdown — the
// actual simulated nanoseconds the runtime charged, not estimates. The
// largest single span names the binding process and phase: the fleet-level
// MTTR bottleneck no aggregate layer can see.
//
// Like every observer in src/obs/, the tracker is strictly read-only: it
// never charges simulated time or schedules simulator work, so simulated
// quantities are byte-identical with it on or off, and its report is a pure
// function of the (layout-invariant) event order — byte-identical for any
// --jobs/--shards.

#ifndef FTX_SRC_OBS_CAUSAL_CRITICAL_PATH_H_
#define FTX_SRC_OBS_CAUSAL_CRITICAL_PATH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/statemachine/trace.h"

namespace ftx_causal {

// The ftx.critical-path report schema version (nested under bench rows as
// "critical_path"; scripts/check_bench_json.py validates it).
inline constexpr int kCriticalPathSchemaVersion = 1;

// Simulated nanoseconds a completed recovery spent per phase, as charged by
// the runtime (Runtime fills one of these per Recover call).
struct RecoveryPhases {
  int64_t log_scan_ns = 0;       // fixed cost + rotation waits reading the log
  int64_t page_install_ns = 0;   // record/page payload transfer
  int64_t undo_rollback_ns = 0;  // Rio per-page undo of uncommitted state
  int64_t rebuild_ns = 0;        // application OnRecovered step
  int64_t total_ns() const {
    return log_scan_ns + page_install_ns + undo_rollback_ns + rebuild_ns;
  }
};

struct CriticalPathOptions {
  int max_hops_in_report = 64;  // longer paths report totals + a truncated list
};

class CriticalPathTracker {
 public:
  explicit CriticalPathTracker(int num_processes, CriticalPathOptions options = {});

  // Simulated-time source (the Computation's simulator clock), consulted at
  // every observed event. Must be set before events flow.
  void SetTimeSource(std::function<int64_t()> now_ns);

  // The Trace::Append observer body. The clock argument of the observer is
  // ignored (taint needs only message pairing), so lean traces work.
  void OnTraceEvent(ftx_sm::EventRef ref, const ftx_sm::TraceEvent& ev);

  // Stop failures never append a trace event (the process simply goes
  // silent), so the Computation reports them here; propagation crashes
  // arrive as kCrash trace events and must NOT also be reported.
  void OnCrash(int pid);

  // A completed recovery of `pid` spanning [start_ns, end_ns] of simulated
  // time, with the runtime's actual per-phase charge.
  void OnRecovery(int pid, int64_t start_ns, int64_t end_ns, const RecoveryPhases& phases);

  int64_t crashes() const { return crashes_; }
  int64_t tainted_processes() const;
  int64_t tainted_messages() const { return static_cast<int64_t>(tainted_sends_.size()); }

  // One extracted span on the path (phase is one of the names above).
  struct Hop {
    int pid = -1;
    std::string phase;
    int64_t start_ns = 0;
    int64_t dur_ns = 0;
  };

  struct Path {
    bool found = false;            // false when no commit depends on a crash
    int root_pid = -1;             // the crash that roots the chain
    int64_t root_crash_ns = 0;
    int last_pid = -1;             // process of the last dependent commit
    int64_t last_commit_ns = 0;
    int64_t span_ns = 0;           // last_commit_ns - root_crash_ns
    int binding_pid = -1;          // process owning the largest span
    std::string binding_phase;     // phase of that largest span
    int64_t binding_ns = 0;
    // Phase totals over the whole path (keys are the phase names).
    std::map<std::string, int64_t> totals_ns;
    std::vector<Hop> hops;         // root crash -> last commit, in time order
    int64_t hops_total = 0;        // before truncation to max_hops_in_report
  };

  // Walks the taint edges backward from the last tainted commit. Pure
  // (const) and deterministic; callable any time after the run.
  Path Extract() const;

  // The structured "critical_path" report object embedded in --json rows:
  // {schema_version, crashes, tainted_processes, tainted_messages, found,
  //  root_pid, root_crash_ns, last_pid, last_commit_ns, span_ns,
  //  binding:{pid,phase,ns}, totals_ns:{...}, hops:[{pid,phase,start_ns,
  //  dur_ns}], hops_total}.
  ftx_obs::Json ToJson() const;

 private:
  struct Taint {
    bool tainted = false;
    int64_t at_ns = 0;        // first-taint time
    bool via_crash = false;   // true: own crash; false: tainted receive
    int from_pid = -1;        // sender of the tainting message
    int64_t send_ns = 0;      // its send time
    int64_t message_id = -1;
  };
  struct Recovery {
    int64_t start_ns = 0;
    int64_t end_ns = 0;
    RecoveryPhases phases;
  };
  struct SendInfo {
    int pid = -1;
    int64_t t_ns = 0;
  };

  void TaintProcess(int pid, const Taint& taint);

  CriticalPathOptions options_;
  int num_processes_;
  std::function<int64_t()> now_ns_;
  std::vector<Taint> taint_;                  // per pid
  std::vector<std::vector<Recovery>> recoveries_;  // per pid, in time order
  std::map<int64_t, SendInfo> tainted_sends_;      // message id -> send site
  int64_t crashes_ = 0;
  int last_commit_pid_ = -1;
  int64_t last_commit_ns_ = -1;
};

}  // namespace ftx_causal

#endif  // FTX_SRC_OBS_CAUSAL_CRITICAL_PATH_H_
