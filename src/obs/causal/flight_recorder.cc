#include "src/obs/causal/flight_recorder.h"

#include "src/common/check.h"

namespace ftx_causal {

FlightRecorder::FlightRecorder(const CausalLedger* ledger, int max_incidents)
    : ledger_(ledger), max_incidents_(max_incidents) {
  FTX_CHECK(ledger != nullptr);
  FTX_CHECK_GT(max_incidents, 0);
}

std::string FlightRecorder::Dump(const std::string& reason,
                                 const std::optional<ftx_sm::EventRef>& focus) const {
  const LedgerEntry* focus_entry =
      focus.has_value() ? ledger_->FindByRef(*focus) : nullptr;

  std::string out = "=== flight recorder: " + reason + " ===\n";
  const int64_t total = ledger_->total_appended();
  const int64_t retained = ledger_->size();
  out += "focus=" + (focus.has_value() ? RefToString(*focus) : std::string("-"));
  out += " events=" + std::to_string(total - retained) + ".." + std::to_string(total - 1) +
         " of " + std::to_string(total) + "\n";

  ledger_->ForEach([&](const LedgerEntry& entry) {
    // Causal-chain mark: entry precedes (or is) the focus iff the focus's
    // clock has absorbed it.
    const bool on_chain =
        focus_entry != nullptr && !entry.note && entry.ref.valid() &&
        focus_entry->clock.Get(entry.ref.process) >= entry.ref.index + 1;
    out += on_chain ? "* " : "  ";
    out += "[" + std::to_string(entry.seq) + "] t=" + std::to_string(entry.sim_time_ns) + "ns ";
    if (entry.note) {
      out += "note " + entry.label;
    } else {
      out += RefToString(entry.ref);
      out += " ";
      out += ftx_sm::EventKindName(entry.kind);
      if (entry.logged) {
        out += "(logged)";
      }
      if (entry.message_id >= 0) {
        out += " msg=" + std::to_string(entry.message_id);
      }
      if (entry.atomic_group >= 0) {
        out += " group=" + std::to_string(entry.atomic_group);
      }
      if (!entry.label.empty()) {
        out += " \"" + entry.label + "\"";
      }
      if (entry.has_costs) {
        out += " cost{fixed=" + std::to_string(entry.costs.fixed_ns) +
               " before_image=" + std::to_string(entry.costs.before_image_ns) +
               " reprotect=" + std::to_string(entry.costs.reprotect_ns) +
               " persist=" + std::to_string(entry.costs.persist_ns) +
               " pages=" + std::to_string(entry.costs.pages) +
               " bytes=" + std::to_string(entry.costs.payload_bytes) + "}";
      }
      out += " clock=" + entry.clock.ToString();
    }
    out += "\n";
  });
  return out;
}

void FlightRecorder::RecordIncident(const std::string& reason,
                                    const std::optional<ftx_sm::EventRef>& focus) {
  ++total_incidents_;
  if (static_cast<int64_t>(incidents_.size()) >= max_incidents_) {
    return;
  }
  incidents_.push_back(Incident{reason, Dump(reason, focus)});
}

}  // namespace ftx_causal
