// Crash flight recorder: deterministic dumps of the ledger's recent past.
//
// On an incident — crash injection, abandoned recovery, a Save-work finding
// or a torture-engine violation — the recorder renders the ledger's ring
// (the last N events) as a text dump, oldest to newest, marking with '*'
// every event that causally precedes (or is) the incident's focus event.
// The marks come straight from the stored vector clocks: entry e precedes
// focus f iff clock(f)[e.process] >= e.index + 1, so the dump shows the
// causal chain that led to the incident, not just a time-ordered tail.
//
// Dumps are pure functions of the (deterministic) simulated run — integer
// sim times, event refs, clocks — so they are byte-identical across --jobs
// values; the CTest suite asserts that.

#ifndef FTX_SRC_OBS_CAUSAL_FLIGHT_RECORDER_H_
#define FTX_SRC_OBS_CAUSAL_FLIGHT_RECORDER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/causal/ledger.h"

namespace ftx_causal {

class FlightRecorder {
 public:
  // The ledger must outlive the recorder (both live in CausalAudit).
  FlightRecorder(const CausalLedger* ledger, int max_incidents);

  // Renders the current ring. `focus`, when it names an event still in the
  // ring, selects the causal chain to mark; otherwise the dump is unmarked.
  std::string Dump(const std::string& reason,
                   const std::optional<ftx_sm::EventRef>& focus) const;

  // Dump() + retain. Beyond max_incidents only the count advances (the
  // first incidents are the diagnostic ones; a crash loop must not hoard
  // memory).
  void RecordIncident(const std::string& reason,
                      const std::optional<ftx_sm::EventRef>& focus);

  struct Incident {
    std::string reason;
    std::string dump;
  };
  const std::vector<Incident>& incidents() const { return incidents_; }
  int64_t total_incidents() const { return total_incidents_; }

 private:
  const CausalLedger* ledger_;
  int max_incidents_;
  std::vector<Incident> incidents_;
  int64_t total_incidents_ = 0;
};

}  // namespace ftx_causal

#endif  // FTX_SRC_OBS_CAUSAL_FLIGHT_RECORDER_H_
