#include "src/obs/causal/ledger.h"

#include <utility>

#include "src/common/check.h"

namespace ftx_causal {

CausalLedger::CausalLedger(int capacity) : capacity_(capacity) {
  FTX_CHECK_GT(capacity, 0);
  ring_.reserve(static_cast<size_t>(capacity));
}

int64_t CausalLedger::Append(LedgerEntry entry) {
  const int64_t seq = next_seq_++;
  entry.seq = seq;
  const auto slot = static_cast<size_t>(seq % capacity_);
  if (slot < ring_.size()) {
    ring_[slot] = std::move(entry);
  } else {
    ring_.push_back(std::move(entry));
  }
  return seq;
}

int64_t CausalLedger::size() const { return static_cast<int64_t>(ring_.size()); }

void CausalLedger::ForEach(const std::function<void(const LedgerEntry&)>& fn) const {
  const int64_t first = next_seq_ - static_cast<int64_t>(ring_.size());
  for (int64_t seq = first; seq < next_seq_; ++seq) {
    fn(ring_[static_cast<size_t>(seq % capacity_)]);
  }
}

const LedgerEntry* CausalLedger::FindByRef(const ftx_sm::EventRef& ref) const {
  const LedgerEntry* found = nullptr;
  for (const LedgerEntry& entry : ring_) {
    if (!entry.note && entry.ref == ref && (found == nullptr || entry.seq > found->seq)) {
      found = &entry;
    }
  }
  return found;
}

std::string RefToString(const ftx_sm::EventRef& ref) {
  if (!ref.valid()) {
    return "-";
  }
  return "p" + std::to_string(ref.process) + "#" + std::to_string(ref.index);
}

}  // namespace ftx_causal
