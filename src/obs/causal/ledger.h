// Vector-clock event ledger: the record the live causal audit runs on.
//
// The ledger mirrors the computation's executed-event trace
// (ftx_sm::Trace) into a bounded ring of entries, each stamped with the
// appending process's vector clock, the simulated time of the append, and —
// for commits — the cost attribution the runtime staged (barrier/before-
// image, re-protection, persist I/O). Non-trace annotations (recovery
// completions) ride along as `note` entries with an invalid ref.
//
// The ring is what the flight recorder dumps on an incident: the last N
// events with enough causal structure (the stored clocks) to mark which of
// them causally precede a focus event. Totals keep counting past the
// capacity so a dump can say "events 1180..1435 of 1435".
//
// Everything here is confined to one Computation (same contract as
// ftx_obs::Registry — see src/obs/metrics.h) and never feeds back into
// simulation: appending to the ledger cannot change a simulated quantity.

#ifndef FTX_SRC_OBS_CAUSAL_LEDGER_H_
#define FTX_SRC_OBS_CAUSAL_LEDGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/statemachine/trace.h"
#include "src/statemachine/vector_clock.h"

namespace ftx_causal {

// Per-commit cost attribution, staged by Runtime::DoCommit just before the
// commit's trace event is appended. Durations are simulated nanoseconds and
// partition the commit's total charged cost; `before_image_ns` covers the
// COW trap + before-image copy the write barrier charged (billed at commit,
// per dirty page), `persist_ns` is the sync I/O (DC-disk) or memory-speed
// undo retirement (Rio), and `payload_bytes` is what the persist CRC'd.
struct CommitCosts {
  int64_t fixed_ns = 0;
  int64_t before_image_ns = 0;
  int64_t reprotect_ns = 0;
  int64_t persist_ns = 0;
  int64_t pages = 0;
  int64_t payload_bytes = 0;
  int64_t begin_ns = 0;  // simulated interval the commit occupies
  int64_t end_ns = 0;

  int64_t TotalNs() const { return fixed_ns + before_image_ns + reprotect_ns + persist_ns; }
};

struct LedgerEntry {
  int64_t seq = -1;  // global append order, assigned by the ledger
  // Trace identity; !ref.valid() for note entries.
  ftx_sm::EventRef ref;
  ftx_sm::EventKind kind = ftx_sm::EventKind::kInternal;
  bool logged = false;
  int64_t message_id = -1;
  int64_t atomic_group = -1;
  std::string label;
  int64_t sim_time_ns = 0;
  // The appending process's clock as of this event (empty for notes).
  ftx_sm::VectorClock clock;
  // Commit cost attribution (kCommit entries whose runtime staged costs).
  bool has_costs = false;
  CommitCosts costs;
  bool note = false;  // annotation outside the trace (recovery, restart)
};

// Bounded ring of the most recent entries, plus running totals.
class CausalLedger {
 public:
  explicit CausalLedger(int capacity);

  // Assigns the entry's seq and appends, evicting the oldest past capacity.
  // Returns the assigned seq.
  int64_t Append(LedgerEntry entry);

  int capacity() const { return capacity_; }
  int64_t total_appended() const { return next_seq_; }
  // Entries currently retained (<= capacity).
  int64_t size() const;

  // Oldest-to-newest walk of the retained entries.
  void ForEach(const std::function<void(const LedgerEntry&)>& fn) const;

  // Retained entry with the given trace ref (newest match), or nullptr.
  const LedgerEntry* FindByRef(const ftx_sm::EventRef& ref) const;

 private:
  int capacity_;
  int64_t next_seq_ = 0;
  std::vector<LedgerEntry> ring_;  // slot = seq % capacity_
};

// "p<pid>#<index>" (or "-" for an invalid ref) — the notation the offline
// checker's diagnostics use.
std::string RefToString(const ftx_sm::EventRef& ref);

}  // namespace ftx_causal

#endif  // FTX_SRC_OBS_CAUSAL_LEDGER_H_
