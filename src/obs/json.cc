#include "src/obs/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"

namespace ftx_obs {

Json& Json::Set(std::string key, Json value) {
  FTX_CHECK_MSG(type_ == Type::kObject, "Json::Set on a non-object");
  for (auto& [existing, v] : members_) {
    if (existing == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Json& Json::Push(Json value) {
  FTX_CHECK_MSG(type_ == Type::kArray, "Json::Push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double number, int64_t integer, bool is_int) {
  char buf[40];
  if (is_int) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, integer);
  } else if (std::isfinite(number)) {
    // Shortest representation that round-trips a double.
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    double reparsed = 0;
    std::sscanf(buf, "%lf", &reparsed);
    for (int precision = 1; precision < 17; ++precision) {
      char shorter[40];
      std::snprintf(shorter, sizeof(shorter), "%.*g", precision, number);
      std::sscanf(shorter, "%lf", &reparsed);
      if (reparsed == number) {
        std::memcpy(buf, shorter, sizeof(shorter));
        break;
      }
    }
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
  }
  *out += buf;
}

void Newline(std::string* out, int indent, int depth) {
  if (indent > 0) {
    *out += '\n';
    out->append(static_cast<size_t>(indent * depth), ' ');
  }
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, number_, int_, is_int_);
      return;
    case Type::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) {
          *out += ',';
        }
        first = false;
        Newline(out, indent, depth + 1);
        *out += '"';
        *out += JsonEscape(key);
        *out += indent > 0 ? "\": " : "\":";
        value.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      *out += '}';
      return;
    }
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      bool first = true;
      for (const Json& value : items_) {
        if (!first) {
          *out += ',';
        }
        first = false;
        Newline(out, indent, depth + 1);
        value.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      *out += ']';
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// --- parser ---

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    char where[48];
    std::snprintf(where, sizeof(where), " at offset %zu", pos);
    error = message + where;
    return false;
  }

  void SkipWhitespace() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                                 text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ParseValue(Json* out) {
    SkipWhitespace();
    if (pos >= text.size()) {
      return Fail("unexpected end of input");
    }
    char c = text[pos];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      *out = Json(std::move(s));
      return true;
    }
    if (c == 't' && text.substr(pos, 4) == "true") {
      pos += 4;
      *out = Json(true);
      return true;
    }
    if (c == 'f' && text.substr(pos, 5) == "false") {
      pos += 5;
      *out = Json(false);
      return true;
    }
    if (c == 'n' && text.substr(pos, 4) == "null") {
      pos += 4;
      *out = Json();
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected '\"'");
    }
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos >= text.size()) {
        return Fail("dangling escape");
      }
      char esc = text[pos++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos + 4 > text.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are not needed by our emitters).
          if (value < 0x80) {
            *out += static_cast<char>(value);
          } else if (value < 0x800) {
            *out += static_cast<char>(0xC0 | (value >> 6));
            *out += static_cast<char>(0x80 | (value & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (value >> 12));
            *out += static_cast<char>(0x80 | ((value >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (value & 0x3F));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Json* out) {
    size_t start = pos;
    if (Consume('-')) {
    }
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    bool is_int = true;
    if (pos < text.size() && (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E')) {
      is_int = false;
      if (Consume('.')) {
        while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
          ++pos;
        }
      }
      if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
        ++pos;
        if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
          ++pos;
        }
        while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
          ++pos;
        }
      }
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      return Fail("expected a value");
    }
    std::string token(text.substr(start, pos - start));
    if (is_int) {
      *out = Json(static_cast<int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
    } else {
      *out = Json(std::strtod(token.c_str(), nullptr));
    }
    return true;
  }

  bool ParseObject(Json* out) {
    Consume('{');
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      Json value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(Json* out) {
    Consume('[');
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      Json value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->Push(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool Json::Parse(std::string_view text, Json* out, std::string* error) {
  Parser parser{text};
  if (!parser.ParseValue(out)) {
    if (error != nullptr) {
      *error = parser.error;
    }
    return false;
  }
  parser.SkipWhitespace();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing characters after document";
    }
    return false;
  }
  return true;
}

ftx::Status WriteFileContents(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return ftx::UnavailableError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int close_result = std::fclose(f);
  if (written != content.size() || close_result != 0) {
    return ftx::UnavailableError("short write to " + path);
  }
  return ftx::Status::Ok();
}

}  // namespace ftx_obs
