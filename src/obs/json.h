// Minimal JSON document model for the observability layer.
//
// Everything ftx::obs emits — metrics snapshots, Chrome trace files,
// machine-readable bench results — is JSON, and the repository deliberately
// carries no third-party JSON dependency. This module provides the small
// subset the layer needs: an ordered object/array value type, a serializer
// with stable key order (so emitted files diff cleanly across runs), and a
// strict recursive-descent parser used by tests to round-trip what the
// exporters produce.

#ifndef FTX_SRC_OBS_JSON_H_
#define FTX_SRC_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace ftx_obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                      // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}                // NOLINT
  Json(int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)), int_(i), is_int_(true) {}  // NOLINT
  Json(int i) : Json(static_cast<int64_t>(i)) {}                      // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}           // NOLINT

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  int64_t integer() const { return is_int_ ? int_ : static_cast<int64_t>(number_); }
  const std::string& str() const { return string_; }

  // --- object access (insertion-ordered) ---
  Json& Set(std::string key, Json value);  // returns *this for chaining
  const Json* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

  // --- array access ---
  Json& Push(Json value);  // returns *this for chaining
  size_t size() const { return type_ == Type::kArray ? items_.size() : members_.size(); }
  const Json& at(size_t i) const { return items_[i]; }
  const std::vector<Json>& items() const { return items_; }

  // Serializes the value. indent == 0 emits compact one-line JSON;
  // indent > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  // Strict parse of a complete JSON document (trailing garbage rejected).
  static bool Parse(std::string_view text, Json* out, std::string* error = nullptr);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  bool is_int_ = false;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;
};

// Escapes a string for embedding in a JSON document (without quotes).
std::string JsonEscape(std::string_view s);

// Writes `content` to `path` atomically enough for our purposes (truncate +
// write + close), creating the file if needed.
ftx::Status WriteFileContents(const std::string& path, std::string_view content);

}  // namespace ftx_obs

#endif  // FTX_SRC_OBS_JSON_H_
