#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/check.h"

namespace ftx_obs {

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  FTX_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be sorted");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(int64_t value) {
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  ++buckets_[bucket];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const int64_t next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= target) {
      // Bucket i spans (bounds[i-1], bounds[i]]; clamp the edges to the
      // observed extremes so the open-ended first/overflow buckets (and any
      // bucket wider than the data) interpolate over real values.
      double lo = i == 0 ? static_cast<double>(min_) : static_cast<double>(bounds_[i - 1]);
      double hi = i < bounds_.size() ? static_cast<double>(bounds_[i]) : static_cast<double>(max_);
      lo = std::max(lo, static_cast<double>(min_));
      hi = std::min(hi, static_cast<double>(max_));
      if (hi < lo) {
        hi = lo;
      }
      const double within = std::max(0.0, target - static_cast<double>(cumulative));
      return lo + (hi - lo) * within / static_cast<double>(buckets_[i]);
    }
    cumulative = next;
  }
  return static_cast<double>(max_);
}

std::vector<int64_t> DefaultLatencyBoundsNs() {
  std::vector<int64_t> bounds;
  for (int64_t decade = 1000; decade <= 100000000000LL; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  return bounds;  // 1us, 2us, 5us, ... 100s, 200s, 500s
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const auto& [entry_name, value] : entries) {
    if (entry_name == name) {
      return &value;
    }
  }
  return nullptr;
}

int64_t MetricsSnapshot::TotalCounter(std::string_view suffix) const {
  int64_t total = 0;
  for (const auto& [name, value] : entries) {
    if (value.kind != MetricValue::Kind::kCounter) {
      continue;
    }
    if (name == suffix || (name.size() > suffix.size() + 1 &&
                           name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0 &&
                           name[name.size() - suffix.size() - 1] == '.')) {
      total += value.counter;
    }
  }
  return total;
}

Json MetricsSnapshot::ToJson() const {
  Json out = Json::Object();
  for (const auto& [name, value] : entries) {
    switch (value.kind) {
      case MetricValue::Kind::kCounter:
        out.Set(name, Json(value.counter));
        break;
      case MetricValue::Kind::kGauge:
        out.Set(name, Json(value.gauge));
        break;
      case MetricValue::Kind::kHistogram: {
        Json hist = Json::Object();
        hist.Set("count", Json(value.count));
        hist.Set("sum", Json(value.sum));
        hist.Set("min", Json(value.min));
        hist.Set("max", Json(value.max));
        hist.Set("p50", Json(value.p50));
        hist.Set("p90", Json(value.p90));
        hist.Set("p99", Json(value.p99));
        Json bounds = Json::Array();
        for (int64_t b : value.bounds) {
          bounds.Push(Json(b));
        }
        Json buckets = Json::Array();
        for (int64_t b : value.bucket_counts) {
          buckets.Push(Json(b));
        }
        hist.Set("bounds", std::move(bounds));
        hist.Set("buckets", std::move(buckets));
        out.Set(name, std::move(hist));
        break;
      }
    }
  }
  return out;
}

Counter* Registry::GetCounter(const std::string& name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    FTX_CHECK_MSG(it->second.kind == MetricValue::Kind::kCounter && it->second.counter != nullptr,
                  "metric %s already registered with a different kind/backing", name.c_str());
    return it->second.counter;
  }
  counters_.emplace_back();
  Entry entry;
  entry.kind = MetricValue::Kind::kCounter;
  entry.counter = &counters_.back();
  entries_.emplace(name, std::move(entry));
  return &counters_.back();
}

Gauge* Registry::GetGauge(const std::string& name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    FTX_CHECK_MSG(it->second.kind == MetricValue::Kind::kGauge && it->second.gauge != nullptr,
                  "metric %s already registered with a different kind/backing", name.c_str());
    return it->second.gauge;
  }
  gauges_.emplace_back();
  Entry entry;
  entry.kind = MetricValue::Kind::kGauge;
  entry.gauge = &gauges_.back();
  entries_.emplace(name, std::move(entry));
  return &gauges_.back();
}

Histogram* Registry::GetHistogram(const std::string& name, std::vector<int64_t> bounds) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    FTX_CHECK_MSG(
        it->second.kind == MetricValue::Kind::kHistogram && it->second.histogram != nullptr,
        "metric %s already registered with a different kind", name.c_str());
    return it->second.histogram;
  }
  histograms_.emplace_back(std::move(bounds));
  Entry entry;
  entry.kind = MetricValue::Kind::kHistogram;
  entry.histogram = &histograms_.back();
  entries_.emplace(name, std::move(entry));
  return &histograms_.back();
}

void Registry::RegisterCounterProbe(const std::string& name, std::function<int64_t()> probe) {
  FTX_CHECK(probe != nullptr);
  Entry entry;
  entry.kind = MetricValue::Kind::kCounter;
  entry.counter_probe = std::move(probe);
  entries_[name] = std::move(entry);
}

void Registry::RegisterGaugeProbe(const std::string& name, std::function<double()> probe) {
  FTX_CHECK(probe != nullptr);
  Entry entry;
  entry.kind = MetricValue::Kind::kGauge;
  entry.gauge_probe = std::move(probe);
  entries_[name] = std::move(entry);
}

void Registry::Unregister(const std::string& name) { entries_.erase(name); }

bool Registry::Contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricValue value;
    value.kind = entry.kind;
    switch (entry.kind) {
      case MetricValue::Kind::kCounter:
        value.counter = entry.counter != nullptr ? entry.counter->value() : entry.counter_probe();
        break;
      case MetricValue::Kind::kGauge:
        value.gauge = entry.gauge != nullptr ? entry.gauge->value() : entry.gauge_probe();
        break;
      case MetricValue::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        value.count = h.count();
        value.sum = h.sum();
        value.min = h.min();
        value.max = h.max();
        value.p50 = h.Quantile(0.50);
        value.p90 = h.Quantile(0.90);
        value.p99 = h.Quantile(0.99);
        value.bounds = h.bounds();
        value.bucket_counts = h.bucket_counts();
        break;
      }
    }
    snapshot.entries.emplace_back(name, std::move(value));
  }
  return snapshot;
}

std::string Registry::ToJsonString(int indent) const { return Snapshot().ToJson().Dump(indent); }

}  // namespace ftx_obs
