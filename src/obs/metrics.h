// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Every measured quantity the paper's figures rest on — commit counts,
// bytes persisted, recovery latencies, simulator/network/disk activity — is
// exposed through one Registry per Computation instead of ad-hoc structs.
// Two backing modes keep the hot paths free:
//
//  * owned instruments (Counter/Gauge/Histogram) allocated by the registry,
//    incremented through stable pointers;
//  * probe-backed instruments registered over existing state (a pointer or
//    closure reading a struct field), so legacy accounting like
//    Runtime::RuntimeStats keeps its single source of truth and the
//    registry view can never diverge from it.
//
// Snapshot() materializes every instrument into an ordered, value-semantic
// MetricsSnapshot that serializes to JSON for the results emitter.
//
// Thread-safety: a Registry is deliberately unsynchronized. Its confinement
// contract — one Registry per Computation, every instrument and probe owned
// by that computation's subsystems — is what lets the parallel trial engine
// (ftx::TrialPool) run whole computations on worker threads without locks:
// no instrument is ever shared across trials, and each trial's Snapshot()
// is taken on the thread that ran it. Snapshots are value-semantic and the
// results emitter merges them in trial-index order, so emitted JSON is
// identical for any --jobs value.
//
// Ownership rule (the audited contract; see tests/parallel_test.cc for the
// TSan-covered regression): a Registry, every instrument pointer handed out
// by it, and every probe closure registered with it are confined to one
// trial — created, written, snapshotted, and destroyed on whichever pool
// thread runs that trial's computation, with the pool's ParallelFor join
// providing the ordering edge before the caller reads merged snapshots.
// Never cache an instrument pointer across trials, share a Registry between
// two computations, or register a probe over state another trial mutates;
// any of those reintroduces the data race this design exists to avoid. Code
// that genuinely needs cross-trial aggregation must merge MetricsSnapshot
// values after the join, not share instruments.
//
// Naming scheme (see docs/OBSERVABILITY.md): dot-separated lowercase paths,
// `<subsystem>.<quantity>` for computation-wide instruments
// ("sim.messages_delivered", "dc.commit_ns") and `p<pid>.` prefixes for
// per-process ones ("p0.dc.commits", "p2.disk.sync_writes").

#ifndef FTX_SRC_OBS_METRICS_H_
#define FTX_SRC_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace ftx_obs {

// The one ordering every emitted metric/series name obeys: plain unsigned
// byte-wise (ordinal) comparison, independent of the process locale. Dotted
// names ("p2.dc.commits", "sim.events_executed") therefore sort identically
// on every platform — "p10." before "p2.", '.' (0x2E) after '-' (0x2D) —
// which is what keeps Registry snapshots, bench JSON, and the tsdb JSONL
// column order byte-stable across hosts. Never substitute a collation-aware
// comparison (strcoll, std::locale) here: locales reorder punctuation and
// digits, and the golden byte-compares would see it.
struct MetricNameLess {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      const unsigned char ca = static_cast<unsigned char>(a[i]);
      const unsigned char cb = static_cast<unsigned char>(b[i]);
      if (ca != cb) {
        return ca < cb;
      }
    }
    return a.size() < b.size();
  }
};

// Monotonically increasing integer quantity.
class Counter {
 public:
  void Add(int64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Instantaneous level; may move in both directions.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Distribution over fixed inclusive bucket upper bounds (in the observed
// unit, typically nanoseconds of simulated time): bucket i counts values
// <= bounds[i] that no earlier bucket counted. The last implicit bucket is
// +inf. Bounds are set at creation and never change.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return min_; }
  int64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  // bucket_counts().size() == bounds().size() + 1 (overflow bucket last).
  const std::vector<int64_t>& bucket_counts() const { return buckets_; }

  // Bucket-interpolated quantile estimate for q in [0, 1]: the continuous
  // rank q*count is located in the cumulative bucket counts and linearly
  // interpolated across the containing bucket's [lower, upper] bound range,
  // clamped to the observed [min, max] (so the first and overflow buckets
  // use the true extremes rather than -inf/+inf). Returns 0 when empty.
  double Quantile(double q) const;

 private:
  std::vector<int64_t> bounds_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Default latency bucket bounds: 1-2-5 decades from 1 us to 100 s, in ns.
std::vector<int64_t> DefaultLatencyBoundsNs();

// One materialized instrument value.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  int64_t counter = 0;
  double gauge = 0.0;
  // Histogram payload (empty unless kind == kHistogram).
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  double p50 = 0.0;  // bucket-interpolated summary quantiles
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<int64_t> bounds;
  std::vector<int64_t> bucket_counts;
};

// Ordered, value-semantic copy of a registry's state.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, MetricValue>> entries;

  const MetricValue* Find(std::string_view name) const;
  // Sum of every counter whose name ends with `.suffix` (aggregates
  // per-process instruments: TotalCounter("dc.commits") sums p*.dc.commits).
  int64_t TotalCounter(std::string_view suffix) const;

  // {"name": value, ...} with histograms as
  // {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..,
  //  "bounds":[..],"buckets":[..]}.
  Json ToJson() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Owned instruments: get-or-create by name. Pointers remain valid for the
  // registry's lifetime. Re-requesting a name returns the same instrument;
  // requesting an existing name as a different kind aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds = DefaultLatencyBoundsNs());

  // Probe-backed instruments: the closure is evaluated at Snapshot() time.
  // The owner of the probed state must outlive the registry (or call
  // Unregister). Registering an existing name replaces the probe.
  void RegisterCounterProbe(const std::string& name, std::function<int64_t()> probe);
  void RegisterGaugeProbe(const std::string& name, std::function<double()> probe);
  void Unregister(const std::string& name);

  bool Contains(std::string_view name) const;
  size_t size() const { return entries_.size(); }

  MetricsSnapshot Snapshot() const;
  // Snapshot().ToJson().Dump(indent) convenience.
  std::string ToJsonString(int indent = 2) const;

 private:
  struct Entry {
    MetricValue::Kind kind = MetricValue::Kind::kCounter;
    Counter* counter = nullptr;        // owned (counters_ element) or null
    Gauge* gauge = nullptr;            // owned or null
    Histogram* histogram = nullptr;    // owned or null
    std::function<int64_t()> counter_probe;
    std::function<double()> gauge_probe;
  };

  // std::map keeps snapshots sorted by name, which makes emitted JSON
  // stable and diffable across runs. The comparator is the explicit ordinal
  // (locale-independent) one so the order is also stable across platforms.
  std::map<std::string, Entry, MetricNameLess> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace ftx_obs

#endif  // FTX_SRC_OBS_METRICS_H_
