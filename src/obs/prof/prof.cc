#include "src/obs/prof/prof.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>

namespace ftx_prof {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string LeafOf(std::string_view stack) {
  size_t pos = stack.rfind(';');
  return std::string(pos == std::string_view::npos ? stack : stack.substr(pos + 1));
}

std::string ParentOf(std::string_view stack) {
  size_t pos = stack.rfind(';');
  return std::string(pos == std::string_view::npos ? std::string_view{} : stack.substr(0, pos));
}

}  // namespace

// --- shard: one thread's private call tree ---

struct Profiler::Shard {
  struct Node {
    int32_t parent = -1;  // index into nodes, -1 = top level
    std::string name;
    int64_t count = 0;
    int64_t total_ns = 0;
    int64_t child_ns = 0;
  };
  struct Frame {
    int32_t node = 0;
    int64_t begin_ns = 0;
    int64_t child_ns = 0;  // accumulated directly-nested scope time
  };

  std::vector<Node> nodes;
  std::vector<Frame> stack;
  // Child lookup by (parent, name-pointer). Instrumentation names are
  // literals, so pointer identity almost always hits; two distinct literals
  // with equal text merely create two nodes that Merge() re-aggregates by
  // path.
  std::unordered_map<uint64_t, int32_t> children;

  static uint64_t ChildKey(int32_t parent, const char* name) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(parent + 1)) << 48) ^
           reinterpret_cast<uintptr_t>(name);
  }

  int32_t ChildNode(int32_t parent, const char* name) {
    uint64_t key = ChildKey(parent, name);
    auto it = children.find(key);
    if (it != children.end()) {
      return it->second;
    }
    Node node;
    node.parent = parent;
    node.name = name;
    nodes.push_back(std::move(node));
    int32_t id = static_cast<int32_t>(nodes.size()) - 1;
    children.emplace(key, id);
    return id;
  }
};

// --- thread state ---

struct Profiler::ThreadState {
  Profiler* active = nullptr;
  Shard* shard = nullptr;
  // Shards this thread acquired, keyed by the profiler's unique id (ids are
  // never reused, so a stale entry for a destroyed profiler is never hit).
  std::unordered_map<uint64_t, Shard*> shard_cache;
};

Profiler::ThreadState& Profiler::Tls() {
  thread_local ThreadState state;
  return state;
}

Profiler* Profiler::ActiveOnThisThread() { return Tls().active; }

namespace {
std::atomic<uint64_t> g_next_profiler_id{1};
}  // namespace

Profiler::Profiler() : id_(g_next_profiler_id.fetch_add(1, std::memory_order_relaxed)) {}

Profiler::~Profiler() {
  // If this profiler is still active on the destroying thread, deactivate.
  ThreadState& ts = Tls();
  if (ts.active == this) {
    ts.active = nullptr;
    ts.shard = nullptr;
  }
}

Profiler::Shard* Profiler::AcquireShard() {
  ThreadState& ts = Tls();
  auto it = ts.shard_cache.find(id_);
  if (it != ts.shard_cache.end()) {
    return it->second;
  }
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(shard));
  }
  ts.shard_cache.emplace(id_, raw);
  return raw;
}

Profile Profiler::Merge() const {
  struct Accum {
    int64_t count = 0;
    int64_t total_ns = 0;
    int64_t child_ns = 0;
  };
  std::map<std::string, Accum> merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    // Resolve each node's full collapsed path (parents have smaller
    // indices than children by construction).
    std::vector<std::string> paths(shard->nodes.size());
    for (size_t i = 0; i < shard->nodes.size(); ++i) {
      const Shard::Node& node = shard->nodes[i];
      paths[i] = node.parent < 0
                     ? node.name
                     : paths[static_cast<size_t>(node.parent)] + ";" + node.name;
      if (node.count == 0) {
        continue;  // scope entered but never completed (still open)
      }
      Accum& a = merged[paths[i]];
      a.count += node.count;
      a.total_ns += node.total_ns;
      a.child_ns += node.child_ns;
    }
  }
  Profile profile;
  profile.entries.reserve(merged.size());
  for (auto& [stack, a] : merged) {
    ProfileEntry entry;
    entry.stack = stack;
    entry.count = a.count;
    entry.total_ns = a.total_ns;
    entry.self_ns = std::max<int64_t>(0, a.total_ns - a.child_ns);
    profile.entries.push_back(std::move(entry));
  }
  return profile;
}

// --- activation ---

Activation::Activation(Profiler* profiler) {
  if (profiler == nullptr) {
    return;
  }
  Profiler::ThreadState& ts = Profiler::Tls();
  previous_ = ts.active;
  previous_shard_ = ts.shard;
  ts.active = profiler;
  ts.shard = profiler->AcquireShard();
  activated_ = true;
}

Activation::~Activation() {
  if (!activated_) {
    return;
  }
  Profiler::ThreadState& ts = Profiler::Tls();
  ts.active = previous_;
  ts.shard = static_cast<Profiler::Shard*>(previous_shard_);
}

// --- scope ---

Scope::Scope(const char* name) {
  Profiler::ThreadState& ts = Profiler::Tls();
  Profiler::Shard* shard = ts.shard;
  if (shard == nullptr) {
    return;  // profiling off: one TL load + branch
  }
  int32_t parent = shard->stack.empty() ? -1 : shard->stack.back().node;
  Profiler::Shard::Frame frame;
  frame.node = shard->ChildNode(parent, name);
  frame.begin_ns = NowNs();
  shard->stack.push_back(frame);
  shard_ = shard;
}

Scope::~Scope() {
  if (shard_ == nullptr) {
    return;
  }
  auto* shard = static_cast<Profiler::Shard*>(shard_);
  Profiler::Shard::Frame frame = shard->stack.back();
  shard->stack.pop_back();
  int64_t elapsed = NowNs() - frame.begin_ns;
  Profiler::Shard::Node& node = shard->nodes[static_cast<size_t>(frame.node)];
  ++node.count;
  node.total_ns += elapsed;
  node.child_ns += frame.child_ns;
  if (!shard->stack.empty()) {
    shard->stack.back().child_ns += elapsed;
  }
}

// --- profile queries and exports ---

const ProfileEntry* Profile::Find(std::string_view stack) const {
  for (const ProfileEntry& entry : entries) {
    if (entry.stack == stack) {
      return &entry;
    }
  }
  return nullptr;
}

int64_t Profile::LeafTotalNs(std::string_view leaf) const {
  int64_t total = 0;
  for (const ProfileEntry& entry : entries) {
    if (LeafOf(entry.stack) == leaf) {
      total += entry.total_ns;
    }
  }
  return total;
}

int64_t Profile::LeafCount(std::string_view leaf) const {
  int64_t total = 0;
  for (const ProfileEntry& entry : entries) {
    if (LeafOf(entry.stack) == leaf) {
      total += entry.count;
    }
  }
  return total;
}

std::string Profile::ToCollapsed(bool weight_ns) const {
  std::string out;
  for (const ProfileEntry& entry : entries) {
    out += entry.stack;
    out += ' ';
    out += std::to_string(weight_ns ? entry.total_ns : entry.count);
    out += '\n';
  }
  return out;
}

ftx_obs::Json Profile::ToJson() const {
  ftx_obs::Json doc = ftx_obs::Json::Object();
  doc.Set("schema", kProfSchemaName);
  doc.Set("schema_version", kProfSchemaVersion);
  ftx_obs::Json rows = ftx_obs::Json::Array();
  for (const ProfileEntry& entry : entries) {
    ftx_obs::Json row = ftx_obs::Json::Object();
    row.Set("stack", entry.stack);
    row.Set("count", entry.count);
    row.Set("total_ns", entry.total_ns);
    row.Set("self_ns", entry.self_ns);
    rows.Push(std::move(row));
  }
  doc.Set("entries", std::move(rows));
  return doc;
}

void Profile::PublishTo(ftx_obs::Registry* registry, const std::string& prefix) const {
  for (const ProfileEntry& entry : entries) {
    registry->GetCounter(prefix + entry.stack + ".ns")->Add(entry.total_ns);
    registry->GetCounter(prefix + entry.stack + ".count")->Add(entry.count);
  }
}

ftx_obs::Json Profile::ToChromeTrace() const {
  // Entries are sorted by stack, so every parent precedes its children
  // ("a" < "a;b"). Lay each scope out left-to-right inside its parent's
  // interval: a flamegraph on the trace viewer's time axis.
  std::map<std::string, double> cursor;  // stack (or "") -> next free ts, us
  ftx_obs::Json events = ftx_obs::Json::Array();
  for (const ProfileEntry& entry : entries) {
    std::string parent = ParentOf(entry.stack);
    double ts = cursor.count(parent) ? cursor[parent] : 0.0;
    double dur = static_cast<double>(entry.total_ns) / 1000.0;  // us
    cursor[parent] = ts + dur;
    cursor[entry.stack] = ts;  // children start at our left edge
    ftx_obs::Json event = ftx_obs::Json::Object();
    event.Set("ph", "X");
    event.Set("cat", "prof");
    event.Set("name", LeafOf(entry.stack));
    event.Set("pid", 0);
    event.Set("tid", 0);
    event.Set("ts", ts);
    event.Set("dur", dur);
    ftx_obs::Json args = ftx_obs::Json::Object();
    args.Set("count", entry.count);
    args.Set("self_ns", entry.self_ns);
    event.Set("args", std::move(args));
    events.Push(std::move(event));
  }
  ftx_obs::Json doc = ftx_obs::Json::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

bool ParseCollapsed(std::string_view text, Profile* out, std::string* error) {
  std::map<std::string, int64_t> merged;
  size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    size_t eol = text.find('\n');
    std::string_view line = eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{} : text.substr(eol + 1);
    if (line.empty()) {
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0 || space + 1 >= line.size()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": expected 'stack weight'";
      }
      return false;
    }
    std::string_view weight_text = line.substr(space + 1);
    int64_t weight = 0;
    for (char c : weight_text) {
      if (c < '0' || c > '9') {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_no) + ": non-numeric weight";
        }
        return false;
      }
      weight = weight * 10 + (c - '0');
    }
    merged[std::string(line.substr(0, space))] += weight;
  }
  out->entries.clear();
  for (auto& [stack, weight] : merged) {
    ProfileEntry entry;
    entry.stack = stack;
    entry.total_ns = weight;
    out->entries.push_back(std::move(entry));
  }
  return true;
}

// --- host metadata ---

namespace {

std::string CpuModelString() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) {
    return "";
  }
  char line[512];
  std::string model;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        model = colon + 1;
        while (!model.empty() && (model.front() == ' ' || model.front() == '\t')) {
          model.erase(model.begin());
        }
        while (!model.empty() && (model.back() == '\n' || model.back() == ' ')) {
          model.pop_back();
        }
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

}  // namespace

ftx_obs::Json HostMetaJson() {
  ftx_obs::Json host = ftx_obs::Json::Object();
  host.Set("cpu_model", CpuModelString());
  host.Set("num_cpus", static_cast<int64_t>(std::thread::hardware_concurrency()));
#if defined(__clang__)
  host.Set("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  host.Set("compiler", std::string("gcc ") + __VERSION__);
#else
  host.Set("compiler", "unknown");
#endif
#if defined(FTX_NATIVE)
  host.Set("ftx_native", true);
#else
  host.Set("ftx_native", false);
#endif
#if defined(FTX_SANITIZE_NAME)
  host.Set("sanitizer", FTX_SANITIZE_NAME);
#else
  host.Set("sanitizer", "none");
#endif
  return host;
}

}  // namespace ftx_prof
