// ftx::prof — low-overhead scoped wall-clock profiler for the hot paths.
//
// Everything else in src/obs measures *simulated* time; this module measures
// *host* time: where the reproduction itself spends its cycles committing,
// recovering, and torturing crash states. It exists so the MTTR of the
// recovery path and the cost of the commit machinery are attributable
// phase-by-phase (log scan, CRC validate, page install, reprotect, ND
// replay, ...) instead of being one opaque number.
//
// Design constraints, in order:
//
//  * Off by default and near-free when off. FTX_PROF_SCOPE compiles to one
//    thread-local load and a branch when no profiler is active on the
//    calling thread. No simulated quantity may ever depend on profiling
//    being on or off (the golden-snapshot compares in bench/golden pin
//    this).
//  * RAII phase timers on a thread-local stack. A Scope pushes a frame on
//    construction and folds its wall-clock interval into a per-thread call
//    tree on destruction; nesting builds collapsed stacks ("a;b;c").
//  * Per-thread buffers, merged deterministically. Threads never contend on
//    the hot path: each (profiler, thread) pair owns a shard, and
//    Profiler::Merge() aggregates shards into entries sorted by stack path.
//    Scope *counts* are therefore byte-identical for any --jobs value (the
//    same scopes execute no matter which worker runs them); only the
//    wall-clock fields vary run to run.
//  * ftx::TrialPool propagates the caller's active profiler into its
//    workers (src/core/parallel.cc), so a bench row that shards trials
//    still captures every scope in one profile.
//
// Export surfaces: collapsed-stack text (FlameGraph / speedscope
// compatible), an ftx.prof JSON document, counters published into an
// ftx_obs::Registry, and a synthetic left-heavy Chrome trace (complete
// events) for chrome://tracing / Perfetto.

#ifndef FTX_SRC_OBS_PROF_PROF_H_
#define FTX_SRC_OBS_PROF_PROF_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace ftx_prof {

inline constexpr const char* kProfSchemaName = "ftx.prof";
inline constexpr int kProfSchemaVersion = 1;

// One aggregated call-tree node after a merge, addressed by its collapsed
// stack path ("commit;commit.serialize").
struct ProfileEntry {
  std::string stack;
  int64_t count = 0;     // times the scope ran (deterministic across --jobs)
  int64_t total_ns = 0;  // wall-clock including children
  int64_t self_ns = 0;   // wall-clock excluding children
};

// A merged, immutable profile: entries sorted by stack path.
struct Profile {
  std::vector<ProfileEntry> entries;

  bool empty() const { return entries.empty(); }
  const ProfileEntry* Find(std::string_view stack) const;

  // Aggregation by *leaf* scope name, summed over every stack the scope
  // appears in ("recover.crc_validate" regardless of what called it). This
  // is what the recovery bench reports as the per-phase breakdown.
  int64_t LeafTotalNs(std::string_view leaf) const;
  int64_t LeafCount(std::string_view leaf) const;

  // FlameGraph collapsed-stack text: one "a;b;c WEIGHT" line per entry in
  // sorted order. `weight_ns` selects total nanoseconds (the flamegraph
  // you want) vs scope counts (byte-deterministic across runs).
  std::string ToCollapsed(bool weight_ns = true) const;

  // ftx.prof JSON document (schema/version/entries).
  ftx_obs::Json ToJson() const;

  // Publishes "prefix<stack>.ns" / "prefix<stack>.count" counters.
  void PublishTo(ftx_obs::Registry* registry, const std::string& prefix = "prof.") const;

  // Synthetic left-heavy timeline of the call tree as Chrome trace_event
  // complete ("X") events — each stack becomes a slice of its total_ns laid
  // out inside its parent. Not a real timeline; a flamegraph rendered on
  // the trace viewer's time axis.
  ftx_obs::Json ToChromeTrace() const;
};

// Parses collapsed-stack text (the ToCollapsed format) back into a profile
// with the weight in total_ns and count zeroed (collapsed text carries one
// weight). Returns false (and sets *error) on malformed lines.
bool ParseCollapsed(std::string_view text, Profile* out, std::string* error = nullptr);

// A profiler instance: owns the per-thread shards scopes record into while
// it is a thread's active profiler. Create one per measurement (a bench
// row, a test), activate it, run, then Merge().
class Profiler {
 public:
  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Aggregates every thread shard into one sorted profile. Do not call
  // concurrently with active scopes on other threads (merge after the
  // parallel section — TrialPool::ParallelFor has returned).
  Profile Merge() const;

  // The calling thread's active profiler (nullptr when none): what
  // FTX_PROF_SCOPE records into, and what TrialPool propagates to workers.
  static Profiler* ActiveOnThisThread();

  // Unique per-instance id (never reused); lets thread caches detect a
  // destroyed-and-reallocated profiler.
  uint64_t id() const { return id_; }

 private:
  friend class Activation;
  friend class Scope;
  struct Shard;
  struct ThreadState;

  static ThreadState& Tls();
  // Returns the calling thread's shard of this profiler, creating and
  // registering it on first use (the only locked operation).
  Shard* AcquireShard();

  uint64_t id_ = 0;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// RAII: makes `profiler` the calling thread's active profiler, restoring
// the previous one on destruction. Activation(nullptr) is a no-op (so
// propagation code can activate unconditionally).
class Activation {
 public:
  explicit Activation(Profiler* profiler);
  ~Activation();

  Activation(const Activation&) = delete;
  Activation& operator=(const Activation&) = delete;

 private:
  Profiler* previous_ = nullptr;
  void* previous_shard_ = nullptr;
  bool activated_ = false;
};

// RAII phase timer. `name` must be a string with static storage duration
// (instrumentation sites use literals) and must not contain ';' or '\n'
// (they delimit the collapsed-stack format).
class Scope {
 public:
  explicit Scope(const char* name);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  void* shard_ = nullptr;  // null when no profiler was active at entry
};

#define FTX_PROF_CONCAT_INNER(a, b) a##b
#define FTX_PROF_CONCAT(a, b) FTX_PROF_CONCAT_INNER(a, b)
// The one instrumentation macro: times the enclosing block as phase `name`.
#define FTX_PROF_SCOPE(name) ::ftx_prof::Scope FTX_PROF_CONCAT(ftx_prof_scope_, __LINE__)(name)

// Real host metadata for the `meta` block of wall-clock bench JSON (the
// benchmark-library defaults of num_cpus=1/mhz=2100 made cross-host
// trajectories uninterpretable): CPU model string from /proc/cpuinfo,
// hardware thread count, compiler version, and the FTX_NATIVE / sanitizer
// build flags. Deliberately NOT added to the simulated (golden-snapshot)
// benches — their JSON must stay byte-identical across hosts.
ftx_obs::Json HostMetaJson();

}  // namespace ftx_prof

#endif  // FTX_SRC_OBS_PROF_PROF_H_
