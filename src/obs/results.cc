#include "src/obs/results.h"

#include <utility>

#include "src/common/check.h"

namespace ftx_obs {

ResultsFile::ResultsFile(std::string bench_name) : bench_name_(std::move(bench_name)) {}

void ResultsFile::SetMeta(const std::string& key, Json value) {
  meta_.Set(key, std::move(value));
}

void ResultsFile::AddRow(Json row) {
  FTX_CHECK_MSG(row.is_object(), "results rows must be JSON objects");
  rows_.push_back(std::move(row));
}

void ResultsFile::AttachMetricsToLastRow(const MetricsSnapshot& snapshot, const std::string& key) {
  FTX_CHECK_MSG(!rows_.empty(), "AttachMetricsToLastRow with no rows");
  rows_.back().Set(key, snapshot.ToJson());
}

Json ResultsFile::ToJson() const {
  Json root = Json::Object();
  root.Set("schema", Json(kResultsSchemaName));
  root.Set("schema_version", Json(kResultsSchemaVersion));
  root.Set("bench", Json(bench_name_));
  root.Set("full_scale", Json(full_scale_));
  root.Set("meta", meta_);
  Json rows = Json::Array();
  for (const Json& row : rows_) {
    rows.Push(row);
  }
  root.Set("rows", std::move(rows));
  return root;
}

ftx::Status ResultsFile::WriteTo(const std::string& path) const {
  std::string document = ToJson().Dump(1);
  document += '\n';
  return WriteFileContents(path, document);
}

}  // namespace ftx_obs
