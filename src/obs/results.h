// Machine-readable experiment results (the BENCH_*.json format).
//
// Every bench binary (and ftx_run) can emit its measurements as a
// schema-versioned JSON document so runs land as diffable artifacts instead
// of hand-formatted tables. The envelope is uniform across benches:
//
//   {
//     "schema": "ftx.bench-results",
//     "schema_version": 1,
//     "bench": "fig8_nvi",
//     "full_scale": false,
//     "meta": { ... free-form bench-level context ... },
//     "rows": [ {"workload": "nvi", "protocol": "cpvs", ...}, ... ]
//   }
//
// Rows are flat objects of strings/numbers/bools, optionally carrying a
// nested "metrics" object (a Registry snapshot). scripts/check_bench_json.py
// validates emitted files against this schema; docs/OBSERVABILITY.md
// documents the per-bench row fields.

#ifndef FTX_SRC_OBS_RESULTS_H_
#define FTX_SRC_OBS_RESULTS_H_

#include <string>

#include "src/common/status.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace ftx_obs {

inline constexpr const char* kResultsSchemaName = "ftx.bench-results";
inline constexpr int kResultsSchemaVersion = 1;

class ResultsFile {
 public:
  explicit ResultsFile(std::string bench_name);

  // Bench-level context ("scale", "seed_base", ...).
  void SetMeta(const std::string& key, Json value);
  void SetFullScale(bool full_scale) { full_scale_ = full_scale; }

  // Appends one measurement row; `row` must be a JSON object.
  void AddRow(Json row);

  // Attaches a metrics snapshot under `key` in the most recent row.
  void AttachMetricsToLastRow(const MetricsSnapshot& snapshot, const std::string& key = "metrics");

  size_t num_rows() const { return rows_.size(); }

  Json ToJson() const;
  ftx::Status WriteTo(const std::string& path) const;

 private:
  std::string bench_name_;
  bool full_scale_ = false;
  Json meta_ = Json::Object();
  std::vector<Json> rows_;
};

}  // namespace ftx_obs

#endif  // FTX_SRC_OBS_RESULTS_H_
