#include "src/obs/trace_event.h"

#include <algorithm>
#include <map>
#include <utility>

namespace ftx_obs {

const char* TraceLaneName(TraceLane lane) {
  switch (lane) {
    case TraceLane::kStep:
      return "steps";
    case TraceLane::kStorage:
      return "commits+log";
    case TraceLane::kRecovery:
      return "failures+recovery";
    case TraceLane::kCoordination:
      return "2pc";
  }
  return "?";
}

void Tracer::Span(int pid, TraceLane lane, const char* category, std::string name,
                  ftx::TimePoint begin, ftx::TimePoint end) {
  if (!enabled_) {
    return;
  }
  if (end < begin) {
    end = begin;
  }
  // Keep each (pid, lane) track overlap-free: charged costs can lag the
  // simulator clock (pending overheads are billed at the next step), so a
  // span occasionally starts before the previous one on its track ended.
  // Shifting the start preserves durations on the timeline and guarantees
  // the exported B/E events nest.
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->pid == pid && it->lane == lane && it->phase == 'E') {
      if (begin.nanos() < it->ts_ns) {
        ftx::Duration length = end - begin;
        begin = ftx::TimePoint(it->ts_ns);
        end = begin + length;
      }
      break;
    }
  }
  events_.push_back(TraceEvent{'B', pid, lane, category, name, begin.nanos(), next_seq_++});
  events_.push_back(TraceEvent{'E', pid, lane, category, std::move(name), end.nanos(), next_seq_++});
}

void Tracer::Instant(int pid, TraceLane lane, const char* category, std::string name,
                     ftx::TimePoint at) {
  if (!enabled_) {
    return;
  }
  events_.push_back(TraceEvent{'i', pid, lane, category, std::move(name), at.nanos(), next_seq_++});
}

void Tracer::FlowStart(int pid, TraceLane lane, const char* category, std::string name,
                       ftx::TimePoint at, int64_t flow_id) {
  if (!enabled_) {
    return;
  }
  TraceEvent event{'s', pid, lane, category, std::move(name), at.nanos(), next_seq_++};
  event.flow_id = flow_id;
  events_.push_back(std::move(event));
}

void Tracer::FlowFinish(int pid, TraceLane lane, const char* category, std::string name,
                        ftx::TimePoint at, int64_t flow_id) {
  if (!enabled_) {
    return;
  }
  TraceEvent event{'f', pid, lane, category, std::move(name), at.nanos(), next_seq_++};
  event.flow_id = flow_id;
  events_.push_back(std::move(event));
}

void Tracer::CounterSample(int pid, const char* category, std::string name, ftx::TimePoint at,
                           std::vector<std::pair<std::string, double>> values) {
  if (!enabled_) {
    return;
  }
  TraceEvent event{'C', pid, TraceLane::kStorage, category, std::move(name), at.nanos(),
                   next_seq_++};
  event.counter_values = std::move(values);
  events_.push_back(std::move(event));
}

Json Tracer::ToChromeTrace() const {
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events_.size());
  for (const TraceEvent& event : events_) {
    sorted.push_back(&event);
  }
  std::sort(sorted.begin(), sorted.end(), [](const TraceEvent* a, const TraceEvent* b) {
    if (a->ts_ns != b->ts_ns) {
      return a->ts_ns < b->ts_ns;
    }
    return a->seq < b->seq;
  });

  Json trace_events = Json::Array();

  // Thread-name metadata for every (pid, lane) in use, emitted first.
  // Counter tracks render per (pid, name) and have no thread identity.
  std::map<std::pair<int, int>, bool> lanes_in_use;
  for (const TraceEvent& event : events_) {
    if (event.phase == 'C') {
      continue;
    }
    lanes_in_use[{event.pid, static_cast<int>(event.lane)}] = true;
  }
  for (const auto& [key, unused] : lanes_in_use) {
    (void)unused;
    Json meta = Json::Object();
    meta.Set("name", Json("thread_name"));
    meta.Set("ph", Json("M"));
    meta.Set("pid", Json(key.first));
    meta.Set("tid", Json(key.second));
    Json args = Json::Object();
    args.Set("name", Json(TraceLaneName(static_cast<TraceLane>(key.second))));
    meta.Set("args", std::move(args));
    trace_events.Push(std::move(meta));
  }

  for (const TraceEvent* event : sorted) {
    Json j = Json::Object();
    j.Set("name", Json(event->name));
    j.Set("cat", Json(event->category));
    j.Set("ph", Json(std::string(1, event->phase)));
    // trace_event timestamps are microseconds; keep ns precision fractional.
    j.Set("ts", Json(static_cast<double>(event->ts_ns) / 1000.0));
    j.Set("pid", Json(event->pid));
    j.Set("tid", Json(static_cast<int>(event->lane)));
    if (event->phase == 'i') {
      j.Set("s", Json("t"));  // instant scope: thread
    }
    if (event->phase == 's' || event->phase == 'f') {
      j.Set("id", Json(event->flow_id));
      if (event->phase == 'f') {
        j.Set("bp", Json("e"));  // bind the arrow to the enclosing slice
      }
    }
    if (event->phase == 'C') {
      Json args = Json::Object();
      for (const auto& [series, value] : event->counter_values) {
        args.Set(series, Json(value));
      }
      j.Set("args", std::move(args));
    }
    trace_events.Push(std::move(j));
  }

  Json root = Json::Object();
  root.Set("traceEvents", std::move(trace_events));
  root.Set("displayTimeUnit", Json("ms"));
  return root;
}

ftx::Status Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteFileContents(path, ToChromeTraceJson());
}

}  // namespace ftx_obs
