// Simulated-timeline tracer with Chrome trace_event export.
//
// Records spans (begin/end pairs) and instants stamped with ftx::SimTime,
// one logical track per (process, lane). A lane is a synthetic "thread"
// that groups one class of activity — steps, commits, recovery, 2PC — so
// that spans within a lane never overlap and the exported B/E events are
// balanced by construction. Exported files follow the Chrome trace_event
// JSON Array/Object format and open directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Because all experiments run on a discrete-event simulator, span begin/end
// times are supplied by the caller: a commit that "costs" 40 ms occupies
// [Now()+accrued, Now()+accrued+cost) on the simulated timeline even though
// the simulator clock only advances between callbacks.
//
// The tracer is disabled by default; recording while disabled is a cheap
// no-op so instrumentation can stay unconditional on hot paths.

#ifndef FTX_SRC_OBS_TRACE_EVENT_H_
#define FTX_SRC_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/obs/json.h"

namespace ftx_obs {

// Synthetic thread ids: one track per activity class per process.
enum class TraceLane : int {
  kStep = 0,      // application steps
  kStorage = 1,   // commits, ND-log flushes, redo appends
  kRecovery = 2,  // crashes, rollbacks, recovery, restarts
  kCoordination = 3,  // 2PC rounds
};

const char* TraceLaneName(TraceLane lane);

struct TraceEvent {
  char phase = 'i';  // 'B', 'E', 'i' (instant), 's'/'f' (flow), 'C' (counter)
  int pid = 0;
  TraceLane lane = TraceLane::kStep;
  const char* category = "";
  std::string name;
  int64_t ts_ns = 0;
  int64_t seq = 0;  // recording order; tie-break for equal timestamps
  // Flow binding id for 's'/'f' phases; -1 otherwise. A flow start and its
  // finish pair up on (category, name, flow_id).
  int64_t flow_id = -1;
  // Counter series for 'C' phases (name -> sampled value), empty otherwise.
  std::vector<std::pair<std::string, double>> counter_values;
};

class Tracer {
 public:
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Records a [begin, end) span on the process's lane. Zero-length spans
  // are recorded with begin == end and stay balanced in the export.
  void Span(int pid, TraceLane lane, const char* category, std::string name,
            ftx::TimePoint begin, ftx::TimePoint end);

  // Records a point event.
  void Instant(int pid, TraceLane lane, const char* category, std::string name, ftx::TimePoint at);

  // Records one end of a flow arrow (Perfetto draws start -> finish). The
  // two ends pair on (category, name, flow_id); flow_id must be >= 0. The
  // finish is emitted with "bp":"e" so the arrow binds to the enclosing
  // slice (or the instant point) at each end.
  void FlowStart(int pid, TraceLane lane, const char* category, std::string name,
                 ftx::TimePoint at, int64_t flow_id);
  void FlowFinish(int pid, TraceLane lane, const char* category, std::string name,
                  ftx::TimePoint at, int64_t flow_id);

  // Records a 'C' counter sample: one stacked counter track per (pid, name)
  // with one series per (series name, value) pair.
  void CounterSample(int pid, const char* category, std::string name, ftx::TimePoint at,
                     std::vector<std::pair<std::string, double>> values);

  size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  // Chrome trace_event JSON Object Format: {"traceEvents": [...],
  // "displayTimeUnit": "ms"}. Events are sorted by (timestamp, recording
  // order), timestamps are emitted in microseconds (fractional), and
  // thread-name metadata is included for every lane in use.
  Json ToChromeTrace() const;
  std::string ToChromeTraceJson() const { return ToChromeTrace().Dump(1); }
  ftx::Status WriteChromeTrace(const std::string& path) const;

 private:
  bool enabled_ = false;
  int64_t next_seq_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace ftx_obs

#endif  // FTX_SRC_OBS_TRACE_EVENT_H_
