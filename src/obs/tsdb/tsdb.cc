#include "src/obs/tsdb/tsdb.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace ftx_obs {

TimeSeriesDb::TimeSeriesDb(TimeSeriesOptions options) : options_(options) {
  FTX_CHECK_MSG(options_.cadence_ns > 0, "tsdb cadence must be positive");
  FTX_CHECK_MSG(options_.capacity > 0, "tsdb capacity must be positive");
}

void TimeSeriesDb::AddCounter(std::string name, std::function<int64_t()> probe) {
  FTX_CHECK_MSG(!sealed_, "tsdb column '%s' registered after first sample", name.c_str());
  FTX_CHECK_MSG(probe != nullptr, "tsdb counter '%s' has no probe", name.c_str());
  for (const Column& c : columns_) {
    FTX_CHECK_MSG(c.name != name, "duplicate tsdb column '%s'", name.c_str());
  }
  Column col;
  col.name = std::move(name);
  col.is_counter = true;
  col.counter_probe = std::move(probe);
  columns_.push_back(std::move(col));
}

void TimeSeriesDb::AddGauge(std::string name, std::function<double()> probe) {
  FTX_CHECK_MSG(!sealed_, "tsdb column '%s' registered after first sample", name.c_str());
  FTX_CHECK_MSG(probe != nullptr, "tsdb gauge '%s' has no probe", name.c_str());
  for (const Column& c : columns_) {
    FTX_CHECK_MSG(c.name != name, "duplicate tsdb column '%s'", name.c_str());
  }
  Column col;
  col.name = std::move(name);
  col.is_counter = false;
  col.gauge_probe = std::move(probe);
  columns_.push_back(std::move(col));
}

void TimeSeriesDb::SetMeta(std::string key, Json value) {
  for (auto& kv : meta_) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return;
    }
  }
  meta_.emplace_back(std::move(key), std::move(value));
}

void TimeSeriesDb::Seal() {
  if (sealed_) {
    return;
  }
  sealed_ = true;
  // Column order is the one ordinal order every ftx_obs emitter uses, never
  // registration order — so the exported header is identical no matter which
  // subsystem registered its probes first.
  std::sort(columns_.begin(), columns_.end(),
            [](const Column& a, const Column& b) { return MetricNameLess()(a.name, b.name); });
  num_counters_ = 0;
  num_gauges_ = 0;
  for (Column& c : columns_) {
    c.slot = c.is_counter ? num_counters_++ : num_gauges_++;
  }
}

void TimeSeriesDb::TakeSample(int64_t t_ns) {
  Seal();
  Sample s;
  s.t_ns = t_ns;
  s.counters.resize(static_cast<size_t>(num_counters_));
  s.gauges.resize(static_cast<size_t>(num_gauges_));
  for (const Column& c : columns_) {
    if (c.is_counter) {
      s.counters[static_cast<size_t>(c.slot)] = c.counter_probe();
    } else {
      s.gauges[static_cast<size_t>(c.slot)] = c.gauge_probe();
    }
  }
  const size_t slot = static_cast<size_t>(samples_taken_ % options_.capacity);
  if (slot < ring_.size()) {
    ring_[slot] = std::move(s);
  } else {
    ring_.push_back(std::move(s));
  }
  ++samples_taken_;
  last_sample_ns_ = t_ns;
}

void TimeSeriesDb::OnSimTime(int64_t next_event_ns) {
  FTX_CHECK_MSG(!finalized_, "tsdb sampled after Finalize");
  // Every boundary strictly before the next event's time is now closed: no
  // event can execute in between, so the current state IS the state at each
  // of those boundaries.
  while (next_boundary_ns_ < next_event_ns) {
    TakeSample(next_boundary_ns_);
    next_boundary_ns_ += options_.cadence_ns;
  }
}

void TimeSeriesDb::Finalize(int64_t end_ns) {
  if (finalized_) {
    return;
  }
  while (next_boundary_ns_ <= end_ns) {
    TakeSample(next_boundary_ns_);
    next_boundary_ns_ += options_.cadence_ns;
  }
  // Close the series with the end-of-run state so the last row always equals
  // the aggregate report (the checker's cross-validation anchor).
  if (last_sample_ns_ < end_ns) {
    TakeSample(end_ns);
  }
  finalized_ = true;
}

int64_t TimeSeriesDb::samples_retained() const {
  return samples_taken_ < options_.capacity ? samples_taken_ : options_.capacity;
}

void TimeSeriesDb::ForEachSample(const std::function<void(const Sample&)>& fn) const {
  const int64_t retained = samples_retained();
  const int64_t first = samples_taken_ - retained;
  for (int64_t i = first; i < samples_taken_; ++i) {
    fn(ring_[static_cast<size_t>(i % options_.capacity)]);
  }
}

std::string TimeSeriesDb::ToJsonl() const {
  Json header = Json::Object();
  header.Set("schema", "ftx.timeseries");
  header.Set("version", kTimeSeriesSchemaVersion);
  header.Set("cadence_ns", options_.cadence_ns);
  Json cols = Json::Array();
  for (const Column& c : columns_) {
    Json col = Json::Object();
    col.Set("name", c.name);
    col.Set("kind", c.is_counter ? "counter" : "gauge");
    cols.Push(std::move(col));
  }
  header.Set("columns", std::move(cols));
  // "samples" counts the lines that follow (the checker pins the equality);
  // evicted samples are visible only through "dropped".
  header.Set("samples", samples_retained());
  header.Set("dropped", samples_dropped());
  Json meta = Json::Object();
  for (const auto& kv : meta_) {
    meta.Set(kv.first, kv.second);
  }
  header.Set("meta", std::move(meta));

  std::string out = header.Dump(0);
  out.push_back('\n');
  ForEachSample([&](const Sample& s) {
    Json row = Json::Array();
    row.Push(s.t_ns);
    for (const Column& c : columns_) {
      if (c.is_counter) {
        row.Push(s.counters[static_cast<size_t>(c.slot)]);
      } else {
        row.Push(s.gauges[static_cast<size_t>(c.slot)]);
      }
    }
    out += row.Dump(0);
    out.push_back('\n');
  });
  return out;
}

ftx::Status TimeSeriesDb::WriteJsonl(const std::string& path) const {
  return WriteFileContents(path, ToJsonl());
}

}  // namespace ftx_obs
