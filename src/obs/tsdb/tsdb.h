// ftx::obs::tsdb — a deterministic simulated-time time-series engine.
//
// Every observability layer before this one (results JSON, metrics
// registry, causal audit, MTTR profiler) reports end-of-run aggregates.
// The tsdb adds the time axis: registered counters and gauges are sampled
// on a fixed simulated-time cadence into a bounded ring of samples, so a
// run can show *when* a fault storm dented throughput, how the
// Dwork-Halpern-Waarts efficiency curve evolved, and how long the fleet
// stayed degraded — not just where it ended.
//
// Determinism contract (the property every test battery pins):
//
//  * Sampling is keyed to SIMULATED time only. The engine is driven by the
//    simulator's pre-event hook (Simulator::SetEventHook): before an event
//    at time t executes, every cadence boundary B < t that has not been
//    sampled yet is emitted with the CURRENT state — which at that moment
//    is exactly the state after all events at time <= B, because no event
//    in (prev_event_time, t) exists. A sample at boundary B therefore
//    means "state after every event at or before B", a pure function of
//    the event sequence.
//  * The simulator's merge front replays the identical global event order
//    for any shard count, and trial parallelism (--jobs) never enters a
//    single computation, so the sampled series — and the exported JSONL —
//    are byte-identical for any --jobs/--shards combination, provided no
//    layout-dependent columns are registered (see shard lanes below).
//  * Probes only read state. The hook costs one null check when no tsdb is
//    installed and never schedules simulator work, charges simulated time,
//    or perturbs the RNG: all simulated quantities are byte-identical with
//    telemetry on or off (CTest-asserted).
//
// Shard lanes: per-shard columns ("shard3.events_executed") and
// cross-shard traffic are genuinely layout-dependent — shards 1 vs 16 are
// DIFFERENT quantities even though the simulation is byte-identical. They
// are therefore opt-in (TimeSeriesOptions::shard_lanes) and excluded from
// the default export that the determinism battery byte-compares.
//
// Export: JSON Lines. Line 1 is a header object carrying the schema name,
// cadence, column table (name + kind, ordered by MetricNameLess so the
// order is identical on every platform), and caller meta; each following
// line is one sample as a compact array [t_ns, v0, v1, ...]. Counters are
// emitted as integers, gauges as JSON numbers with the same shortest-
// round-trip formatting as every other ftx_obs emitter.

#ifndef FTX_SRC_OBS_TSDB_TSDB_H_
#define FTX_SRC_OBS_TSDB_TSDB_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/obs/json.h"

namespace ftx_obs {

// The ftx.timeseries JSONL schema version (scripts/check_bench_json.py
// --timeseries validates it).
inline constexpr int kTimeSeriesSchemaVersion = 1;

struct TimeSeriesOptions {
  // Simulated nanoseconds between samples. A sample lands at every multiple
  // of the cadence the run's event times cross (boundary 0 is the state
  // after initialization events at t=0).
  int64_t cadence_ns = 1000000;  // 1 ms of simulated time
  // Bounded ring: at most this many samples are retained; older samples
  // are evicted (totals keep counting so the export can say how many were
  // dropped). Eviction depends only on sample count — still deterministic.
  int64_t capacity = 65536;
  // Register layout-dependent per-shard lanes (see header comment). Off by
  // default so the exported JSONL upholds the --shards byte-identity
  // contract.
  bool shard_lanes = false;
};

class TimeSeriesDb {
 public:
  explicit TimeSeriesDb(TimeSeriesOptions options = {});

  TimeSeriesDb(const TimeSeriesDb&) = delete;
  TimeSeriesDb& operator=(const TimeSeriesDb&) = delete;

  const TimeSeriesOptions& options() const { return options_; }

  // --- registration (before the first sample) ---

  // Counters are int64 and expected nondecreasing (the checker gates this);
  // gauges are doubles free to move both ways. Registering after the first
  // sample, or registering a duplicate name, aborts. Columns are ordered by
  // MetricNameLess at seal time regardless of registration order.
  void AddCounter(std::string name, std::function<int64_t()> probe);
  void AddGauge(std::string name, std::function<double()> probe);

  // Header metadata ("protocol", "workload", ...). Keep layout knobs
  // (shards, jobs) out of it — the determinism battery byte-compares the
  // export across those.
  void SetMeta(std::string key, Json value);

  // --- sampling (driven by the simulator hook) ---

  // Pre-event hook body: the next event will execute at `next_event_ns`.
  // Emits one sample for every unsampled cadence boundary B < next_event_ns
  // (the current state is exactly the state as of each such B). The first
  // call seals the column set.
  void OnSimTime(int64_t next_event_ns);

  // Emits the remaining boundaries <= end_ns, plus a final closing sample
  // at end_ns itself when the last boundary fell short of it, so the series
  // always ends with the end-of-run state (the sample the checker compares
  // against the end-of-run report). Idempotent for the same end_ns.
  void Finalize(int64_t end_ns);

  // --- inspection / export ---

  int64_t samples_taken() const { return samples_taken_; }
  int64_t samples_retained() const;
  int64_t samples_dropped() const { return samples_taken_ - samples_retained(); }
  size_t num_columns() const { return columns_.size(); }

  struct Sample {
    int64_t t_ns = 0;
    std::vector<int64_t> counters;  // parallel to counter columns
    std::vector<double> gauges;     // parallel to gauge columns
  };

  // Oldest-to-newest walk over the retained ring.
  void ForEachSample(const std::function<void(const Sample&)>& fn) const;

  // The full JSONL document (header line + one line per retained sample).
  std::string ToJsonl() const;
  ftx::Status WriteJsonl(const std::string& path) const;

 private:
  struct Column {
    std::string name;
    bool is_counter = true;
    int slot = 0;  // index into Sample::counters or Sample::gauges
    std::function<int64_t()> counter_probe;
    std::function<double()> gauge_probe;
  };

  void Seal();            // orders columns, assigns slots
  void TakeSample(int64_t t_ns);

  TimeSeriesOptions options_;
  std::vector<Column> columns_;
  std::vector<std::pair<std::string, Json>> meta_;
  bool sealed_ = false;
  int num_counters_ = 0;
  int num_gauges_ = 0;
  int64_t next_boundary_ns_ = 0;
  int64_t samples_taken_ = 0;
  int64_t last_sample_ns_ = -1;
  bool finalized_ = false;
  std::vector<Sample> ring_;  // slot = sample_index % capacity
};

}  // namespace ftx_obs

#endif  // FTX_SRC_OBS_TSDB_TSDB_H_
