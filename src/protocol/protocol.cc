#include "src/protocol/protocol.h"

#include "src/common/check.h"

namespace ftx_proto {

bool IsNdEvent(AppEvent event) {
  switch (event) {
    case AppEvent::kTransientNd:
    case AppEvent::kFixedNd:
    case AppEvent::kUserInput:
    case AppEvent::kReceive:
    case AppEvent::kSignal:
      return true;
    case AppEvent::kInternal:
    case AppEvent::kSend:
    case AppEvent::kVisible:
      return false;
  }
  return false;
}

namespace {

// User input and receives are the loggable ND classes Discount Checking
// supports (§3: "the ability to log non-deterministic user input and message
// receive events to render them deterministic").
bool IsLoggable(AppEvent event) {
  return event == AppEvent::kUserInput || event == AppEvent::kReceive;
}

// Shared bookkeeping: tracks whether unlogged ND executed since last commit.
class ProtocolBase : public Protocol {
 public:
  void OnCommitted() override { nd_since_commit_ = false; }
  bool HasUncommittedNd() const override { return nd_since_commit_; }

 protected:
  void NoteEvent(AppEvent event, bool logged) {
    if (IsNdEvent(event) && !logged) {
      nd_since_commit_ = true;
    }
  }

  bool nd_since_commit_ = false;
};

class CommitAllProtocol : public ProtocolBase {
 public:
  std::string_view name() const override { return "commit-all"; }
  SpacePoint space_point() const override { return {0.0, 0.0}; }
  CommitDecision Decide(AppEvent event) override {
    NoteEvent(event, /*logged=*/false);
    CommitDecision d;
    d.commit_after = true;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override {
    return std::make_unique<CommitAllProtocol>();
  }
};

class CandProtocol : public ProtocolBase {
 public:
  std::string_view name() const override { return "cand"; }
  SpacePoint space_point() const override { return {0.35, 0.0}; }
  CommitDecision Decide(AppEvent event) override {
    NoteEvent(event, /*logged=*/false);
    CommitDecision d;
    d.commit_after = IsNdEvent(event);
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override { return std::make_unique<CandProtocol>(); }
};

class CandLogProtocol : public ProtocolBase {
 public:
  std::string_view name() const override { return "cand-log"; }
  SpacePoint space_point() const override { return {0.65, 0.0}; }
  CommitDecision Decide(AppEvent event) override {
    CommitDecision d;
    d.log_event = IsLoggable(event);
    NoteEvent(event, d.log_event);
    d.commit_after = IsNdEvent(event) && !d.log_event;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override { return std::make_unique<CandLogProtocol>(); }
};

class CpvsProtocol : public ProtocolBase {
 public:
  std::string_view name() const override { return "cpvs"; }
  SpacePoint space_point() const override { return {0.0, 0.45}; }
  CommitDecision Decide(AppEvent event) override {
    NoteEvent(event, /*logged=*/false);
    CommitDecision d;
    d.commit_before = event == AppEvent::kVisible || event == AppEvent::kSend;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override { return std::make_unique<CpvsProtocol>(); }
};

class CbndvsProtocol : public ProtocolBase {
 public:
  std::string_view name() const override { return "cbndvs"; }
  SpacePoint space_point() const override { return {0.35, 0.45}; }
  CommitDecision Decide(AppEvent event) override {
    NoteEvent(event, /*logged=*/false);
    CommitDecision d;
    d.commit_before =
        (event == AppEvent::kVisible || event == AppEvent::kSend) && nd_since_commit_;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override { return std::make_unique<CbndvsProtocol>(); }
};

class CbndvsLogProtocol : public ProtocolBase {
 public:
  std::string_view name() const override { return "cbndvs-log"; }
  SpacePoint space_point() const override { return {0.65, 0.45}; }
  CommitDecision Decide(AppEvent event) override {
    CommitDecision d;
    d.log_event = IsLoggable(event);
    NoteEvent(event, d.log_event);
    d.commit_before =
        (event == AppEvent::kVisible || event == AppEvent::kSend) && nd_since_commit_;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override {
    return std::make_unique<CbndvsLogProtocol>();
  }
};

class Cpv2pcProtocol : public ProtocolBase {
 public:
  std::string_view name() const override { return "cpv-2pc"; }
  SpacePoint space_point() const override { return {0.0, 0.85}; }
  CommitDecision Decide(AppEvent event) override {
    NoteEvent(event, /*logged=*/false);
    CommitDecision d;
    if (event == AppEvent::kVisible) {
      d.commit_before = true;
      d.coordinated = true;
      d.scope = CoordinationScope::kAll;
    }
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override { return std::make_unique<Cpv2pcProtocol>(); }
};

class Cbndv2pcProtocol : public ProtocolBase {
 public:
  std::string_view name() const override { return "cbndv-2pc"; }
  SpacePoint space_point() const override { return {0.35, 0.85}; }
  CommitDecision Decide(AppEvent event) override {
    NoteEvent(event, /*logged=*/false);
    CommitDecision d;
    if (event == AppEvent::kVisible) {
      // The coordinated commit runs even when this process is clean: a
      // remote process may hold uncommitted ND this visible depends on. The
      // runtime narrows participation to ND-dirty processes.
      d.commit_before = true;
      d.coordinated = true;
      d.scope = CoordinationScope::kNdDirty;
    }
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override {
    return std::make_unique<Cbndv2pcProtocol>();
  }
};

}  // namespace

std::unique_ptr<Protocol> MakeCommitAll() { return std::make_unique<CommitAllProtocol>(); }
std::unique_ptr<Protocol> MakeCand() { return std::make_unique<CandProtocol>(); }
std::unique_ptr<Protocol> MakeCandLog() { return std::make_unique<CandLogProtocol>(); }
std::unique_ptr<Protocol> MakeCpvs() { return std::make_unique<CpvsProtocol>(); }
std::unique_ptr<Protocol> MakeCbndvs() { return std::make_unique<CbndvsProtocol>(); }
std::unique_ptr<Protocol> MakeCbndvsLog() { return std::make_unique<CbndvsLogProtocol>(); }
std::unique_ptr<Protocol> MakeCpv2pc() { return std::make_unique<Cpv2pcProtocol>(); }
std::unique_ptr<Protocol> MakeCbndv2pc() { return std::make_unique<Cbndv2pcProtocol>(); }

std::unique_ptr<Protocol> MakeProtocolByName(std::string_view name) {
  if (name == "commit-all") {
    return MakeCommitAll();
  }
  if (name == "cand") {
    return MakeCand();
  }
  if (name == "cand-log") {
    return MakeCandLog();
  }
  if (name == "cpvs") {
    return MakeCpvs();
  }
  if (name == "cbndvs") {
    return MakeCbndvs();
  }
  if (name == "cbndvs-log") {
    return MakeCbndvsLog();
  }
  if (name == "cpv-2pc") {
    return MakeCpv2pc();
  }
  if (name == "cbndv-2pc") {
    return MakeCbndv2pc();
  }
  if (name == "sbl") {
    return MakeSbl();
  }
  if (name == "targon32") {
    return MakeTargon32();
  }
  if (name == "hypervisor") {
    return MakeHypervisor();
  }
  if (name == "optimistic-log") {
    return MakeOptimisticLog();
  }
  if (name == "coordinated-ckpt") {
    return MakeCoordinatedCheckpointing();
  }
  if (name == "fbl") {
    return MakeFbl();
  }
  if (name == "manetho") {
    return MakeManetho();
  }
  FTX_CHECK_MSG(false, "unknown protocol: %.*s", static_cast<int>(name.size()), name.data());
  return nullptr;
}

const std::vector<std::string>& MeasuredProtocolNames() {
  static const std::vector<std::string> kNames = {
      "cand", "cand-log", "cpvs", "cbndvs", "cbndvs-log", "cpv-2pc", "cbndv-2pc",
  };
  return kNames;
}

const std::vector<std::string>& AllImplementedProtocolNames() {
  static const std::vector<std::string> kNames = {
      "commit-all", "cand",       "cand-log",       "cpvs",
      "cbndvs",     "cbndvs-log", "cpv-2pc",        "cbndv-2pc",
      "sbl",        "targon32",   "hypervisor",     "optimistic-log",
      "coordinated-ckpt", "fbl",    "manetho",
  };
  return kNames;
}

}  // namespace ftx_proto
