// Save-work protocols (§2.4).
//
// A protocol decides, from the stream of events a process executes, when the
// process must commit and which non-deterministic events to render
// deterministic by logging. All protocols here uphold the Save-work
// invariant — they differ only in commit frequency and in how much
// application knowledge (non-determinism on one axis, visibility on the
// other) they exploit. The runtime (ftx_dc::Runtime) consults its process's
// protocol instance before and after every application event.

#ifndef FTX_SRC_PROTOCOL_PROTOCOL_H_
#define FTX_SRC_PROTOCOL_PROTOCOL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ftx_proto {

// Application-level event classification as seen by the runtime.
enum class AppEvent {
  kInternal = 0,  // deterministic computation
  kTransientNd,   // signal delivery, gettimeofday, select, scheduling
  kFixedNd,       // resource-dependent syscall results (open, write)
  kUserInput,     // fixed ND, but *loggable* (read from tty)
  kReceive,       // message receive (transient ND, loggable)
  kSignal,        // delivered signal (transient ND; the one class Targon/32
                  //   cannot convert — only a full-machine logger can)
  kSend,
  kVisible,
};

bool IsNdEvent(AppEvent event);

// Which processes a coordinated (2PC) commit must include.
enum class CoordinationScope {
  kAll,           // every live process (CPV-2PC)
  kNdDirty,       // processes with unlogged ND since their last commit
                  //   (CBNDV-2PC)
  kCommunicated,  // transitive closure of processes communicated with since
                  //   their last commits (Coordinated Checkpointing [18])
};

// What the protocol asks the runtime to do around one event.
struct CommitDecision {
  bool commit_before = false;       // commit this process before the event
  bool commit_after = false;        // commit this process after the event
  bool coordinated = false;         // the before-commit must be a 2PC commit
                                    //   spanning other involved processes
  CoordinationScope scope = CoordinationScope::kAll;
  bool log_event = false;           // record the event's result in the ND log
  bool log_async = false;           // the log write may be deferred
                                    //   (Optimistic Logging); flushed in a
                                    //   batch at flush_log_before
  bool flush_log_before = false;    // wait for outstanding async log records
                                    //   to reach stable storage before this
                                    //   event executes
};

// Where a protocol sits in the two-axis protocol space of Fig. 3, for
// reporting and plotting. Both coordinates are in [0, 1].
struct SpacePoint {
  double nd_effort = 0.0;       // effort to identify/convert non-determinism
  double visible_effort = 0.0;  // effort to commit only visible events
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string_view name() const = 0;
  virtual SpacePoint space_point() const = 0;

  // Consulted once per application event, before it executes. The runtime
  // performs the returned commits/logging and reports completion through
  // OnCommitted().
  virtual CommitDecision Decide(AppEvent event) = 0;

  // Called after any commit of this process completes (whether requested by
  // this protocol, by a coordinated commit initiated remotely, or by the
  // recovery system).
  virtual void OnCommitted() = 0;

  // True if this process has executed an unlogged ND event since its last
  // commit (drives CBNDVS-style decisions and 2PC participant selection).
  virtual bool HasUncommittedNd() const = 0;

  // Fresh instance with the same configuration (one per process).
  virtual std::unique_ptr<Protocol> Clone() const = 0;
};

// --- the measured protocols ---

// Origin of the protocol space: commits after *every* event, knowing nothing
// about event types. Trivially upholds Save-work.
std::unique_ptr<Protocol> MakeCommitAll();

// Commit After Non-Deterministic: commits immediately after each ND event.
std::unique_ptr<Protocol> MakeCand();

// CAND + logging of user input and receives; commits only after the
// remaining (unloggable) ND events.
std::unique_ptr<Protocol> MakeCandLog();

// Commit Prior to Visible or Send: commits just before every visible or
// send event, with no knowledge of non-determinism.
std::unique_ptr<Protocol> MakeCpvs();

// Commit Between Non-Deterministic and Visible or Send: commits before a
// visible/send only if an ND event executed since the last commit.
std::unique_ptr<Protocol> MakeCbndvs();

// CBNDVS + logging of user input and receives (only unlogged ND arms the
// commit trigger).
std::unique_ptr<Protocol> MakeCbndvsLog();

// Commit Prior to Visible with two-phase commit: all involved processes
// commit whenever any process executes a visible event; sends need no
// commits.
std::unique_ptr<Protocol> MakeCpv2pc();

// CBNDVS with two-phase commit: coordinated commit before a visible, with
// only ND-dirty processes participating; sends need no commits.
std::unique_ptr<Protocol> MakeCbndv2pc();

// --- the literature protocols (see protocol2.cc) ---

// Sender-Based Logging: receives logged, everything else commits.
std::unique_ptr<Protocol> MakeSbl();
// Targon/32: all non-determinism but signals converted to logged messages.
std::unique_ptr<Protocol> MakeTargon32();
// Hypervisor: a VM logs every source of non-determinism; no commits, ever.
std::unique_ptr<Protocol> MakeHypervisor();
// Optimistic Logging: asynchronous log writes, flushed before visibles.
std::unique_ptr<Protocol> MakeOptimisticLog();
// Coordinated Checkpointing: visible forces commits across the transitive
// communication closure.
std::unique_ptr<Protocol> MakeCoordinatedCheckpointing();
// Family-Based Logging: receive records piggybacked downstream on sends.
std::unique_ptr<Protocol> MakeFbl();
// Manetho: an antecedence graph of all depended-on ND, flushed before
// visibles and carried on messages.
std::unique_ptr<Protocol> MakeManetho();

// Instantiates a protocol by its canonical name ("cand", "cpvs", "cbndvs",
// "cand-log", "cbndvs-log", "cpv-2pc", "cbndv-2pc", "commit-all", "sbl",
// "targon32", "hypervisor", "optimistic-log", "coordinated-ckpt").
std::unique_ptr<Protocol> MakeProtocolByName(std::string_view name);

// Names of the seven protocols measured in the paper, in Fig. 8 order.
const std::vector<std::string>& MeasuredProtocolNames();

// Every instantiable protocol (measured + literature + commit-all).
const std::vector<std::string>& AllImplementedProtocolNames();

}  // namespace ftx_proto

#endif  // FTX_SRC_PROTOCOL_PROTOCOL_H_
