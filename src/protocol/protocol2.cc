// The literature protocols of the Fig. 3 space, implemented for real:
// Sender-Based Logging, Targon/32, Hypervisor, Optimistic Logging, and
// Coordinated Checkpointing. Each is one more point on the two axes —
// different effort spent identifying/converting non-determinism vs
// committing only visible events — and all uphold Save-work (they are
// property-tested against the checker alongside the core protocols).

#include "src/protocol/protocol.h"

namespace ftx_proto {
namespace {

bool IsMessageLoggable(AppEvent event) {
  return event == AppEvent::kUserInput || event == AppEvent::kReceive;
}

// Everything Targon/32 can convert: message-class events plus clock reads —
// but not signals (kSignal), the class it leaves non-deterministic.
bool IsTargonLoggable(AppEvent event) {
  return IsMessageLoggable(event) || event == AppEvent::kTransientNd;
}

class ProtocolBase2 : public Protocol {
 public:
  void OnCommitted() override { nd_since_commit_ = false; }
  bool HasUncommittedNd() const override { return nd_since_commit_; }

 protected:
  void NoteEvent(AppEvent event, bool logged) {
    if (IsNdEvent(event) && !logged) {
      nd_since_commit_ = true;
    }
  }
  bool nd_since_commit_ = false;
};

// Sender-Based Logging [15]: message receives are logged (the log record
// conceptually lives in the sender's volatile memory; the cost and replay
// semantics are identical from the receiver's perspective). All other
// non-determinism still forces a commit.
class SblProtocol : public ProtocolBase2 {
 public:
  std::string_view name() const override { return "sbl"; }
  SpacePoint space_point() const override { return {0.55, 0.0}; }
  CommitDecision Decide(AppEvent event) override {
    CommitDecision d;
    d.log_event = event == AppEvent::kReceive;
    NoteEvent(event, d.log_event);
    d.commit_after = IsNdEvent(event) && !d.log_event;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override { return std::make_unique<SblProtocol>(); }
};

// Targon/32 [4]: all sources of non-determinism except signals are
// converted into logged messages; a delivered signal remains
// non-deterministic and forces a commit.
class Targon32Protocol : public ProtocolBase2 {
 public:
  std::string_view name() const override { return "targon32"; }
  SpacePoint space_point() const override { return {0.75, 0.0}; }
  CommitDecision Decide(AppEvent event) override {
    CommitDecision d;
    d.log_event = IsTargonLoggable(event);
    NoteEvent(event, d.log_event);
    // Whenever a signal is delivered (the event that remains
    // non-deterministic), Targon/32 forces a commit (§2.4).
    d.commit_after = IsNdEvent(event) && !d.log_event;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override {
    return std::make_unique<Targon32Protocol>();
  }
};

// Hypervisor [5]: a virtual machine under the operating system logs every
// source of non-determinism; the application never commits at all.
class HypervisorProtocol : public ProtocolBase2 {
 public:
  std::string_view name() const override { return "hypervisor"; }
  SpacePoint space_point() const override { return {0.95, 0.0}; }
  CommitDecision Decide(AppEvent event) override {
    CommitDecision d;
    d.log_event = IsNdEvent(event);  // everything, signals included
    NoteEvent(event, d.log_event);
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override {
    return std::make_unique<HypervisorProtocol>();
  }
};

// Optimistic Logging [28]: log records for all non-determinism are written
// to stable storage asynchronously; a visible event first waits for every
// relevant record to reach disk (the runtime charges one batched flush of
// the outstanding log tail).
class OptimisticLogProtocol : public ProtocolBase2 {
 public:
  std::string_view name() const override { return "optimistic-log"; }
  SpacePoint space_point() const override { return {0.55, 0.7}; }
  CommitDecision Decide(AppEvent event) override {
    CommitDecision d;
    d.log_event = IsNdEvent(event);
    d.log_async = d.log_event;
    NoteEvent(event, d.log_event);
    d.flush_log_before = event == AppEvent::kVisible;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override {
    return std::make_unique<OptimisticLogProtocol>();
  }
};

// Family-Based Logging [2]: receive log records are kept in the volatile
// memory of downstream processes — modelled as asynchronous logging whose
// records become durable when piggybacked on the process's next send (or
// flushed before a visible). Records accumulated after the last send are
// genuinely lost by a crash, exactly FBL's window.
class FblProtocol : public ProtocolBase2 {
 public:
  std::string_view name() const override { return "fbl"; }
  SpacePoint space_point() const override { return {0.6, 0.1}; }
  CommitDecision Decide(AppEvent event) override {
    CommitDecision d;
    d.log_event = event == AppEvent::kReceive || event == AppEvent::kUserInput;
    d.log_async = d.log_event;
    NoteEvent(event, d.log_event);
    // Piggyback outstanding records on sends; a visible also forces them
    // out (output commit).
    d.flush_log_before = event == AppEvent::kSend || event == AppEvent::kVisible;
    // Unloggable ND (clock reads, signals) still commits.
    d.commit_after = IsNdEvent(event) && !d.log_event;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override { return std::make_unique<FblProtocol>(); }
};

// Manetho [11]: every process maintains an antecedence graph of all the
// non-deterministic events it depends on; executing a visible event first
// writes the graph to stable storage. Modelled as full asynchronous logging
// whose outstanding tail is flushed before visibles AND propagated on sends
// (the graph travels with messages, so downstream always holds it).
class ManethoProtocol : public ProtocolBase2 {
 public:
  std::string_view name() const override { return "manetho"; }
  SpacePoint space_point() const override { return {0.75, 0.8}; }
  CommitDecision Decide(AppEvent event) override {
    CommitDecision d;
    d.log_event = IsNdEvent(event);
    d.log_async = d.log_event;
    NoteEvent(event, d.log_event);
    d.flush_log_before = event == AppEvent::kVisible || event == AppEvent::kSend;
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override {
    return std::make_unique<ManethoProtocol>();
  }
};

// Coordinated Checkpointing [18]: a process executing a visible event
// initiates an agreement protocol forcing every process it has (directly or
// transitively) communicated with since their last commits to commit too.
class CoordinatedCheckpointingProtocol : public ProtocolBase2 {
 public:
  std::string_view name() const override { return "coordinated-ckpt"; }
  SpacePoint space_point() const override { return {0.1, 0.85}; }
  CommitDecision Decide(AppEvent event) override {
    NoteEvent(event, /*logged=*/false);
    CommitDecision d;
    if (event == AppEvent::kVisible) {
      d.commit_before = true;
      d.coordinated = true;
      d.scope = CoordinationScope::kCommunicated;
    }
    return d;
  }
  std::unique_ptr<Protocol> Clone() const override {
    return std::make_unique<CoordinatedCheckpointingProtocol>();
  }
};

}  // namespace

std::unique_ptr<Protocol> MakeSbl() { return std::make_unique<SblProtocol>(); }
std::unique_ptr<Protocol> MakeTargon32() { return std::make_unique<Targon32Protocol>(); }
std::unique_ptr<Protocol> MakeHypervisor() { return std::make_unique<HypervisorProtocol>(); }
std::unique_ptr<Protocol> MakeOptimisticLog() {
  return std::make_unique<OptimisticLogProtocol>();
}
std::unique_ptr<Protocol> MakeCoordinatedCheckpointing() {
  return std::make_unique<CoordinatedCheckpointingProtocol>();
}
std::unique_ptr<Protocol> MakeFbl() { return std::make_unique<FblProtocol>(); }
std::unique_ptr<Protocol> MakeManetho() { return std::make_unique<ManethoProtocol>(); }

}  // namespace ftx_proto
