#include "src/protocol/protocol_space.h"

#include <algorithm>
#include <cmath>

namespace ftx_proto {

const std::vector<ProtocolSpaceEntry>& ProtocolSpaceEntries() {
  static const std::vector<ProtocolSpaceEntry> kEntries = {
      {"commit-all", {0.0, 0.0}, true, "origin: commits every event"},
      {"cand", {0.35, 0.0}, true, "distinguishes ND events"},
      {"sbl", {0.55, 0.0}, true, "sender-based logging: receives logged at sender"},
      {"targon32", {0.75, 0.0}, true, "all ND but signals converted to logged messages"},
      {"hypervisor", {0.95, 0.0}, true, "logs all ND via virtual machine; never commits"},
      {"cand-log", {0.65, 0.0}, true, "CAND plus input/receive logging"},
      {"fbl", {0.6, 0.1}, true, "family-based logging: log entries at downstream processes"},
      {"cpvs", {0.0, 0.45}, true, "commits before true visible and send events"},
      {"cbndvs", {0.35, 0.45}, true, "commit only between ND and visible/send"},
      {"cbndvs-log", {0.65, 0.45}, true, "CBNDVS plus input/receive logging"},
      {"optimistic-log", {0.55, 0.7}, true,
       "async log writes; visible waits for relevant records"},
      {"manetho", {0.75, 0.8}, true, "antecedence graph flushed before visible"},
      {"coordinated-ckpt", {0.1, 0.85}, true,
       "remote processes asked to commit before a visible"},
      {"cpv-2pc", {0.0, 0.85}, true, "all processes commit on any visible"},
      {"cbndv-2pc", {0.35, 0.85}, true, "ND-dirty processes commit on any visible"},
  };
  return kEntries;
}

DesignVariables DeriveDesignVariables(const SpacePoint& point) {
  DesignVariables v;
  double radial = std::sqrt(point.nd_effort * point.nd_effort +
                            point.visible_effort * point.visible_effort);
  v.relative_commit_frequency = std::max(0.0, 1.0 - radial / std::sqrt(2.0));
  v.recovery_constraint = point.nd_effort;
  v.propagation_survival =
      std::clamp(point.visible_effort * (1.0 - 0.5 * point.nd_effort), 0.0, 1.0);
  return v;
}

std::string RenderProtocolSpaceAscii(int width, int height) {
  std::vector<std::string> canvas(static_cast<size_t>(height), std::string(width, ' '));
  // Axes.
  for (int y = 0; y < height; ++y) {
    canvas[static_cast<size_t>(y)][0] = '|';
  }
  for (int x = 0; x < width; ++x) {
    canvas[static_cast<size_t>(height - 1)][static_cast<size_t>(x)] = '-';
  }
  canvas[static_cast<size_t>(height - 1)][0] = '+';

  for (const ProtocolSpaceEntry& entry : ProtocolSpaceEntries()) {
    int x = 2 + static_cast<int>(entry.point.nd_effort * (width - 20));
    int y = height - 2 - static_cast<int>(entry.point.visible_effort * (height - 3));
    x = std::clamp(x, 1, width - 2);
    y = std::clamp(y, 0, height - 2);
    std::string label = "*" + entry.name;
    for (size_t i = 0; i < label.size() && x + static_cast<int>(i) < width; ++i) {
      char& cell = canvas[static_cast<size_t>(y)][static_cast<size_t>(x) + i];
      if (cell == ' ' || i == 0) {
        cell = label[i];
      }
    }
  }

  std::string out = "effort to commit only visible events (y) vs effort to identify/convert "
                    "non-determinism (x)\n";
  for (const std::string& row : canvas) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace ftx_proto
