// The protocol space of Fig. 3 / Fig. 4.
//
// Every consistent-recovery protocol occupies a point in a two-dimensional
// space: effort spent identifying/converting non-determinism (x axis) and
// effort spent committing only visible events (y axis). This table places
// both the protocols implemented in this library and the literature
// protocols the paper locates in the space, together with the design-
// variable trends of Fig. 4 (commit frequency/performance grow with radial
// distance; recovery time grows along x; surviving propagation failures
// favors distance from the x axis).

#ifndef FTX_SRC_PROTOCOL_PROTOCOL_SPACE_H_
#define FTX_SRC_PROTOCOL_PROTOCOL_SPACE_H_

#include <string>
#include <vector>

#include "src/protocol/protocol.h"

namespace ftx_proto {

struct ProtocolSpaceEntry {
  std::string name;
  SpacePoint point;
  bool implemented = false;  // instantiable via MakeProtocolByName
  // Fig. 4 qualitative attributes derived from the point.
  std::string notes;
};

// All entries: the 8 implemented protocols plus literature points (SBL,
// FBL, Targon/32, Hypervisor, Optimistic logging, Manetho, Coordinated
// checkpointing).
const std::vector<ProtocolSpaceEntry>& ProtocolSpaceEntries();

// Fig. 4 trends, computed from a point's coordinates.
struct DesignVariables {
  double relative_commit_frequency;  // decreases with radial distance
  double recovery_constraint;        // reexecution constraint grows along x
  double propagation_survival;       // chance to survive propagation
                                     //   failures grows with y, shrinks with x
};
DesignVariables DeriveDesignVariables(const SpacePoint& point);

// Renders an ASCII plot of the space (for the fig3 bench and docs).
std::string RenderProtocolSpaceAscii(int width = 72, int height = 20);

}  // namespace ftx_proto

#endif  // FTX_SRC_PROTOCOL_PROTOCOL_SPACE_H_
