#include "src/protocol/script_replay.h"

#include <map>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/protocol/protocol.h"

namespace ftx_proto {
namespace {

AppEvent ToAppEvent(ftx_sm::EventKind kind) {
  switch (kind) {
    case ftx_sm::EventKind::kTransientNd:
      return AppEvent::kTransientNd;
    case ftx_sm::EventKind::kFixedNd:
      return AppEvent::kUserInput;  // scripted fixed ND models user input
    case ftx_sm::EventKind::kReceive:
      return AppEvent::kReceive;
    case ftx_sm::EventKind::kSend:
      return AppEvent::kSend;
    case ftx_sm::EventKind::kVisible:
      return AppEvent::kVisible;
    default:
      return AppEvent::kInternal;
  }
}

class Replayer {
 public:
  Replayer(int num_processes, std::string_view protocol_name)
      : result_(num_processes), communicated_(static_cast<size_t>(num_processes), 0) {
    for (int p = 0; p < num_processes; ++p) {
      protocols_.push_back(MakeProtocolByName(protocol_name));
    }
  }

  ScriptReplayResult Run(const std::vector<ftx_sm::ScriptedEvent>& script) {
    for (const auto& ev : script) {
      CommitDecision d = protocols_[static_cast<size_t>(ev.process)]->Decide(ToAppEvent(ev.kind));
      bool logged = ev.logged || d.log_event;
      if (logged && ftx_sm::IsNonDeterministic(ev.kind)) {
        ++result_.logged_events;
      }
      if (d.commit_before) {
        if (d.coordinated) {
          CoordinatedCommit(ev.process, d.scope);
        } else {
          Commit(ev.process, -1);
        }
      }
      TrackCommunication(ev);
      int64_t group =
          ev.kind == ftx_sm::EventKind::kVisible ? next_group_ - 1 : -1;
      result_.trace.Append(ev.process, ev.kind, ev.message_id, logged, "", group);
      if (d.commit_after) {
        Commit(ev.process, -1);
      }
    }
    return std::move(result_);
  }

 private:
  void TrackCommunication(const ftx_sm::ScriptedEvent& ev) {
    if (ev.kind == ftx_sm::EventKind::kSend && ev.message_id >= 0) {
      sender_of_[ev.message_id] = ev.process;
    }
    if (ev.kind == ftx_sm::EventKind::kReceive && ev.message_id >= 0) {
      auto it = sender_of_.find(ev.message_id);
      if (it != sender_of_.end()) {
        communicated_[static_cast<size_t>(ev.process)] |= 1ULL << it->second;
        communicated_[static_cast<size_t>(it->second)] |= 1ULL << ev.process;
      }
    }
  }

  void Commit(int pid, int64_t atomic_group) {
    result_.trace.Append(pid, ftx_sm::EventKind::kCommit, -1, false, "", atomic_group);
    protocols_[static_cast<size_t>(pid)]->OnCommitted();
    communicated_[static_cast<size_t>(pid)] = 0;
    ++result_.total_commits;
  }

  void CoordinatedCommit(int initiator, CoordinationScope scope) {
    ++result_.coordinated_rounds;
    int64_t group = next_group_++;
    uint64_t members = 1ULL << initiator;
    if (scope == CoordinationScope::kCommunicated) {
      bool grew = true;
      while (grew) {
        grew = false;
        for (int pid = 0; pid < result_.trace.num_processes(); ++pid) {
          if ((members & (1ULL << pid)) != 0) {
            continue;
          }
          if ((communicated_[static_cast<size_t>(pid)] & members) != 0) {
            members |= 1ULL << pid;
            grew = true;
          }
        }
      }
    }
    for (int pid = 0; pid < result_.trace.num_processes(); ++pid) {
      if (pid == initiator) {
        continue;
      }
      if (scope == CoordinationScope::kNdDirty &&
          !protocols_[static_cast<size_t>(pid)]->HasUncommittedNd()) {
        continue;
      }
      if (scope == CoordinationScope::kCommunicated && (members & (1ULL << pid)) == 0) {
        continue;
      }
      int64_t prepare = next_coord_message_++;
      result_.trace.Append(initiator, ftx_sm::EventKind::kSend, prepare);
      result_.trace.Append(pid, ftx_sm::EventKind::kReceive, prepare, /*logged=*/true, "2pc");
      Commit(pid, group);
      int64_t ack = next_coord_message_++;
      result_.trace.Append(pid, ftx_sm::EventKind::kSend, ack);
      result_.trace.Append(initiator, ftx_sm::EventKind::kReceive, ack, /*logged=*/true, "2pc");
    }
    Commit(initiator, group);
  }

  ScriptReplayResult result_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::vector<uint64_t> communicated_;
  std::map<int64_t, int> sender_of_;
  int64_t next_coord_message_ = 1LL << 40;
  int64_t next_group_ = 1;
};

}  // namespace

ScriptReplayResult ReplayScript(const std::vector<ftx_sm::ScriptedEvent>& script,
                                int num_processes, std::string_view protocol_name) {
  FTX_CHECK_GT(num_processes, 0);
  Replayer replayer(num_processes, protocol_name);
  return replayer.Run(script);
}

}  // namespace ftx_proto
