// Pure-protocol script replay: runs a scripted computation through one
// protocol instance per process and produces the resulting trace (events,
// commits, coordinated rounds, ND logging flags) without any runtime or
// cost model. This is the harness the Save-work property tests and the
// protocol-space analyses share: any CommitDecision stream a protocol
// produces can be checked against the theory's oracle directly.

#ifndef FTX_SRC_PROTOCOL_SCRIPT_REPLAY_H_
#define FTX_SRC_PROTOCOL_SCRIPT_REPLAY_H_

#include <string_view>

#include "src/statemachine/random_model.h"
#include "src/statemachine/trace.h"

namespace ftx_proto {

struct ScriptReplayResult {
  ftx_sm::Trace trace;
  int64_t total_commits = 0;
  int64_t coordinated_rounds = 0;
  int64_t logged_events = 0;

  explicit ScriptReplayResult(int num_processes) : trace(num_processes) {}
};

// Replays `script` (a valid execution order; see MakeRandomScript) under
// the named protocol, one instance per process. Coordinated commits emit
// the full 2PC round (prepare/ack messages marked recovery-internal, all
// commits sharing an atomic group); visibles are stamped with the latest
// completed round.
ScriptReplayResult ReplayScript(const std::vector<ftx_sm::ScriptedEvent>& script,
                                int num_processes, std::string_view protocol_name);

}  // namespace ftx_proto

#endif  // FTX_SRC_PROTOCOL_SCRIPT_REPLAY_H_
