#include "src/recovery/consistency.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace ftx_rec {
namespace {

std::string Preview(const ftx::Bytes& payload) {
  std::string out;
  for (size_t i = 0; i < payload.size() && i < 32; ++i) {
    char c = static_cast<char>(payload[i]);
    out += (c >= 32 && c < 127) ? c : '.';
  }
  return out;
}

}  // namespace

ConsistencyResult CheckConsistentRecovery(const OutputRecorder& reference,
                                          const OutputRecorder& recovered, int num_processes,
                                          bool require_complete) {
  ConsistencyResult result;

  for (int p = 0; p < num_processes; ++p) {
    std::vector<ftx::Bytes> ref = reference.PayloadsOf(p);
    std::vector<ftx::Bytes> got = recovered.PayloadsOf(p);

    size_t j = 0;  // cursor into the reference stream
    for (size_t i = 0; i < got.size(); ++i) {
      if (j < ref.size() && got[i] == ref[j]) {
        ++j;
        continue;
      }
      // Not the next expected event: tolerated only if it repeats an event
      // the recovered run already output earlier (§2.3's equivalence).
      bool is_repeat =
          std::find(got.begin(), got.begin() + static_cast<int64_t>(i), got[i]) !=
          got.begin() + static_cast<int64_t>(i);
      if (is_repeat) {
        ++result.duplicates_tolerated;
        continue;
      }
      result.consistent = false;
      result.diagnostic = "process " + std::to_string(p) + " visible #" + std::to_string(i) +
                          " diverges: got \"" + Preview(got[i]) + "\" expected " +
                          (j < ref.size() ? "\"" + Preview(ref[j]) + "\"" : "end of stream");
      return result;
    }
    if (require_complete && j != ref.size()) {
      result.consistent = false;
      result.diagnostic = "process " + std::to_string(p) + " output incomplete: matched " +
                          std::to_string(j) + " of " + std::to_string(ref.size()) +
                          " reference events (no-orphan constraint violated)";
      return result;
    }
  }
  return result;
}

}  // namespace ftx_rec
