// Consistent-recovery checker (§2.3).
//
// Recovery is consistent iff there exists a complete failure-free execution
// whose visible-event sequence is *equivalent* to the one actually output.
// Equivalence: a recovered sequence V is equivalent to a failure-free V' if
// the only events in V that differ from V' are repeats of earlier events of
// V. (Duplicated visible events are tolerated because exactly-once output
// is unattainable; users can overlook duplicates.)
//
// The checker verifies a recovered run against a reference failure-free run
// per process: after deleting events that repeat an earlier event of the
// recovered stream, the remainder must be a prefix-complete match of the
// reference stream.

#ifndef FTX_SRC_RECOVERY_CONSISTENCY_H_
#define FTX_SRC_RECOVERY_CONSISTENCY_H_

#include <string>

#include "src/recovery/output_recorder.h"

namespace ftx_rec {

struct ConsistencyResult {
  bool consistent = true;
  // Events identified as benign duplicates (repeats of earlier output).
  int duplicates_tolerated = 0;
  // First divergence diagnostics, when inconsistent.
  std::string diagnostic;
};

// Compares the per-process visible streams of `recovered` against
// `reference`. `require_complete` additionally enforces the no-orphan
// constraint: the recovered run must have produced the reference's *entire*
// sequence (a run a failure prevented from completing is not consistent).
ConsistencyResult CheckConsistentRecovery(const OutputRecorder& reference,
                                          const OutputRecorder& recovered, int num_processes,
                                          bool require_complete = true);

}  // namespace ftx_rec

#endif  // FTX_SRC_RECOVERY_CONSISTENCY_H_
