#include "src/recovery/orphan.h"

namespace ftx_rec {

OrphanCheck DetectOrphan(const ftx_sm::Trace& trace, ftx_sm::ProcessId survivor,
                         ftx_sm::ProcessId failed, int64_t failed_rollback_index) {
  OrphanCheck result;
  const auto& failed_events = trace.ProcessEvents(failed);
  const auto& survivor_events = trace.ProcessEvents(survivor);

  for (const ftx_sm::TraceEvent& lost : failed_events) {
    if (lost.index <= failed_rollback_index) {
      continue;  // preserved by the failed process's last commit
    }
    if (!ftx_sm::IsNonDeterministic(lost.kind) || lost.logged) {
      continue;  // deterministic (or logged) events will be regenerated
    }
    ftx_sm::EventRef lost_ref{lost.process, lost.index};
    for (const ftx_sm::TraceEvent& ev : survivor_events) {
      if (ev.kind != ftx_sm::EventKind::kCommit) {
        continue;
      }
      ftx_sm::EventRef commit_ref{ev.process, ev.index};
      if (trace.CausallyPrecedes(lost_ref, commit_ref)) {
        result.orphaned = true;
        result.orphan_commit = commit_ref;
        result.lost_nd = lost_ref;
        return result;
      }
    }
  }
  return result;
}

}  // namespace ftx_rec
