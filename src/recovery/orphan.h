// Orphan detection (§2.3, Fig. 2).
//
// A process is an orphan if it has committed a dependence on another
// process's non-deterministic event that was lost in a failure and may not
// be reexecuted. An orphan can neither execute its next visible event
// (Save-work-visible would require the failed process to commit an event it
// has already aborted) nor abort its own committed dependence — so the
// computation can never complete. The Save-work-orphan rule exists to
// prevent exactly this state.

#ifndef FTX_SRC_RECOVERY_ORPHAN_H_
#define FTX_SRC_RECOVERY_ORPHAN_H_

#include <optional>

#include "src/statemachine/trace.h"

namespace ftx_rec {

struct OrphanCheck {
  bool orphaned = false;
  // The survivor's commit that captured the lost dependence.
  std::optional<ftx_sm::EventRef> orphan_commit;
  // The failed process's lost ND event the commit depends on.
  std::optional<ftx_sm::EventRef> lost_nd;
};

// `failed` rolled back to its commit at `failed_rollback_index` (-1 if it
// restarts from its initial state): every event it executed after that index
// is lost. Returns whether `survivor` committed a dependence on a lost
// unlogged ND event of `failed`.
OrphanCheck DetectOrphan(const ftx_sm::Trace& trace, ftx_sm::ProcessId survivor,
                         ftx_sm::ProcessId failed, int64_t failed_rollback_index);

}  // namespace ftx_rec

#endif  // FTX_SRC_RECOVERY_ORPHAN_H_
