#include "src/recovery/output_recorder.h"

#include <utility>

namespace ftx_rec {

void OutputRecorder::Record(int process, ftx::TimePoint time, ftx::Bytes payload) {
  events_.push_back(VisibleEvent{process, time, std::move(payload)});
}

std::vector<ftx::Bytes> OutputRecorder::PayloadsOf(int process) const {
  std::vector<ftx::Bytes> out;
  for (const VisibleEvent& ev : events_) {
    if (ev.process == process) {
      out.push_back(ev.payload);
    }
  }
  return out;
}

}  // namespace ftx_rec
