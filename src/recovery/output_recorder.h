// Visible-output recording.
//
// Consistent recovery is defined entirely in terms of the sequence of
// visible events the user observes (§2.3). The recorder captures every
// visible event a computation emits — across failures and recoveries — so
// the checker can compare a failed-and-recovered run against a failure-free
// one.

#ifndef FTX_SRC_RECOVERY_OUTPUT_RECORDER_H_
#define FTX_SRC_RECOVERY_OUTPUT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/sim_time.h"

namespace ftx_rec {

struct VisibleEvent {
  int process = -1;
  ftx::TimePoint time;
  ftx::Bytes payload;

  bool SamePayload(const VisibleEvent& other) const {
    return process == other.process && payload == other.payload;
  }
};

class OutputRecorder {
 public:
  void Record(int process, ftx::TimePoint time, ftx::Bytes payload);

  const std::vector<VisibleEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  // Payload-only projection for one process (user-observed stream order).
  std::vector<ftx::Bytes> PayloadsOf(int process) const;

 private:
  std::vector<VisibleEvent> events_;
};

}  // namespace ftx_rec

#endif  // FTX_SRC_RECOVERY_OUTPUT_RECORDER_H_
