#include "src/recovery/rollback_set.h"

#include "src/common/check.h"

namespace ftx_rec {

RollbackPlan ComputeRollbackSet(const ftx_sm::Trace& trace, ftx_sm::ProcessId failed,
                                int64_t failed_survive_through) {
  const int n = trace.num_processes();
  FTX_CHECK(failed >= 0 && failed < n);

  RollbackPlan plan;
  plan.survive_through.resize(static_cast<size_t>(n));
  for (int p = 0; p < n; ++p) {
    plan.survive_through[static_cast<size_t>(p)] = trace.NumEvents(p) - 1;
  }
  plan.survive_through[static_cast<size_t>(failed)] = failed_survive_through;

  bool changed = true;
  while (changed) {
    changed = false;
    ++plan.cascade_rounds;
    for (int q = 0; q < n; ++q) {
      int64_t surviving = plan.survive_through[static_cast<size_t>(q)];
      const auto& events = trace.ProcessEvents(q);
      for (int64_t i = 0; i <= surviving; ++i) {
        const ftx_sm::TraceEvent& ev = events[static_cast<size_t>(i)];
        if (ev.kind != ftx_sm::EventKind::kReceive || ev.logged) {
          continue;  // logged receives replay from the log: never orphaned
        }
        auto send = trace.SendOfMessage(ev.message_id);
        FTX_CHECK(send.has_value());
        int64_t sender_survives = plan.survive_through[static_cast<size_t>(send->process)];
        if (send->index <= sender_survives) {
          continue;  // the send survives: the message is legitimate
        }
        // The send is aborted — but if the sender's reexecution reaches it
        // deterministically (no unlogged transient ND between its rollback
        // point and the send), the identical message is regenerated and the
        // receive is safe ("they allow senders to deterministically
        // regenerate the messages", §5).
        bool regenerable = true;
        const auto& sender_events = trace.ProcessEvents(send->process);
        for (int64_t k = sender_survives + 1; k < send->index; ++k) {
          const ftx_sm::TraceEvent& se = sender_events[static_cast<size_t>(k)];
          if (ftx_sm::IsNonDeterministic(se.kind) && !se.logged) {
            regenerable = false;
            break;
          }
        }
        if (regenerable) {
          continue;
        }
        // Orphan message: q must roll back to a committed state strictly
        // before the receive.
        auto commit = trace.LastCommitAtOrBefore(q, i - 1);
        int64_t target = commit.has_value() ? commit->index : -1;
        FTX_CHECK_LT(target, surviving + 1);
        plan.survive_through[static_cast<size_t>(q)] = target;
        changed = true;
        break;  // re-scan q from its new horizon next round
      }
    }
  }

  for (int p = 0; p < n; ++p) {
    if (p != failed && plan.survive_through[static_cast<size_t>(p)] < trace.NumEvents(p) - 1) {
      ++plan.processes_rolled_back;
    }
    if (p != failed && plan.survive_through[static_cast<size_t>(p)] < 0 &&
        trace.NumEvents(p) > 0) {
      plan.dominoed_to_start = true;  // the CASCADE reached an initial state
    }
  }
  return plan;
}

}  // namespace ftx_rec
