// Cascading rollback and the domino effect (§5).
//
// When a process fails and rolls back, every message it sent after its
// rollback point becomes suspect: it was received, but in the new history
// it has not (yet) been sent. If the sender's reexecution reaches the send
// deterministically, the identical message is regenerated and the receive
// is safe; if unlogged transient non-determinism intervenes, the message is
// an *orphan* and a receiver that cannot replay it from a log must roll
// back past it — and can only land on
// one of its own committed states, possibly orphaning further messages in
// turn. With poorly-placed commits this cascade reaches initial states: the
// classic domino effect that communication-induced checkpointing exists to
// prevent.
//
// The Save-work protocols in this library avoid the cascade by
// construction: CPVS commits before every send (an aborted suffix contains
// no sends), and the -LOG protocols make receives regenerable. This module
// computes the rollback set for arbitrary traces so both claims can be
// tested, and so the domino effect itself can be demonstrated.

#ifndef FTX_SRC_RECOVERY_ROLLBACK_SET_H_
#define FTX_SRC_RECOVERY_ROLLBACK_SET_H_

#include <vector>

#include "src/statemachine/trace.h"

namespace ftx_rec {

struct RollbackPlan {
  // Per process: index of the last event that SURVIVES the rollback
  // (everything after it is aborted). NumEvents(p)-1 means p does not roll
  // back at all; -1 means p restarts from its initial state.
  std::vector<int64_t> survive_through;
  // Fixpoint sweeps until no further orphan messages existed.
  int cascade_rounds = 0;
  // Number of processes (other than the failed one) forced to roll back.
  int processes_rolled_back = 0;
  // True if any process was driven all the way back to its initial state.
  bool dominoed_to_start = false;
};

// Computes the rollback set after `failed` rolls back so that its events
// after `failed_survive_through` are aborted (pass its last commit's index;
// -1 for a restart from the initial state). Receivers of aborted,
// unlogged sends roll back to their own last commit before the orphaned
// receive, cascading to a fixpoint.
RollbackPlan ComputeRollbackSet(const ftx_sm::Trace& trace, ftx_sm::ProcessId failed,
                                int64_t failed_survive_through);

}  // namespace ftx_rec

#endif  // FTX_SRC_RECOVERY_ROLLBACK_SET_H_
