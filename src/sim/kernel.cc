#include "src/sim/kernel.h"

#include <utility>

#include "src/common/check.h"

namespace ftx_sim {

KernelSim::KernelSim(ftx::env::Clock* clock, int num_processes, KernelLimits limits)
    : KernelSim(clock, ShardPlan::Single(num_processes), limits) {}

KernelSim::KernelSim(ftx::env::Clock* clock, ShardPlan plan, KernelLimits limits)
    : clock_(clock), plan_(std::move(plan)), limits_(limits) {
  FTX_CHECK(clock != nullptr);
  ftx::Status valid = ValidateShardPlan(plan_);
  FTX_CHECK_MSG(valid.ok(), "invalid shard plan: %s", valid.message().c_str());
  shards_.resize(static_cast<size_t>(plan_.num_shards()));
  for (int s = 0; s < plan_.num_shards(); ++s) {
    const size_t width = static_cast<size_t>(plan_.ShardEnd(s) - plan_.ShardBegin(s));
    shards_[static_cast<size_t>(s)].states.resize(width);
    shards_[static_cast<size_t>(s)].records.resize(width);
  }
}

KernelSim::ShardBlock& KernelSim::BlockOf(int pid) {
  FTX_CHECK_MSG(plan_.Covers(pid), "pid %d outside kernel shard plan %s", pid,
                plan_.ToString().c_str());
  return shards_[static_cast<size_t>(plan_.OwnerOf(pid))];
}

const KernelSim::ShardBlock& KernelSim::BlockOf(int pid) const {
  FTX_CHECK_MSG(plan_.Covers(pid), "pid %d outside kernel shard plan %s", pid,
                plan_.ToString().c_str());
  return shards_[static_cast<size_t>(plan_.OwnerOf(pid))];
}

KernelState& KernelSim::MutableStateOf(int pid) {
  return BlockOf(pid).states[static_cast<size_t>(pid - plan_.ShardBegin(plan_.OwnerOf(pid)))];
}

const KernelState& KernelSim::StateOf(int pid) const {
  return BlockOf(pid).states[static_cast<size_t>(pid - plan_.ShardBegin(plan_.OwnerOf(pid)))];
}

std::vector<SyscallRecord>& KernelSim::LogOf(int pid) {
  return BlockOf(pid).records[static_cast<size_t>(pid - plan_.ShardBegin(plan_.OwnerOf(pid)))];
}

void KernelSim::CountSyscall(int pid) {
  ++syscalls_;
  ++BlockOf(pid).syscalls;
}

KernelState KernelSim::SnapshotFor(int pid) const { return StateOf(pid); }

size_t KernelSim::RecordCount(int pid) const {
  return BlockOf(pid).records[static_cast<size_t>(pid - plan_.ShardBegin(plan_.OwnerOf(pid)))]
      .size();
}

int64_t KernelSim::disk_blocks_free() const {
  // The disk is shared; each shard tracks its range's usage incrementally,
  // so the global check is O(num_shards) instead of O(num_processes). The
  // sum equals the per-process sum exactly.
  int64_t used = 0;
  for (const ShardBlock& block : shards_) {
    used += block.disk_blocks_used;
  }
  return limits_.disk_blocks_total - used;
}

int64_t KernelSim::ShardDiskBlocksUsed(int shard) const {
  FTX_CHECK_GE(shard, 0);
  FTX_CHECK_LT(shard, num_shards());
  return shards_[static_cast<size_t>(shard)].disk_blocks_used;
}

int64_t KernelSim::ShardSyscalls(int shard) const {
  FTX_CHECK_GE(shard, 0);
  FTX_CHECK_LT(shard, num_shards());
  return shards_[static_cast<size_t>(shard)].syscalls;
}

// Applies one syscall to pid's kernel state. Shared by the live syscall
// entry points and the recovery replay path so both produce identical state.
ftx::Status KernelSim::Apply(int pid, const SyscallRecord& record, int* out_fd,
                             int64_t* out_written) {
  KernelState& state = MutableStateOf(pid);
  switch (record.op) {
    case SyscallRecord::Op::kOpen: {
      // Find a free slot; grow the table up to the per-process limit.
      int fd = -1;
      for (size_t i = 0; i < state.fd_table.size(); ++i) {
        if (!state.fd_table[i].has_value()) {
          fd = static_cast<int>(i);
          break;
        }
      }
      if (fd < 0) {
        if (static_cast<int>(state.fd_table.size()) >= limits_.max_open_files) {
          return ftx::ResourceExhaustedError("open file table full");
        }
        fd = static_cast<int>(state.fd_table.size());
        state.fd_table.emplace_back();
      }
      state.fd_table[static_cast<size_t>(fd)] = OpenFile{record.path, 0, record.writable};
      if (out_fd != nullptr) {
        *out_fd = fd;
      }
      return ftx::Status::Ok();
    }
    case SyscallRecord::Op::kClose: {
      if (record.fd < 0 || static_cast<size_t>(record.fd) >= state.fd_table.size() ||
          !state.fd_table[static_cast<size_t>(record.fd)].has_value()) {
        return ftx::InvalidArgumentError("close of bad fd");
      }
      state.fd_table[static_cast<size_t>(record.fd)].reset();
      return ftx::Status::Ok();
    }
    case SyscallRecord::Op::kBind: {
      if (state.bound_ports.count(record.port) != 0) {
        return ftx::FailedPreconditionError("port already bound");
      }
      state.bound_ports[record.port] = true;
      return ftx::Status::Ok();
    }
    case SyscallRecord::Op::kSeek: {
      if (record.fd < 0 || static_cast<size_t>(record.fd) >= state.fd_table.size() ||
          !state.fd_table[static_cast<size_t>(record.fd)].has_value()) {
        return ftx::InvalidArgumentError("seek of bad fd");
      }
      state.fd_table[static_cast<size_t>(record.fd)]->offset = record.amount;
      return ftx::Status::Ok();
    }
    case SyscallRecord::Op::kWrite: {
      if (record.fd < 0 || static_cast<size_t>(record.fd) >= state.fd_table.size() ||
          !state.fd_table[static_cast<size_t>(record.fd)].has_value()) {
        return ftx::InvalidArgumentError("write of bad fd");
      }
      OpenFile& file = *state.fd_table[static_cast<size_t>(record.fd)];
      if (!file.writable) {
        return ftx::FailedPreconditionError("write to read-only fd");
      }
      int64_t blocks = (record.amount + limits_.block_size - 1) / limits_.block_size;
      if (blocks > disk_blocks_free()) {
        return ftx::ResourceExhaustedError("disk full");
      }
      state.disk_blocks_used += blocks;
      BlockOf(pid).disk_blocks_used += blocks;
      file.offset += record.amount;
      if (out_written != nullptr) {
        *out_written = record.amount;
      }
      return ftx::Status::Ok();
    }
  }
  return ftx::InternalError("unknown syscall op");
}

ftx::Result<int> KernelSim::Open(int pid, const std::string& path, bool writable) {
  CountSyscall(pid);
  SyscallRecord record;
  record.op = SyscallRecord::Op::kOpen;
  record.path = path;
  record.writable = writable;
  int fd = -1;
  ftx::Status status = Apply(pid, record, &fd, nullptr);
  if (!status.ok()) {
    return status;
  }
  record.fd = fd;
  LogOf(pid).push_back(std::move(record));
  return fd;
}

ftx::Status KernelSim::Close(int pid, int fd) {
  CountSyscall(pid);
  SyscallRecord record;
  record.op = SyscallRecord::Op::kClose;
  record.fd = fd;
  FTX_RETURN_IF_ERROR(Apply(pid, record, nullptr, nullptr));
  LogOf(pid).push_back(std::move(record));
  return ftx::Status::Ok();
}

ftx::Status KernelSim::Bind(int pid, uint16_t port) {
  CountSyscall(pid);
  SyscallRecord record;
  record.op = SyscallRecord::Op::kBind;
  record.port = port;
  FTX_RETURN_IF_ERROR(Apply(pid, record, nullptr, nullptr));
  LogOf(pid).push_back(std::move(record));
  return ftx::Status::Ok();
}

ftx::Status KernelSim::Seek(int pid, int fd, int64_t offset) {
  CountSyscall(pid);
  SyscallRecord record;
  record.op = SyscallRecord::Op::kSeek;
  record.fd = fd;
  record.amount = offset;
  FTX_RETURN_IF_ERROR(Apply(pid, record, nullptr, nullptr));
  LogOf(pid).push_back(std::move(record));
  return ftx::Status::Ok();
}

ftx::Result<int64_t> KernelSim::Write(int pid, int fd, int64_t nbytes) {
  CountSyscall(pid);
  FTX_CHECK_GE(nbytes, 0);
  SyscallRecord record;
  record.op = SyscallRecord::Op::kWrite;
  record.fd = fd;
  record.amount = nbytes;
  int64_t written = 0;
  ftx::Status status = Apply(pid, record, nullptr, &written);
  if (!status.ok()) {
    return status;
  }
  LogOf(pid).push_back(std::move(record));
  return written;
}

ftx::TimePoint KernelSim::GetTimeOfDay(int pid) {
  CountSyscall(pid);
  // The perturbation models clock-read granularity; more importantly it is
  // drawn from the clock's noise stream (the simulator's RNG under env::sim),
  // so a reexecuting process sees a different value — the definition of a
  // transient ND event.
  int64_t noise = static_cast<int64_t>(clock_->NextNoise(1000));
  return clock_->Now() + ftx::Nanoseconds(noise);
}

ftx::Status KernelSim::ReconstructFor(int pid, size_t record_count) {
  ++reconstructions_;
  auto& log = LogOf(pid);
  FTX_CHECK_LE(record_count, log.size());

  // Release this process's disk usage before rebuilding (replayed writes
  // re-account it, in its shard's tally as well as its own state).
  KernelState& state = MutableStateOf(pid);
  BlockOf(pid).disk_blocks_used -= state.disk_blocks_used;
  state = KernelState{};

  for (size_t i = 0; i < record_count; ++i) {
    int fd = -1;
    ftx::Status status = Apply(pid, log[i], &fd, nullptr);
    if (!status.ok()) {
      return ftx::InternalError("kernel reconstruction diverged: " + status.ToString());
    }
    // Replay determinism check: an open must land on the same fd slot it
    // produced originally, or descriptors held by the application would
    // dangle.
    if (log[i].op == SyscallRecord::Op::kOpen && fd != log[i].fd) {
      return ftx::InternalError("kernel reconstruction assigned a different fd");
    }
  }
  log.resize(record_count);
  return ftx::Status::Ok();
}

void KernelSim::BindMetrics(ftx_obs::Registry* registry) {
  registry->RegisterCounterProbe("kernel.syscalls", [this]() { return syscalls_; });
  registry->RegisterCounterProbe("kernel.reconstructions", [this]() { return reconstructions_; });
  registry->RegisterGaugeProbe("kernel.disk_blocks_free",
                               [this]() { return static_cast<double>(disk_blocks_free()); });
}

}  // namespace ftx_sim
