// Simulated per-process kernel state and syscall layer.
//
// Discount Checking preserves a process's *kernel* state by intercepting
// system calls, recording their parameter values, and replaying the records
// to reconstruct kernel state during recovery (§3). This module provides the
// substrate for that mechanism: a per-process kernel state (file descriptor
// table, bound ports, per-process disk usage) mutated only through syscalls,
// each of which appends a replayable record.
//
// Syscall classification (for Save-work):
//   gettimeofday            transient ND (different result after recovery)
//   open                    fixed ND (result depends on fd-table slots left)
//   write (to a file)       fixed ND (result depends on disk fullness)
//   bind / close / seek     deterministic state changes
// User input (read from a tty) and network receives live in the runtime's
// context API, not here.
//
// Fleet-scale layout: kernel state is stored in per-shard blocks following
// the engine's ShardPlan — each shard owns the state and replay logs of its
// contiguous pid range, with its own syscall/disk tallies. Global disk
// accounting (the blocks are one shared disk) is kept incrementally per
// shard instead of summed over every process on each write, so a
// 10k-process fleet pays O(num_shards) per disk-full check, not O(N). The
// numbers are identical to the monolithic sum by construction.

#ifndef FTX_SRC_SIM_KERNEL_H_
#define FTX_SRC_SIM_KERNEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sim_time.h"
#include "src/env/env.h"
#include "src/obs/metrics.h"
#include "src/sim/partition.h"

namespace ftx_sim {

struct OpenFile {
  std::string path;
  int64_t offset = 0;
  bool writable = false;

  bool operator==(const OpenFile&) const = default;
};

// Snapshot of one process's kernel-held state. Value-semantic so recovery
// tests can compare reconstructed state to the pre-crash snapshot.
struct KernelState {
  std::vector<std::optional<OpenFile>> fd_table;
  std::map<uint16_t, bool> bound_ports;
  int64_t disk_blocks_used = 0;

  bool operator==(const KernelState&) const = default;
};

// Replayable record of a state-changing syscall (the paper's "copies their
// parameter values into persistent buffers").
struct SyscallRecord {
  enum class Op : uint8_t { kOpen, kClose, kBind, kWrite, kSeek };
  Op op = Op::kOpen;
  std::string path;    // kOpen
  int fd = -1;         // kClose/kWrite/kSeek, and the result slot of kOpen
  bool writable = false;  // kOpen
  uint16_t port = 0;   // kBind
  int64_t amount = 0;  // kWrite byte count / kSeek target offset
};

struct KernelLimits {
  int max_open_files = 64;       // per process (open becomes fixed ND)
  int64_t disk_blocks_total = 1 << 20;  // shared across processes
  int64_t block_size = 4096;
};

class KernelSim {
 public:
  // The kernel is backend-agnostic: it only needs a clock (time-of-day and
  // its transient-ND perturbation source), not the simulator itself.
  // Monolithic layout: one state block owning all pids.
  KernelSim(ftx::env::Clock* clock, int num_processes, KernelLimits limits = {});

  // Partitioned layout: one state block per shard of `plan`. Syscall
  // results are identical for every plan — only locality and the tallies
  // reported per shard change.
  KernelSim(ftx::env::Clock* clock, ShardPlan plan, KernelLimits limits);

  // --- syscalls (all record into the process's replay log) ---

  // Fixed ND: fails with kResourceExhausted when the fd table is full.
  ftx::Result<int> Open(int pid, const std::string& path, bool writable);
  ftx::Status Close(int pid, int fd);
  ftx::Status Bind(int pid, uint16_t port);
  ftx::Status Seek(int pid, int fd, int64_t offset);
  // Fixed ND: fails with kResourceExhausted when the simulated disk fills.
  ftx::Result<int64_t> Write(int pid, int fd, int64_t nbytes);

  // Transient ND: simulated wall clock; includes a per-call perturbation so
  // reexecution observes different values.
  ftx::TimePoint GetTimeOfDay(int pid);

  // --- recovery support ---

  const KernelState& StateOf(int pid) const;
  KernelState SnapshotFor(int pid) const;

  // Number of records in pid's replay log (capture this at commit time).
  size_t RecordCount(int pid) const;

  // Discount Checking recovery: wipes pid's kernel state and rebuilds it by
  // replaying the first `record_count` captured syscalls, then truncates the
  // log to that point (reexecution re-appends from there).
  ftx::Status ReconstructFor(int pid, size_t record_count);

  int64_t disk_blocks_free() const;

  // --- per-shard telemetry ---

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int64_t ShardDiskBlocksUsed(int shard) const;
  int64_t ShardSyscalls(int shard) const;

  // Exposes syscall-layer counters through a metrics registry
  // ("kernel.syscalls", "kernel.reconstructions", "kernel.disk_blocks_free").
  void BindMetrics(ftx_obs::Registry* registry);

 private:
  // One shard's kernel state: the KernelStates and replay logs of its
  // contiguous pid range, plus local tallies that roll up incrementally
  // into the global disk/syscall accounting.
  struct ShardBlock {
    std::vector<KernelState> states;
    std::vector<std::vector<SyscallRecord>> records;
    int64_t disk_blocks_used = 0;
    int64_t syscalls = 0;
  };

  ftx::Status Apply(int pid, const SyscallRecord& record, int* out_fd, int64_t* out_written);
  KernelState& MutableStateOf(int pid);
  ShardBlock& BlockOf(int pid);
  const ShardBlock& BlockOf(int pid) const;
  std::vector<SyscallRecord>& LogOf(int pid);
  void CountSyscall(int pid);

  ftx::env::Clock* clock_;
  ShardPlan plan_;
  KernelLimits limits_;
  int64_t syscalls_ = 0;
  int64_t reconstructions_ = 0;
  std::vector<ShardBlock> shards_;
};

}  // namespace ftx_sim

#endif  // FTX_SRC_SIM_KERNEL_H_
