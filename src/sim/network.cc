#include "src/sim/network.h"

#include <utility>

#include "src/common/check.h"

namespace ftx_sim {

Network::Network(Simulator* sim, int num_processes, NetworkOptions options)
    : sim_(sim), options_(options) {
  FTX_CHECK(sim != nullptr);
  FTX_CHECK_GT(num_processes, 0);
  inbox_.resize(static_cast<size_t>(num_processes));
  recovery_buffer_.resize(static_cast<size_t>(num_processes));
  arrival_callback_.resize(static_cast<size_t>(num_processes));
}

ftx::Duration Network::TransitTime(size_t bytes) const {
  return options_.base_latency +
         ftx::Nanoseconds(options_.per_kilobyte.nanos() * static_cast<int64_t>(bytes) / 1024);
}

int64_t Network::Send(int src, int dst, ftx::Bytes payload) {
  FTX_CHECK(dst >= 0 && dst < num_processes());
  Message msg;
  msg.id = next_message_id_++;
  msg.src = src;
  msg.dst = dst;
  msg.sent_at = sim_->Now();
  total_bytes_ += static_cast<int64_t>(payload.size());
  if (message_observer_) {
    message_observer_(msg.id, src, dst, static_cast<int64_t>(payload.size()));
  }
  msg.payload = std::move(payload);

  ftx::Duration latency = TransitTime(msg.payload.size());
  if (options_.max_jitter.nanos() > 0) {
    latency += ftx::Nanoseconds(static_cast<int64_t>(
        sim_->rng().NextBounded(static_cast<uint64_t>(options_.max_jitter.nanos()))));
  }
  // FIFO per channel: jitter may delay but never reorder (src, dst) pairs.
  ftx::TimePoint deliver_at = sim_->Now() + latency;
  ftx::TimePoint& last = last_delivery_[{src, dst}];
  if (deliver_at <= last) {
    deliver_at = last + ftx::Nanoseconds(1);
  }
  last = deliver_at;
  latency = deliver_at - sim_->Now();
  int64_t id = msg.id;
  // Delivery runs on the receiver's shard; msg.id is a global send id, so
  // the merge front keeps same-timestamp cross-shard deliveries in
  // monolithic order regardless of which shard a sender lives on.
  sim_->ScheduleAfterFor(dst, latency, [this, msg = std::move(msg)]() mutable {
    msg.delivered_at = sim_->Now();
    int dst_idx = msg.dst;
    inbox_[static_cast<size_t>(dst_idx)].push_back(std::move(msg));
    if (arrival_callback_[static_cast<size_t>(dst_idx)]) {
      arrival_callback_[static_cast<size_t>(dst_idx)]();
    }
  });
  return id;
}

bool Network::HasPending(int dst) const {
  FTX_CHECK(dst >= 0 && dst < num_processes());
  return !inbox_[static_cast<size_t>(dst)].empty();
}

std::optional<Message> Network::Deliver(int dst) {
  FTX_CHECK(dst >= 0 && dst < num_processes());
  auto& box = inbox_[static_cast<size_t>(dst)];
  if (box.empty()) {
    return std::nullopt;
  }
  Message msg = std::move(box.front());
  box.pop_front();
  recovery_buffer_[static_cast<size_t>(dst)].push_back(msg);
  ++messages_delivered_;
  return msg;
}

const Message* Network::PeekNext(int dst) const {
  FTX_CHECK(dst >= 0 && dst < num_processes());
  const auto& box = inbox_[static_cast<size_t>(dst)];
  return box.empty() ? nullptr : &box.front();
}

void Network::ReleaseDeliveredUpTo(int dst, int64_t message_id) {
  FTX_CHECK(dst >= 0 && dst < num_processes());
  auto& buffer = recovery_buffer_[static_cast<size_t>(dst)];
  while (!buffer.empty() && buffer.front().id <= message_id) {
    buffer.pop_front();
  }
}

void Network::ReleaseAllDelivered(int dst) {
  FTX_CHECK(dst >= 0 && dst < num_processes());
  recovery_buffer_[static_cast<size_t>(dst)].clear();
}

void Network::DropNewestRetained(int dst, int64_t message_id) {
  FTX_CHECK(dst >= 0 && dst < num_processes());
  auto& buffer = recovery_buffer_[static_cast<size_t>(dst)];
  FTX_CHECK(!buffer.empty());
  FTX_CHECK_EQ(buffer.back().id, message_id);
  buffer.pop_back();
}

void Network::RequeueRetained(int dst) {
  FTX_CHECK(dst >= 0 && dst < num_processes());
  auto& buffer = recovery_buffer_[static_cast<size_t>(dst)];
  auto& box = inbox_[static_cast<size_t>(dst)];
  // Retained messages were delivered before anything still in the inbox, so
  // they go to the front, preserving original order.
  messages_requeued_ += static_cast<int64_t>(buffer.size());
  for (auto it = buffer.rbegin(); it != buffer.rend(); ++it) {
    box.push_front(*it);
  }
  buffer.clear();
}

void Network::BindMetrics(ftx_obs::Registry* registry) {
  registry->RegisterCounterProbe("sim.messages_sent", [this]() { return next_message_id_; });
  registry->RegisterCounterProbe("sim.messages_delivered", [this]() { return messages_delivered_; });
  registry->RegisterCounterProbe("sim.messages_requeued", [this]() { return messages_requeued_; });
  registry->RegisterCounterProbe("sim.bytes_sent", [this]() { return total_bytes_; });
}

void Network::SetArrivalCallback(int dst, std::function<void()> callback) {
  FTX_CHECK(dst >= 0 && dst < num_processes());
  arrival_callback_[static_cast<size_t>(dst)] = std::move(callback);
}

}  // namespace ftx_sim
