// Simulated network with per-receiver recovery buffers.
//
// Messages between processes traverse a switched-Ethernet-like fabric with a
// base latency plus per-byte cost and bounded jitter. Delivery is FIFO per
// (src, dst) pair.
//
// Recovery support (§2.1 of the paper): for receive events to be redoable,
// messages must be re-deliverable after a rollback. The network therefore
// retains every delivered message in a per-receiver recovery buffer until
// the receiver commits past it (ReleaseDeliveredUpTo). On rollback, the
// receiver requeues its retained messages (RequeueRetained) so reexecution
// receives them again, in order.

#ifndef FTX_SRC_SIM_NETWORK_H_
#define FTX_SRC_SIM_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/sim_time.h"
#include "src/env/env.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace ftx_sim {

// The message type now lives on the backend-agnostic seam
// (src/env/env.h); this alias keeps existing code compiling unchanged.
using Message = ftx::env::Message;

struct NetworkOptions {
  ftx::Duration base_latency = ftx::Microseconds(50);
  ftx::Duration per_kilobyte = ftx::Microseconds(10);
  ftx::Duration max_jitter = ftx::Microseconds(5);
};

class Network {
 public:
  Network(Simulator* sim, int num_processes, NetworkOptions options = {});

  int num_processes() const { return static_cast<int>(inbox_.size()); }

  // Queues a message for delivery; returns its id. Delivery is scheduled on
  // the simulator after the modeled latency.
  int64_t Send(int src, int dst, ftx::Bytes payload);

  // True if a message is waiting in dst's inbox right now.
  bool HasPending(int dst) const;

  // Pops the next message for dst (a receive event). The message is moved to
  // dst's recovery buffer. Returns nullopt if the inbox is empty.
  std::optional<Message> Deliver(int dst);

  // MSG_PEEK: the next message for dst without consuming it, or nullptr.
  const Message* PeekNext(int dst) const;

  // Called when dst commits having consumed messages up to and including
  // `message_id`: retained copies at or before it are discarded.
  void ReleaseDeliveredUpTo(int dst, int64_t message_id);

  // Called when dst commits: every message it has consumed so far is covered
  // by the commit, so all retained copies are discarded.
  void ReleaseAllDelivered(int dst);

  // Called when a just-delivered message was captured in the receiver's ND
  // log (a logged receive must not ALSO be redelivered from the recovery
  // buffer on rollback). `message_id` must be the newest retained message.
  void DropNewestRetained(int dst, int64_t message_id);

  // Called when dst rolls back: all retained (uncommitted) messages are
  // placed back at the *front* of its inbox in original delivery order, so
  // reexecution re-receives them.
  void RequeueRetained(int dst);

  // Invoked whenever a message lands in dst's inbox; used by blocked
  // receivers to wake up. One callback per process.
  void SetArrivalCallback(int dst, std::function<void()> callback);

  // Invoked at Send time with (id, src, dst, payload bytes). Observational
  // only (the causal audit's send ledger); never affects delivery.
  using MessageObserver = std::function<void(int64_t, int, int, int64_t)>;
  void SetMessageObserver(MessageObserver observer) { message_observer_ = std::move(observer); }

  // Time a message of `bytes` payload takes in transit (without jitter).
  ftx::Duration TransitTime(size_t bytes) const;

  int64_t total_messages() const { return next_message_id_; }
  int64_t total_bytes() const { return total_bytes_; }

  // Exposes fabric counters through a metrics registry ("sim.messages_sent",
  // "sim.messages_delivered", "sim.messages_requeued", "sim.bytes_sent").
  void BindMetrics(ftx_obs::Registry* registry);

 private:
  Simulator* sim_;
  NetworkOptions options_;
  int64_t next_message_id_ = 0;
  int64_t total_bytes_ = 0;
  int64_t messages_delivered_ = 0;
  int64_t messages_requeued_ = 0;
  // Enforces FIFO per (src, dst) even under jitter: a message never arrives
  // before an earlier message on the same channel.
  std::map<std::pair<int, int>, ftx::TimePoint> last_delivery_;
  std::vector<std::deque<Message>> inbox_;
  std::vector<std::deque<Message>> recovery_buffer_;
  std::vector<std::function<void()>> arrival_callback_;
  MessageObserver message_observer_;
};

}  // namespace ftx_sim

#endif  // FTX_SRC_SIM_NETWORK_H_
