#include "src/sim/partition.h"

#include <algorithm>

#include "src/common/check.h"

namespace ftx_sim {

int ShardPlan::OwnerOf(int pid) const {
  FTX_CHECK_MSG(Covers(pid), "pid %d outside shard plan %s", pid, ToString().c_str());
  // First bound strictly greater than pid; its predecessor range owns pid.
  auto it = std::upper_bound(bounds.begin(), bounds.end(), pid);
  return static_cast<int>(it - bounds.begin()) - 1;
}

std::string ShardPlan::ToString() const {
  std::string text = "{";
  for (int s = 0; s < num_shards(); ++s) {
    if (s > 0) {
      text += ",";
    }
    text += "[";
    text += std::to_string(ShardBegin(s));
    text += ",";
    text += std::to_string(ShardEnd(s));
    text += ")";
  }
  text += "}";
  return text;
}

ShardPlan ShardPlan::Single(int num_processes) {
  FTX_CHECK_GT(num_processes, 0);
  ShardPlan plan;
  plan.bounds = {0, num_processes};
  return plan;
}

ShardPlan ShardPlan::Uniform(int num_processes, int num_shards) {
  FTX_CHECK_MSG(num_processes >= 1, "shard plan needs at least one process (got %d)",
                num_processes);
  FTX_CHECK_MSG(num_shards >= 1, "shard plan needs at least one shard (got %d)", num_shards);
  FTX_CHECK_MSG(num_shards <= num_processes,
                "more shards than processes (%d shards, %d processes)", num_shards,
                num_processes);
  ShardPlan plan;
  plan.bounds.assign(static_cast<size_t>(num_shards) + 1, 0);
  const int base = num_processes / num_shards;
  const int extra = num_processes % num_shards;
  for (int s = 0; s < num_shards; ++s) {
    plan.bounds[static_cast<size_t>(s) + 1] =
        plan.bounds[static_cast<size_t>(s)] + base + (s < extra ? 1 : 0);
  }
  return plan;
}

ftx::Status ValidateShardPlan(const ShardPlan& plan) {
  if (plan.num_shards() < 1) {
    return ftx::InvalidArgumentError("shard plan has no shards");
  }
  if (plan.bounds.front() != 0) {
    return ftx::InvalidArgumentError("shard plan does not start at pid 0: " + plan.ToString());
  }
  for (int s = 0; s < plan.num_shards(); ++s) {
    if (plan.ShardEnd(s) <= plan.ShardBegin(s)) {
      return ftx::InvalidArgumentError("shard plan has empty or non-contiguous range: " +
                                       plan.ToString());
    }
  }
  return ftx::Status::Ok();
}

}  // namespace ftx_sim
