// Shard plans: contiguous partitions of process ids for the partitioned
// event engine.
//
// A fleet-scale simulation splits its processes across sub-simulators
// ("shards"), one per contiguous pid range. The plan is pure data — which
// shard owns which pids — shared by the Simulator (per-shard event heaps),
// the Network (deliveries land on the receiver's shard), and the KernelSim
// (per-shard kernel state blocks). Partitioning never changes simulated
// results: the engine's merge front replays the exact monolithic event
// order for any plan (see simulator.h), so a plan is a layout choice, not a
// semantic one.

#ifndef FTX_SRC_SIM_PARTITION_H_
#define FTX_SRC_SIM_PARTITION_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace ftx_sim {

// Contiguous partition of pids [0, num_processes()) into shards: shard s
// owns [bounds[s], bounds[s+1]). A valid plan has strictly increasing
// bounds starting at 0, so the ranges are non-empty, non-overlapping, and
// cover every pid — ValidateShardPlan rejects anything else.
struct ShardPlan {
  std::vector<int> bounds{0, 1};

  int num_shards() const { return static_cast<int>(bounds.size()) - 1; }
  int num_processes() const { return bounds.empty() ? 0 : bounds.back(); }

  int ShardBegin(int shard) const { return bounds[static_cast<size_t>(shard)]; }
  int ShardEnd(int shard) const { return bounds[static_cast<size_t>(shard) + 1]; }

  bool Covers(int pid) const { return pid >= 0 && pid < num_processes(); }

  // Owning shard of a covered pid (callers check Covers first).
  int OwnerOf(int pid) const;

  std::string ToString() const;  // e.g. "{[0,3),[3,6)}"

  // One shard owning everything — the monolithic engine.
  static ShardPlan Single(int num_processes);

  // num_processes split into num_shards near-equal contiguous ranges (the
  // first `num_processes % num_shards` ranges get one extra pid). Aborts on
  // num_shards < 1, num_processes < 1, or num_shards > num_processes — the
  // configurations the death tests pin.
  static ShardPlan Uniform(int num_processes, int num_shards);
};

// Structural validation: at least one shard, bounds[0] == 0, and strictly
// increasing bounds (empty or out-of-order ranges are the "non-contiguous"
// misconfigurations). The Simulator aborts on an invalid plan.
ftx::Status ValidateShardPlan(const ShardPlan& plan);

}  // namespace ftx_sim

#endif  // FTX_SRC_SIM_PARTITION_H_
