#include "src/sim/simulator.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace ftx_sim {

Simulator::Simulator(uint64_t seed, ShardPlan plan) : plan_(std::move(plan)), rng_(seed) {
  ftx::Status valid = ValidateShardPlan(plan_);
  FTX_CHECK_MSG(valid.ok(), "invalid shard plan: %s", valid.message().c_str());
  shards_.resize(static_cast<size_t>(plan_.num_shards()));
  // While this simulator lives, log lines carry its simulated clock.
  ftx::SetLogSimTimeSource(this, [](const void* owner) {
    return static_cast<const Simulator*>(owner)->Now().nanos();
  });
}

Simulator::~Simulator() { ftx::ClearLogSimTimeSource(this); }

void Simulator::BindMetrics(ftx_obs::Registry* registry) {
  registry->RegisterCounterProbe("sim.events_executed", [this]() { return events_executed_; });
  registry->RegisterCounterProbe("sim.events_scheduled", [this]() { return next_seq_; });
  registry->RegisterGaugeProbe("sim.now_s", [this]() { return now_.seconds(); });
  if (num_shards() > 1) {
    registry->RegisterGaugeProbe("sim.shards", [this]() { return double(num_shards()); });
    registry->RegisterCounterProbe("sim.cross_shard_events",
                                   [this]() { return cross_shard_events_; });
  }
}

void Simulator::ScheduleOn(int shard, ftx::TimePoint t, std::function<void()> fn) {
  FTX_CHECK_MSG(t >= now_, "scheduling into the past: %s < %s", t.ToString().c_str(),
                now_.ToString().c_str());
  if (shard != executing_shard_) {
    ++cross_shard_events_;
  }
  shards_[static_cast<size_t>(shard)].queue.push(Scheduled{t, next_seq_++, std::move(fn)});
  ++pending_;
}

void Simulator::ScheduleAt(ftx::TimePoint t, std::function<void()> fn) {
  ScheduleOn(0, t, std::move(fn));
}

void Simulator::ScheduleAfter(ftx::Duration d, std::function<void()> fn) {
  FTX_CHECK_GE(d.nanos(), 0);
  ScheduleOn(0, now_ + d, std::move(fn));
}

void Simulator::ScheduleAtFor(int pid, ftx::TimePoint t, std::function<void()> fn) {
  ScheduleOn(OwnerShardOf(pid), t, std::move(fn));
}

void Simulator::ScheduleAfterFor(int pid, ftx::Duration d, std::function<void()> fn) {
  FTX_CHECK_GE(d.nanos(), 0);
  ScheduleOn(OwnerShardOf(pid), now_ + d, std::move(fn));
}

int Simulator::FrontShard() const {
  // The merge front: the shard whose head event has the globally least
  // (time, seq). Heads are compared with the same ordering as the heaps
  // themselves, so the pick is exactly the event a single merged heap would
  // pop — monolithic order, reproduced shard-by-shard.
  int best = -1;
  const Later later;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const auto& q = shards_[s].queue;
    if (q.empty()) {
      continue;
    }
    if (best < 0 || later(shards_[static_cast<size_t>(best)].queue.top(), q.top())) {
      best = static_cast<int>(s);
    }
  }
  return best;
}

bool Simulator::RunOne() {
  const int front = FrontShard();
  if (front < 0) {
    return false;
  }
  Shard& shard = shards_[static_cast<size_t>(front)];
  if (event_hook_) {
    // Observation point: state after all earlier events, before this one.
    event_hook_(front, shard.queue.top().time);
  }
  // priority_queue::top is const; the callback is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  auto& top = const_cast<Scheduled&>(shard.queue.top());
  ftx::TimePoint t = top.time;
  std::function<void()> fn = std::move(top.fn);
  shard.queue.pop();
  --pending_;
  now_ = t;
  shard.local_now = t;
  ++shard.events_executed;
  ++events_executed_;
  executing_shard_ = front;
  fn();
  executing_shard_ = 0;
  return true;
}

void Simulator::RunUntil(ftx::TimePoint deadline) {
  for (int front = FrontShard();
       front >= 0 && shards_[static_cast<size_t>(front)].queue.top().time <= deadline;
       front = FrontShard()) {
    RunOne();
  }
}

void Simulator::RunUntilIdle(int64_t max_events) {
  int64_t executed = 0;
  while (RunOne()) {
    FTX_CHECK_MSG(++executed <= max_events, "simulator exceeded %lld events; runaway loop?",
                  static_cast<long long>(max_events));
  }
}

ftx::TimePoint Simulator::ShardNow(int shard) const {
  FTX_CHECK_GE(shard, 0);
  FTX_CHECK_LT(shard, num_shards());
  return shards_[static_cast<size_t>(shard)].local_now;
}

int64_t Simulator::ShardEventsExecuted(int shard) const {
  FTX_CHECK_GE(shard, 0);
  FTX_CHECK_LT(shard, num_shards());
  return shards_[static_cast<size_t>(shard)].events_executed;
}

}  // namespace ftx_sim
