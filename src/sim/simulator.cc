#include "src/sim/simulator.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace ftx_sim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  // While this simulator lives, log lines carry its simulated clock.
  ftx::SetLogSimTimeSource(this, [](const void* owner) {
    return static_cast<const Simulator*>(owner)->Now().nanos();
  });
}

Simulator::~Simulator() { ftx::ClearLogSimTimeSource(this); }

void Simulator::BindMetrics(ftx_obs::Registry* registry) {
  registry->RegisterCounterProbe("sim.events_executed", [this]() { return events_executed_; });
  registry->RegisterCounterProbe("sim.events_scheduled", [this]() { return next_seq_; });
  registry->RegisterGaugeProbe("sim.now_s", [this]() { return now_.seconds(); });
}

void Simulator::ScheduleAt(ftx::TimePoint t, std::function<void()> fn) {
  FTX_CHECK_MSG(t >= now_, "scheduling into the past: %s < %s", t.ToString().c_str(),
                now_.ToString().c_str());
  queue_.push(Scheduled{t, next_seq_++, std::move(fn)});
}

void Simulator::ScheduleAfter(ftx::Duration d, std::function<void()> fn) {
  FTX_CHECK_GE(d.nanos(), 0);
  ScheduleAt(now_ + d, std::move(fn));
}

bool Simulator::RunOne() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top is const; the callback is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  auto& top = const_cast<Scheduled&>(queue_.top());
  ftx::TimePoint t = top.time;
  std::function<void()> fn = std::move(top.fn);
  queue_.pop();
  now_ = t;
  ++events_executed_;
  fn();
  return true;
}

void Simulator::RunUntil(ftx::TimePoint deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    RunOne();
  }
}

void Simulator::RunUntilIdle(int64_t max_events) {
  int64_t executed = 0;
  while (RunOne()) {
    FTX_CHECK_MSG(++executed <= max_events, "simulator exceeded %lld events; runaway loop?",
                  static_cast<long long>(max_events));
  }
}

}  // namespace ftx_sim
