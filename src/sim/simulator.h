// Deterministic discrete-event simulator.
//
// All experiments run on simulated time: a priority queue of (time, seq)
// ordered callbacks. Ties are broken by insertion order, so a run is a pure
// function of the seed — the property every recovery experiment relies on
// for reproducing executions before and after injected failures.

#ifndef FTX_SRC_SIM_SIMULATOR_H_
#define FTX_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/obs/metrics.h"

namespace ftx_sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ftx::TimePoint Now() const { return now_; }
  ftx::Rng& rng() { return rng_; }

  // Exposes the simulator's activity counters and clock through a metrics
  // registry ("sim.events_executed", "sim.events_scheduled", "sim.now_s").
  // The simulator must outlive the registry's snapshots.
  void BindMetrics(ftx_obs::Registry* registry);

  // Schedules fn to run at absolute time t (>= Now()).
  void ScheduleAt(ftx::TimePoint t, std::function<void()> fn);
  void ScheduleAfter(ftx::Duration d, std::function<void()> fn);

  // Executes the next pending callback, advancing the clock to its time.
  // Returns false when the queue is empty.
  bool RunOne();

  // Runs callbacks until the queue is empty or the next callback is
  // scheduled after `deadline` (the clock is then left at the last executed
  // event's time).
  void RunUntil(ftx::TimePoint deadline);

  // Runs until the queue drains. `max_events` guards against runaway loops
  // in tests; exceeding it aborts.
  void RunUntilIdle(int64_t max_events = 100000000);

  int64_t events_executed() const { return events_executed_; }
  bool HasPending() const { return !queue_.empty(); }

 private:
  struct Scheduled {
    ftx::TimePoint time;
    int64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  ftx::TimePoint now_;
  int64_t next_seq_ = 0;
  int64_t events_executed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  ftx::Rng rng_;
};

}  // namespace ftx_sim

#endif  // FTX_SRC_SIM_SIMULATOR_H_
