// Deterministic discrete-event simulator with a partitioned event engine.
//
// All experiments run on simulated time: callbacks ordered by (time, seq),
// where seq is a single global schedule counter. Ties break by that counter
// — insertion order — so a run is a pure function of the seed, the property
// every recovery experiment relies on for reproducing executions before and
// after injected failures.
//
// Fleet-scale runs partition the engine: one sub-simulator ("shard") per
// contiguous pid range (ShardPlan), each owning a local event heap and a
// local clock view. Events scheduled for a process land on its owner
// shard's heap; RunOne pops from a deterministic merge front that picks the
// globally least (time, seq) entry across shard heads. Because every event
// carries the global schedule id — never a shard-local one — the merge
// front replays the exact monolithic event order for ANY shard count:
// within a shard, local heap order is a subsequence of the global order,
// and across shards the global id decides same-timestamp ties (the
// cross-shard generalization of the byte-identical --jobs discipline in
// src/core/parallel.h). Sharding is therefore a layout/locality choice —
// smaller heaps, per-shard telemetry — with zero semantic footprint.

#ifndef FTX_SRC_SIM_SIMULATOR_H_
#define FTX_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/obs/metrics.h"
#include "src/sim/partition.h"

namespace ftx_sim {

class Simulator {
 public:
  // Monolithic engine: one shard owning everything.
  explicit Simulator(uint64_t seed) : Simulator(seed, ShardPlan()) {}

  // Partitioned engine. Aborts on an invalid plan (see ValidateShardPlan).
  Simulator(uint64_t seed, ShardPlan plan);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ftx::TimePoint Now() const { return now_; }
  ftx::Rng& rng() { return rng_; }

  const ShardPlan& plan() const { return plan_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Owner shard for per-process events. Pids outside the plan (control
  // events of a computation whose plan was not sized for them) fall back to
  // shard 0, the control shard — placement never affects execution order.
  int OwnerShardOf(int pid) const {
    return plan_.Covers(pid) ? plan_.OwnerOf(pid) : 0;
  }

  // Pre-event hook: invoked in RunOne with (owner shard, event time) AFTER
  // the merge front picks the next event but BEFORE the clock advances and
  // the callback runs. At that instant the simulation state is exactly the
  // state after all events at earlier times — the hook is how the tsdb
  // samples cadence boundaries lazily (O(boundary crossings), not
  // O(events)). The hook must only READ state: it runs outside simulated
  // time and must never schedule events, touch the RNG, or mutate anything
  // the simulation observes — the telemetry-neutrality goldens pin this.
  // Unset (the default) costs one branch per event.
  void SetEventHook(std::function<void(int shard, ftx::TimePoint)> hook) {
    event_hook_ = std::move(hook);
  }

  // Exposes the simulator's activity counters and clock through a metrics
  // registry ("sim.events_executed", "sim.events_scheduled", "sim.now_s").
  // Multi-shard engines additionally expose "sim.shards" and
  // "sim.cross_shard_events" (single-shard engines register exactly the
  // monolithic instrument set, keeping golden snapshots byte-stable). The
  // simulator must outlive the registry's snapshots.
  void BindMetrics(ftx_obs::Registry* registry);

  // Schedules fn to run at absolute time t (>= Now()) on the control shard.
  void ScheduleAt(ftx::TimePoint t, std::function<void()> fn);
  void ScheduleAfter(ftx::Duration d, std::function<void()> fn);

  // Schedules fn on pid's owner shard (same global ordering either way).
  void ScheduleAtFor(int pid, ftx::TimePoint t, std::function<void()> fn);
  void ScheduleAfterFor(int pid, ftx::Duration d, std::function<void()> fn);

  // Executes the next pending callback — the merge front's least
  // (time, global seq) across all shard heaps — advancing the clock to its
  // time. Returns false when every heap is empty.
  bool RunOne();

  // Runs callbacks until the queues are empty or the next callback is
  // scheduled after `deadline` (the clock is then left at the last executed
  // event's time).
  void RunUntil(ftx::TimePoint deadline);

  // Runs until the queues drain. `max_events` guards against runaway loops
  // in tests; exceeding it aborts.
  void RunUntilIdle(int64_t max_events = 100000000);

  int64_t events_executed() const { return events_executed_; }
  bool HasPending() const { return pending_ > 0; }

  // --- per-shard telemetry (the shard's "local" state) ---

  // Time of the last event executed on shard s (its local clock; always
  // <= Now(), which tracks the merge front).
  ftx::TimePoint ShardNow(int shard) const;
  int64_t ShardEventsExecuted(int shard) const;
  // Events whose scheduling callback ran on a different shard than the one
  // they landed on (cross-shard message deliveries, mostly).
  int64_t cross_shard_events() const { return cross_shard_events_; }

 private:
  struct Scheduled {
    ftx::TimePoint time;
    int64_t seq;  // global schedule id — the merge front's tiebreak
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  struct Shard {
    std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue;
    ftx::TimePoint local_now;
    int64_t events_executed = 0;
  };

  void ScheduleOn(int shard, ftx::TimePoint t, std::function<void()> fn);
  // Shard holding the merge front's next event, or -1 when all heaps are
  // empty.
  int FrontShard() const;

  ShardPlan plan_;
  ftx::TimePoint now_;
  int64_t next_seq_ = 0;
  int64_t events_executed_ = 0;
  int64_t pending_ = 0;
  int64_t cross_shard_events_ = 0;
  int executing_shard_ = 0;  // shard of the currently running callback
  std::function<void(int, ftx::TimePoint)> event_hook_;
  std::vector<Shard> shards_;
  ftx::Rng rng_;
};

}  // namespace ftx_sim

#endif  // FTX_SRC_SIM_SIMULATOR_H_
