#include "src/statemachine/dangerous_paths.h"

#include "src/common/check.h"

namespace ftx_sm {
namespace {

EventKind EffectiveKind(const Edge& e, const std::map<EdgeId, EventKind>& overrides) {
  auto it = overrides.find(e.id);
  return it == overrides.end() ? e.kind : it->second;
}

}  // namespace

DangerousPathsResult ColorDangerousPaths(const StateMachineGraph& graph) {
  return ColorDangerousPaths(graph, {});
}

DangerousPathsResult ColorDangerousPaths(const StateMachineGraph& graph,
                                         const std::map<EdgeId, EventKind>& kind_overrides) {
  DangerousPathsResult result;
  result.colored.assign(static_cast<size_t>(graph.num_edges()), false);

  // Rule 1: all crash events are colored.
  for (const Edge& e : graph.edges()) {
    if (e.kind == EventKind::kCrash) {
      result.colored[static_cast<size_t>(e.id)] = true;
      ++result.num_colored;
    }
  }

  // Rules 2 and 3 to fixpoint. The graph may contain cycles, so we sweep
  // until a full pass makes no change; each sweep colors at least one new
  // edge or terminates, bounding rounds by the edge count.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.fixpoint_rounds;
    for (const Edge& e : graph.edges()) {
      auto idx = static_cast<size_t>(e.id);
      if (result.colored[idx] || e.kind == EventKind::kCrash) {
        continue;
      }
      const std::vector<EdgeId>& out = graph.OutEdges(e.to);
      if (out.empty()) {
        continue;  // normal termination state; not dangerous
      }
      bool all_colored = true;
      bool colored_fixed_successor = false;
      for (EdgeId succ_id : out) {
        const Edge& succ = graph.edge(succ_id);
        bool succ_colored = result.colored[static_cast<size_t>(succ_id)];
        if (!succ_colored) {
          all_colored = false;
        }
        if (succ_colored && EffectiveKind(succ, kind_overrides) == EventKind::kFixedNd) {
          colored_fixed_successor = true;
        }
      }
      if (all_colored || colored_fixed_successor) {
        result.colored[idx] = true;
        ++result.num_colored;
        changed = true;
      }
    }
  }
  return result;
}

std::map<int64_t, ReceiveClass> ClassifyReceivesForProcess(const Trace& trace, ProcessId p) {
  std::map<int64_t, ReceiveClass> classes;
  for (const TraceEvent& ev : trace.ProcessEvents(p)) {
    if (ev.kind != EventKind::kReceive) {
      continue;
    }
    std::optional<EventRef> send = trace.SendOfMessage(ev.message_id);
    FTX_CHECK(send.has_value());
    ProcessId sender = send->process;

    // Snapshot: the sender's last commit as of the send.
    std::optional<EventRef> last_commit = trace.LastCommitAtOrBefore(sender, send->index);
    int64_t window_start = last_commit.has_value() ? last_commit->index : -1;

    // The receive is transient iff the sender executed a transient, unlogged
    // ND event after its last commit and before the send: only then can the
    // sender regenerate a different message during its own recovery.
    bool transient = false;
    const auto& sender_events = trace.ProcessEvents(sender);
    for (int64_t i = window_start + 1; i < send->index; ++i) {
      const TraceEvent& se = sender_events[static_cast<size_t>(i)];
      if (IsTransientNonDeterministic(se.kind) && !se.logged) {
        transient = true;
        break;
      }
    }
    classes[ev.message_id] = transient ? ReceiveClass::kTransient : ReceiveClass::kFixed;
  }
  return classes;
}

DangerousPathsResult MultiProcessDangerousPaths(
    const StateMachineGraph& graph, const Trace& trace, ProcessId p,
    const std::map<EdgeId, int64_t>& receive_edge_to_message) {
  std::map<int64_t, ReceiveClass> classes = ClassifyReceivesForProcess(trace, p);
  std::map<EdgeId, EventKind> overrides;
  for (const auto& [edge_id, message_id] : receive_edge_to_message) {
    auto it = classes.find(message_id);
    if (it == classes.end()) {
      continue;  // message not (yet) received; leave the edge's static kind
    }
    overrides[edge_id] = it->second == ReceiveClass::kTransient ? EventKind::kTransientNd
                                                                : EventKind::kFixedNd;
  }
  return ColorDangerousPaths(graph, overrides);
}

}  // namespace ftx_sm
