// Dangerous-paths coloring algorithms (§2.5).
//
// A dangerous path is a sequence of events along which a commit would either
// preserve buggy state or guarantee the bug is regenerated during recovery.
// The Lose-work Theorem: application-generic recovery from a propagation
// failure is possible iff the application executes no commit event on a
// dangerous path.
//
// Single-process algorithm (assuming perfect knowledge of crash events):
//   1. Color all crash events.
//   2. Color an event e if all events out of e's end state are colored.
//   3. Color an event e if at least one event out of e's end state is
//      colored and is a fixed non-deterministic event.
//
// Multi-process algorithm (for a process P wanting its dangerous paths):
//   1. Collect a snapshot of where every process last committed.
//   2. Treat each receive P executed as *transient* ND iff the sender's last
//      commit occurred before the send and the sender executed a transient
//      ND event between its last commit and the send; otherwise the receive
//      is *fixed* ND.
//   3. Run the single-process algorithm with that reclassification.

#ifndef FTX_SRC_STATEMACHINE_DANGEROUS_PATHS_H_
#define FTX_SRC_STATEMACHINE_DANGEROUS_PATHS_H_

#include <map>

#include "src/statemachine/graph.h"
#include "src/statemachine/trace.h"

namespace ftx_sm {

struct DangerousPathsResult {
  std::vector<bool> colored;  // indexed by EdgeId
  int32_t num_colored = 0;
  int32_t fixpoint_rounds = 0;  // sweeps until no change (diagnostics)

  bool IsColored(EdgeId id) const {
    return id >= 0 && static_cast<size_t>(id) < colored.size() &&
           colored[static_cast<size_t>(id)];
  }
};

// Single-process coloring. Edge kinds are taken from the graph as-is.
DangerousPathsResult ColorDangerousPaths(const StateMachineGraph& graph);

// Coloring with per-edge kind overrides (used by the multi-process algorithm
// to reclassify receive edges as transient or fixed based on the snapshot).
DangerousPathsResult ColorDangerousPaths(const StateMachineGraph& graph,
                                         const std::map<EdgeId, EventKind>& kind_overrides);

enum class ReceiveClass {
  kTransient,  // sender can regenerate a different message after a failure
  kFixed,      // the message content is pinned (sender committed it, or no
               // transient ND feeds it)
};

// Step 2 of the multi-process algorithm: classifies every receive event that
// process p executed in `trace`, keyed by message id. The snapshot of last
// commits is read from the trace itself.
std::map<int64_t, ReceiveClass> ClassifyReceivesForProcess(const Trace& trace, ProcessId p);

// Convenience: runs the full multi-process algorithm for process p. The
// caller supplies the mapping from graph edges to the message ids those
// receive edges correspond to; unlisted edges keep their graph kind.
DangerousPathsResult MultiProcessDangerousPaths(
    const StateMachineGraph& graph, const Trace& trace, ProcessId p,
    const std::map<EdgeId, int64_t>& receive_edge_to_message);

}  // namespace ftx_sm

#endif  // FTX_SRC_STATEMACHINE_DANGEROUS_PATHS_H_
