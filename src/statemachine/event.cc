#include "src/statemachine/event.h"

namespace ftx_sm {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kInternal:
      return "internal";
    case EventKind::kTransientNd:
      return "transient_nd";
    case EventKind::kFixedNd:
      return "fixed_nd";
    case EventKind::kVisible:
      return "visible";
    case EventKind::kSend:
      return "send";
    case EventKind::kReceive:
      return "receive";
    case EventKind::kCommit:
      return "commit";
    case EventKind::kCrash:
      return "crash";
  }
  return "unknown";
}

bool IsNonDeterministic(EventKind kind) {
  return kind == EventKind::kTransientNd || kind == EventKind::kFixedNd ||
         kind == EventKind::kReceive;
}

bool IsTransientNonDeterministic(EventKind kind) {
  return kind == EventKind::kTransientNd || kind == EventKind::kReceive;
}

}  // namespace ftx_sm
