// Event taxonomy from the paper's computation model (§2.2, §2.5).
//
// A process is a state machine; each state transition it executes is an
// event. Events are classified along two axes the theory cares about:
//
//  * Determinism: deterministic, transient non-deterministic (may have a
//    different result when reexecuted after a failure: scheduling, signals,
//    message ordering, gettimeofday), or fixed non-deterministic (formally
//    non-deterministic but the recovery system cannot rely on a different
//    result after a failure: user input, disk-fullness-dependent syscalls).
//  * Role: visible (affects what the user sees), send/receive (cross-process
//    edges for happens-before), commit (preserves state for recovery), crash
//    (enters a state from which execution cannot continue).

#ifndef FTX_SRC_STATEMACHINE_EVENT_H_
#define FTX_SRC_STATEMACHINE_EVENT_H_

#include <cstdint>
#include <string_view>

namespace ftx_sm {

using ProcessId = int32_t;
inline constexpr ProcessId kInvalidProcess = -1;

enum class EventKind : uint8_t {
  kInternal = 0,     // deterministic state change
  kTransientNd,      // non-deterministic; may differ on reexecution
  kFixedNd,          // non-deterministic; assumed to repeat after a failure
  kVisible,          // output the user can observe
  kSend,             // message send to another process (deterministic)
  kReceive,          // message receive (non-deterministic; transient unless
                     //   the multi-process algorithm reclassifies it fixed)
  kCommit,           // preserves the process state for recovery
  kCrash,            // terminal transition of a propagation failure
};

// Returns a stable printable name ("internal", "transient_nd", ...).
std::string_view EventKindName(EventKind kind);

// True for the kinds the Save-work invariant treats as non-deterministic:
// kTransientNd, kFixedNd, and kReceive.
bool IsNonDeterministic(EventKind kind);

// True for kinds that *can* have different results on reexecution, i.e. the
// kinds the Lose-work dangerous-paths algorithm treats as escape hatches:
// kTransientNd and (by default classification) kReceive.
bool IsTransientNonDeterministic(EventKind kind);

}  // namespace ftx_sm

#endif  // FTX_SRC_STATEMACHINE_EVENT_H_
