#include "src/statemachine/graph.h"

#include "src/common/check.h"

namespace ftx_sm {

StateId StateMachineGraph::AddState() {
  out_edges_.emplace_back();
  return num_states_++;
}

void StateMachineGraph::EnsureStates(int32_t count) {
  while (num_states_ < count) {
    AddState();
  }
}

EdgeId StateMachineGraph::AddEdge(StateId from, StateId to, EventKind kind, std::string label) {
  FTX_CHECK(from >= 0 && from < num_states_);
  FTX_CHECK(to >= 0 && to < num_states_);
  Edge e;
  e.id = static_cast<EdgeId>(edges_.size());
  e.from = from;
  e.to = to;
  e.kind = kind;
  e.label = std::move(label);
  out_edges_[static_cast<size_t>(from)].push_back(e.id);
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

const Edge& StateMachineGraph::edge(EdgeId id) const {
  FTX_CHECK(id >= 0 && static_cast<size_t>(id) < edges_.size());
  return edges_[static_cast<size_t>(id)];
}

const std::vector<EdgeId>& StateMachineGraph::OutEdges(StateId state) const {
  FTX_CHECK(state >= 0 && state < num_states_);
  return out_edges_[static_cast<size_t>(state)];
}

bool StateMachineGraph::ValidateDeterminismLabels(std::string* diagnostic) const {
  for (StateId s = 0; s < num_states_; ++s) {
    const auto& out = out_edges_[static_cast<size_t>(s)];
    // Crash edges are exogenous (the failure, not a choice the program
    // makes), so they do not count toward the branching degree.
    size_t program_edges = 0;
    for (EdgeId id : out) {
      if (edges_[static_cast<size_t>(id)].kind != EventKind::kCrash) {
        ++program_edges;
      }
    }
    if (program_edges <= 1) {
      continue;
    }
    for (EdgeId id : out) {
      const Edge& e = edges_[static_cast<size_t>(id)];
      if (!IsNonDeterministic(e.kind) && e.kind != EventKind::kCrash) {
        if (diagnostic != nullptr) {
          *diagnostic = "state " + std::to_string(s) + " has multiple successors but edge " +
                        std::to_string(id) + " is labelled " + std::string(EventKindName(e.kind));
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace ftx_sm
