// Explicit state-machine graphs for the dangerous-paths analysis (§2.5).
//
// States are integer ids; transitions are directed edges labelled with an
// EventKind. A crash event is an edge of kind kCrash: its end state is one
// from which the process cannot continue. The Lose-work analysis colors the
// *edges* that lie on dangerous paths.

#ifndef FTX_SRC_STATEMACHINE_GRAPH_H_
#define FTX_SRC_STATEMACHINE_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/statemachine/event.h"

namespace ftx_sm {

using StateId = int32_t;
using EdgeId = int32_t;

struct Edge {
  EdgeId id = -1;
  StateId from = -1;
  StateId to = -1;
  EventKind kind = EventKind::kInternal;
  std::string label;
};

class StateMachineGraph {
 public:
  StateMachineGraph() = default;

  // Adds a state and returns its id (dense, starting at 0).
  StateId AddState();

  // Adds states until at least `count` exist.
  void EnsureStates(int32_t count);

  // Adds a transition; crash events use kind kCrash.
  EdgeId AddEdge(StateId from, StateId to, EventKind kind, std::string label = {});

  int32_t num_states() const { return num_states_; }
  int32_t num_edges() const { return static_cast<int32_t>(edges_.size()); }

  const Edge& edge(EdgeId id) const;
  const std::vector<Edge>& edges() const { return edges_; }

  // Ids of edges leaving `state`, in insertion order.
  const std::vector<EdgeId>& OutEdges(StateId state) const;

  // A state with multiple outgoing edges is a non-deterministic choice point
  // in the machine; each of those edges should be an ND kind. Returns false
  // (with a diagnostic) if the labelling is inconsistent, e.g. two outgoing
  // edges of which one is marked deterministic.
  bool ValidateDeterminismLabels(std::string* diagnostic) const;

 private:
  int32_t num_states_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
};

}  // namespace ftx_sm

#endif  // FTX_SRC_STATEMACHINE_GRAPH_H_
