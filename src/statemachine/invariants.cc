#include "src/statemachine/invariants.h"

#include "src/common/check.h"

namespace ftx_sm {

std::string SaveWorkViolation::ToString(const Trace& trace) const {
  const TraceEvent& nd = trace.event(nd_event);
  const TraceEvent& down = trace.event(downstream);
  std::string out = "uncovered ";
  out += EventKindName(nd.kind);
  out += " p" + std::to_string(nd.process) + "#" + std::to_string(nd.index);
  out += visible_rule ? " causally precedes visible " : " causally precedes commit ";
  out += "p" + std::to_string(down.process) + "#" + std::to_string(down.index);
  return out;
}

int SaveWorkReport::CountVisibleRule() const {
  int n = 0;
  for (const auto& v : violations) {
    if (v.visible_rule) {
      ++n;
    }
  }
  return n;
}

int SaveWorkReport::CountOrphanRule() const {
  int n = 0;
  for (const auto& v : violations) {
    if (!v.visible_rule) {
      ++n;
    }
  }
  return n;
}

SaveWorkReport CheckSaveWork(const Trace& trace) {
  SaveWorkReport report;

  // Collect downstream candidates: all visible and commit events.
  std::vector<EventRef> downstream;
  for (ProcessId p = 0; p < trace.num_processes(); ++p) {
    for (const TraceEvent& ev : trace.ProcessEvents(p)) {
      if (ev.kind == EventKind::kVisible || ev.kind == EventKind::kCommit) {
        downstream.push_back(EventRef{ev.process, ev.index});
      }
    }
  }

  for (ProcessId p = 0; p < trace.num_processes(); ++p) {
    for (const TraceEvent& ev : trace.ProcessEvents(p)) {
      if (!IsNonDeterministic(ev.kind) || ev.logged) {
        continue;
      }
      EventRef nd{ev.process, ev.index};
      // The covering commit must be on the same process at a later index.
      // Because all events of one process are totally ordered by
      // happens-before, the *first* such commit is the strongest candidate:
      // if any later commit covers a downstream event, the first one does
      // too.
      std::optional<EventRef> cover = trace.FirstCommitAfter(p, ev.index);
      for (const EventRef& v : downstream) {
        if (!trace.CausallyPrecedes(nd, v)) {
          continue;
        }
        bool covered = cover.has_value() && trace.HappensBeforeOrEqual(*cover, v);
        if (!covered && cover.has_value()) {
          // "happens-before (or atomic with)": commits of one coordinated
          // 2PC round are atomic with each other, and rounds are globally
          // serialized by the recovery system (each round completes before
          // the next begins), so a commit in round g really precedes every
          // event of any round g' > g even where the happens-before
          // approximation cannot see it.
          const TraceEvent& cover_event = trace.event(*cover);
          const TraceEvent& v_event = trace.event(v);
          covered = cover_event.atomic_group >= 0 && v_event.atomic_group >= 0 &&
                    cover_event.atomic_group <= v_event.atomic_group;
        }
        if (!covered) {
          report.violations.push_back(SaveWorkViolation{
              nd, v, trace.event(v).kind == EventKind::kVisible});
        }
      }
    }
  }
  return report;
}

namespace {

// Finds the (unique, if any) fault-activation event and crash event of p.
void FindActivationAndCrash(const Trace& trace, ProcessId p, std::optional<EventRef>* activation,
                            std::optional<EventRef>* crash) {
  for (const TraceEvent& ev : trace.ProcessEvents(p)) {
    if (ev.fault_activation && !activation->has_value()) {
      *activation = EventRef{ev.process, ev.index};
    }
    if (ev.kind == EventKind::kCrash) {
      *crash = EventRef{ev.process, ev.index};
      break;  // a crash is terminal
    }
  }
}

LoseWorkResult CheckWindow(const Trace& trace, ProcessId p, int64_t window_start) {
  LoseWorkResult result;
  std::optional<EventRef> activation;
  std::optional<EventRef> crash;
  FindActivationAndCrash(trace, p, &activation, &crash);
  result.activation = activation;
  result.crash = crash;
  if (!activation.has_value() || !crash.has_value()) {
    return result;  // not applicable
  }
  result.applicable = true;
  result.dangerous_path_start = window_start;

  if (window_start < 0) {
    // Dangerous path reaches the initial state, which is always committed
    // (the paper's Bohrbug case): Lose-work is inherently violated.
    result.violated = true;
    return result;
  }

  std::optional<EventRef> commit = trace.FirstCommitAfter(p, window_start);
  if (commit.has_value() && commit->index < crash->index) {
    result.violated = true;
    result.violating_commit = commit;
  }
  return result;
}

}  // namespace

LoseWorkResult CheckLoseWorkOperational(const Trace& trace, ProcessId p) {
  std::optional<EventRef> activation;
  std::optional<EventRef> crash;
  FindActivationAndCrash(trace, p, &activation, &crash);
  if (!activation.has_value() || !crash.has_value()) {
    LoseWorkResult result;
    result.activation = activation;
    result.crash = crash;
    return result;
  }
  return CheckWindow(trace, p, activation->index);
}

LoseWorkResult CheckLoseWorkFull(const Trace& trace, ProcessId p) {
  std::optional<EventRef> activation;
  std::optional<EventRef> crash;
  FindActivationAndCrash(trace, p, &activation, &crash);
  if (!activation.has_value() || !crash.has_value()) {
    LoseWorkResult result;
    result.activation = activation;
    result.crash = crash;
    return result;
  }
  // Walk back from the activation to the last transient, unlogged
  // non-deterministic event; the dangerous path begins there. A logged ND
  // event is deterministic on replay and cannot divert execution off the
  // path, so it does not stop the walk.
  const auto& events = trace.ProcessEvents(p);
  int64_t start = -1;
  for (int64_t i = activation->index; i >= 0; --i) {
    const TraceEvent& ev = events[static_cast<size_t>(i)];
    if (IsTransientNonDeterministic(ev.kind) && !ev.logged) {
      start = i;
      break;
    }
  }
  return CheckWindow(trace, p, start);
}

}  // namespace ftx_sm
