// Trace-level checkers for the Save-work and Lose-work invariants.
//
// These are the oracles the rest of the system is validated against. Given a
// recorded execution, CheckSaveWork reports every violation of the Save-work
// Theorem (§2.3): an executed, unlogged non-deterministic event that causally
// precedes a visible or commit event must be covered by a commit of its own
// process that happens-before (or is atomic with) that downstream event.
//
// CheckLoseWorkOperational implements the operational criterion of the
// fault-injection study (§4.1): a run violates Lose-work if its process
// commits between fault activation and the crash (such a commit necessarily
// lies on the dangerous path). CheckLoseWorkFull additionally extends the
// dangerous path back to the last *transient* unlogged non-deterministic
// event before activation, per the coloring algorithm — covering Bohrbugs,
// whose dangerous path reaches the (always committed) initial state.

#ifndef FTX_SRC_STATEMACHINE_INVARIANTS_H_
#define FTX_SRC_STATEMACHINE_INVARIANTS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/statemachine/trace.h"

namespace ftx_sm {

struct SaveWorkViolation {
  EventRef nd_event;    // the uncovered non-deterministic event
  EventRef downstream;  // the visible or commit event it causally precedes
  // True if downstream is visible (Save-work-visible rule), false if it is a
  // commit (Save-work-orphan rule).
  bool visible_rule = true;

  std::string ToString(const Trace& trace) const;
};

struct SaveWorkReport {
  std::vector<SaveWorkViolation> violations;

  bool ok() const { return violations.empty(); }
  int CountVisibleRule() const;
  int CountOrphanRule() const;
};

// Exhaustive check; cost is O(ND-events × downstream-events × processes), so
// intended for test-sized traces (the protocols are property-tested against
// it on randomized computations).
SaveWorkReport CheckSaveWork(const Trace& trace);

struct LoseWorkResult {
  bool applicable = false;  // a fault activation and crash were both found
  bool violated = false;
  std::optional<EventRef> activation;
  std::optional<EventRef> crash;
  std::optional<EventRef> violating_commit;
  // Start of the dangerous path used by the check (activation for the
  // operational form; last transient ND before activation for the full
  // form; index -1 when the path extends to the initial state: a Bohrbug).
  int64_t dangerous_path_start = -1;
};

// Did process p commit strictly between fault activation and its crash?
LoseWorkResult CheckLoseWorkOperational(const Trace& trace, ProcessId p);

// Did process p commit anywhere on the dangerous path, which extends from
// the last transient unlogged ND event before activation to the crash? For
// a Bohrbug (no such ND event) the initial state counts as committed and the
// result is always a violation.
LoseWorkResult CheckLoseWorkFull(const Trace& trace, ProcessId p);

}  // namespace ftx_sm

#endif  // FTX_SRC_STATEMACHINE_INVARIANTS_H_
