#include "src/statemachine/optimal_commits.h"

#include <algorithm>
#include <set>

#include "src/common/check.h"
#include "src/statemachine/invariants.h"

namespace ftx_sm {
namespace {

// A constraint on process p: some commit must sit in a gap g with
// lo <= g <= hi ("commit after event g").
struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;
};

// The gap window that lets a commit of process p cover downstream event v
// for an ND event at index `nd_index`: [nd_index, (#p-events in v's causal
// past) - 2]. See the header for the derivation.
Interval WindowFor(ProcessId p, int64_t nd_index, const VectorClock& v_clock) {
  Interval interval;
  interval.lo = nd_index;
  interval.hi = v_clock.Get(p) - 2;
  return interval;
}

// Minimal stabbing: greedy by earliest right endpoint (optimal for
// intervals on a line).
std::vector<int64_t> Stab(std::vector<Interval> intervals) {
  std::vector<int64_t> points;
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.hi < b.hi; });
  int64_t last = INT64_MIN;
  for (const Interval& interval : intervals) {
    FTX_CHECK_LE(interval.lo, interval.hi);
    if (last < interval.lo) {
      last = interval.hi;
      points.push_back(last);
    }
  }
  return points;
}

// All unlogged ND events per process, as (process, index) pairs.
std::vector<EventRef> NdEvents(const Trace& raw) {
  std::vector<EventRef> events;
  for (ProcessId p = 0; p < raw.num_processes(); ++p) {
    for (const TraceEvent& ev : raw.ProcessEvents(p)) {
      if (IsNonDeterministic(ev.kind) && !ev.logged) {
        events.push_back(EventRef{p, ev.index});
      }
    }
  }
  return events;
}

}  // namespace

bool CommitPlacement::Contains(ProcessId p, int64_t gap) const {
  if (p < 0 || static_cast<size_t>(p) >= commit_after.size()) {
    return false;
  }
  const auto& gaps = commit_after[static_cast<size_t>(p)];
  return std::binary_search(gaps.begin(), gaps.end(), gap);
}

Trace ApplyPlacement(const Trace& raw, const CommitPlacement& placement) {
  const int n = raw.num_processes();
  Trace result(n);
  std::vector<int64_t> next(static_cast<size_t>(n), 0);
  std::set<int64_t> sends_done;

  // Emit events in a valid global order: repeatedly advance any process
  // whose next event is ready (a receive needs its send already emitted).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (ProcessId p = 0; p < n; ++p) {
      while (next[static_cast<size_t>(p)] < raw.NumEvents(p)) {
        const TraceEvent& ev =
            raw.ProcessEvents(p)[static_cast<size_t>(next[static_cast<size_t>(p)])];
        if (ev.kind == EventKind::kReceive && sends_done.count(ev.message_id) == 0) {
          break;  // wait for the sender
        }
        result.Append(p, ev.kind, ev.message_id, ev.logged, ev.label);
        if (ev.kind == EventKind::kSend) {
          sends_done.insert(ev.message_id);
        }
        if (placement.Contains(p, ev.index)) {
          result.Append(p, EventKind::kCommit);
        }
        ++next[static_cast<size_t>(p)];
        progressed = true;
      }
    }
  }
  for (ProcessId p = 0; p < n; ++p) {
    FTX_CHECK_MSG(next[static_cast<size_t>(p)] == raw.NumEvents(p),
                  "ApplyPlacement: raw trace has an unsatisfiable receive");
  }
  return result;
}

CommitPlacement ComputeOfflineCommits(const Trace& raw) {
  const int n = raw.num_processes();
  CommitPlacement placement;
  placement.commit_after.resize(static_cast<size_t>(n));

  const std::vector<EventRef> nd_events = NdEvents(raw);

  // Static constraints: every ND event vs every downstream VISIBLE.
  std::vector<std::vector<Interval>> visible_intervals(static_cast<size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    for (const TraceEvent& ev : raw.ProcessEvents(p)) {
      if (ev.kind != EventKind::kVisible) {
        continue;
      }
      EventRef v{p, ev.index};
      const VectorClock& v_clock = raw.ClockOf(v);
      for (const EventRef& nd : nd_events) {
        if (!raw.CausallyPrecedes(nd, v)) {
          continue;
        }
        visible_intervals[static_cast<size_t>(nd.process)].push_back(
            WindowFor(nd.process, nd.index, v_clock));
      }
    }
  }

  // Iterate: stab all current constraints, then add the orphan-rule
  // constraints the placed commits induce; stop when the applied placement
  // satisfies the full checker.
  for (int iteration = 1; iteration <= 50; ++iteration) {
    placement.fixpoint_iterations = iteration;

    std::vector<std::vector<Interval>> intervals = visible_intervals;
    // Orphan-rule constraints from currently placed commits: an ND event on
    // q that causally precedes a commit placed after (p, g) needs a commit
    // of q inside the commit's causal past.
    for (ProcessId p = 0; p < n; ++p) {
      for (int64_t gap : placement.commit_after[static_cast<size_t>(p)]) {
        const VectorClock& commit_clock = raw.ClockOf(EventRef{p, gap});
        for (const EventRef& nd : nd_events) {
          if (nd.process == p) {
            continue;  // the placed commit covers its own process's past
          }
          // nd hb commit  <=>  the commit's past contains nd.
          if (commit_clock.Get(nd.process) < nd.index + 1) {
            continue;
          }
          Interval window = WindowFor(nd.process, nd.index, commit_clock);
          // The commit's own past ends one event earlier than a visible's
          // would (the commit sits after (p, gap), not at a p event), but
          // WindowFor already counts only RAW events, so it applies as-is.
          intervals[static_cast<size_t>(nd.process)].push_back(window);
        }
      }
    }

    int64_t total = 0;
    for (ProcessId p = 0; p < n; ++p) {
      placement.commit_after[static_cast<size_t>(p)] =
          Stab(std::move(intervals[static_cast<size_t>(p)]));
      total += static_cast<int64_t>(placement.commit_after[static_cast<size_t>(p)].size());
    }
    placement.total_commits = total;

    if (CheckSaveWork(ApplyPlacement(raw, placement)).ok()) {
      break;
    }
  }
  FTX_CHECK_MSG(CheckSaveWork(ApplyPlacement(raw, placement)).ok(),
                "offline placement failed to reach a Save-work fixpoint");

  // Irredundancy: drop any commit whose removal keeps Save-work intact.
  bool pruned_any = true;
  while (pruned_any) {
    pruned_any = false;
    for (ProcessId p = 0; p < n && !pruned_any; ++p) {
      auto& gaps = placement.commit_after[static_cast<size_t>(p)];
      for (size_t k = gaps.size(); k-- > 0;) {
        int64_t removed = gaps[k];
        gaps.erase(gaps.begin() + static_cast<int64_t>(k));
        if (CheckSaveWork(ApplyPlacement(raw, placement)).ok()) {
          ++placement.pruned;
          --placement.total_commits;
          pruned_any = true;
          break;
        }
        gaps.insert(gaps.begin() + static_cast<int64_t>(k), removed);
      }
    }
  }
  return placement;
}

}  // namespace ftx_sm
