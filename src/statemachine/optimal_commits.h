// Offline commit placement: how few commits would Save-work have needed?
//
// Every protocol in the Fig. 3 space decides commits ONLINE, with partial
// knowledge. Given a complete executed computation (with hindsight), the
// minimum number of commits that upholds Save-work is a lower bound against
// which the protocols can be judged — the quantitative floor of the protocol
// space.
//
// The placement works on the interval structure of the invariant: an
// unlogged ND event e on process p, with a downstream visible/commit v,
// constrains a commit of p into the gap range (e, last event of p inside
// v's causal past). Per process and per iteration this is classic minimal
// interval stabbing (greedy by earliest right endpoint, which is optimal).
// Placed commits are themselves downstream events (the Save-work-orphan
// rule), so placement iterates to a fixpoint and finishes with a pruning
// pass that removes any commit whose removal keeps Save-work intact,
// guaranteeing an irredundant (locally minimal) placement.

#ifndef FTX_SRC_STATEMACHINE_OPTIMAL_COMMITS_H_
#define FTX_SRC_STATEMACHINE_OPTIMAL_COMMITS_H_

#include <vector>

#include "src/statemachine/trace.h"

namespace ftx_sm {

struct CommitPlacement {
  // Per process: sorted gap positions; a value g means "commit immediately
  // after the process's g-th event of the RAW trace" (g = -1: before its
  // first event).
  std::vector<std::vector<int64_t>> commit_after;
  int64_t total_commits = 0;
  int fixpoint_iterations = 0;
  int pruned = 0;  // commits removed by the irredundancy pass

  bool Contains(ProcessId p, int64_t gap) const;
};

// Computes an irredundant Save-work-upholding placement for a raw
// computation (a trace that contains NO commit events). The result is
// greedy-minimal: per process and iteration the interval stabbing is
// optimal, and no single commit can be removed.
CommitPlacement ComputeOfflineCommits(const Trace& raw);

// Rebuilds the computation with the placement's commit events inserted (in
// a valid global order), for checking or comparison.
Trace ApplyPlacement(const Trace& raw, const CommitPlacement& placement);

}  // namespace ftx_sm

#endif  // FTX_SRC_STATEMACHINE_OPTIMAL_COMMITS_H_
