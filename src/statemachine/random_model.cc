#include "src/statemachine/random_model.h"

#include <deque>

#include "src/common/check.h"

namespace ftx_sm {

StateMachineGraph MakeRandomGraph(ftx::Rng* rng, const RandomGraphOptions& options) {
  FTX_CHECK_GE(options.num_states, 2);
  StateMachineGraph graph;
  graph.EnsureStates(options.num_states);

  // Wire each non-final state to later states (or arbitrary states when
  // cyclic graphs are requested). A choice point gets 2-3 ND successors; a
  // plain state gets a single deterministic successor.
  for (StateId s = 0; s + 1 < options.num_states; ++s) {
    auto pick_target = [&]() -> StateId {
      if (options.acyclic) {
        return static_cast<StateId>(
            rng->NextInRange(s + 1, options.num_states - 1));
      }
      // Allow back edges but never self loops of deterministic events (a
      // deterministic self loop would be an infinite path with no escape).
      StateId t = static_cast<StateId>(rng->NextBounded(static_cast<uint64_t>(options.num_states)));
      return t == s ? static_cast<StateId>((s + 1) % options.num_states) : t;
    };

    if (rng->NextBernoulli(options.branch_probability)) {
      int fanout = static_cast<int>(rng->NextInRange(2, 3));
      for (int i = 0; i < fanout; ++i) {
        EventKind kind = rng->NextBernoulli(options.fixed_nd_fraction) ? EventKind::kFixedNd
                                                                       : EventKind::kTransientNd;
        graph.AddEdge(s, pick_target(), kind);
      }
    } else {
      graph.AddEdge(s, pick_target(), EventKind::kInternal);
    }

    if (rng->NextBernoulli(options.crash_probability)) {
      // Crash edges lead to a dedicated dead state appended on demand.
      StateId dead = graph.AddState();
      graph.AddEdge(s, dead, EventKind::kCrash, "crash");
    }
  }

  return graph;
}

std::vector<ScriptedEvent> MakeRandomScript(ftx::Rng* rng, const RandomTraceOptions& options) {
  FTX_CHECK_GE(options.num_processes, 1);
  std::vector<ScriptedEvent> script;
  // Pending (undelivered) messages per destination process.
  std::vector<std::deque<int64_t>> pending(static_cast<size_t>(options.num_processes));
  int64_t next_message_id = 0;

  // Round-robin over processes with random per-step event choice; this
  // yields a valid execution order (a receive only fires once a message is
  // pending for that process).
  std::vector<int> remaining(static_cast<size_t>(options.num_processes),
                             options.events_per_process);
  int total_remaining = options.num_processes * options.events_per_process;
  while (total_remaining > 0) {
    auto p = static_cast<ProcessId>(rng->NextBounded(static_cast<uint64_t>(options.num_processes)));
    if (remaining[static_cast<size_t>(p)] == 0) {
      continue;
    }
    ScriptedEvent ev;
    ev.process = p;

    double roll = rng->NextDouble();
    if (!pending[static_cast<size_t>(p)].empty() && roll < 0.25) {
      ev.kind = EventKind::kReceive;
      ev.message_id = pending[static_cast<size_t>(p)].front();
      pending[static_cast<size_t>(p)].pop_front();
      ev.logged = rng->NextBernoulli(options.logged_fraction);
    } else if (roll < 0.25 + options.send_probability && options.num_processes > 1) {
      ev.kind = EventKind::kSend;
      ev.message_id = next_message_id++;
      ProcessId dst = p;
      while (dst == p) {
        dst = static_cast<ProcessId>(
            rng->NextBounded(static_cast<uint64_t>(options.num_processes)));
      }
      pending[static_cast<size_t>(dst)].push_back(ev.message_id);
    } else if (roll < 0.25 + options.send_probability + options.visible_probability) {
      ev.kind = EventKind::kVisible;
    } else if (rng->NextBernoulli(options.nd_probability)) {
      ev.kind = EventKind::kTransientNd;
      ev.logged = rng->NextBernoulli(options.logged_fraction);
    } else if (rng->NextBernoulli(options.fixed_nd_probability)) {
      ev.kind = EventKind::kFixedNd;
      ev.logged = rng->NextBernoulli(options.logged_fraction);
    } else {
      ev.kind = EventKind::kInternal;
    }

    script.push_back(ev);
    --remaining[static_cast<size_t>(p)];
    --total_remaining;
  }
  return script;
}

Trace MakeRandomComputation(ftx::Rng* rng, const RandomTraceOptions& options) {
  std::vector<ScriptedEvent> script = MakeRandomScript(rng, options);
  Trace trace(options.num_processes);
  for (const ScriptedEvent& ev : script) {
    trace.Append(ev.process, ev.kind, ev.message_id, ev.logged);
  }
  return trace;
}

}  // namespace ftx_sm
