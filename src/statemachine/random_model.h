// Random state machines and traces for property-based testing.
//
// The generators are deterministic functions of an Rng, so every property
// test failure is reproducible from its seed.

#ifndef FTX_SRC_STATEMACHINE_RANDOM_MODEL_H_
#define FTX_SRC_STATEMACHINE_RANDOM_MODEL_H_

#include <memory>

#include "src/common/rng.h"
#include "src/statemachine/graph.h"
#include "src/statemachine/trace.h"

namespace ftx_sm {

struct RandomGraphOptions {
  int32_t num_states = 32;
  // Probability a state is a non-deterministic choice point (2-3 successors).
  double branch_probability = 0.3;
  // Among ND edges, probability an edge is fixed rather than transient.
  double fixed_nd_fraction = 0.3;
  // Probability a state grows an outgoing crash edge.
  double crash_probability = 0.1;
  // If true the graph is layered (acyclic); otherwise back edges may appear.
  bool acyclic = true;
};

// Generates a connected state machine rooted at state 0 whose determinism
// labels are valid (ValidateDeterminismLabels holds).
StateMachineGraph MakeRandomGraph(ftx::Rng* rng, const RandomGraphOptions& options);

struct RandomTraceOptions {
  int num_processes = 3;
  int events_per_process = 40;
  double nd_probability = 0.25;       // transient ND events
  double fixed_nd_probability = 0.1;  // fixed ND events (user input etc.)
  double send_probability = 0.2;
  double visible_probability = 0.15;
  double logged_fraction = 0.0;  // fraction of ND events recorded in a log
};

// Generates a multi-process trace WITHOUT commit events: sends choose random
// peers and receives consume pending messages in order. Protocol property
// tests replay these raw computations through a protocol to decide where
// commits go, then run CheckSaveWork.
Trace MakeRandomComputation(ftx::Rng* rng, const RandomTraceOptions& options);

// A raw (protocol-free) event script: the same computation shape as above
// but represented as a schedulable list so a protocol can interleave commit
// decisions while the trace is rebuilt. Entry order is a valid execution
// order (receives appear after their sends).
struct ScriptedEvent {
  ProcessId process;
  EventKind kind;
  int64_t message_id = -1;  // send/receive pairing
  bool logged = false;
};

std::vector<ScriptedEvent> MakeRandomScript(ftx::Rng* rng, const RandomTraceOptions& options);

}  // namespace ftx_sm

#endif  // FTX_SRC_STATEMACHINE_RANDOM_MODEL_H_
