#include "src/statemachine/trace.h"

#include <algorithm>

#include "src/common/check.h"

namespace ftx_sm {

Trace::Trace(int num_processes, TraceOptions options) : options_(options) {
  FTX_CHECK_GT(num_processes, 0);
  per_process_.resize(static_cast<size_t>(num_processes));
  clocks_.resize(static_cast<size_t>(num_processes));
  commit_indices_.resize(static_cast<size_t>(num_processes));
  if (options_.record_clocks) {
    current_clock_.assign(static_cast<size_t>(num_processes),
                          VectorClock(static_cast<size_t>(num_processes)));
  }
}

int64_t Trace::NumEvents(ProcessId p) const {
  FTX_CHECK(p >= 0 && p < num_processes());
  return static_cast<int64_t>(per_process_[static_cast<size_t>(p)].size());
}

int64_t Trace::TotalEvents() const {
  int64_t total = 0;
  for (const auto& events : per_process_) {
    total += static_cast<int64_t>(events.size());
  }
  return total;
}

EventRef Trace::Append(ProcessId p, EventKind kind, int64_t message_id, bool logged,
                       std::string label, int64_t atomic_group) {
  FTX_CHECK(p >= 0 && p < num_processes());
  auto sp = static_cast<size_t>(p);

  TraceEvent ev;
  ev.process = p;
  ev.index = static_cast<int64_t>(per_process_[sp].size());
  ev.kind = kind;
  ev.message_id = message_id;
  ev.logged = logged;
  ev.atomic_group = atomic_group;
  ev.label = std::move(label);

  if (kind == EventKind::kReceive) {
    FTX_CHECK_MSG(message_id >= 0, "receive events require a message id");
    auto it = send_of_message_.find(message_id);
    FTX_CHECK_MSG(it != send_of_message_.end(), "receive of message %lld with no recorded send",
                  static_cast<long long>(message_id));
    if (options_.record_clocks) {
      current_clock_[sp].MergeFrom(ClockOf(it->second));
    }
  }
  if (options_.record_clocks) {
    current_clock_[sp].Tick(p);
  }

  if (kind == EventKind::kSend) {
    FTX_CHECK_MSG(message_id >= 0, "send events require a message id");
    FTX_CHECK_MSG(send_of_message_.find(message_id) == send_of_message_.end(),
                  "duplicate send of message %lld", static_cast<long long>(message_id));
  }
  if (kind == EventKind::kCommit) {
    commit_indices_[sp].push_back(ev.index);
  }

  EventRef ref{p, ev.index};
  per_process_[sp].push_back(std::move(ev));
  if (options_.record_clocks) {
    clocks_[sp].push_back(current_clock_[sp]);
  }
  if (kind == EventKind::kSend) {
    send_of_message_[message_id] = ref;
  }
  if (observer_) {
    observer_(ref, per_process_[sp].back(),
              options_.record_clocks ? clocks_[sp].back() : empty_clock_);
  }
  return ref;
}

void Trace::MarkFaultActivation(EventRef ref) {
  FTX_CHECK(ref.valid());
  auto sp = static_cast<size_t>(ref.process);
  FTX_CHECK_LT(static_cast<size_t>(ref.index), per_process_[sp].size());
  per_process_[sp][static_cast<size_t>(ref.index)].fault_activation = true;
}

const TraceEvent& Trace::event(EventRef ref) const {
  FTX_CHECK(ref.valid());
  auto sp = static_cast<size_t>(ref.process);
  FTX_CHECK_LT(static_cast<size_t>(ref.index), per_process_[sp].size());
  return per_process_[sp][static_cast<size_t>(ref.index)];
}

const VectorClock& Trace::ClockOf(EventRef ref) const {
  FTX_CHECK_MSG(options_.record_clocks, "ClockOf on a lean trace (record_clocks off)");
  FTX_CHECK(ref.valid());
  auto sp = static_cast<size_t>(ref.process);
  FTX_CHECK_LT(static_cast<size_t>(ref.index), clocks_[sp].size());
  return clocks_[sp][static_cast<size_t>(ref.index)];
}

bool Trace::EventHappensBefore(EventRef a, EventRef b) const {
  if (a == b) {
    return false;
  }
  // a hb b iff b's clock has already absorbed a: component a.process of
  // clock(b) counts at least a.index+1 events.
  return ClockOf(b).Get(a.process) >= a.index + 1;
}

bool Trace::HappensBeforeOrEqual(EventRef a, EventRef b) const {
  return a == b || EventHappensBefore(a, b);
}

std::optional<EventRef> Trace::FirstCommitAfter(ProcessId p, int64_t index) const {
  FTX_CHECK(p >= 0 && p < num_processes());
  const auto& commits = commit_indices_[static_cast<size_t>(p)];
  auto it = std::upper_bound(commits.begin(), commits.end(), index);
  if (it == commits.end()) {
    return std::nullopt;
  }
  return EventRef{p, *it};
}

std::optional<EventRef> Trace::LastCommitAtOrBefore(ProcessId p, int64_t index) const {
  FTX_CHECK(p >= 0 && p < num_processes());
  const auto& commits = commit_indices_[static_cast<size_t>(p)];
  auto it = std::upper_bound(commits.begin(), commits.end(), index);
  if (it == commits.begin()) {
    return std::nullopt;
  }
  return EventRef{p, *(it - 1)};
}

const std::vector<TraceEvent>& Trace::ProcessEvents(ProcessId p) const {
  FTX_CHECK(p >= 0 && p < num_processes());
  return per_process_[static_cast<size_t>(p)];
}

std::optional<EventRef> Trace::SendOfMessage(int64_t message_id) const {
  auto it = send_of_message_.find(message_id);
  if (it == send_of_message_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace ftx_sm
