// Executed-event traces with happens-before.
//
// A Trace records the events a computation actually executed, per process,
// with send/receive pairing. Vector clocks are maintained online so the
// invariant checkers can answer "does event a causally precede event b?"
// exactly as the paper defines it (happens-before used as the approximation
// of causality, §2.2).

#ifndef FTX_SRC_STATEMACHINE_TRACE_H_
#define FTX_SRC_STATEMACHINE_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/statemachine/event.h"
#include "src/statemachine/vector_clock.h"

namespace ftx_sm {

// Identifies one executed event: process p's index-th event (0-based).
struct EventRef {
  ProcessId process = kInvalidProcess;
  int64_t index = -1;

  bool valid() const { return process != kInvalidProcess && index >= 0; }
  bool operator==(const EventRef&) const = default;
  auto operator<=>(const EventRef&) const = default;
};

struct TraceEvent {
  ProcessId process = kInvalidProcess;
  int64_t index = -1;
  EventKind kind = EventKind::kInternal;
  // Pairs a receive with its send; -1 for non-message events.
  int64_t message_id = -1;
  // True when a non-deterministic event's result was captured in a recovery
  // log, rendering it deterministic for Save-work purposes (§2.4).
  bool logged = false;
  // Set by the fault-injection study when this event executed buggy code.
  bool fault_activation = false;
  // Commits performed as one coordinated (2PC) round share a group id and
  // are "atomic with" one another in the sense of the Save-work Theorem;
  // -1 = not part of any atomic group.
  int64_t atomic_group = -1;
  // Free-form tag for diagnostics ("keystroke", "frame", ...).
  std::string label;
};

struct TraceOptions {
  // Maintain per-event vector-clock snapshots (and the running clock per
  // process). Required by ClockOf/EventHappensBefore and the causal audit.
  // Fleet-scale runs turn this off: each snapshot is O(num_processes), so a
  // 10k-process trace would hold quadratic clock state. With clocks off the
  // replayable event log (kinds, message pairing, commit indices, labels)
  // is recorded exactly as before — commit replay and rollback accounting
  // are unaffected.
  bool record_clocks = true;
};

class Trace {
 public:
  explicit Trace(int num_processes, TraceOptions options = {});

  int num_processes() const { return static_cast<int>(per_process_.size()); }
  int64_t NumEvents(ProcessId p) const;
  int64_t TotalEvents() const;

  // Appends an event for process p and returns its reference. For kReceive,
  // message_id must name a previously appended kSend, whose clock is merged
  // (the happens-before edge).
  EventRef Append(ProcessId p, EventKind kind, int64_t message_id = -1, bool logged = false,
                  std::string label = {}, int64_t atomic_group = -1);

  // Observer invoked at the end of every Append with the new event's
  // reference, the recorded event, and the appending process's vector clock
  // as of that event. The live causal audit (src/obs/causal/) installs one to
  // mirror the trace into its ledger without a second event stream; null
  // (the default) costs nothing.
  using AppendObserver =
      std::function<void(EventRef, const TraceEvent&, const VectorClock&)>;
  void SetAppendObserver(AppendObserver observer) { observer_ = std::move(observer); }

  // Marks an already-recorded event as the activation of an injected fault.
  void MarkFaultActivation(EventRef ref);

  bool record_clocks() const { return options_.record_clocks; }

  const TraceEvent& event(EventRef ref) const;
  // Aborts when record_clocks is off (lean traces have no clock state).
  const VectorClock& ClockOf(EventRef ref) const;

  // Strict happens-before between two executed events.
  bool EventHappensBefore(EventRef a, EventRef b) const;

  // a happens-before b, or a == b.
  bool HappensBeforeOrEqual(EventRef a, EventRef b) const;

  // The paper's "causally precedes": happens-before used to convey causality.
  bool CausallyPrecedes(EventRef a, EventRef b) const { return EventHappensBefore(a, b); }

  // First commit of process p at an index strictly greater than `index`, if
  // any. Commits on a process are totally ordered, so this is the only
  // candidate the Save-work checker needs to examine (an earlier commit
  // happens-before every later event of the same process).
  std::optional<EventRef> FirstCommitAfter(ProcessId p, int64_t index) const;

  // Last commit of process p at an index <= `index` (the process's committed
  // state as of that point), if any.
  std::optional<EventRef> LastCommitAtOrBefore(ProcessId p, int64_t index) const;

  // All events of one process, in execution order.
  const std::vector<TraceEvent>& ProcessEvents(ProcessId p) const;

  // Where a message was sent from (valid after the send is recorded).
  std::optional<EventRef> SendOfMessage(int64_t message_id) const;

 private:
  TraceOptions options_;
  std::vector<std::vector<TraceEvent>> per_process_;
  std::vector<std::vector<VectorClock>> clocks_;     // snapshot per event (empty when lean)
  std::vector<VectorClock> current_clock_;           // running clock per process
  std::vector<std::vector<int64_t>> commit_indices_; // sorted commit positions
  std::map<int64_t, EventRef> send_of_message_;
  VectorClock empty_clock_;                          // observer arg in lean mode
  AppendObserver observer_;
};

}  // namespace ftx_sm

#endif  // FTX_SRC_STATEMACHINE_TRACE_H_
