#include "src/statemachine/trace_format.h"

#include <array>
#include <cstdio>

namespace ftx_sm {

std::string FormatTrace(const Trace& trace, const TraceFormatOptions& options) {
  std::string out;
  char line[256];
  int64_t rendered = 0;
  for (ProcessId p = 0; p < trace.num_processes(); ++p) {
    if (options.process.has_value() && *options.process != p) {
      continue;
    }
    for (const TraceEvent& ev : trace.ProcessEvents(p)) {
      if (!options.include_internal && ev.kind == EventKind::kInternal) {
        continue;
      }
      if (options.max_events > 0 && rendered >= options.max_events) {
        out += "  ... (truncated)\n";
        return out;
      }
      std::snprintf(line, sizeof(line), "p%d#%-5lld %-12s", p, static_cast<long long>(ev.index),
                    std::string(EventKindName(ev.kind)).c_str());
      out += line;
      if (ev.message_id >= 0) {
        std::snprintf(line, sizeof(line), " m=%-6lld", static_cast<long long>(ev.message_id));
        out += line;
      }
      if (ev.logged) {
        out += " [logged]";
      }
      if (ev.atomic_group > 0) {
        std::snprintf(line, sizeof(line), " [round %lld]",
                      static_cast<long long>(ev.atomic_group));
        out += line;
      }
      if (ev.fault_activation) {
        out += " [FAULT-ACTIVATION]";
      }
      if (options.include_clocks) {
        out += " vc=";
        out += trace.ClockOf(EventRef{p, ev.index}).ToString();
      }
      if (!ev.label.empty()) {
        out += "  \"";
        out += ev.label;
        out += '"';
      }
      out += '\n';
      ++rendered;
    }
  }
  return out;
}

std::string SummarizeTrace(const Trace& trace) {
  std::string out;
  char line[256];
  constexpr std::array<EventKind, 8> kKinds = {
      EventKind::kInternal, EventKind::kTransientNd, EventKind::kFixedNd, EventKind::kVisible,
      EventKind::kSend,     EventKind::kReceive,     EventKind::kCommit,  EventKind::kCrash,
  };
  for (ProcessId p = 0; p < trace.num_processes(); ++p) {
    std::array<int64_t, 8> counts{};
    int64_t logged = 0;
    for (const TraceEvent& ev : trace.ProcessEvents(p)) {
      for (size_t k = 0; k < kKinds.size(); ++k) {
        if (ev.kind == kKinds[k]) {
          ++counts[k];
        }
      }
      if (ev.logged) {
        ++logged;
      }
    }
    std::snprintf(line, sizeof(line),
                  "p%d: %lld events (internal %lld, transient %lld, fixed %lld, visible %lld, "
                  "send %lld, recv %lld, commit %lld, crash %lld; logged %lld)\n",
                  p, static_cast<long long>(trace.NumEvents(p)),
                  static_cast<long long>(counts[0]), static_cast<long long>(counts[1]),
                  static_cast<long long>(counts[2]), static_cast<long long>(counts[3]),
                  static_cast<long long>(counts[4]), static_cast<long long>(counts[5]),
                  static_cast<long long>(counts[6]), static_cast<long long>(counts[7]),
                  static_cast<long long>(logged));
    out += line;
  }
  return out;
}

}  // namespace ftx_sm
