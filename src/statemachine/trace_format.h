// Human-readable trace rendering, for diagnostics and the ftx_run tool.
//
// Renders an executed trace as one line per event:
//   p0#12  receive      m=7   [logged]  vc=[13,4]   "recv"
// with optional filtering by process and event kind.

#ifndef FTX_SRC_STATEMACHINE_TRACE_FORMAT_H_
#define FTX_SRC_STATEMACHINE_TRACE_FORMAT_H_

#include <optional>
#include <string>

#include "src/statemachine/trace.h"

namespace ftx_sm {

struct TraceFormatOptions {
  // Restrict to one process (nullopt = all).
  std::optional<ProcessId> process;
  // Include deterministic internal events (they usually dominate volume).
  bool include_internal = true;
  // Print each event's vector clock.
  bool include_clocks = false;
  // Cap on rendered events (0 = unlimited).
  int64_t max_events = 0;
};

// Renders events in per-process order (process 0's events, then 1's, ...).
std::string FormatTrace(const Trace& trace, const TraceFormatOptions& options = {});

// One-line summary: event totals by kind per process.
std::string SummarizeTrace(const Trace& trace);

}  // namespace ftx_sm

#endif  // FTX_SRC_STATEMACHINE_TRACE_FORMAT_H_
