#include "src/statemachine/vector_clock.h"

#include <algorithm>

#include "src/common/check.h"

namespace ftx_sm {

int64_t VectorClock::Get(ProcessId p) const {
  FTX_CHECK_GE(p, 0);
  if (static_cast<size_t>(p) >= counts_.size()) {
    return 0;
  }
  return counts_[static_cast<size_t>(p)];
}

void VectorClock::Set(ProcessId p, int64_t value) {
  FTX_CHECK_GE(p, 0);
  if (static_cast<size_t>(p) >= counts_.size()) {
    counts_.resize(static_cast<size_t>(p) + 1, 0);
  }
  counts_[static_cast<size_t>(p)] = value;
}

void VectorClock::Tick(ProcessId p) { Set(p, Get(p) + 1); }

void VectorClock::MergeFrom(const VectorClock& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] = std::max(counts_[i], other.counts_[i]);
  }
}

bool VectorClock::LessEq(const VectorClock& other) const {
  for (size_t i = 0; i < counts_.size(); ++i) {
    int64_t mine = counts_[i];
    int64_t theirs = i < other.counts_.size() ? other.counts_[i] : 0;
    if (mine > theirs) {
      return false;
    }
  }
  return true;
}

bool VectorClock::operator==(const VectorClock& other) const {
  size_t n = std::max(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < n; ++i) {
    int64_t mine = i < counts_.size() ? counts_[i] : 0;
    int64_t theirs = i < other.counts_.size() ? other.counts_[i] : 0;
    if (mine != theirs) {
      return false;
    }
  }
  return true;
}

std::string VectorClock::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += std::to_string(counts_[i]);
  }
  out += ']';
  return out;
}

bool HappensBefore(const VectorClock& a, const VectorClock& b) {
  return a.LessEq(b) && !(a == b);
}

bool Concurrent(const VectorClock& a, const VectorClock& b) {
  return !a.LessEq(b) && !b.LessEq(a);
}

}  // namespace ftx_sm
