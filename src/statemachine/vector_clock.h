// Vector clocks implementing Lamport's happens-before over executed traces.
//
// The paper uses happens-before as its approximation of causality ("causally
// precedes", §2.2). The Save-work checker asks "does ND event e causally
// precede visible/commit event v?", which a vector clock answers exactly for
// a recorded execution.

#ifndef FTX_SRC_STATEMACHINE_VECTOR_CLOCK_H_
#define FTX_SRC_STATEMACHINE_VECTOR_CLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/statemachine/event.h"

namespace ftx_sm {

// A vector of per-process event counts. Component p counts how many events
// of process p are in the causal past (inclusive of the event itself for its
// own process).
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(size_t num_processes) : counts_(num_processes, 0) {}

  size_t size() const { return counts_.size(); }
  int64_t Get(ProcessId p) const;
  void Set(ProcessId p, int64_t value);

  // Increments this process's own component (called when it executes an
  // event).
  void Tick(ProcessId p);

  // Component-wise maximum (called when receiving a message carrying the
  // sender's clock).
  void MergeFrom(const VectorClock& other);

  // True if every component of *this is <= the corresponding component of
  // other. Together with operator== this defines the happens-before partial
  // order on clocks.
  bool LessEq(const VectorClock& other) const;

  bool operator==(const VectorClock& other) const;

  std::string ToString() const;  // e.g. "[3,0,1]"

 private:
  std::vector<int64_t> counts_;
};

// a happens-before b (strictly).
bool HappensBefore(const VectorClock& a, const VectorClock& b);

// Neither a hb b nor b hb a (and a != b).
bool Concurrent(const VectorClock& a, const VectorClock& b);

}  // namespace ftx_sm

#endif  // FTX_SRC_STATEMACHINE_VECTOR_CLOCK_H_
