#include "src/storage/commit_pipeline.h"

#include <utility>

#include "src/common/check.h"

namespace ftx_store {

bool CommitPipeline::Stage(RedoRecord record) {
  staged_bytes_ += record.PayloadBytes() + 64;  // record header, as Append bills it
  staged_.push_back(std::move(record));
  return static_cast<int64_t>(staged_.size()) >= policy_.max_records ||
         staged_bytes_ >= policy_.max_bytes;
}

int64_t CommitPipeline::Flush() {
  if (staged_.empty()) {
    return 0;
  }
  FTX_CHECK(log_ != nullptr);
  int64_t appended = log_->AppendBatch(std::move(staged_));
  staged_.clear();
  staged_bytes_ = 0;
  return appended;
}

void CommitPipeline::Drop() {
  staged_.clear();
  staged_bytes_ = 0;
}

}  // namespace ftx_store
