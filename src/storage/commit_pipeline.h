// Group-commit staging pipeline for the DC-disk redo log.
//
// The paper's DC-disk pays two synchronous I/Os (seek + rotation each) per
// commit — the dominant cost at small record sizes. The pipeline amortizes
// that mechanical overhead: commits *stage* their redo records here, and a
// whole window of staged records is persisted by RedoLog::AppendBatch under
// a single pair of sync barriers. The Save-work invariant is untouched
// because staging is invisible to the outside world — a commit is only
// *reported* committed (trace event, message release, externalization)
// after its window's sync completes, and the runtime forces a flush before
// any nondeterminism-visible event escapes.
//
// The batching policy is opt-in (enabled = false leaves every commit a
// singleton window, byte-identical to the unbatched path). A window closes
// when it reaches max_records, when its payload crosses max_bytes, or when
// the caller forces a flush (ND-visible event, coordinated commit, clean
// shutdown).
//
// The pipeline owns only the storage-side state (the staged records and
// their payload accounting); per-record runtime bookkeeping — costs to
// charge, trace/audit entries to emit at flush — stays with the runtime,
// which keeps a parallel vector of staged metadata.

#ifndef FTX_SRC_STORAGE_COMMIT_PIPELINE_H_
#define FTX_SRC_STORAGE_COMMIT_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "src/storage/redo_log.h"

namespace ftx_store {

// Group-commit batching policy. Disabled by default: batching changes the
// sector/barrier write schedule (and therefore simulated commit latencies),
// so runs meant to reproduce the committed goldens must leave it off.
struct BatchPolicy {
  bool enabled = false;
  // Window closes when it holds this many records...
  int64_t max_records = 8;
  // ...or when its summed payload (PayloadBytes + header) crosses this.
  // The record that crosses the line still joins the window (flush happens
  // right after staging it), so a single oversized record never wedges.
  int64_t max_bytes = 1 << 20;
};

class CommitPipeline {
 public:
  CommitPipeline(RedoLog* log, BatchPolicy policy) : log_(log), policy_(policy) {}

  // Stages a record into the open window. Returns true when the policy
  // requires the window to flush now (max_records reached, or max_bytes
  // crossed — the overflow record is inside the window).
  bool Stage(RedoRecord record);

  // Persists the open window via RedoLog::AppendBatch — one sync window for
  // everything staged. Returns the summed payload bytes appended (what the
  // unbatched path's Append returns per record), or 0 when nothing staged.
  int64_t Flush();

  // Crash/kill path: forget the staged window. Staged records were never
  // persisted and never reported committed, so dropping them is exactly the
  // all-or-prefix torture semantics — they simply never happened.
  void Drop();

  bool empty() const { return staged_.empty(); }
  int64_t staged_records() const { return static_cast<int64_t>(staged_.size()); }
  int64_t staged_bytes() const { return staged_bytes_; }
  const BatchPolicy& policy() const { return policy_; }

 private:
  RedoLog* log_;
  BatchPolicy policy_;
  std::vector<RedoRecord> staged_;
  int64_t staged_bytes_ = 0;
};

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_COMMIT_PIPELINE_H_
