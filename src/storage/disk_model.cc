#include "src/storage/disk_model.h"

#include <cstdlib>

#include "src/common/check.h"

namespace ftx_store {

ftx::Duration DiskModel::Access(int64_t offset, int64_t bytes) {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_GE(bytes, 0);
  ftx::Duration latency;
  int64_t distance = std::llabs(offset - head_position_);
  if (distance > params_.sequential_window) {
    latency += params_.average_seek;
    latency += params_.half_rotation;
  } else if (distance > 0) {
    // Same-track neighborhood: rotational positioning only.
    latency += params_.half_rotation;
  }
  latency += ftx::Nanoseconds(params_.per_byte.nanos() * bytes);
  head_position_ = offset + bytes;
  ++total_ios_;
  total_bytes_ += bytes;
  return latency;
}

ftx::Duration DiskModel::Write(int64_t offset, int64_t bytes) { return Access(offset, bytes); }

ftx::Duration DiskModel::Read(int64_t offset, int64_t bytes) { return Access(offset, bytes); }

ftx::Duration DiskModel::Append(int64_t bytes) {
  // Appending at the head position: sequential, but a synchronous flush
  // still pays rotational latency for the platter to come around.
  ftx::Duration latency = params_.half_rotation;
  latency += ftx::Nanoseconds(params_.per_byte.nanos() * bytes);
  head_position_ += bytes;
  ++total_ios_;
  total_bytes_ += bytes;
  return latency;
}

}  // namespace ftx_store
