// Latency model of a rotating SCSI disk.
//
// DC-disk's overheads in Fig. 8 are governed by the cost of synchronous
// small writes to the redo log. The model charges average seek plus
// rotational delay for a random access, and per-byte transfer time;
// sequential appends within the same "locality window" skip the seek.
// Default parameters approximate the paper's IBM Ultrastar DCAS-34330W
// (ultra-wide SCSI, 5400 RPM class).

#ifndef FTX_SRC_STORAGE_DISK_MODEL_H_
#define FTX_SRC_STORAGE_DISK_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/sim_time.h"
#include "src/obs/metrics.h"
#include "src/storage/write_journal.h"

namespace ftx_store {

struct DiskParameters {
  ftx::Duration average_seek = ftx::Milliseconds(8);
  ftx::Duration half_rotation = ftx::Microseconds(5600);  // 5400 RPM → 11.1 ms/rev
  // Sustained media rate ~12 MB/s → ~83 ns/byte.
  ftx::Duration per_byte = ftx::Nanoseconds(83);
  // Appends within this many bytes of the previous end of a write are
  // treated as sequential (track buffer / log locality): no seek, just
  // rotation + transfer.
  int64_t sequential_window = 1 << 20;
};

class DiskModel {
 public:
  explicit DiskModel(DiskParameters params = {}) : params_(params) {}

  // Latency of a synchronous write of `bytes` at `offset`. Updates the head
  // position.
  ftx::Duration Write(int64_t offset, int64_t bytes);

  // Latency of a synchronous read.
  ftx::Duration Read(int64_t offset, int64_t bytes);

  // Latency of appending `bytes` at the current log end (sequential fast
  // path plus forced media flush — what a synchronous redo-log write costs).
  ftx::Duration Append(int64_t bytes);

  // Accounting hook for callers that compute latency analytically (the
  // StableStore policies) but still want I/O statistics tracked here.
  void NoteSyncWrite(int64_t bytes, int ios) {
    total_ios_ += ios;
    total_bytes_ += bytes;
  }

  int64_t head_position() const { return head_position_; }
  int64_t total_ios() const { return total_ios_; }
  int64_t total_bytes() const { return total_bytes_; }
  const DiskParameters& parameters() const { return params_; }

  // Opt-in write-op journal for this disk's platters: off by default (the
  // cost model alone needs no content), enabled by the crash-state
  // exploration engine so commits leave a sector-granular op trace. The
  // journal belongs to the disk because it describes *this* machine's
  // persistent state; producers (RedoLog) borrow it via journal().
  WriteJournal* EnableJournal() {
    if (journal_ == nullptr) {
      journal_ = std::make_unique<WriteJournal>();
    }
    return journal_.get();
  }
  WriteJournal* journal() const { return journal_.get(); }

  // Exposes I/O counters through a metrics registry under
  // "<prefix>disk.sync_writes" and "<prefix>disk.bytes_written" (prefix is
  // typically "p<pid>." since each machine owns one disk).
  void BindMetrics(ftx_obs::Registry* registry, const std::string& prefix) {
    registry->RegisterCounterProbe(prefix + "disk.sync_writes", [this]() { return total_ios_; });
    registry->RegisterCounterProbe(prefix + "disk.bytes_written",
                                   [this]() { return total_bytes_; });
  }

 private:
  ftx::Duration Access(int64_t offset, int64_t bytes);

  DiskParameters params_;
  int64_t head_position_ = 0;
  int64_t total_ios_ = 0;
  int64_t total_bytes_ = 0;
  std::unique_ptr<WriteJournal> journal_;
};

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_DISK_MODEL_H_
