#include "src/storage/log_image.h"

#include <cstring>

#include "src/common/check.h"
#include "src/common/crc32.h"
#include "src/obs/prof/prof.h"

namespace ftx_store {
namespace {

int64_t RoundUpToSector(int64_t bytes) {
  return (bytes + kSectorBytes - 1) / kSectorBytes * kSectorBytes;
}

}  // namespace

ftx::Bytes EncodeCommitSlot(const CommitSlot& slot) {
  ftx::Bytes body;
  ftx::AppendValue(&body, slot.sequence);
  ftx::AppendValue(&body, slot.log_start);
  ftx::AppendValue(&body, slot.log_end);
  ftx::AppendValue(&body, slot.start_sequence);

  ftx::Bytes sector;
  ftx::AppendValue(&sector, kCommitSlotMagic);
  ftx::AppendValue(&sector, ftx::Crc32(body.data(), body.size()));
  ftx::AppendRaw(&sector, body.data(), body.size());
  sector.resize(static_cast<size_t>(kSectorBytes), 0);
  return sector;
}

bool DecodeCommitSlot(const uint8_t* sector, size_t size, CommitSlot* slot) {
  if (size < static_cast<size_t>(kSectorBytes)) {
    return false;
  }
  ftx::Bytes buf(sector, sector + kSectorBytes);
  size_t cursor = 0;
  uint32_t magic = 0;
  uint32_t crc = 0;
  CommitSlot decoded;
  if (!ftx::ReadValue(buf, &cursor, &magic) || magic != kCommitSlotMagic ||
      !ftx::ReadValue(buf, &cursor, &crc)) {
    return false;
  }
  const size_t body_begin = cursor;
  if (!ftx::ReadValue(buf, &cursor, &decoded.sequence) ||
      !ftx::ReadValue(buf, &cursor, &decoded.log_start) ||
      !ftx::ReadValue(buf, &cursor, &decoded.log_end) ||
      !ftx::ReadValue(buf, &cursor, &decoded.start_sequence)) {
    return false;
  }
  if (ftx::Crc32(buf.data() + body_begin, cursor - body_begin) != crc) {
    return false;
  }
  *slot = decoded;
  return true;
}

// Record wire format (all fields little-endian host layout, see bytes.h):
//   u32 magic         "FTXR"
//   u32 header_crc    over [sequence .. pages_crc]
//   i64 sequence
//   i64 payload_len   bytes of pages_payload that follow the header
//   i64 metadata_len  bytes of metadata after the payload
//   i64 page_count
//   i64 page_bytes
//   u32 pages_crc
//   u32 metadata_crc
//   payload_len bytes of pages payload
//   metadata_len bytes of metadata
//   zero padding to the next sector boundary
inline constexpr int64_t kRecordHeaderBytes = 4 + 4 + 8 * 5 + 4 + 4;

ftx::Bytes EncodeRecord(const RedoRecord& record) {
  ftx::Bytes body;
  ftx::AppendValue(&body, record.sequence);
  ftx::AppendValue(&body, static_cast<int64_t>(record.pages_payload.size()));
  ftx::AppendValue(&body, static_cast<int64_t>(record.metadata.size()));
  ftx::AppendValue(&body, record.page_count);
  ftx::AppendValue(&body, record.page_bytes);
  ftx::AppendValue(&body, record.pages_crc);
  ftx::AppendValue(&body, ftx::Crc32(record.metadata.data(), record.metadata.size()));

  ftx::Bytes out;
  ftx::AppendValue(&out, kRecordMagic);
  ftx::AppendValue(&out, ftx::Crc32(body.data(), body.size()));
  ftx::AppendRaw(&out, body.data(), body.size());
  FTX_CHECK_EQ(static_cast<int64_t>(out.size()), kRecordHeaderBytes);
  ftx::AppendRaw(&out, record.pages_payload.data(), record.pages_payload.size());
  ftx::AppendRaw(&out, record.metadata.data(), record.metadata.size());
  out.resize(static_cast<size_t>(RoundUpToSector(static_cast<int64_t>(out.size()))), 0);
  return out;
}

DecodeStatus DecodeRecordSpan(const uint8_t* data, int64_t size, int64_t offset,
                              RedoRecord* record, int64_t* next_offset) {
  if (offset < 0 || offset > size) {
    return DecodeStatus::kTruncated;
  }
  const int64_t remaining = size - offset;
  if (remaining < kRecordHeaderBytes) {
    return DecodeStatus::kTruncated;
  }

  const uint8_t* cursor = data + offset;
  auto read = [&cursor](auto* value) {
    std::memcpy(value, cursor, sizeof(*value));
    cursor += sizeof(*value);
  };
  uint32_t magic = 0;
  uint32_t header_crc = 0;
  int64_t payload_len = 0;
  int64_t metadata_len = 0;
  uint32_t metadata_crc = 0;
  RedoRecord decoded;
  read(&magic);
  read(&header_crc);
  const uint8_t* body_begin = cursor;
  read(&decoded.sequence);
  read(&payload_len);
  read(&metadata_len);
  read(&decoded.page_count);
  read(&decoded.page_bytes);
  read(&decoded.pages_crc);
  read(&metadata_crc);
  const uint8_t* body_end = cursor;
  FTX_CHECK_EQ(cursor - (data + offset), kRecordHeaderBytes);

  // Framing before CRC: the length fields must describe bytes that actually
  // remain in the image. Until they do, nothing beyond the fixed-size header
  // is read — a tail truncated mid-record (even mid-header-claimed-payload)
  // is classified by arithmetic alone.
  if (payload_len < 0 || metadata_len < 0 ||
      payload_len > remaining - kRecordHeaderBytes ||
      metadata_len > remaining - kRecordHeaderBytes - payload_len) {
    return DecodeStatus::kTruncated;
  }

  if (magic != kRecordMagic) {
    return DecodeStatus::kCorrupt;
  }
  if (ftx::Crc32(body_begin, static_cast<size_t>(body_end - body_begin)) != header_crc) {
    return DecodeStatus::kCorrupt;
  }

  decoded.pages_payload.assign(cursor, cursor + payload_len);
  cursor += payload_len;
  decoded.metadata.assign(cursor, cursor + metadata_len);
  cursor += metadata_len;

  if (!decoded.ValidatePages() ||
      ftx::Crc32(decoded.metadata.data(), decoded.metadata.size()) != metadata_crc) {
    return DecodeStatus::kCorrupt;
  }

  *record = std::move(decoded);
  if (next_offset != nullptr) {
    *next_offset = offset + RoundUpToSector(cursor - (data + offset));
  }
  return DecodeStatus::kOk;
}

DecodeStatus DecodeRecord(const ftx::Bytes& image, int64_t offset, RedoRecord* record,
                          int64_t* next_offset) {
  return DecodeRecordSpan(image.data(), static_cast<int64_t>(image.size()), offset, record,
                          next_offset);
}

bool SelectCommitSlot(const ftx::Bytes& image, CommitSlot* out) {
  FTX_PROF_SCOPE("logimage.slot_select");
  // Pick the winning slot: the valid one with the highest sequence. A torn
  // or never-written slot simply fails validation and cedes to its sibling.
  CommitSlot best;
  bool have_slot = false;
  for (int i = 0; i < 2; ++i) {
    CommitSlot slot;
    const int64_t offset = i * kSectorBytes;
    if (static_cast<size_t>(offset + kSectorBytes) <= image.size() &&
        DecodeCommitSlot(image.data() + offset, static_cast<size_t>(kSectorBytes), &slot)) {
      if (!have_slot || slot.sequence > best.sequence) {
        best = slot;
        have_slot = true;
      }
    }
  }
  if (have_slot) {
    *out = best;
  }
  return have_slot;
}

SurvivorLog DecodeSurvivorImage(const ftx::Bytes& image) {
  FTX_PROF_SCOPE("logimage.decode");
  SurvivorLog out;

  CommitSlot best;
  const bool have_slot = SelectCommitSlot(image, &best);

  int64_t scan_from = kLogStartOffset;  // where the uncommitted tail starts
  if (!have_slot) {
    // Pristine disk (crash before commit 0's slot write): no committed
    // state, but the record area may still hold commit 0's record.
    out.decode_ok = true;
    out.diagnostic = "no valid commit slot";
  } else {
    out.last_sequence = best.sequence;
    out.start_sequence = best.start_sequence;
    out.decode_ok = true;
    int64_t offset = best.log_start;
    for (int64_t seq = best.start_sequence; seq <= best.sequence; ++seq) {
      RedoRecord record;
      if (offset >= best.log_end) {
        out.decode_ok = false;
        out.diagnostic = "committed range exhausted before sequence " + std::to_string(seq);
        break;
      }
      DecodeStatus status = DecodeRecord(image, offset, &record, &offset);
      if (status != DecodeStatus::kOk) {
        out.decode_ok = false;
        out.diagnostic = "committed record " + std::to_string(seq) +
                         (status == DecodeStatus::kTruncated ? " truncated" : " corrupt");
        break;
      }
      if (record.sequence != seq) {
        out.decode_ok = false;
        out.diagnostic = "committed record sequence mismatch: want " + std::to_string(seq) +
                         " got " + std::to_string(record.sequence);
        break;
      }
      out.records.push_back(std::move(record));
    }
    if (out.decode_ok && out.records.size() !=
            static_cast<size_t>(best.sequence - best.start_sequence + 1)) {
      out.decode_ok = false;
      out.diagnostic = "committed record count mismatch";
    }
    scan_from = best.log_end;
  }

  // Classify the tail: bytes past the committed range belong to an
  // in-flight window whose commit sector never landed (or a crash between
  // the window's two sync I/Os); recovery must and does ignore them. Walk
  // every consecutive intact record — the window was appended in sequence
  // order before its one sync, so intact survivors are always a prefix of
  // the window; the scan stops at the first torn/corrupt frame or sequence
  // gap (stale bytes from a superseded epoch).
  bool tail_bytes_present = false;
  for (size_t i = static_cast<size_t>(scan_from); i < image.size(); ++i) {
    if (image[i] != 0) {
      tail_bytes_present = true;
      break;
    }
  }
  if (tail_bytes_present) {
    out.tail_record_present = true;
    int64_t offset = scan_from;
    for (;;) {
      RedoRecord tail;
      int64_t next_offset = 0;
      DecodeStatus status = DecodeRecord(image, offset, &tail, &next_offset);
      if (out.tail_records.empty()) {
        out.tail_status = status;
      }
      if (status != DecodeStatus::kOk) {
        break;
      }
      if (!out.tail_records.empty() &&
          tail.sequence != out.tail_records.back().sequence + 1) {
        break;
      }
      if (out.tail_records.empty()) {
        out.tail_record = tail;
      }
      out.tail_records.push_back(std::move(tail));
      offset = next_offset;
    }
  }
  return out;
}

}  // namespace ftx_store
