// On-disk layout of the DC-disk redo log, and the survivor-state decoder.
//
// The paper's DC-disk commits with two synchronous I/Os: write the redo
// record, then write a commit sector that makes it atomic (§4.2). This
// header pins that design down to bytes so the crash-state exploration
// engine (src/torture/) can reconstruct the exact log a rebooted machine
// would read after dying at *any* sector boundary:
//
//   sector 0   commit slot A   (records with even sequence commit here)
//   sector 1   commit slot B   (odd sequences commit here)
//   sector 2+  record area: encoded redo records, each zero-padded to a
//              sector boundary, appended at increasing offsets
//
// A commit slot is one sector — one atomic disk write — holding a CRC'd
// {sequence, log_start, log_end, start_sequence} tuple. Alternating slots by
// sequence parity means committing record n never overwrites the slot that
// proves record n-1: if the slot write itself tears, the previous slot is
// intact and recovery lands on n-1. That is the mechanism behind the
// engine's Save-work invariant — every crash state recovers to the last
// fully-committed checkpoint or the one before it, never a blend.
//
// Record framing validates *lengths against remaining bytes first*, then
// header CRC, then payload CRC. A truncated or torn tail is therefore
// rejected by arithmetic before anything dereferences it — no over-read —
// and rejected records simply end the log at the last good record.

#ifndef FTX_SRC_STORAGE_LOG_IMAGE_H_
#define FTX_SRC_STORAGE_LOG_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/storage/redo_log.h"
#include "src/storage/write_journal.h"

namespace ftx_store {

// First byte offset of the record area (after the two commit slots).
inline constexpr int64_t kLogStartOffset = 2 * kSectorBytes;

inline constexpr uint32_t kCommitSlotMagic = 0x46545843;  // "FTXC"
inline constexpr uint32_t kRecordMagic = 0x46545852;      // "FTXR"

// The committed-state pointer, one per parity. `sequence` is the newest
// record this slot vouches for; [log_start, log_end) is the byte range of
// the record area holding records [start_sequence, sequence].
struct CommitSlot {
  int64_t sequence = -1;
  int64_t log_start = kLogStartOffset;
  int64_t log_end = kLogStartOffset;
  int64_t start_sequence = 0;
};

// Serializes a slot into exactly kSectorBytes (magic + CRC + fields,
// zero-padded).
ftx::Bytes EncodeCommitSlot(const CommitSlot& slot);

// Validates magic + CRC; returns false for garbage, torn, or all-zero
// sectors (the pristine-disk state).
bool DecodeCommitSlot(const uint8_t* sector, size_t size, CommitSlot* slot);

// Serializes a redo record (header with framing lengths + header CRC,
// pages payload, metadata), zero-padded to a whole number of sectors.
ftx::Bytes EncodeRecord(const RedoRecord& record);

enum class DecodeStatus {
  kOk,         // record decoded and fully validated
  kTruncated,  // framing claims more bytes than remain — clean tail end
  kCorrupt,    // framing fits but magic/CRC validation failed
};

// Decodes one record at `image[offset]`. On kOk fills `record` and
// `next_offset` (the sector-aligned start of the following record).
// Length fields are checked against the remaining bytes BEFORE any CRC is
// computed, so a mid-header truncation can never over-read.
DecodeStatus DecodeRecord(const ftx::Bytes& image, int64_t offset, RedoRecord* record,
                          int64_t* next_offset);

// Same decode over a raw span — lets callers frame a sub-range of a larger
// image (e.g. the uncommitted tail) without copying it out first.
DecodeStatus DecodeRecordSpan(const uint8_t* data, int64_t size, int64_t offset,
                              RedoRecord* record, int64_t* next_offset);

// The slot-selection rule recovery uses: the valid slot (either parity)
// with the highest sequence wins. Returns false when neither sector holds
// a valid slot (the pristine-disk state, or both torn).
bool SelectCommitSlot(const ftx::Bytes& image, CommitSlot* slot);

// What a rebooted machine finds on its platters.
struct SurvivorLog {
  // Records the winning commit slot vouches for, in sequence order; empty
  // with last_sequence == -1 when no valid slot exists (crash before the
  // first commit completed).
  std::vector<RedoRecord> records;
  int64_t last_sequence = -1;
  int64_t start_sequence = 0;
  bool decode_ok = false;   // committed range parsed and validated fully
  // Tail scan past log_end: records there were written but never committed
  // — under group commit, a whole in-flight window of them. kOk means the
  // first record landed intact (its commit sector did not); they are all
  // still correctly ignored, because only the slot makes records durable.
  bool tail_record_present = false;
  DecodeStatus tail_status = DecodeStatus::kTruncated;
  RedoRecord tail_record;  // first intact tail record, when tail_status == kOk
  // Every consecutively-intact, sequence-contiguous tail record in append
  // order. Because a window's records are written in sequence order before
  // the single sync, any crash leaves all-or-a-prefix of the window intact
  // — the torture engine asserts survivors match this shape (no holes).
  std::vector<RedoRecord> tail_records;
  std::string diagnostic;
};

// Reads the image the way DC-disk recovery would: pick the valid commit
// slot with the highest sequence, decode exactly the records it vouches
// for, and scan past log_end to classify the uncommitted tail (all
// consecutive intact records of the in-flight window).
SurvivorLog DecodeSurvivorImage(const ftx::Bytes& image);

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_LOG_IMAGE_H_
