#include "src/storage/redo_log.h"

#include <algorithm>

namespace ftx_store {

void RedoRecord::ReservePages(int64_t pages, size_t image_size) {
  if (pages <= 0) {
    return;
  }
  pages_payload.reserve(pages_payload.size() +
                        static_cast<size_t>(pages) * (2 * sizeof(int64_t) + image_size));
}

void RedoRecord::AppendPage(int64_t offset, const uint8_t* data, size_t size) {
  size_t run_begin = pages_payload.size();
  ftx::AppendValue(&pages_payload, offset);
  ftx::AppendValue(&pages_payload, static_cast<int64_t>(size));
  ftx::AppendRaw(&pages_payload, data, size);
  pages_crc = ftx::Crc32Extend(pages_crc, pages_payload.data() + run_begin,
                               pages_payload.size() - run_begin);
  ++page_count;
  page_bytes += static_cast<int64_t>(size);
}

int64_t RedoRecord::PayloadBytes() const {
  return static_cast<int64_t>(metadata.size()) + page_bytes +
         page_count * static_cast<int64_t>(sizeof(int64_t));
}

int64_t RedoLog::Append(RedoRecord record) {
  record.sequence = next_sequence_++;
  int64_t payload = record.PayloadBytes() + 64;  // record header
  bytes_written_ += payload;
  records_.push_back(std::move(record));
  return payload;
}

void RedoLog::TruncateThrough(int64_t sequence) {
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const RedoRecord& r) { return r.sequence <= sequence; }),
                 records_.end());
}

}  // namespace ftx_store
