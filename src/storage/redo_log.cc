#include "src/storage/redo_log.h"

#include <algorithm>

namespace ftx_store {

int64_t RedoRecord::PayloadBytes() const {
  int64_t total = static_cast<int64_t>(metadata.size());
  for (const auto& [offset, image] : pages) {
    (void)offset;
    total += static_cast<int64_t>(image.size()) + static_cast<int64_t>(sizeof(int64_t));
  }
  return total;
}

int64_t RedoLog::Append(RedoRecord record) {
  record.sequence = next_sequence_++;
  int64_t payload = record.PayloadBytes() + 64;  // record header
  bytes_written_ += payload;
  records_.push_back(std::move(record));
  return payload;
}

void RedoLog::TruncateThrough(int64_t sequence) {
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const RedoRecord& r) { return r.sequence <= sequence; }),
                 records_.end());
}

}  // namespace ftx_store
