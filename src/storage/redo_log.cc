#include "src/storage/redo_log.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/storage/log_image.h"
#include "src/storage/write_journal.h"

namespace ftx_store {

void RedoRecord::ReservePages(int64_t pages, size_t image_size) {
  if (pages <= 0) {
    return;
  }
  pages_payload.reserve(pages_payload.size() +
                        static_cast<size_t>(pages) * (2 * sizeof(int64_t) + image_size));
}

void RedoRecord::AppendPage(int64_t offset, const uint8_t* data, size_t size) {
  // One geometric reservation for the whole header+image run. Without this,
  // an unreserved record could reallocate up to three times inside a single
  // page append (offset, size, image) — and the image memcpy is exactly the
  // bytes a realloc would move again.
  ftx::EnsureAppendCapacity(&pages_payload, 2 * sizeof(int64_t) + size);
  size_t run_begin = pages_payload.size();
  ftx::AppendValue(&pages_payload, offset);
  ftx::AppendValue(&pages_payload, static_cast<int64_t>(size));
  ftx::AppendRaw(&pages_payload, data, size);
  pages_crc = ftx::Crc32Extend(pages_crc, pages_payload.data() + run_begin,
                               pages_payload.size() - run_begin);
  ++page_count;
  page_bytes += static_cast<int64_t>(size);
}

int64_t RedoRecord::PayloadBytes() const {
  return static_cast<int64_t>(metadata.size()) + page_bytes +
         page_count * static_cast<int64_t>(sizeof(int64_t));
}

void RedoLog::AttachJournal(WriteJournal* journal) {
  journal_ = journal;
  journal_tail_ = kLogStartOffset;
  journal_log_start_ = kLogStartOffset;
  journal_start_sequence_ = next_sequence_;
  // A fresh journal image starts a fresh parity cycle aligned with the
  // sequence counter, preserving the singleton-window identity
  // window_count_ == next_sequence_ that unbatched goldens depend on.
  window_count_ = next_sequence_;
  journal_offsets_.clear();
}

int64_t RedoLog::Append(RedoRecord record) {
  std::vector<RedoRecord> batch;
  batch.push_back(std::move(record));
  return AppendBatch(std::move(batch));
}

int64_t RedoLog::AppendBatch(std::vector<RedoRecord> batch) {
  FTX_CHECK(!batch.empty());
  int64_t payload_total = 0;
  for (RedoRecord& record : batch) {
    record.sequence = next_sequence_++;
    payload_total += record.PayloadBytes() + 64;  // record header
  }
  bytes_written_ += payload_total;
  const int64_t last_sequence = batch.back().sequence;

  if (journal_ != nullptr) {
    // The paper's two synchronous I/Os, amortized over the window, in
    // order: (1) every record body of the window, contiguously, then one
    // sync barrier; (2) the one-sector commit slot vouching for the whole
    // window, then one sync barrier. Slot parity alternates with the window
    // count, so this window never touches the sector that vouches for the
    // previous one — a crash mid-window leaves the old slot intact and the
    // new records unvouched (recoverable as all-or-prefix tail records).
    for (const RedoRecord& record : batch) {
      ftx::Bytes encoded = EncodeRecord(record);
      journal_offsets_.emplace_back(record.sequence, journal_tail_);
      journal_->Write(journal_tail_, encoded.data(), encoded.size(), record.sequence);
      journal_tail_ += static_cast<int64_t>(encoded.size());
    }
    journal_->Barrier(last_sequence);

    CommitSlot slot;
    slot.sequence = last_sequence;
    slot.log_start = journal_log_start_;
    slot.log_end = journal_tail_;
    slot.start_sequence = journal_start_sequence_;
    ftx::Bytes slot_sector = EncodeCommitSlot(slot);
    journal_->Write((window_count_ & 1) * kSectorBytes, slot_sector.data(), slot_sector.size(),
                    last_sequence);
    journal_->Barrier(last_sequence);
  }

  if (medium_ != nullptr) {
    // Real durability through the env seam: the encoded records are
    // buffered, then synced once for the window — the same append-then-sync
    // discipline the journal models, but against a backend's actual
    // StableMedium (a host file under env::threads). A crash between the
    // two genuinely loses the whole window; a crash mid-append loses a
    // suffix of it (append order = sequence order, so survivors are always
    // a prefix).
    for (const RedoRecord& record : batch) {
      ftx::Bytes encoded = EncodeRecord(record);
      medium_->Append(encoded.data(), encoded.size());
    }
    medium_->Sync();
  }

  ++window_count_;
  for (RedoRecord& record : batch) {
    records_.push_back(std::move(record));
  }
  return payload_total;
}

void RedoLog::AttachMedium(ftx::env::StableMedium* medium) { medium_ = medium; }

int64_t RedoLog::RestoreFromMedium(const ftx::env::StableMedium& medium) {
  ftx::Bytes durable;
  medium.ReadDurable(&durable);
  std::vector<RedoRecord> survivors;
  int64_t offset = 0;
  const auto size = static_cast<int64_t>(durable.size());
  while (offset < size) {
    RedoRecord record;
    int64_t next_offset = 0;
    if (DecodeRecordSpan(durable.data(), size, offset, &record, &next_offset) !=
        DecodeStatus::kOk) {
      break;  // torn tail: the in-flight record that never synced
    }
    survivors.push_back(std::move(record));
    offset = next_offset;
  }
  const auto count = static_cast<int64_t>(survivors.size());
  RestoreForRecovery(std::move(survivors));
  return count;
}

void RedoLog::TruncateThrough(int64_t sequence) {
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const RedoRecord& r) { return r.sequence <= sequence; }),
                 records_.end());

  if (journal_ != nullptr && sequence >= journal_start_sequence_ && next_sequence_ > 0) {
    // Retire the prefix by rewriting the current slot with a narrowed
    // [log_start, log_end) — one atomic sector write, same parity as the
    // newest committed record so the update supersedes in place. The retired
    // record bytes stay on the platters but the slot no longer vouches for
    // them. A crash before this write survives with the stale (wider) slot,
    // which still decodes the full record chain — recovery just replays more.
    journal_start_sequence_ = sequence + 1;
    while (!journal_offsets_.empty() && journal_offsets_.front().first <= sequence) {
      journal_offsets_.erase(journal_offsets_.begin());
    }
    journal_log_start_ =
        journal_offsets_.empty() ? journal_tail_ : journal_offsets_.front().second;

    const int64_t newest = next_sequence_ - 1;
    CommitSlot slot;
    slot.sequence = newest;
    slot.log_start = journal_log_start_;
    slot.log_end = journal_tail_;
    slot.start_sequence = std::min(journal_start_sequence_, newest + 1);
    ftx::Bytes slot_sector = EncodeCommitSlot(slot);
    // Same parity as the newest window's live slot ((window_count_ - 1) & 1
    // — equal to `newest & 1` while windows are singletons), so the update
    // supersedes in place rather than clobbering the alternate sector a
    // crash might still need.
    journal_->Write(((window_count_ - 1) & 1) * kSectorBytes, slot_sector.data(),
                    slot_sector.size(), newest);
    journal_->Barrier(newest);
  }
}

void RedoLog::RestoreForRecovery(std::vector<RedoRecord> records) {
  for (size_t i = 1; i < records.size(); ++i) {
    FTX_CHECK_EQ(records[i].sequence, records[i - 1].sequence + 1);
  }
  next_sequence_ = records.empty() ? 0 : records.back().sequence + 1;
  // Survivor chains carry no window framing; resume as if every survivor
  // was its own window (exact for unbatched runs, and for batched runs the
  // parity cycle merely restarts — recovery attaches a fresh journal).
  window_count_ = next_sequence_;
  records_ = std::move(records);
}

}  // namespace ftx_store
