// Redo log for DC-disk.
//
// DC-disk writes a redo record at each checkpoint: the dirty pages, plus an
// opaque metadata blob (register file and kernel-capture point). This class
// stores the record chain; recovery rebuilds a process's segment by
// replaying every record in order. I/O *latency* is charged separately by
// the DiskStore policy (see stable_store.h), which models the synchronous
// writes these appends imply.

#ifndef FTX_SRC_STORAGE_REDO_LOG_H_
#define FTX_SRC_STORAGE_REDO_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/obs/metrics.h"

namespace ftx_store {

struct RedoRecord {
  int64_t sequence = 0;
  // (segment offset, page image) pairs dirtied since the previous commit.
  std::vector<std::pair<int64_t, ftx::Bytes>> pages;
  // Opaque metadata blob (register file + kernel capture point).
  ftx::Bytes metadata;

  int64_t PayloadBytes() const;
};

class RedoLog {
 public:
  // Appends a record; returns its payload size in bytes (for I/O charging).
  int64_t Append(RedoRecord record);

  // Full record history (recovery replays every record in order).
  const std::vector<RedoRecord>& records() const { return records_; }
  const RedoRecord* Latest() const { return records_.empty() ? nullptr : &records_.back(); }

  // Truncation: drops records at or before `sequence`. The paper's DC-disk
  // skipped truncation; the library supports it so long runs stay bounded
  // once a full-state checkpoint record supersedes the prefix.
  void TruncateThrough(int64_t sequence);

  int64_t bytes_written() const { return bytes_written_; }
  int64_t next_sequence() const { return next_sequence_; }

  // Exposes log counters through a metrics registry under
  // "<prefix>redo.records" and "<prefix>redo.bytes_written" (prefix is
  // typically "p<pid>." since each process owns one log).
  void BindMetrics(ftx_obs::Registry* registry, const std::string& prefix) {
    registry->RegisterCounterProbe(prefix + "redo.records",
                                   [this]() { return next_sequence_; });
    registry->RegisterCounterProbe(prefix + "redo.bytes_written",
                                   [this]() { return bytes_written_; });
  }

 private:
  std::vector<RedoRecord> records_;
  int64_t bytes_written_ = 0;
  int64_t next_sequence_ = 0;
};

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_REDO_LOG_H_
