// Redo log for DC-disk.
//
// DC-disk writes a redo record at each checkpoint: the dirty pages, plus an
// opaque metadata blob (register file and kernel-capture point). This class
// stores the record chain; recovery rebuilds a process's segment by
// replaying every record in order. I/O *latency* is charged separately by
// the DiskStore policy (see stable_store.h), which models the synchronous
// writes these appends imply.
//
// Page images are serialized directly into one flat per-record buffer
// ([offset][size][bytes]... runs) as the segment's dirty-page visitor hands
// them over — the single copy is the one the persist itself requires; there
// is no intermediate vector of per-page heap buffers. Each record carries a
// CRC (slice-by-8) over its page payload that recovery validates before
// installing pages.

#ifndef FTX_SRC_STORAGE_REDO_LOG_H_
#define FTX_SRC_STORAGE_REDO_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/env/env.h"
#include "src/obs/metrics.h"

namespace ftx_store {

struct RedoRecord {
  int64_t sequence = 0;
  // Serialized dirty pages: page_count runs of
  // [int64 offset][int64 size][size bytes], in segment order.
  ftx::Bytes pages_payload;
  int64_t page_count = 0;
  int64_t page_bytes = 0;  // sum of image sizes (excludes framing)
  uint32_t pages_crc = 0;  // running CRC over pages_payload
  // Opaque metadata blob (register file + kernel capture point).
  ftx::Bytes metadata;

  // Pre-sizes the payload buffer for `pages` images of `image_size` bytes.
  void ReservePages(int64_t pages, size_t image_size);

  // Serializes one page image straight from the source buffer (typically
  // the live segment) and extends the payload CRC.
  void AppendPage(int64_t offset, const uint8_t* data, size_t size);

  // Decodes the payload, invoking visitor(offset, data, size) per page.
  // Returns false (possibly mid-iteration) on a malformed payload.
  template <typename Visitor>
  bool ForEachPage(Visitor&& visitor) const {
    size_t cursor = 0;
    for (int64_t i = 0; i < page_count; ++i) {
      int64_t offset = 0;
      int64_t size = 0;
      // Framing before use: compare the claimed size against the bytes that
      // actually remain (cursor <= payload size here, so the subtraction is
      // safe). The additive form `cursor + size > payload size` wraps for a
      // huge claimed size and would over-read a truncated tail.
      if (!ftx::ReadValue(pages_payload, &cursor, &offset) ||
          !ftx::ReadValue(pages_payload, &cursor, &size) || size < 0 ||
          static_cast<uint64_t>(size) > pages_payload.size() - cursor) {
        return false;
      }
      visitor(offset, pages_payload.data() + cursor, static_cast<size_t>(size));
      cursor += static_cast<size_t>(size);
    }
    return cursor == pages_payload.size();
  }

  // Recomputes the payload CRC and compares against pages_crc.
  bool ValidatePages() const {
    return ftx::Crc32(pages_payload.data(), pages_payload.size()) == pages_crc;
  }

  // Billable payload: page images + one int64 offset of framing per page +
  // metadata. (The cost model charges logical content, not host encoding.)
  int64_t PayloadBytes() const;
};

class WriteJournal;

class RedoLog {
 public:
  // Appends a record; returns its payload size in bytes (for I/O charging).
  // Equivalent to AppendBatch of a single record: one sync window.
  int64_t Append(RedoRecord record);

  // Group commit: appends a whole window of records under ONE pair of sync
  // barriers — all record bodies land contiguously, one barrier, then one
  // commit slot vouching for the entire window (it carries the last
  // record's sequence; SelectCommitSlot's [log_start, log_end) spans every
  // record in the window), one barrier. Slot parity alternates per
  // *window*, not per record, so the slot never overwrites the sector that
  // vouches for the previous window. With singleton windows this emits
  // exactly the same journal ops as Append — window count equals sequence
  // — which is what keeps unbatched runs byte-identical to the goldens.
  // Returns the summed payload bytes (for I/O charging).
  int64_t AppendBatch(std::vector<RedoRecord> batch);

  // Full record history (recovery replays every record in order).
  const std::vector<RedoRecord>& records() const { return records_; }
  const RedoRecord* Latest() const { return records_.empty() ? nullptr : &records_.back(); }

  // Truncation: drops records at or before `sequence`. The paper's DC-disk
  // skipped truncation; the library supports it so long runs stay bounded
  // once a full-state checkpoint record supersedes the prefix.
  void TruncateThrough(int64_t sequence);

  // Attaches a sector-granular write journal (owned by the machine's
  // DiskModel): every Append then emits the commit's two synchronous I/Os as
  // journal ops — record sectors + barrier, commit-slot sector + barrier —
  // and TruncateThrough emits the slot rewrite that retires the prefix. The
  // crash-state exploration engine replays these ops to build survivor
  // images (see src/storage/log_image.h). nullptr detaches.
  void AttachJournal(WriteJournal* journal);

  // Attaches a backend StableMedium (src/env/env.h): every Append then also
  // encodes the record (log_image framing) and appends + syncs it to the
  // medium, giving non-simulated backends a genuinely durable log. nullptr
  // detaches. Orthogonal to the journal (which models sector-level I/O for
  // the torture engine); simulated quantities never depend on the medium.
  void AttachMedium(ftx::env::StableMedium* medium);

  // Rebuilds the record chain from a medium's durable bytes: decodes whole
  // valid records in order, stops at the first torn/corrupt tail (the
  // in-flight record a crash cut short), and installs the survivors via
  // RestoreForRecovery. Returns the number of records restored.
  int64_t RestoreFromMedium(const ftx::env::StableMedium& medium);

  // Replaces the in-memory record chain with what survived on disk — the
  // records a SurvivorLog decoded from a crash-state image — so a fresh
  // computation's Recover() sees exactly the survivor state. Sequences must
  // be contiguous; next_sequence resumes after the last survivor.
  void RestoreForRecovery(std::vector<RedoRecord> records);

  int64_t bytes_written() const { return bytes_written_; }
  int64_t next_sequence() const { return next_sequence_; }

  // Exposes log counters through a metrics registry under
  // "<prefix>redo.records" and "<prefix>redo.bytes_written" (prefix is
  // typically "p<pid>." since each process owns one log).
  void BindMetrics(ftx_obs::Registry* registry, const std::string& prefix) {
    registry->RegisterCounterProbe(prefix + "redo.records",
                                   [this]() { return next_sequence_; });
    registry->RegisterCounterProbe(prefix + "redo.bytes_written",
                                   [this]() { return bytes_written_; });
  }

 private:
  std::vector<RedoRecord> records_;
  int64_t bytes_written_ = 0;
  int64_t next_sequence_ = 0;
  // Journaling state: where the next record lands in the on-disk image, the
  // oldest sequence the record area still vouches for, and the byte offset
  // of every live record (so truncation can narrow log_start exactly).
  ftx::env::StableMedium* medium_ = nullptr;
  WriteJournal* journal_ = nullptr;
  int64_t journal_tail_ = 0;
  int64_t journal_log_start_ = 0;
  int64_t journal_start_sequence_ = 0;
  // Windows appended so far; its parity picks the commit-slot sector. Kept
  // equal to next_sequence_ while every window is a singleton.
  int64_t window_count_ = 0;
  std::vector<std::pair<int64_t, int64_t>> journal_offsets_;  // (sequence, offset)
};

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_REDO_LOG_H_
