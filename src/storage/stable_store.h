// Stable-storage cost/semantics policies.
//
// A commit must place state where it survives failures. The paper evaluates
// two such homes: the Rio file cache — reliable main memory whose contents
// survive operating-system crashes at memory speed — and a conventional disk
// written synchronously (DC-disk). A StableStore captures the properties the
// experiments depend on: how long a commit record / log append takes to
// persist, and whether contents survive an OS crash.
//
// Disk calibration (see DESIGN.md §5): a DC-disk checkpoint performs two
// synchronous I/Os (redo record, then the commit sector that makes it
// atomic), each paying an average seek plus a full rotation — small
// synchronous writes to just-written tracks miss the sector and wait a
// revolution. An ND-log append stays within the dedicated log region (no
// seek) but still pays the rotation. With IBM Ultrastar-class parameters
// this yields ≈40 ms per checkpoint and ≈11 ms per log record, matching the
// overhead shape of Fig. 8.

#ifndef FTX_SRC_STORAGE_STABLE_STORE_H_
#define FTX_SRC_STORAGE_STABLE_STORE_H_

#include <cstdint>
#include <string_view>

#include "src/common/sim_time.h"
#include "src/storage/disk_model.h"

namespace ftx_store {

class StableStore {
 public:
  virtual ~StableStore() = default;

  // Cost of durably persisting one commit record of `bytes` payload.
  virtual ftx::Duration PersistCost(int64_t bytes) = 0;

  // Cost of durably persisting a group-commit window of `records` commit
  // records totalling `bytes` payload under ONE pair of sync I/Os: the
  // mechanical overhead (seeks/rotations for DC-disk) is paid once for the
  // window, only the transfer scales with the data. WindowPersistCost(1, b)
  // must equal PersistCost(b) — singleton windows are exactly the unbatched
  // path, which is what keeps batching-off runs byte-identical.
  virtual ftx::Duration WindowPersistCost(int64_t records, int64_t bytes) {
    (void)records;
    return PersistCost(bytes);
  }

  // Cost of appending one ND-log record of `bytes` payload (the -LOG
  // protocols pay this per logged event instead of committing).
  virtual ftx::Duration LogAppendCost(int64_t bytes) = 0;

  // Fixed per-commit cost independent of data volume (register-file copy,
  // page reprotection bookkeeping, log-head update).
  virtual ftx::Duration CommitFixedCost() const = 0;

  // True if committed contents survive an operating-system crash.
  virtual bool SurvivesOsCrash() const = 0;

  virtual std::string_view name() const = 0;
};

// Cost parameters for Rio reliable memory.
struct RioParameters {
  // Register copy + atomic log discard + page-table bookkeeping on a
  // 400 MHz Pentium II: Discount Checking reports sub-millisecond
  // checkpoints.
  ftx::Duration fixed_cost = ftx::Milliseconds(1);
  // ~1 GB/s effective logging/copy bandwidth.
  ftx::Duration per_byte = ftx::Nanoseconds(1);
  ftx::Duration log_fixed = ftx::Nanoseconds(500);
};

// Rio reliable memory: persistence at memory speed.
class RioStore : public StableStore {
 public:
  explicit RioStore(RioParameters params = RioParameters()) : params_(params) {}

  ftx::Duration PersistCost(int64_t bytes) override {
    return ftx::Nanoseconds(params_.per_byte.nanos() * bytes);
  }
  ftx::Duration LogAppendCost(int64_t bytes) override {
    return params_.log_fixed + ftx::Nanoseconds(params_.per_byte.nanos() * bytes);
  }
  ftx::Duration CommitFixedCost() const override { return params_.fixed_cost; }
  bool SurvivesOsCrash() const override { return true; }
  std::string_view name() const override { return "rio"; }

 private:
  RioParameters params_;
};

// Plain volatile memory: as fast as Rio, but an operating-system crash
// destroys it — committed state survives only *process* failures. This is
// the store that shows why Discount Checking needs Rio (or a disk): without
// a crash-surviving home, an OS failure forfeits every commit.
class MemoryStore : public StableStore {
 public:
  explicit MemoryStore(RioParameters params = RioParameters()) : params_(params) {}

  ftx::Duration PersistCost(int64_t bytes) override {
    return ftx::Nanoseconds(params_.per_byte.nanos() * bytes);
  }
  ftx::Duration LogAppendCost(int64_t bytes) override {
    return params_.log_fixed + ftx::Nanoseconds(params_.per_byte.nanos() * bytes);
  }
  ftx::Duration CommitFixedCost() const override { return params_.fixed_cost; }
  bool SurvivesOsCrash() const override { return false; }
  std::string_view name() const override { return "volatile-memory"; }

 private:
  RioParameters params_;
};

// Synchronous disk redo log (DC-disk).
class DiskStore : public StableStore {
 public:
  explicit DiskStore(DiskModel* disk, ftx::Duration fixed_cost = ftx::Microseconds(80))
      : disk_(disk), fixed_cost_(fixed_cost) {}

  ftx::Duration PersistCost(int64_t bytes) override {
    const DiskParameters& p = disk_->parameters();
    ftx::Duration rotation = p.half_rotation * 2;
    // Two synchronous I/Os: the redo record and the commit sector.
    ftx::Duration cost = (p.average_seek + rotation) * 2;
    cost += ftx::Nanoseconds(p.per_byte.nanos() * bytes);
    disk_->NoteSyncWrite(bytes, /*ios=*/2);
    return cost;
  }
  ftx::Duration WindowPersistCost(int64_t records, int64_t bytes) override {
    (void)records;
    const DiskParameters& p = disk_->parameters();
    ftx::Duration rotation = p.half_rotation * 2;
    // Group commit's whole point: the window still pays exactly two
    // synchronous I/Os — all record bodies under one barrier, the one
    // commit slot under the other — so seek+rotation is amortized across
    // every record in the window and only the transfer grows with payload.
    ftx::Duration cost = (p.average_seek + rotation) * 2;
    cost += ftx::Nanoseconds(p.per_byte.nanos() * bytes);
    disk_->NoteSyncWrite(bytes, /*ios=*/2);
    return cost;
  }
  ftx::Duration LogAppendCost(int64_t bytes) override {
    const DiskParameters& p = disk_->parameters();
    ftx::Duration cost = p.half_rotation * 2;  // full rotation, no seek
    cost += ftx::Nanoseconds(p.per_byte.nanos() * bytes);
    disk_->NoteSyncWrite(bytes, /*ios=*/1);
    return cost;
  }
  ftx::Duration CommitFixedCost() const override { return fixed_cost_; }
  bool SurvivesOsCrash() const override { return true; }
  std::string_view name() const override { return "dc-disk"; }

  DiskModel* disk() { return disk_; }

 private:
  DiskModel* disk_;
  ftx::Duration fixed_cost_;
};

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_STABLE_STORE_H_
