#include "src/storage/undo_log.h"

#include <cstring>

#include "src/common/check.h"

namespace ftx_store {

UndoLog::UndoLog(size_t slot_size) : slot_size_(slot_size) { FTX_CHECK_GT(slot_size, 0u); }

void UndoLog::RecordBeforeImage(int64_t offset, const uint8_t* data, size_t size) {
  FTX_CHECK_GE(offset, 0);
  UndoRecord record;
  record.offset = offset;
  record.size = static_cast<int64_t>(size);
  if (size == slot_size_) {
    if (free_slots_.empty()) {
      FTX_CHECK_LT(slots_.size(), static_cast<size_t>(INT32_MAX));
      free_slots_.push_back(static_cast<int32_t>(slots_.size()));
      slots_.push_back(std::make_unique<uint8_t[]>(slot_size_));
    }
    record.slot = free_slots_.back();
    free_slots_.pop_back();
    std::memcpy(slots_[record.slot].get(), data, size);
  } else {
    record.odd_bytes.assign(data, data + size);
  }
  byte_size_ += static_cast<int64_t>(size);
  records_.push_back(std::move(record));
}

void UndoLog::ApplyReverseInto(uint8_t* base, size_t base_size) {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    FTX_CHECK_LE(static_cast<size_t>(it->offset + it->size), base_size);
    std::memcpy(base + it->offset, RecordData(*it), static_cast<size_t>(it->size));
  }
  Discard();
}

void UndoLog::Discard() {
  for (const UndoRecord& record : records_) {
    if (record.slot >= 0) {
      free_slots_.push_back(record.slot);
    }
  }
  records_.clear();
  byte_size_ = 0;
}

}  // namespace ftx_store
