#include "src/storage/undo_log.h"

#include <cstring>

#include "src/common/check.h"

namespace ftx_store {

UndoLog::UndoLog(size_t slot_size) : slot_size_(slot_size) { FTX_CHECK_GT(slot_size, 0u); }

int32_t UndoLog::RecordBeforeImage(int64_t offset, const uint8_t* data, size_t size) {
  FTX_CHECK_GE(offset, 0);
  FTX_CHECK_LT(records_.size(), static_cast<size_t>(INT32_MAX));
  UndoRecord record;
  record.offset = offset;
  record.size = static_cast<int64_t>(size);
  const int64_t slot_size = static_cast<int64_t>(slot_size_);
  if (size > 0 && offset / slot_size == (offset + record.size - 1) / slot_size) {
    // Fits one slot-aligned window: pooled path, mirror layout.
    if (free_slots_.empty()) {
      FTX_CHECK_LT(slots_.size(), static_cast<size_t>(INT32_MAX));
      free_slots_.push_back(static_cast<int32_t>(slots_.size()));
      slots_.push_back(std::make_unique<uint8_t[]>(slot_size_));
    }
    record.slot = free_slots_.back();
    free_slots_.pop_back();
    std::memcpy(slots_[record.slot].get() + offset % slot_size, data, size);
  } else {
    if (odd_free_.empty()) {
      FTX_CHECK_LT(odd_buffers_.size(), static_cast<size_t>(INT32_MAX));
      odd_free_.push_back(static_cast<int32_t>(odd_buffers_.size()));
      odd_buffers_.emplace_back();
    }
    record.odd_index = odd_free_.back();
    odd_free_.pop_back();
    odd_buffers_[record.odd_index].assign(data, data + size);
  }
  byte_size_ += record.size;
  records_.push_back(record);
  return static_cast<int32_t>(records_.size()) - 1;
}

void UndoLog::WidenToWindow(int32_t index, const uint8_t* window) {
  FTX_CHECK_GE(index, 0);
  FTX_CHECK_LT(static_cast<size_t>(index), records_.size());
  UndoRecord& record = records_[index];
  FTX_CHECK_GE(record.slot, 0);
  const int64_t slot_size = static_cast<int64_t>(slot_size_);
  if (record.size == slot_size) {
    return;
  }
  uint8_t* slot = slots_[record.slot].get();
  const int64_t lo = record.offset % slot_size;
  const int64_t hi = lo + record.size;
  std::memcpy(slot, window, static_cast<size_t>(lo));
  std::memcpy(slot + hi, window + hi, static_cast<size_t>(slot_size - hi));
  byte_size_ += slot_size - record.size;
  record.offset -= lo;
  record.size = slot_size;
}

void UndoLog::ApplyReverseInto(uint8_t* base, size_t base_size) {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    FTX_CHECK_LE(static_cast<size_t>(it->offset + it->size), base_size);
    std::memcpy(base + it->offset, RecordData(*it), static_cast<size_t>(it->size));
  }
  Discard();
}

void UndoLog::Discard() {
  for (const UndoRecord& record : records_) {
    if (record.slot >= 0) {
      free_slots_.push_back(record.slot);
    } else if (record.odd_index >= 0) {
      odd_free_.push_back(record.odd_index);
    }
  }
  records_.clear();
  byte_size_ = 0;
}

}  // namespace ftx_store
