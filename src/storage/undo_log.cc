#include "src/storage/undo_log.h"

#include <cstring>

#include "src/common/check.h"

namespace ftx_store {

void UndoLog::RecordBeforeImage(int64_t offset, const uint8_t* data, size_t size) {
  FTX_CHECK_GE(offset, 0);
  UndoRecord record;
  record.offset = offset;
  record.before_image.assign(data, data + size);
  byte_size_ += static_cast<int64_t>(size);
  records_.push_back(std::move(record));
}

void UndoLog::ApplyReverseInto(uint8_t* base, size_t base_size) {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    FTX_CHECK_LE(static_cast<size_t>(it->offset) + it->before_image.size(), base_size);
    std::memcpy(base + it->offset, it->before_image.data(), it->before_image.size());
  }
  Discard();
}

void UndoLog::Discard() {
  records_.clear();
  byte_size_ = 0;
}

}  // namespace ftx_store
