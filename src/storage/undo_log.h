// Before-image (undo) log, the heart of the Vista transaction library.
//
// When a transaction first dirties a region, Vista logs the region's
// before-image. Commit discards the log atomically; abort (or crash
// recovery) applies the before-images in reverse order, restoring the
// segment to its last committed state.

#ifndef FTX_SRC_STORAGE_UNDO_LOG_H_
#define FTX_SRC_STORAGE_UNDO_LOG_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"

namespace ftx_store {

struct UndoRecord {
  int64_t offset = 0;
  ftx::Bytes before_image;
};

class UndoLog {
 public:
  // Logs the previous contents of [offset, offset+size) (copied from `data`).
  void RecordBeforeImage(int64_t offset, const uint8_t* data, size_t size);

  // Applies all before-images in reverse order into the buffer at `base`
  // (which must span at least the logged offsets), then clears the log.
  void ApplyReverseInto(uint8_t* base, size_t base_size);

  // Commit: atomically forget all undo records.
  void Discard();

  bool empty() const { return records_.empty(); }
  size_t record_count() const { return records_.size(); }
  int64_t byte_size() const { return byte_size_; }

  const std::vector<UndoRecord>& records() const { return records_; }

 private:
  std::vector<UndoRecord> records_;
  int64_t byte_size_ = 0;
};

}  // namespace ftx_store

#endif  // FTX_SRC_STORAGE_UNDO_LOG_H_
